#!/usr/bin/env python
"""Quickstart: a tour of the repro public API.

Walks the paper's storyline in code: pick a technology node, look at
its devices (drive, leakage, variability), a digital gate (delay,
energy), a wire (eq. 3), and the analog power limits (eq. 4) -- the
building blocks every deeper example composes.

Run:  python examples/quickstart.py
"""

from repro.technology import get_node
from repro.devices import Mosfet, device_leakage
from repro.digital import fo4_delay_model
from repro.interconnect import WireGeometry, wire_delay
from repro.analog import minimum_power, accuracy_from_bits


def main() -> None:
    # --- 1. Technology nodes ------------------------------------------------
    node = get_node("65nm")
    print("Technology node:", node.name)
    for key, value in node.summary().items():
        print(f"  {key:>22}: {value:.4g}")

    # --- 2. A transistor in that node -------------------------------------
    device = Mosfet(node, width=2 * node.feature_size)
    print("\nMinimum-ish NMOS (W = 2L):")
    print(f"  on current   : {device.on_current() * 1e6:8.1f} uA")
    print(f"  off current  : {device.off_current() * 1e9:8.2f} nA "
          f"(eq. 1 with DIBL)")
    print(f"  subthreshold : {device.subthreshold_swing() * 1e3:8.1f} "
          f"mV/decade")
    budget = device_leakage(node, device.width)
    print(f"  gate leakage : {budget.gate * 1e9:8.3f} nA (eq. 2)")
    print(f"  sigma V_T    : {device.sigma_vth_mismatch() * 1e3:8.1f} mV"
          f" (Pelgrom)")

    # Hot silicon is where leakage actually hurts.
    hot = node.at_temperature(358.0)
    hot_device = Mosfet(hot, width=2 * hot.feature_size)
    print(f"  off current @85C: {hot_device.off_current() * 1e9:.1f} nA "
          f"({hot_device.off_current() / device.off_current():.0f}x "
          f"the 27C value)")

    # --- 3. A digital gate --------------------------------------------------
    fo4 = fo4_delay_model(node)
    print("\nFO4 inverter:")
    print(f"  delay             : {fo4.delay() * 1e12:6.2f} ps")
    print(f"  +50mV V_T shift   : "
          f"{(fo4.delay(vth=node.vth + 0.05) / fo4.delay() - 1) * 100:6.1f}"
          f" % slower (Fig. 4's effect)")

    # --- 4. A wire (eq. 3) ---------------------------------------------------
    geom = WireGeometry.for_node(node, layer=1)
    for length_mm in (0.1, 1.0, 5.0):
        delay = wire_delay(geom, length_mm * 1e-3)
        print(f"  {length_mm:4.1f} mm M1 wire delay: "
              f"{delay * 1e12:9.1f} ps")

    # --- 5. The analog power floor (eq. 4) ----------------------------------
    accuracy = accuracy_from_bits(10.0)
    limits = minimum_power(100e6, accuracy, node)
    print("\n10-bit, 100 MS/s analog block (eq. 4 limits):")
    print(f"  thermal-noise floor : {limits['thermal_W'] * 1e3:8.3f} mW")
    print(f"  mismatch floor      : {limits['mismatch_W'] * 1e3:8.3f} mW"
          f"  <- binds for untrimmed circuits (Fig. 6)")


if __name__ == "__main__":
    main()
