#!/usr/bin/env python
"""ADC design-space exploration against the eq. 4 power limits.

For a converter spec (bits x sample rate), find the minimum power in
each node, show who binds (thermal vs mismatch), what calibration
buys, how the survey of real designs sits in the Fig. 6 plane, and
why the power stopped improving with scaling (eq. 5 / Fig. 7).

Run:  python examples/adc_design_space.py
"""

from repro.analog import (analog_power_trend, headroom_trend, limit_gap,
                          minimum_adc_power, resolution_speed_frontier,
                          survey_vs_limits)
from repro.technology import all_nodes, get_node


def main() -> None:
    spec_bits, spec_rate = 10.0, 100e6
    print(f"Spec: {spec_bits:.0f}-bit, {spec_rate / 1e6:.0f} MS/s ADC\n")

    # --- 1. Minimum power per node, trimmed vs untrimmed ---------------
    print("Minimum power per node (eq. 4):")
    print(f"  {'node':>6} | {'untrimmed':>12} | {'calibrated':>12} | "
          f"{'mismatch gap':>12}")
    for node in all_nodes():
        uncal = minimum_adc_power(node, spec_rate, spec_bits)
        cal = minimum_adc_power(node, spec_rate, spec_bits,
                                calibrated=True)
        print(f"  {node.name:>6} | {uncal * 1e3:9.2f} mW | "
              f"{cal * 1e3:9.3f} mW | {limit_gap(node):9.0f} x")
    print("  -> calibration buys back the Fig. 6 gap; untrimmed "
          "converters pay the mismatch limit.")

    # --- 2. Resolution/speed frontier at a power budget ----------------
    node = get_node("65nm")
    budget = 10e-3
    print(f"\nWhat fits in {budget * 1e3:.0f} mW at {node.name} "
          f"(untrimmed)?")
    for row in resolution_speed_frontier(node, budget,
                                         [8, 10, 12, 14, 16]):
        print(f"  {row['n_bits']:4.0f} bit -> "
              f"{row['max_sample_rate_Hz'] / 1e6:10.2f} MS/s max")

    # --- 3. The survey in the Fig. 6 plane ------------------------------
    survey = survey_vs_limits(get_node("350nm"))
    print("\nPublished-design survey vs the limits (350 nm era):")
    for row in sorted(survey, key=lambda r: r["margin_over_mismatch"])[:6]:
        print(f"  {row['name']:>18}: {row['margin_over_mismatch']:6.1f}x "
              f"over mismatch, {row['margin_over_thermal']:8.0f}x over "
              f"thermal")
    print("  -> the best designs sit right on the mismatch limit.")

    # --- 4. Why scaling stopped helping (eq. 5 / Fig. 7) ----------------
    print("\nFixed-spec analog power across the roadmap "
          "(normalized to 350 nm):")
    for row in analog_power_trend(all_nodes(), speed=spec_rate,
                                  n_bits=spec_bits,
                                  normalize_to="350nm"):
        print(f"  {row['node']:>6}: matching-only "
              f"x{row['power_matching_only_rel']:4.2f}, actual "
              f"x{row['power_actual_rel']:4.2f} (eq. 5 ratio vs 350nm: "
              f"{row['eq5_ratio_vs_first']:4.2f})")

    # --- 5. And the headroom problem on top -----------------------------
    print("\nSupply headroom (the circuit-technique casualty list):")
    for row in headroom_trend(all_nodes()):
        cascode = "yes" if row["cascode_possible"] else "NO"
        print(f"  {row['node']:>6}: VDD {row['vdd_V']:4.2f} V, cascode "
              f"{cascode:>3}, stack {row['stackable_devices']} devices, "
              f"swing {row['signal_swing_V']:4.2f} V")


if __name__ == "__main__":
    main()
