#!/usr/bin/env python
"""Analog synthesis walkthrough: the AMGIE/LAYLA flow on two circuits.

1. Size a single-stage OTA against a spec with the differential-
   evolution engine (the 'powerful numerical optimization engine
   coupled to evaluation engines' of section 4.2).
2. Run the full detector-front-end flow of Fig. 8 -- sizing, device
   generation, placement, routing -- and write the layout to SVG.

Run:  python examples/analog_synthesis_flow.py
"""

import pathlib

from repro.synthesis import (Specification, default_ota_spec,
                             manual_design_baseline, ota_synthesizer,
                             synthesize_detector_frontend)
from repro.technology import get_node


def main() -> None:
    node = get_node("180nm")

    # --- 1. OTA sizing ---------------------------------------------------
    spec = default_ota_spec()
    print(f"Sizing a single-stage OTA in {node.name} against:")
    for attr, (direction, bound) in spec.constraints.items():
        print(f"  {attr:>18} {direction} {bound:g}")
    synthesizer = ota_synthesizer(node, load_capacitance=2e-12,
                                  spec=spec)
    result = synthesizer.run(seed=0, maxiter=40)
    perf = result.performance
    print(f"\nFound in {result.n_evaluations} evaluations "
          f"(feasible: {result.feasible}):")
    for name, value in result.values.items():
        print(f"  {name:>22} = {value:.4g}")
    print(f"  ->  gain {perf.gain_db:.1f} dB, GBW "
          f"{perf.gbw_hz / 1e6:.1f} MHz, PM "
          f"{perf.phase_margin_deg:.0f} deg, offset "
          f"{perf.offset_sigma * 1e3:.2f} mV, power "
          f"{perf.power * 1e3:.3f} mW")

    # --- 2. The Fig. 8 detector front-end ---------------------------------
    node350 = get_node("350nm")
    print(f"\nFull AMGIE/LAYLA flow: detector front-end in "
          f"{node350.name} (Fig. 8)...")
    report = synthesize_detector_frontend(
        node350, seed=1, sizing_maxiter=30,
        placement_iterations=1500)
    summary = report.summary()
    manual = manual_design_baseline(node350)
    print(f"  synthesized: ENC {summary['enc_electrons']:.0f} e-, "
          f"power {summary['power_mW']:.3f} mW, area "
          f"{summary['area_mm2']:.3f} mm2")
    print(f"  manual ref : ENC {manual['enc_electrons']:.0f} e-, "
          f"power {manual['power_mW']:.3f} mW")
    print(f"  routing    : {summary['route_completion'] * 100:.0f} % "
          f"of nets, {summary['wirelength_mm']:.2f} mm of wire")
    print("\n" + report.layout.to_text())

    out = pathlib.Path(__file__).parent / "detector_frontend.svg"
    out.write_text(report.layout.to_svg())
    print(f"\nLayout written to {out} (the Fig. 8 picture).")


if __name__ == "__main__":
    main()
