#!/usr/bin/env python
"""Full-chain mixed-signal sign-off: DAC -> SC filter -> ADC.

Walks the three levels of the sign-off suite:

1. one ideal chain (exactly zero DNL/INL -- the dyadic-fraction
   design guarantee),
2. one mismatched die at 65 nm with its DNL/INL/ENOB report,
3. the batched Monte Carlo yield-vs-node sweep that reproduces the
   paper's analog-scaling collapse, plus the device-sizing knob that
   buys the yield back.

Run:  python examples/chain_signoff.py
"""

import numpy as np

from repro.analog import (ChainDesign, chain_signoff,
                          chain_signoff_batch, chain_yield_vs_node)
from repro.technology import get_node
from repro.variability import MonteCarloSampler


def main() -> None:
    node = get_node("65nm")

    # --- 1. The ideal chain is *exactly* linear ------------------------
    ideal = chain_signoff(node)
    print("Ideal 8-bit chain at 65 nm:")
    print(f"  DAC DNL/INL : {ideal.dac.dnl_max:.1f} / "
          f"{ideal.dac.inl_max:.1f} LSB (exact zeros)")
    print(f"  ADC DNL/INL : {ideal.adc.dnl_max:.1f} / "
          f"{ideal.adc.inl_max:.1f} LSB")
    print(f"  ENOB        : {ideal.spectral.enob:.3f} bit "
          f"(double quantization of a 0.9 FS sine)")
    print(f"  sign-off    : {'PASS' if ideal.passed else 'FAIL'}")

    # --- 2. One real die: Pelgrom mismatch everywhere ------------------
    die = MonteCarloSampler(node, seed=2).sample_die()
    real = chain_signoff(node, die=die)
    print("\nOne mismatched die (seed 2):")
    print(f"  DAC DNL/INL : {real.dac.dnl_max:.3f} / "
          f"{real.dac.inl_max:.3f} LSB")
    print(f"  ADC DNL/INL : {real.adc.dnl_max:.3f} / "
          f"{real.adc.inl_max:.3f} LSB")
    print(f"  ENOB        : {real.spectral.enob:.3f} bit")
    print(f"  sign-off    : {'PASS' if real.passed else 'FAIL'}")

    # --- 3. Yield vs node: the analog scaling story --------------------
    print("\nSign-off yield vs node (64 dies each, batched MC):")
    print(f"  {'node':>6} | {'yield':>6} | {'ENOB mean':>9} | "
          f"{'worst DNL':>9} | {'worst INL':>9}")
    for row in chain_yield_vs_node(n_dies=64, seed=0):
        print(f"  {row['node']:>6} | {row['yield_fraction']:6.2f} | "
              f"{row['enob_mean']:9.3f} | "
              f"{row['dnl_worst_lsb']:7.2f} LSB | "
              f"{row['inl_worst_lsb']:7.2f} LSB")
    print("  -> same design, same spec: yield collapses below 65 nm "
          "because sigma(VT), sigma(R), sigma(C) grow as 1/sqrt(WL) "
          "while the LSB shrinks with VDD.")

    # --- 4. Buying the yield back with area ----------------------------
    small = chain_signoff_batch(MonteCarloSampler(get_node("32nm"),
                                                  seed=0), n_dies=64)
    big = chain_signoff_batch(
        MonteCarloSampler(get_node("32nm"), seed=0),
        design=ChainDesign(resistor_width=32.0, resistor_length=256.0,
                           cap_side=48.0, comparator_width=256.0,
                           comparator_length=32.0),
        n_dies=64)
    print(f"\n32 nm yield with minimum-size devices : "
          f"{float(np.mean(small.passed)):.2f}")
    print(f"32 nm yield with 16x matched area      : "
          f"{float(np.mean(big.passed)):.2f}")
    print("  -> the paper's conclusion: analog blocks stop shrinking; "
          "matching, not lithography, sets their area.")


if __name__ == "__main__":
    main()
