#!/usr/bin/env python
"""Mixed-signal SoC scenario: digital switching noise vs an embedded
VCO, analyzed with the SWAN flow (sections 4.3, Figs. 9-10).

A modem-like clocked datapath injects substrate noise; the flow
propagates it through the finite-difference substrate to an analog
sensor node, checks SWAN's macromodel accuracy against the detailed
reference, quantifies what a guard ring buys, and finally modulates a
2.3 GHz VCO with the result to show the clock spurs.

Run:  python examples/mixed_signal_soc.py
"""

import numpy as np

from repro.digital import clocked_datapath
from repro.signal_integrity import (VcoModel, comparison_report,
                                    vco_spur_experiment)
from repro.substrate import (Floorplan, NoiseWaveform, SwanSimulator,
                             run_swan_experiment)
from repro.technology import get_node

CLOCK = 13e6          # the paper's Fig. 9 clock
NODE = "350nm"        # the paper's Fig. 10 process


def main() -> None:
    node = get_node(NODE)
    netlist = clocked_datapath(node, adder_width=8, n_slices=8, seed=3)
    print(f"Digital aggressor: {netlist.gate_count()} gates, "
          f"{CLOCK / 1e6:.0f} MHz clock, {node.name} EPI process")

    # --- 1. SWAN accuracy against the detailed reference (Fig. 10) -----
    comparison = run_swan_experiment(netlist, n_cycles=5,
                                     clock_frequency=CLOCK,
                                     mesh_resolution=24, seed=0)
    report = comparison_report(comparison.swan, comparison.reference)
    print("\nSWAN vs detailed reference (the Fig. 10 check):")
    print(f"  reference noise : {report['reference_rms_mV']:.3f} mV rms,"
          f" {report['reference_p2p_mV']:.3f} mV p2p")
    print(f"  RMS error       : {report['rms_error'] * 100:.1f} % "
          f"(paper: <= 20 %)")
    print(f"  p2p error       : {report['p2p_error'] * 100:.1f} % "
          f"(paper: <= 4 %)")
    print(f"  correlation     : {report['correlation']:.3f}")

    # --- 2. What does a guard ring buy? --------------------------------
    plain = SwanSimulator(netlist, clock_frequency=CLOCK,
                          mesh_resolution=24, guard_ring=False, seed=0)
    ringed = SwanSimulator(netlist, clock_frequency=CLOCK,
                           mesh_resolution=24, guard_ring=True, seed=0)
    activity = plain.simulate_activity(n_cycles=3, stimulus_seed=0)
    noise_plain = plain.run(activity=activity)
    noise_ringed = ringed.run(activity=activity)
    print("\nGuard ring around the sensor:")
    print(f"  without: {noise_plain.rms * 1e3:.3f} mV rms")
    print(f"  with   : {noise_ringed.rms * 1e3:.3f} mV rms "
          f"({noise_plain.rms / noise_ringed.rms:.1f}x better; note "
          f"EPI substrates limit what rings can do)")

    # --- 3. FM modulation of the VCO (Fig. 9) --------------------------
    one_period = plain.run(activity=activity, dt=1e-10,
                           duration=1.0 / CLOCK)
    n_periods = 26
    time = np.arange(one_period.time.size * n_periods) * 1e-10
    noise = NoiseWaveform(time=time,
                          voltage=np.tile(one_period.voltage, n_periods))
    vco = VcoModel(center_frequency=2.3e9, substrate_sensitivity=20e6)
    spurs = vco_spur_experiment(vco, noise, CLOCK)
    print(f"\n2.3 GHz VCO over that substrate (Fig. 9):")
    print(f"  carrier          : {spurs.carrier_frequency / 1e9:.3f} GHz")
    print(f"  spur @ +13 MHz   : {spurs.upper_spur_dbc:6.1f} dBc")
    print(f"  spur @ -13 MHz   : {spurs.lower_spur_dbc:6.1f} dBc")
    print(f"  narrowband-FM fit: {spurs.analytic_spur_dbc:6.1f} dBc")
    print("\nThe digital clock is visible as FM sidebands around the "
          "VCO -- exactly the paper's out-of-band emission worry.")


if __name__ == "__main__":
    main()
