#!/usr/bin/env python
"""Statistical design: living with variability instead of margining it.

Section 2.4 ends with "analog designers ... have been using
statistical methods already a long time ago" (ref [8]); section 3.1
shows what worst-case margining costs.  This example walks the
statistical toolbox across both domains:

1. digital: corner vs statistical timing sign-off (SSTA);
2. layout: common-centroid matching against spatial gradients;
3. analog: Monte Carlo yield and design centering;
4. system: a pipeline ADC losing bits to mismatch and winning them
   back by calibration.

Run:  python examples/statistical_design.py
"""

from repro.analog import PipelineAdc, enob_vs_device_area, sine_test
from repro.digital import (corner_vs_statistical_margin,
                           kogge_stone_adder)
from repro.synthesis import compare_centering, default_ota_spec
from repro.technology import get_node
from repro.variability import (common_centroid_benefit,
                               matching_vs_distance)


def main() -> None:
    node65 = get_node("65nm")
    node180 = get_node("180nm")

    # --- 1. SSTA vs corners -------------------------------------------------
    adder = kogge_stone_adder(node65, width=8)
    margins = corner_vs_statistical_margin(adder, n_samples=150,
                                           seed=0)
    print("Timing sign-off of an 8-bit Kogge-Stone adder (65 nm):")
    print(f"  nominal delay      : {margins['nominal_ps']:.1f} ps")
    print(f"  3-sigma corner     : +{margins['corner_margin_pct']:.1f}"
          f" % margin")
    print(f"  3-sigma statistical: "
          f"+{margins['statistical_margin_pct']:.1f} % margin")
    print(f"  -> corner sign-off is {margins['pessimism_ratio']:.2f}x "
          f"pessimistic: silicon left on the table.")

    # --- 2. Spatial matching -------------------------------------------------
    print("\nDevice matching vs separation (gradient + correlated "
          "field + white):")
    for row in matching_vs_distance(node65,
                                    [0.05e-3, 0.5e-3, 2e-3],
                                    n_dies=60, seed=0):
        print(f"  {row['distance_mm']:5.2f} mm apart: sigma "
              f"{row['sigma_delta_vt_mV']:5.2f} mV")
    centroid = common_centroid_benefit(node65, seed=1)
    print(f"  common-centroid vs plain pair: "
          f"{centroid['improvement']:.1f}x better matching "
          f"(LAYLA's A-B-B-A pattern, earned)")

    # --- 3. Design centering --------------------------------------------------
    print("\nOTA sizing: nominal-optimal vs yield-centered (180 nm):")
    comparison = compare_centering(node180, 2e-12,
                                   default_ota_spec(), seed=0,
                                   maxiter=15, n_mc=150)
    print(f"  nominal-optimized design : "
          f"{comparison.nominal_yield * 100:5.1f} % MC yield")
    print(f"  3-sigma centered design  : "
          f"{comparison.centered_yield * 100:5.1f} % MC yield "
          f"({comparison.power_cost:.2f}x the power)")

    # --- 4. Calibration at the system level -----------------------------------
    print("\n10-bit pipeline ADC at 65 nm (mismatch vs calibration):")
    ideal = sine_test(PipelineAdc(node65, n_stages=9),
                      n_samples=2048, cycles=67)
    print(f"  ideal converter          : ENOB {ideal.enob:.2f}")
    for row in enob_vs_device_area(node65, area_factors=(1, 16),
                                   seed=1, n_samples=2048, cycles=67):
        print(f"  area x{row['area_factor']:3.0f}: raw ENOB "
              f"{row['enob_raw']:.2f}, calibrated "
              f"{row['enob_calibrated']:.2f}")
    print("\n  -> statistics, layout discipline and calibration buy "
          "back what\n     margining would have paid for in area and "
          "power -- the toolbox\n     that keeps the road open past "
          "65 nm.")


if __name__ == "__main__":
    main()
