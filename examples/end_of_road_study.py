#!/usr/bin/env python
"""The paper's central question, end to end: does the design road end
at the 65 nm marker?

Builds the full per-node scorecard -- gate speedup vs the four taxes
(leakage fraction, worst-case-sizing energy, analog power stagnation,
shrinking synchronous regions, dying VTCMOS) -- and prints where the
composite benefit of the next node stops being obvious.

Run:  python examples/end_of_road_study.py
"""

from repro.core import Roadmap, end_of_road_table, find_diminishing_node
from repro.technology import all_nodes


def print_row(row) -> None:
    benefit = row.get("benefit_vs_prev")
    print(f"  {row['node']:>6} | FO4 {row['fo4_ps']:6.2f} ps"
          f" | leak {row['leakage_fraction'] * 100:5.1f} %"
          f" | margin +{row['wc_energy_penalty'] * 100 - 100:4.1f} %"
          f" | analog x{row['analog_power_rel']:4.2f}"
          f" | sync {row['sync_region_mm']:5.2f} mm"
          f" | body {row['body_bias_mV']:4.0f} mV"
          + (f" | benefit {benefit:5.2f}" if benefit else " |"))


def main() -> None:
    nodes = all_nodes()
    print("Per-node 'end of the road' scorecard "
          "(85 C, 1 GHz, 10-bit/100 MS/s analog reference):")
    print("  benefit > 1: the next node still pays off; "
          "the taxes claw back the rest.\n")
    for row in end_of_road_table(nodes):
        print_row(row)

    threshold = 1.1
    verdict = find_diminishing_node(nodes, threshold=threshold)
    print(f"\nFirst transition with composite benefit < {threshold}: "
          f"{verdict or 'none in the library range'}")

    # Project past the library with the roadmap trends: what would
    # 22 nm and 16 nm look like under the same models?
    roadmap = Roadmap()
    projected = roadmap.project_series([22e-9, 16e-9])
    print("\nProjected beyond the library (roadmap trend fit):")
    for row in end_of_road_table(list(nodes) + projected)[-2:]:
        print_row(row)

    print("\nReading: raw gate speed keeps improving, but by 65 nm the"
          "\nleakage fraction is first-order, margining burns real"
          "\nenergy, analog power has stopped scaling and VTCMOS has"
          "\nlost most of its lever -- the paper's 'end of the road?'"
          "\nquestion made quantitative.")


if __name__ == "__main__":
    main()
