#!/usr/bin/env python
"""Electrothermal feedback: when leakage starts cooking the die.

Couples the leakage models (eq. 1 at temperature) with a die thermal
model: leakage heats the junction, heat multiplies the leakage.  Shows
the self-consistent operating point per node, the runaway boundary as
a cooling budget, and a floorplan hotspot map -- the thermal face of
the paper's 'end of the road' question.

Run:  python examples/thermal_runaway.py
"""

from repro.technology import all_nodes, get_node
from repro.thermal import (ThermalMesh, ThermalStack,
                           fixed_die_electrothermal_trend,
                           runaway_rth_threshold,
                           solve_operating_point)


def main() -> None:
    # --- 1. Same die, every node: the broken power-density promise ----
    stack = ThermalStack(rth_junction_to_ambient=2.0)
    print("50 mm^2 die, fully packed, node-speed clock, "
          "Rth = 2 K/W, 45 C ambient:")
    print(f"  {'node':>6} | {'gates':>8} | {'clock':>7} | "
          f"{'Tj':>6} | {'density':>11} | {'leak amp':>8}")
    for row in fixed_die_electrothermal_trend(all_nodes(),
                                              stack=stack):
        tag = "  RUNAWAY" if row["runaway"] else ""
        print(f"  {row['node']:>6} | {row['n_gates_M']:6.1f} M | "
              f"{row['f_clk_GHz']:4.1f} GHz | "
              f"{row['junction_C']:4.0f} C | "
              f"{row['power_density_W_cm2']:7.1f} W/cm2 | "
              f"{row['feedback_amplification']:6.1f} x{tag}")
    print("  -> full scaling promised constant power density; "
          "leakage ends that promise at the smallest nodes.")

    # --- 2. The cooling budget per node --------------------------------
    print("\nPackage thermal resistance above which a 1 Mgate, 1 GHz "
          "design runs away:")
    for name in ("130nm", "90nm", "65nm", "45nm", "32nm"):
        threshold = runaway_rth_threshold(get_node(name))
        print(f"  {name:>6}: Rth < {threshold:6.0f} K/W required")
    print("  -> the same design needs an ever better (more expensive) "
          "package.")

    # --- 3. A hotspot map ------------------------------------------------
    node = get_node("65nm")
    # A dense digital block: 8 Mgates at 3 GHz in one corner.
    result = solve_operating_point(node, n_gates=8_000_000,
                                   frequency=3e9, stack=stack)
    mesh = ThermalMesh(7e-3, 7e-3, nx=14, ny=14, stack=stack)
    # Digital block bottom-left at full power, analog corner quiet.
    power = mesh.block_power_map([
        (0.0, 0.0, 4e-3, 4e-3, result.total_power),
        (5e-3, 5e-3, 7e-3, 7e-3, 0.05),
    ])
    temperatures = mesh.solve(power)
    index, peak = mesh.hotspot(power)
    analog_t = temperatures[mesh.node_at(6e-3, 6e-3)]
    print(f"\nFloorplan thermal map at {node.name} "
          f"({result.total_power:.1f} W digital block):")
    print(f"  digital hotspot : {peak - 273.15:5.1f} C")
    print(f"  analog corner   : {analog_t - 273.15:5.1f} C")
    print(f"  gradient        : {peak - analog_t:5.1f} K across the "
          f"die")
    print("\nA die-wide thermal gradient is itself a mixed-signal "
          "coupling channel\n(section 4.3's 'thermal interactions'): "
          "matched pairs straddling it see\nmillivolt-class offsets.")


if __name__ == "__main__":
    main()
