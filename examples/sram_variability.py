#!/usr/bin/env python
"""Embedded SRAM under scaling: margins, mismatch and yield.

The paper's abstract names 'leakage power and process variability and
their implications for digital circuits and memories'.  This example
shows why memories feel it first: SNM trends across nodes, the
Monte Carlo margin distribution against the growing sigma_VT, the
array-level yield consequence, and what upsizing the cell buys back.

Run:  python examples/sram_variability.py
"""

from repro.memory import (ArraySpec, SramArray, SramCell,
                          SramCellDesign, snm_trend)
from repro.technology import get_node

NODES = ("180nm", "130nm", "90nm", "65nm", "45nm")


def main() -> None:
    # --- 1. Nominal margins across nodes ---------------------------------
    print("6T cell margins across nodes (minimum-ratio cell):")
    print(f"  {'node':>6} | {'VDD':>5} | {'hold SNM':>9} | "
          f"{'read SNM':>9} | {'sigma_VT':>9} | {'leak/cell':>10}")
    for row in snm_trend([get_node(n) for n in NODES]):
        print(f"  {row['node']:>6} | {row['vdd_V']:4.2f}V | "
              f"{row['hold_snm_mV']:6.0f} mV | "
              f"{row['read_snm_mV']:6.0f} mV | "
              f"{row['sigma_vt_access_mV']:6.1f} mV | "
              f"{row['cell_leakage_pA']:7.0f} pA")
    print("  -> margins shrink with VDD while sigma_VT grows: the "
          "two curves collide.")

    # --- 2. Margin statistics and yield at 65 nm --------------------------
    node = get_node("65nm")
    array = SramArray(node, ArraySpec(n_rows=256, n_cols=128))
    report = array.yield_estimate(n_samples=150, seed=0)
    print(f"\n32 kbit array at {node.name}, minimum cell:")
    print(f"  cell sigma level : {report['cell_sigma_level']:.1f} sigma")
    print(f"  cell fail prob   : {report['cell_fail_probability']:.2e}")
    print(f"  array yield      : {report['array_yield'] * 100:.1f} %")

    # --- 3. Buying margin back with area ---------------------------------
    print("\nUpsizing the cell (the variability tax, paid in area):")
    for scale in (1.0, 4.0, 16.0):
        design = SramCellDesign(pull_down_ratio=2.0 * scale,
                                access_ratio=1.2 * scale,
                                pull_up_ratio=0.8 * scale)
        cell = SramCell(node, design)
        upsized = SramArray(node, ArraySpec(n_rows=256, n_cols=128),
                            design)
        yld = upsized.yield_estimate(n_samples=120, seed=1)
        print(f"  {scale:3.0f}x cell: read SNM "
              f"{cell.read_snm() * 1e3:5.0f} mV, sigma level "
              f"{yld['cell_sigma_level']:5.1f}, yield "
              f"{yld['array_yield'] * 100:5.1f} %, leakage "
              f"{upsized.total_leakage() * 1e6:6.1f} uW")
    print("\n  -> stability is recoverable, but only by giving back "
          "the density (and leakage) scaling promised.")


if __name__ == "__main__":
    main()
