"""The SWAN substrate-noise methodology (Fig. 10 of the paper).

Pipeline, exactly as section 4.3 describes it:

1. every standard cell is characterized a priori with an injection
   macromodel (:mod:`repro.substrate.injection`);
2. a gate-level (event-driven) simulation of the system provides the
   switching-event stream (:mod:`repro.digital.simulator`), replacing
   the paper's VHDL simulation;
3. the total substrate injection is the superposition of all switching
   cells' macromodel pulses at their floorplan positions;
4. the finite-difference substrate mesh propagates the injected
   currents to the sensitive analog node
   (:mod:`repro.substrate.mesh`).

The *reference* ("measured") waveform runs the same propagation with
the detailed per-event waveforms (shape-accurate, with per-event
jitter and supply-bounce ringing) -- standing in for the paper's
silicon measurement, which we cannot perform.  The experiment then
reports the same two numbers as Fig. 10: RMS error and peak-to-peak
error of SWAN vs reference over a 100 ns window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..digital.netlist import Netlist
from ..digital.simulator import (EventDrivenSimulator, SimulationResult,
                                 random_stimulus)
from ..digital.simulator_compiled import CompiledEventEngine, EventTrace
from ..perf.profile import timed
from .injection import (InjectionMacromodel, characterize_library)
from .mesh import SubstrateMesh, SubstrateProcess
from ..robust.rng import resolve_rng
from ..robust.errors import ModelDomainError
from ..robust.validate import check_count


@dataclass
class Floorplan:
    """Placement of digital instances on the die surface.

    Instances are arranged row-major on a regular grid inside the
    digital region; the analog sensor sits elsewhere on the die.
    """

    die_width: float
    die_height: float
    digital_region: Tuple[float, float, float, float]  # x1,y1,x2,y2
    sensor_xy: Tuple[float, float]

    def __post_init__(self) -> None:
        x1, y1, x2, y2 = self.digital_region
        if not (0 <= x1 < x2 <= self.die_width
                and 0 <= y1 < y2 <= self.die_height):
            raise ModelDomainError("digital region must lie inside the die")
        sx, sy = self.sensor_xy
        if not (0 <= sx <= self.die_width and 0 <= sy <= self.die_height):
            raise ModelDomainError("sensor must lie inside the die")

    def instance_positions(self, names: List[str]
                           ) -> Dict[str, Tuple[float, float]]:
        """Grid positions for every instance name."""
        x1, y1, x2, y2 = self.digital_region
        n = len(names)
        n_cols = max(int(math.ceil(math.sqrt(n))), 1)
        n_rows = int(math.ceil(n / n_cols))
        positions = {}
        for index, name in enumerate(names):
            col = index % n_cols
            row = index // n_cols
            positions[name] = (
                x1 + (x2 - x1) * (col + 0.5) / n_cols,
                y1 + (y2 - y1) * (row + 0.5) / max(n_rows, 1))
        return positions

    @classmethod
    def default(cls, die_width: float = 3e-3, die_height: float = 3e-3
                ) -> "Floorplan":
        """A typical mixed-signal floorplan: digital block lower-left,
        analog sensor upper-right."""
        return cls(
            die_width=die_width,
            die_height=die_height,
            digital_region=(0.1 * die_width, 0.1 * die_height,
                            0.6 * die_width, 0.6 * die_height),
            sensor_xy=(0.85 * die_width, 0.85 * die_height),
        )


@dataclass
class NoiseWaveform:
    """A sampled substrate-noise voltage at the sensor."""

    time: np.ndarray        # s
    voltage: np.ndarray     # V

    @property
    def rms(self) -> float:
        """RMS value [V]."""
        return float(np.sqrt(np.mean(self.voltage ** 2)))

    @property
    def peak_to_peak(self) -> float:
        """Peak-to-peak value [V]."""
        return float(self.voltage.max() - self.voltage.min())

    def resampled(self, time: np.ndarray) -> "NoiseWaveform":
        """Linear resampling onto another time axis."""
        return NoiseWaveform(
            time=time,
            voltage=np.interp(time, self.time, self.voltage))


class SwanSimulator:
    """Runs the SWAN flow on one netlist + floorplan.

    Parameters
    ----------
    netlist:
        The digital design (its node sets all cell characterization).
    floorplan:
        Die geometry and instance placement.
    mesh_resolution:
        Substrate mesh density (nodes per die edge).
    clock_frequency:
        Digital clock [Hz].
    process:
        Substrate stack description.
    guard_ring:
        Whether to surround the sensor with a grounded guard ring.
    """

    def __init__(self, netlist: Netlist, floorplan: Optional[Floorplan] = None,
                 mesh_resolution: int = 30,
                 clock_frequency: float = 50e6,
                 process: SubstrateProcess = SubstrateProcess(),
                 guard_ring: bool = False,
                 seed: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        if clock_frequency <= 0:
            raise ModelDomainError("clock_frequency must be positive")
        self.netlist = netlist
        self.floorplan = floorplan or Floorplan.default()
        self.clock_frequency = clock_frequency
        self.rng = resolve_rng(rng, seed=seed)
        self.mesh = SubstrateMesh(
            self.floorplan.die_width, self.floorplan.die_height,
            nx=mesh_resolution, ny=mesh_resolution, process=process)
        sx, sy = self.floorplan.sensor_xy
        if guard_ring:
            ring = 0.08 * self.floorplan.die_width
            self.mesh.add_guard_ring(sx - ring, sy - ring,
                                     sx + ring, sy + ring)
        self.sensor_node = self.mesh.node_at(sx, sy)
        self.macromodels = characterize_library(netlist.node)
        positions = self.floorplan.instance_positions(
            list(netlist.instances))
        self._instance_node = {
            name: self.mesh.node_at(*xy)
            for name, xy in positions.items()}
        self._cell_names = sorted({inst.cell.cell_type.name
                                   for inst in netlist.instances.values()})
        codes = {cell: k for k, cell in enumerate(self._cell_names)}
        # instance -> (cell-type code, mesh node): one lookup per event
        # in the vectorized superposition.
        self._instance_inject = {
            name: (codes[inst.cell.cell_type.name],
                   self._instance_node[name])
            for name, inst in netlist.instances.items()}
        # Gate-indexed twins of _instance_inject, in netlist insertion
        # order: an EventTrace's source_indices gather against these
        # without touching per-instance Python objects.
        insts = list(netlist.instances.values())
        self._code_by_gate = np.array(
            [codes[inst.cell.cell_type.name] for inst in insts],
            dtype=np.int64)
        self._node_by_gate = np.array(
            [self._instance_node[inst.name] for inst in insts],
            dtype=np.int64)
        self._impedance = self.mesh.transfer_impedance_to(
            self.sensor_node)

    # --- event stream ----------------------------------------------------

    def simulate_activity(self, n_cycles: int = 5,
                          stimulus_seed: int = 0,
                          engine: str = "scalar"
                          ) -> Union[SimulationResult, EventTrace]:
        """Run the gate-level simulation producing switching events.

        ``engine="compiled"`` uses the vectorized
        :class:`CompiledEventEngine` and returns an
        :class:`EventTrace` (bit-identical event stream, columnar
        container) -- the right choice for SoC-scale netlists.
        """
        if engine not in ("scalar", "compiled"):
            raise ModelDomainError(
                f"engine must be 'scalar' or 'compiled', got {engine!r}")
        stimulus = random_stimulus(self.netlist, n_cycles,
                                   seed=stimulus_seed,
                                   held_high=("en", "enable"))
        if engine == "compiled":
            return CompiledEventEngine(
                self.netlist,
                clock_period=1.0 / self.clock_frequency
            ).run(stimulus, n_cycles)
        simulator = EventDrivenSimulator(
            self.netlist, clock_period=1.0 / self.clock_frequency)
        return simulator.run(stimulus, n_cycles)

    # --- injection + propagation ---------------------------------------------

    def _time_axis(self, duration: float, dt: float) -> np.ndarray:
        return np.arange(0.0, duration, dt)

    @timed("swan.superposition")
    def injected_currents(self, result: Union[SimulationResult,
                                              EventTrace],
                          dt: float = 25e-12,
                          detailed: bool = False,
                          duration: Optional[float] = None,
                          vectorized: bool = True,
                          chunk_events: Optional[int] = None
                          ) -> Tuple[np.ndarray, Dict[int, np.ndarray]]:
        """Per-mesh-node injected current waveforms.

        Returns (time axis, {mesh node: current [A] over time}).  With
        ``detailed`` the per-event detailed waveforms (with jitter and
        ringing) are used instead of the macromodels.

        ``result`` may be a scalar :class:`SimulationResult` or a
        columnar :class:`EventTrace`; the trace path gathers cell
        codes and mesh nodes straight from the compiled arrays, so no
        per-event Python object exists anywhere on it.
        ``chunk_events`` bounds the size of the per-event index
        matrices by superposing at most that many events at a time
        (identical jitter stream; the accumulated waveform matches the
        unchunked one to floating-point rounding).

        The default path superposes all events of a cell type in one
        scatter per type; ``vectorized=False`` runs the original
        per-event accumulation loop (kept as the oracle -- both paths
        consume identical RNG variates, so they agree to
        floating-point rounding).
        """
        if not vectorized:
            if isinstance(result, EventTrace):
                result = result.to_result()
            return self._injected_currents_scalar(
                result, dt=dt, detailed=detailed, duration=duration)
        duration = duration if duration is not None else result.duration
        time = self._time_axis(duration, dt)
        n_times = time.size
        if isinstance(result, EventTrace):
            placed_idx = np.flatnonzero(result.source_indices >= 0)
            if placed_idx.size == 0:
                return time, {}
            all_starts = (result.times[placed_idx] / dt).astype(int)
            keep = all_starts < n_times
            if not keep.any():
                return time, {}
            start_arr = all_starts[keep]
            sources = result.source_indices[placed_idx[keep]]
            code_arr = self._code_by_gate[sources]
            node_arr = self._node_by_gate[sources]
        else:
            # Filter events exactly as the scalar loop does, preserving
            # event order (the detailed path's jitter stream depends on
            # it).
            placed = [event for event in result.events
                      if event.instance is not None]
            if not placed:
                return time, {}
            all_starts = (np.array([event.time for event in placed])
                          / dt).astype(int)
            keep = all_starts < n_times
            if not keep.any():
                return time, {}
            start_arr = all_starts[keep]
            pairs = np.array([self._instance_inject[event.instance]
                              for event, kept in zip(placed, keep)
                              if kept])
            code_arr = pairs[:, 0]
            node_arr = pairs[:, 1]
        jitter = None
        if detailed:
            # One draw per kept event, in event order -- the same
            # variates the scalar loop consumes inside
            # ``detailed_waveform``.
            jitter = 1.0 + 0.05 * self.rng.standard_normal(
                start_arr.size)
        unique_nodes, node_rows = np.unique(node_arr,
                                            return_inverse=True)
        currents = np.zeros((unique_nodes.size, n_times))
        if chunk_events is not None:
            chunk_events = check_count("chunk_events", chunk_events)
            for lo in range(0, start_arr.size, chunk_events):
                hi = lo + chunk_events
                self._superpose(
                    start_arr[lo:hi], code_arr[lo:hi],
                    node_rows[lo:hi],
                    None if jitter is None else jitter[lo:hi],
                    detailed, currents, n_times, dt)
        else:
            self._superpose(start_arr, code_arr, node_rows, jitter,
                            detailed, currents, n_times, dt)
        return time, {int(node): currents[k]
                      for k, node in enumerate(unique_nodes)}

    def _superpose(self, start_arr: np.ndarray, code_arr: np.ndarray,
                   node_rows: np.ndarray, jitter: Optional[np.ndarray],
                   detailed: bool, currents: np.ndarray,
                   n_times: int, dt: float) -> None:
        """Accumulate one batch of events into the currents matrix."""
        flat_parts: List[np.ndarray] = []
        value_parts: List[np.ndarray] = []
        for code in np.unique(code_arr):
            model = self.macromodels[self._cell_names[code]]
            span = max(int(4.0 * model.duration / dt) + 2, 4)
            local_t = np.arange(span) * dt
            selected = code_arr == code
            cell_starts = start_arr[selected]
            if detailed:
                # The detailed waveform is linear in its jitter
                # factor, so each event is a scaled copy of one unit
                # pulse: superposition is either a weighted scatter of
                # that pulse or a convolution of the jitter-weighted
                # impulse train with it.
                pulse = model.detailed_waveform(local_t)
                weights = jitter[selected]
            else:
                pulse = model.macromodel_waveform(local_t)
                weights = np.ones(cell_starts.size)
            # Two equivalent superpositions; pick the cheaper one.
            # The scatter touches events*span samples; the FFT costs
            # ~rows*T*log2(T), which only pays off for very dense
            # event trains relative to the pulse span.
            cell_nodes = np.unique(node_rows[selected])
            scatter_ops = cell_starts.size * span
            fft_ops = (cell_nodes.size * n_times
                       * max(math.log2(n_times), 1.0))
            if scatter_ops <= fft_ops:
                # Defer: all sparse cell types merge into ONE global
                # bincount at the end (per-type full-grid buffers are
                # what made the first convolution attempt slow).
                index = cell_starts[:, None] + np.arange(span)
                values = weights[:, None] * pulse
                values = np.where(index < n_times, values, 0.0)
                index = np.minimum(index, n_times - 1)
                rows = node_rows[selected]
                flat_parts.append(
                    (rows[:, None] * n_times + index).ravel())
                value_parts.append(values.ravel())
            else:
                # Dense event train: FFT-convolve the impulse train
                # on the rows this cell type actually drives.
                from scipy.signal import fftconvolve
                rows = np.searchsorted(cell_nodes,
                                       node_rows[selected])
                impulses = np.bincount(
                    rows * n_times + cell_starts, weights=weights,
                    minlength=cell_nodes.size * n_times
                ).reshape(cell_nodes.size, n_times)
                currents[cell_nodes] += fftconvolve(
                    impulses, pulse[None, :], axes=1)[:, :n_times]
        if flat_parts:
            currents += np.bincount(
                np.concatenate(flat_parts),
                weights=np.concatenate(value_parts),
                minlength=currents.size).reshape(currents.shape)

    def _injected_currents_scalar(self, result: SimulationResult,
                                  dt: float = 25e-12,
                                  detailed: bool = False,
                                  duration: Optional[float] = None
                                  ) -> Tuple[np.ndarray,
                                             Dict[int, np.ndarray]]:
        """Reference per-event accumulation loop (numerical oracle)."""
        duration = duration if duration is not None else result.duration
        time = self._time_axis(duration, dt)
        node_currents: Dict[int, np.ndarray] = {}
        # Pre-sample each cell type's pulse once for the macromodel
        # path (identical for every event of that cell).
        pulse_cache: Dict[str, np.ndarray] = {}
        for event in result.events:
            if event.instance is None:
                continue
            instance = self.netlist.instances[event.instance]
            cell_name = instance.cell.cell_type.name
            model = self.macromodels[cell_name]
            start = int(event.time / dt)
            if start >= time.size:
                continue
            span = max(int(4.0 * model.duration / dt) + 2, 4)
            local_t = (np.arange(span) * dt)
            if detailed:
                pulse = model.detailed_waveform(local_t, rng=self.rng)
            else:
                pulse = pulse_cache.get(cell_name)
                if pulse is None:
                    pulse = model.macromodel_waveform(local_t)
                    pulse_cache[cell_name] = pulse
            mesh_node = self._instance_node[event.instance]
            series = node_currents.get(mesh_node)
            if series is None:
                series = np.zeros(time.size)
                node_currents[mesh_node] = series
            stop = min(start + span, time.size)
            series[start:stop] += pulse[:stop - start]
        return time, node_currents

    def propagate(self, time: np.ndarray,
                  node_currents: Dict[int, np.ndarray]) -> NoiseWaveform:
        """Quasi-static propagation to the sensor node.

        One matrix-vector product of the stacked per-node currents
        against the transfer-impedance row replaces the per-node
        accumulation loop.
        """
        if not node_currents:
            return NoiseWaveform(time=time,
                                 voltage=np.zeros(time.size))
        nodes = np.fromiter(node_currents.keys(), dtype=int,
                            count=len(node_currents))
        matrix = np.vstack(list(node_currents.values()))
        return NoiseWaveform(time=time,
                             voltage=self._impedance[nodes] @ matrix)

    @timed("swan.stream")
    def stream_noise(self, trace: EventTrace, dt: float = 25e-12,
                     detailed: bool = False,
                     duration: Optional[float] = None,
                     chunk_events: int = 100_000) -> NoiseWaveform:
        """Stream a columnar trace to the sensor waveform, chunkwise.

        Million-event traces flow through in bounded memory: each
        chunk of at most ``chunk_events`` events is superposed and
        propagated through the cached transfer-impedance row, and only
        the accumulated sensor voltage persists between chunks.  The
        jitter stream is consumed in event order across chunks, so the
        result matches the one-shot path to floating-point rounding.
        """
        chunk_events = check_count("chunk_events", chunk_events)
        duration = duration if duration is not None else trace.duration
        time = self._time_axis(duration, dt)
        voltage = np.zeros(time.size)
        for chunk in trace.chunks(chunk_events):
            _, currents = self.injected_currents(
                chunk, dt=dt, detailed=detailed, duration=duration)
            if currents:
                voltage += self.propagate(time, currents).voltage
        return NoiseWaveform(time=time, voltage=voltage)

    def node_potentials(self, node_currents: Dict[int, np.ndarray],
                        t_indices: Sequence[int]) -> np.ndarray:
        """Full-mesh substrate potentials at selected time bins.

        Builds one ``(n_nodes + 1, k)`` right-hand-side matrix from
        the injected-current waveforms and solves all ``k`` time bins
        against the mesh's cached factorization in a single batched
        call -- the noise-map view of a streamed activity trace.
        """
        t_indices = np.asarray(t_indices, dtype=int)
        if t_indices.ndim != 1 or t_indices.size == 0:
            raise ModelDomainError(
                "t_indices must be a non-empty 1-D index sequence")
        rhs = np.zeros((self.mesh.n_nodes + 1, t_indices.size))
        for node, series in node_currents.items():
            rhs[node] = np.asarray(series)[t_indices]
        return self.mesh.solve(rhs)

    def run(self, n_cycles: int = 5, dt: float = 25e-12,
            detailed: bool = False,
            stimulus_seed: int = 0,
            activity: Optional[Union[SimulationResult,
                                     EventTrace]] = None,
            duration: Optional[float] = None,
            engine: str = "scalar") -> NoiseWaveform:
        """Full flow: activity -> injection -> propagation.

        ``duration`` truncates/extends the output time axis (defaults
        to the simulated activity's span).  ``engine="compiled"``
        extracts activity with the vectorized event engine.
        """
        if activity is None:
            activity = self.simulate_activity(n_cycles, stimulus_seed,
                                              engine=engine)
        time, currents = self.injected_currents(
            activity, dt=dt, detailed=detailed, duration=duration)
        return self.propagate(time, currents)


@dataclass(frozen=True)
class SwanComparison:
    """SWAN-vs-reference accuracy report (the Fig. 10 numbers)."""

    swan: NoiseWaveform
    reference: NoiseWaveform

    @property
    def rms_error(self) -> float:
        """Relative RMS error of the SWAN waveform."""
        ref = self.reference.rms
        if ref <= 0:
            return 0.0
        return abs(self.swan.rms - ref) / ref

    @property
    def peak_to_peak_error(self) -> float:
        """Relative peak-to-peak error of the SWAN waveform."""
        ref = self.reference.peak_to_peak
        if ref <= 0:
            return 0.0
        return abs(self.swan.peak_to_peak - ref) / ref

    def passes_paper_accuracy(self) -> bool:
        """Paper's Fig. 10 claim: RMS within 20 %, p2p within 4 %."""
        return self.rms_error <= 0.20 and self.peak_to_peak_error <= 0.04


def run_swan_experiment(netlist: Netlist,
                        floorplan: Optional[Floorplan] = None,
                        n_cycles: int = 5,
                        clock_frequency: float = 50e6,
                        mesh_resolution: int = 30,
                        dt: float = 25e-12,
                        seed: int = 0) -> SwanComparison:
    """Run the Fig. 10 experiment: SWAN vs detailed reference.

    Both paths share the same switching-activity stream (as in the
    paper, where the same chip both runs SWAN's netlist and is
    measured) and the same substrate mesh; they differ only in the
    injection waveform model.
    """
    simulator = SwanSimulator(
        netlist, floorplan,
        mesh_resolution=mesh_resolution,
        clock_frequency=clock_frequency, seed=seed)
    activity = simulator.simulate_activity(n_cycles, stimulus_seed=seed)
    time, macro_currents = simulator.injected_currents(
        activity, dt=dt, detailed=False)
    _, detailed_currents = simulator.injected_currents(
        activity, dt=dt, detailed=True)
    return SwanComparison(
        swan=simulator.propagate(time, macro_currents),
        reference=simulator.propagate(time, detailed_currents),
    )
