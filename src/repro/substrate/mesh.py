"""Finite-difference substrate model.

"For the noise propagation through the substrate, typically finite
difference methods or boundary element methods are used to solve for
the substrate potential distribution due to injected noise sources"
(section 4.3).  This module discretizes an EPI-type substrate (the
process of the paper's Fig. 10 SoC) as a resistive mesh:

* a thin high-resistivity epi layer carries lateral currents between
  surface nodes;
* the low-resistivity bulk underneath acts as a single *common node*
  every surface node connects to vertically -- the dominant coupling
  path of EPI wafers (noise goes down into the bulk under the digital
  block and comes back up under the analog block);
* the bulk reaches ground through a finite backside (die-attach)
  impedance, which is what makes the coupling non-zero;
* contacts (injectors, sensors, guard rings) attach at surface nodes.

The mesh is resistive (quasi-static): the substrate RC corner sits in
the tens of GHz, far above digital switching spectra, which is the
standard SWAN-era approximation.  Transfer impedances to a sensor are
obtained with *one* sparse solve via reciprocity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu
from ..robust.errors import ModelDomainError, ModelIndexError
from ..robust.validate import check_finite, check_positive


@dataclass(frozen=True)
class SubstrateProcess:
    """Electrical description of the substrate stack.

    Parameters
    ----------
    epi_resistivity:
        Epi-layer resistivity [ohm*m] (high-resistivity: ~0.1).
    epi_thickness:
        Epi-layer thickness [m].
    bulk_resistivity:
        Heavily doped bulk resistivity [ohm*m] (~1e-4: EPI-type).
    bulk_thickness:
        Bulk thickness to the backside contact [m].
    backplane_grounded:
        Whether the die backside is attached to ground (a paddle).
    backside_resistance:
        Die-attach + package impedance from the bulk to true ground
        [ohm]; only meaningful when the backplane is grounded.
    """

    epi_resistivity: float = 0.1
    epi_thickness: float = 5e-6
    bulk_resistivity: float = 1e-4
    bulk_thickness: float = 300e-6
    backplane_grounded: bool = True
    backside_resistance: float = 2.0

    def __post_init__(self) -> None:
        check_positive("epi_resistivity", self.epi_resistivity)
        check_positive("epi_thickness", self.epi_thickness)
        check_positive("bulk_resistivity", self.bulk_resistivity)
        check_positive("bulk_thickness", self.bulk_thickness)
        check_positive("backside_resistance", self.backside_resistance)


class SubstrateMesh:
    """Uniform 2-D surface mesh of a die's substrate.

    Node (i, j) sits at the centre of surface tile (i, j); lateral
    sheet conductances connect 4-neighbours, and each node has a
    vertical conductance to the shared *bulk node* (through epi +
    bulk), which in turn reaches ground through the backside
    impedance.  Guard-ring/substrate-contact nodes add a strong local
    conductance to ground (the board ground of their supply rail).
    """

    def __init__(self, die_width: float, die_height: float,
                 nx: int = 40, ny: int = 40,
                 process: SubstrateProcess = SubstrateProcess()):
        check_positive("die_width", die_width)
        check_positive("die_height", die_height)
        if nx < 2 or ny < 2:
            raise ModelDomainError("mesh must be at least 2x2")
        self.die_width = die_width
        self.die_height = die_height
        self.nx = nx
        self.ny = ny
        self.process = process
        self.dx = die_width / nx
        self.dy = die_height / ny
        self._extra_ground: Dict[int, float] = {}
        self._solver = None

    # --- indexing -----------------------------------------------------------

    def node_index(self, i: int, j: int) -> int:
        """Flat index of mesh node (i, j)."""
        if not (0 <= i < self.nx and 0 <= j < self.ny):
            raise ModelIndexError(f"node ({i}, {j}) outside mesh "
                             f"{self.nx}x{self.ny}")
        return j * self.nx + i

    def node_at(self, x: float, y: float) -> int:
        """Flat index of the node containing chip position (x, y)."""
        i = min(max(int(x / self.dx), 0), self.nx - 1)
        j = min(max(int(y / self.dy), 0), self.ny - 1)
        return self.node_index(i, j)

    def position_of(self, index: int) -> Tuple[float, float]:
        """Chip coordinates of a node centre."""
        j, i = divmod(index, self.nx)
        return ((i + 0.5) * self.dx, (j + 0.5) * self.dy)

    @property
    def n_nodes(self) -> int:
        """Surface mesh nodes (the bulk node is index ``n_nodes``)."""
        return self.nx * self.ny

    @property
    def bulk_node(self) -> int:
        """Index of the shared bulk node."""
        return self.nx * self.ny

    # --- conductances ----------------------------------------------------------

    def _lateral_conductance(self, horizontal: bool) -> float:
        """Epi sheet conductance between neighbouring nodes [S]."""
        p = self.process
        sheet_resistance = p.epi_resistivity / p.epi_thickness  # ohm/sq
        if horizontal:
            squares = self.dx / self.dy
        else:
            squares = self.dy / self.dx
        return 1.0 / (sheet_resistance * squares)

    def _vertical_conductance(self) -> float:
        """Per-node conductance from the surface to the bulk node [S]."""
        p = self.process
        area = self.dx * self.dy
        resistance = (p.epi_resistivity * p.epi_thickness
                      + p.bulk_resistivity * p.bulk_thickness) / area
        return 1.0 / resistance

    def _backside_conductance(self) -> float:
        """Bulk-node-to-ground conductance [S]."""
        p = self.process
        if not p.backplane_grounded:
            return 1e-9
        return 1.0 / p.backside_resistance

    def add_ground_contact(self, x: float, y: float,
                           resistance: float = 10.0) -> int:
        """Attach a substrate contact / guard ring node to ground.

        Returns the node index.  Invalidate any cached factorization.
        """
        if resistance <= 0:
            raise ModelDomainError("contact resistance must be positive")
        node = self.node_at(x, y)
        self._extra_ground[node] = (self._extra_ground.get(node, 0.0)
                                    + 1.0 / resistance)
        self._solver = None
        return node

    def add_guard_ring(self, x1: float, y1: float, x2: float, y2: float,
                       resistance_per_contact: float = 10.0) -> List[int]:
        """Ground every boundary node of the box [(x1,y1),(x2,y2)]."""
        nodes = []
        steps = max(int((x2 - x1) / self.dx), 1)
        for k in range(steps + 1):
            x = x1 + (x2 - x1) * k / steps
            nodes.append(self.add_ground_contact(
                x, y1, resistance_per_contact))
            nodes.append(self.add_ground_contact(
                x, y2, resistance_per_contact))
        steps = max(int((y2 - y1) / self.dy), 1)
        for k in range(steps + 1):
            y = y1 + (y2 - y1) * k / steps
            nodes.append(self.add_ground_contact(
                x1, y, resistance_per_contact))
            nodes.append(self.add_ground_contact(
                x2, y, resistance_per_contact))
        return sorted(set(nodes))

    # --- system assembly and solving ----------------------------------------------

    def conductance_matrix(self) -> sparse.csc_matrix:
        """Assemble the nodal conductance matrix G (SPD).

        System size is ``n_nodes + 1``: surface nodes plus the shared
        bulk node.
        """
        n = self.n_nodes
        size = n + 1
        bulk = self.bulk_node
        g_h = self._lateral_conductance(horizontal=True)
        g_v_lat = self._lateral_conductance(horizontal=False)
        g_down = self._vertical_conductance()
        # Edge list built by array slicing: horizontal neighbours,
        # vertical neighbours, and every surface node down to the
        # shared bulk node.  Duplicate (row, col) entries are summed
        # by the sparse constructor, which realises the stamps.
        index = np.arange(n).reshape(self.ny, self.nx)
        edge_a = np.concatenate([index[:, :-1].ravel(),
                                 index[:-1, :].ravel(),
                                 index.ravel()])
        edge_b = np.concatenate([index[:, 1:].ravel(),
                                 index[1:, :].ravel(),
                                 np.full(n, bulk)])
        edge_g = np.concatenate([
            np.full(self.ny * (self.nx - 1), g_h),
            np.full((self.ny - 1) * self.nx, g_v_lat),
            np.full(n, g_down)])
        # Grounded terms go on the diagonal only.
        diag = np.zeros(size)
        diag[bulk] += self._backside_conductance()
        for node, g in self._extra_ground.items():
            diag[node] += g
        every = np.arange(size)
        rows = np.concatenate([edge_a, edge_b, edge_a, edge_b, every])
        cols = np.concatenate([edge_a, edge_b, edge_b, edge_a, every])
        vals = np.concatenate([edge_g, edge_g, -edge_g, -edge_g, diag])
        matrix = sparse.csc_matrix(
            (vals, (rows, cols)), shape=(size, size))
        return matrix

    def solve(self, currents: np.ndarray) -> np.ndarray:
        """Node potentials [V] for injected current vector(s) [A].

        ``currents`` may be 1-D -- length ``n_nodes`` (surface only)
        or ``n_nodes + 1`` (including the bulk node) -- or a 2-D
        ``(n_nodes, k)`` / ``(n_nodes + 1, k)`` matrix of ``k``
        independent right-hand sides (e.g. one per time bin of a
        streamed event trace).  All columns reuse the one cached LU
        factorization.  The returned array matches the input's
        dimensionality and always includes the bulk node as its last
        row.
        """
        currents = np.asarray(currents, dtype=float)
        if currents.ndim not in (1, 2):
            raise ModelDomainError(
                f"currents must be 1-D or 2-D, got shape "
                f"{currents.shape}")
        check_finite("currents", currents)
        if currents.shape[0] == self.n_nodes:
            pad = np.zeros((1,) + currents.shape[1:])
            currents = np.concatenate([currents, pad], axis=0)
        if currents.shape[0] != self.n_nodes + 1:
            raise ModelDomainError(
                f"currents must have {self.n_nodes} or "
                f"{self.n_nodes + 1} rows, got shape {currents.shape}")
        if self._solver is None:
            self._solver = splu(self.conductance_matrix())
        return self._solver.solve(currents)

    def transfer_impedance_to(self, sensor: int) -> np.ndarray:
        """Transfer impedance Z[node -> sensor] for every node [ohm].

        By reciprocity of the resistive network, injecting 1 A at the
        *sensor* and reading all node voltages gives the impedance
        from every node to the sensor in a single solve -- the trick
        that makes SWAN-scale analysis cheap.
        """
        rhs = np.zeros(self.n_nodes + 1)
        rhs[sensor] = 1.0
        return self.solve(rhs)

    def spreading_impedance(self, node: int) -> float:
        """Self (spreading) impedance of one node [ohm]."""
        return float(self.transfer_impedance_to(node)[node])


def isolation_vs_distance(mesh: SubstrateMesh, injector_xy: Tuple[float, float],
                          distances: Sequence[float]
                          ) -> List[Dict[str, float]]:
    """Coupling attenuation vs injector-sensor separation.

    The classic EPI-substrate result: attenuation grows with distance
    until the common backplane path dominates, after which moving
    further away no longer helps (isolation saturates).
    """
    ix, iy = injector_xy
    injector = mesh.node_at(ix, iy)
    rows = []
    for distance in distances:
        sensor = mesh.node_at(ix + distance, iy)
        z = mesh.transfer_impedance_to(sensor)
        rows.append({
            "distance_um": distance * 1e6,
            "transfer_ohm": float(z[injector]),
            "self_ohm": float(z[sensor]),
            "coupling": float(z[injector]) / float(z[sensor]),
        })
    return rows
