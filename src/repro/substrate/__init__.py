"""Substrate-noise analysis: FD mesh, injection macromodels, SWAN."""

from .mesh import (
    SubstrateMesh,
    SubstrateProcess,
    isolation_vs_distance,
)
from .injection import (
    INJECTION_FRACTION,
    InjectionMacromodel,
    characterize_cell,
    characterize_library,
)
from .comparison import (
    EPI_PROCESS,
    HIGH_OHMIC_PROCESS,
    IsolationStudy,
    compare_substrates,
    isolation_knob_ranking,
)
from .swan import (
    Floorplan,
    NoiseWaveform,
    SwanComparison,
    SwanSimulator,
    run_swan_experiment,
)

__all__ = [
    "SubstrateMesh", "SubstrateProcess", "isolation_vs_distance",
    "INJECTION_FRACTION", "InjectionMacromodel", "characterize_cell",
    "characterize_library",
    "EPI_PROCESS", "HIGH_OHMIC_PROCESS", "IsolationStudy",
    "compare_substrates", "isolation_knob_ranking",
    "Floorplan", "NoiseWaveform", "SwanComparison", "SwanSimulator",
    "run_swan_experiment",
]
