"""Standard-cell substrate-injection macromodels (the SWAN library).

SWAN "a-priori characteriz[es] every cell in a digital standard cell
library with a macromodel that includes the current injected in the
substrate due to an input transition" (section 4.3).  Two models per
cell are provided:

* a **detailed** waveform -- the stand-in for the transistor-level
  characterization run (and, summed over a whole design, for the
  paper's *measurement*): an asymmetric double-exponential with
  supply-bounce ringing;
* the **macromodel** -- SWAN's compact triangular pulse matched in
  *charge* and *peak current* to the detailed waveform.

The difference between the two propagated waveforms is precisely the
methodology error the Fig. 10 experiment quantifies (RMS <= 20 %,
peak-to-peak <= 4 %).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..perf.cache import memoized
from ..technology.node import TechnologyNode
from ..digital.gates import CELL_TYPES, Cell, make_cell


#: Fraction of a cell's switched charge that couples into the substrate
#: (junction displacement + supply bounce through substrate ties).
INJECTION_FRACTION = 0.08


@dataclass(frozen=True)
class InjectionMacromodel:
    """Characterized injection behaviour of one library cell.

    Parameters
    ----------
    cell_name:
        Library cell this model describes.
    charge:
        Total injected charge per output transition [C].
    duration:
        Injection pulse width [s].
    peak_current:
        Peak injected current [A].
    ringing_frequency / damping:
        Parameters of the detailed waveform's supply-bounce ringing.
    """

    cell_name: str
    charge: float
    duration: float
    peak_current: float
    ringing_frequency: float
    damping: float

    def macromodel_waveform(self, t: np.ndarray) -> np.ndarray:
        """SWAN triangular pulse [A] on time axis ``t`` [s] (event at 0).

        Triangle with the characterized peak current; its base is set
        by charge conservation (area = charge).
        """
        base = 2.0 * self.charge / self.peak_current
        rise = base / 3.0
        fall = base - rise
        wave = np.zeros_like(t)
        rising = (t >= 0) & (t < rise)
        falling = (t >= rise) & (t < base)
        wave[rising] = self.peak_current * t[rising] / rise
        wave[falling] = self.peak_current * (base - t[falling]) / fall
        return wave

    def detailed_waveform(self, t: np.ndarray,
                          rng: Optional[np.random.Generator] = None
                          ) -> np.ndarray:
        """'Transistor-level' pulse [A]: double-exponential + ringing.

        With ``rng`` given, pulse parameters jitter a few percent per
        event, as real per-instance waveforms do.
        """
        tau_rise = self.duration * 0.15
        tau_fall = self.duration * 0.45
        jitter = 1.0
        if rng is not None:
            jitter = 1.0 + 0.05 * float(rng.standard_normal())
        # Normalize the double exponential to the characterized charge.
        norm_area = tau_fall - tau_rise * tau_fall / (tau_rise + tau_fall)
        amplitude = self.charge * jitter / norm_area
        pulse = np.where(
            t >= 0,
            amplitude * (np.exp(-t / tau_fall)
                         - np.exp(-t / tau_rise)),
            0.0)
        # Supply-bounce ringing rides on the pulse (zero net charge).
        omega = 2.0 * math.pi * self.ringing_frequency
        ringing = np.where(
            t >= 0,
            0.3 * amplitude * np.exp(-self.damping * t)
            * np.sin(omega * t),
            0.0)
        return pulse + ringing


@memoized("injection.characterize_cell")
def characterize_cell(node: TechnologyNode, cell_name: str,
                      drive: float = 1.0,
                      injection_fraction: float = INJECTION_FRACTION
                      ) -> InjectionMacromodel:
    """A-priori characterization of one library cell in ``node``.

    The injected charge is a fixed fraction of the cell's switched
    charge (C_switched * V_DD), scaled by the cell's internal-node
    count; the pulse width tracks the cell delay.

    Results are memoized per ``(node, cell, drive, fraction)`` -- the
    characterization is deterministic and nodes are frozen, so sweeps
    that re-instantiate simulators (every
    :class:`~repro.substrate.swan.SwanSimulator`) reuse the library
    instead of re-deriving it.  The returned macromodel is immutable.
    """
    cell = make_cell(cell_name, node, drive)
    load = 4.0 * cell.input_capacitance
    switched_charge = (load + cell.output_parasitic) * node.vdd
    internal_factor = 1.0 + 0.15 * (cell.cell_type.internal_nodes - 1)
    charge = injection_fraction * switched_charge * internal_factor
    duration = max(cell.delay(load) * 2.0, 1e-12)
    provisional = InjectionMacromodel(
        cell_name=cell_name,
        charge=charge,
        duration=duration,
        peak_current=2.0 * charge / duration,
        ringing_frequency=min(2.0 / duration, 5e9),
        damping=3.0 / duration,
    )
    # SWAN matches the macromodel's peak to the characterization run:
    # evaluate the detailed (jitter-free) waveform and take its peak.
    probe_t = np.linspace(0.0, 4.0 * duration, 512)
    detailed_peak = float(provisional.detailed_waveform(probe_t).max())
    return InjectionMacromodel(
        cell_name=cell_name,
        charge=charge,
        duration=duration,
        peak_current=max(detailed_peak, 1e-15),
        ringing_frequency=provisional.ringing_frequency,
        damping=provisional.damping,
    )


def characterize_library(node: TechnologyNode,
                         injection_fraction: float = INJECTION_FRACTION
                         ) -> Dict[str, InjectionMacromodel]:
    """Characterize every cell in the library for ``node``.

    Each cell comes from the :func:`characterize_cell` memo cache; the
    returned dict itself is fresh per call, so callers may extend it
    without polluting the cache.
    """
    return {name: characterize_cell(node, name,
                                    injection_fraction=injection_fraction)
            for name in CELL_TYPES}
