"""Substrate-type trade study: EPI vs high-ohmic bulk.

The paper's reference [11] (Donnay & Gielen's substrate-noise book)
devotes chapters to the two substrate families:

* **EPI-type** (thin high-ohmic epi on a heavily doped bulk): the
  bulk is a die-wide equipotential, so coupling is distance-
  *independent* beyond ~4 epi thicknesses, guard rings help little,
  and everything hinges on grounding the bulk well.
* **High-ohmic** (uniform lightly doped substrate): coupling decays
  with distance, guard rings intercept lateral surface currents and
  work well.

This module runs both through the same mesh and quantifies the
difference -- the floorplanning decision table for the paper's
section-4.3 problem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .mesh import SubstrateMesh, SubstrateProcess

#: An EPI-type stack (the paper's Fig. 10 SoC process family).
EPI_PROCESS = SubstrateProcess(
    epi_resistivity=0.1,
    epi_thickness=5e-6,
    bulk_resistivity=1e-4,
    bulk_thickness=300e-6,
    backplane_grounded=True,
    backside_resistance=2.0,
)

#: A uniform high-ohmic substrate: the whole wafer conducts laterally
#: ("epi" = the full thickness) and there is no equipotential bulk --
#: the backside is left unconnected, as in cost-driven packages.
HIGH_OHMIC_PROCESS = SubstrateProcess(
    # The conduction happens in the top ~100 um of the wafer (set as
    # the lateral layer); there is no low-ohmic hub underneath, which
    # the model expresses as an effectively insulating "bulk" and a
    # floating backside.
    epi_resistivity=0.2,
    epi_thickness=100e-6,
    bulk_resistivity=1e3,
    bulk_thickness=200e-6,
    backplane_grounded=False,
)


@dataclass(frozen=True)
class IsolationStudy:
    """Coupling of one (injector, sensor, mitigation) combination."""

    substrate: str
    mitigation: str
    transfer_ohm: float

    def isolation_db_vs(self, baseline: "IsolationStudy") -> float:
        """Isolation gained relative to ``baseline`` [dB]."""
        if self.transfer_ohm <= 0:
            return math.inf
        return 20.0 * math.log10(baseline.transfer_ohm
                                 / self.transfer_ohm)


def _study(process: SubstrateProcess, label: str, die: float,
           injector_xy: Tuple[float, float],
           sensor_xy: Tuple[float, float],
           mitigation: str, nx: int = 24) -> IsolationStudy:
    mesh = SubstrateMesh(die, die, nx=nx, ny=nx, process=process)
    # Both substrates carry the standard-cell substrate ties: a
    # coarse grid of surface contacts to the ground rails.  On a
    # high-ohmic wafer these taps are the *only* ground and localize
    # the noise; on EPI the bulk shorts past them.
    n_taps = 5
    for i in range(n_taps):
        for j in range(n_taps):
            mesh.add_ground_contact(
                die * (i + 0.5) / n_taps, die * (j + 0.5) / n_taps,
                resistance=30.0)
    if mitigation == "guard-ring":
        sx, sy = sensor_xy
        ring = 0.08 * die
        mesh.add_guard_ring(sx - ring, sy - ring, sx + ring, sy + ring,
                            resistance_per_contact=1.0)
    injector = mesh.node_at(*injector_xy)
    sensor = mesh.node_at(*sensor_xy)
    transfer = float(mesh.transfer_impedance_to(sensor)[injector])
    return IsolationStudy(substrate=label, mitigation=mitigation,
                          transfer_ohm=transfer)


def compare_substrates(die: float = 3e-3,
                       injector_xy: Optional[Tuple[float, float]] = None,
                       near_xy: Optional[Tuple[float, float]] = None,
                       far_xy: Optional[Tuple[float, float]] = None,
                       nx: int = 24) -> List[Dict[str, float]]:
    """The EPI-vs-high-ohmic decision table.

    For each substrate: baseline coupling (near sensor), what distance
    buys (far sensor), and what a guard ring buys -- the three knobs a
    mixed-signal floorplanner actually has.
    """
    # Default positions sit at midpoints of the substrate-tap grid
    # (taps at odd tenths of the die edge), so every probe point is
    # equidistant from its surrounding taps and the comparison does
    # not alias against the tap pattern.
    injector_xy = injector_xy or (0.2 * die, 0.2 * die)
    near_xy = near_xy or (0.4 * die, 0.4 * die)
    far_xy = far_xy or (0.8 * die, 0.8 * die)
    rows = []
    for label, process in (("epi", EPI_PROCESS),
                           ("high-ohmic", HIGH_OHMIC_PROCESS)):
        base = _study(process, label, die, injector_xy, near_xy,
                      "none", nx)
        distance = _study(process, label, die, injector_xy, far_xy,
                          "none", nx)
        ring = _study(process, label, die, injector_xy, near_xy,
                      "guard-ring", nx)
        rows.append({
            "substrate": label,
            "baseline_ohm": base.transfer_ohm,
            "distance_gain_db": distance.isolation_db_vs(base),
            "guard_ring_gain_db": ring.isolation_db_vs(base),
        })
    return rows


def isolation_knob_ranking(die: float = 3e-3,
                           nx: int = 24,
                           effective_db: float = 6.0
                           ) -> Dict[str, str]:
    """Which mitigation to reach for on which substrate.

    A knob counts as *effective* when it buys at least
    ``effective_db`` of isolation.  The model reproduces the book's
    guidance: on a high-ohmic substrate the surface knobs (distance
    first -- it is free) are effective; on EPI neither surface knob
    clears the bar and the answer is grounding the bulk
    (``"backside-grounding"``).
    """
    rows = compare_substrates(die=die, nx=nx)
    ranking = {}
    for row in rows:
        if row["distance_gain_db"] >= effective_db:
            ranking[row["substrate"]] = "distance"
        elif row["guard_ring_gain_db"] >= effective_db:
            ranking[row["substrate"]] = "guard-ring"
        else:
            ranking[row["substrate"]] = "backside-grounding"
    return ranking
