"""Hardened model boundary: error taxonomy, validation, guards, faults.

The paper's closed-form models are routinely evaluated at the edge of
their validity -- sub-100 mV overdrives, exponential leakage, thermal
runaway, sigma-driven yield tails.  This package supplies the
machinery that makes those evaluations fail *loudly* instead of
silently:

* :mod:`repro.robust.errors` -- the typed exception hierarchy
  (:class:`ReproError` and friends) plus the warning taxonomy;
* :mod:`repro.robust.validate` -- physical-domain checks and the
  :func:`validated` decorator applied at public model entry points;
* :mod:`repro.robust.guards` -- uniform convergence/budget guards
  (:class:`IterationGuard`, :class:`SimulationBudget`) shared by the
  electrothermal solver, the sizing loops, the logic simulator and
  the router;
* :mod:`repro.robust.faults` -- the deterministic fault-injection
  harness asserting the package-wide contract: every public model API
  returns finite values or raises a typed :class:`ReproError`.
"""

from .errors import (
    CalibrationError,
    ConvergenceError,
    ConvergenceWarning,
    ExecBudgetError,
    ExecError,
    ModelDomainError,
    ModelDomainWarning,
    ModelIndexError,
    PoisonedResultError,
    ReproError,
    ReproWarning,
    RoadmapDataError,
    ShardTimeoutError,
    SimulationBudgetError,
    WorkerCrashError,
)
from .guards import ConvergenceReport, IterationGuard, SimulationBudget
from .rng import DEFAULT_ROOT_SEED, reseed, resolve_rng, spawn_seed
from .validate import (
    check_count,
    check_finite,
    check_fraction,
    check_non_negative,
    check_positive,
    check_range,
    ensure_finite_output,
    validated,
)
from .faults import (
    ApiSpec,
    FaultOutcome,
    FaultReport,
    PERTURBATIONS,
    default_registry,
    run_fault_sweep,
)

__all__ = [
    "ReproError", "ModelDomainError", "ConvergenceError",
    "RoadmapDataError", "SimulationBudgetError", "CalibrationError",
    "ModelIndexError",
    "ExecError", "WorkerCrashError", "ShardTimeoutError",
    "PoisonedResultError", "ExecBudgetError",
    "ReproWarning", "ModelDomainWarning", "ConvergenceWarning",
    "ConvergenceReport", "IterationGuard", "SimulationBudget",
    "DEFAULT_ROOT_SEED", "resolve_rng", "reseed", "spawn_seed",
    "check_finite", "check_positive", "check_non_negative",
    "check_range", "check_fraction", "check_count",
    "ensure_finite_output", "validated",
    "ApiSpec", "FaultOutcome", "FaultReport", "PERTURBATIONS",
    "default_registry", "run_fault_sweep",
]
