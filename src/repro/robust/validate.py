"""Physical-domain validation for model entry points.

Small, dependency-free checks that turn silent NaN propagation into
typed :class:`~repro.robust.errors.ModelDomainError` raises at the
public boundary of every model package, plus a :func:`validated`
decorator that declares per-parameter domains once, next to the
signature, instead of scattering ``if`` ladders through every body.

All checks accept scalars and numpy arrays; an array fails a check
when *any* element does.  ``None`` values are always skipped (they
mean "use the default" throughout the package).
"""

from __future__ import annotations

import functools
import inspect
import math
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Tuple, Union

import numpy as np

from .errors import ModelDomainError

ArrayLike = Union[float, "np.ndarray"]

__all__ = [
    "check_finite", "check_positive", "check_non_negative",
    "check_range", "check_fraction", "check_count",
    "ensure_finite_output", "validated",
]


def _as_float_array(name: str, value: Any) -> np.ndarray:
    """Coerce ``value`` to a float array or raise a typed error."""
    try:
        arr = np.asarray(value, dtype=float)
    except (TypeError, ValueError):
        raise ModelDomainError(
            f"{name} must be numeric, got {value!r}") from None
    if arr.dtype.kind not in "fiu":  # pragma: no cover - asarray(float)
        raise ModelDomainError(f"{name} must be numeric, got {value!r}")
    return arr


def check_finite(name: str, value: ArrayLike) -> ArrayLike:
    """Require every element of ``value`` to be finite (no NaN/inf)."""
    arr = _as_float_array(name, value)
    if not np.all(np.isfinite(arr)):
        raise ModelDomainError(f"{name} must be finite, got {value!r}")
    return value


def check_positive(name: str, value: ArrayLike) -> ArrayLike:
    """Require ``value`` to be finite and strictly positive."""
    arr = _as_float_array(name, value)
    if not np.all(np.isfinite(arr)) or not np.all(arr > 0):
        raise ModelDomainError(
            f"{name} must be a positive finite number, got {value!r}")
    return value


def check_non_negative(name: str, value: ArrayLike) -> ArrayLike:
    """Require ``value`` to be finite and >= 0."""
    arr = _as_float_array(name, value)
    if not np.all(np.isfinite(arr)) or not np.all(arr >= 0):
        raise ModelDomainError(
            f"{name} must be finite and non-negative, got {value!r}")
    return value


def check_range(name: str, value: ArrayLike, low: float, high: float,
                low_open: bool = False, high_open: bool = False) -> ArrayLike:
    """Require finite ``value`` inside [low, high] (open ends optional)."""
    arr = _as_float_array(name, value)
    ok = np.isfinite(arr)
    ok &= (arr > low) if low_open else (arr >= low)
    ok &= (arr < high) if high_open else (arr <= high)
    if not np.all(ok):
        lo_b, hi_b = "(" if low_open else "[", ")" if high_open else "]"
        raise ModelDomainError(
            f"{name} must be in {lo_b}{low:g}, {high:g}{hi_b}, "
            f"got {value!r}")
    return value


def check_fraction(name: str, value: ArrayLike,
                   zero_ok: bool = False) -> ArrayLike:
    """Require ``value`` in (0, 1] (or [0, 1] with ``zero_ok``)."""
    return check_range(name, value, 0.0, 1.0, low_open=not zero_ok)


#: Sanity ceiling for counts: no loop in this package legitimately
#: needs more than ~2e9 iterations, and counts beyond it overflow the
#: C-long sizes numpy allocates with.
MAX_COUNT = 2 ** 31


def check_count(name: str, value: Any, minimum: int = 1) -> int:
    """Require an integral count in [``minimum``, :data:`MAX_COUNT`].

    Accepts ints and integral floats; rejects NaN/inf, fractional
    values and non-numerics with a typed error instead of letting a
    downstream ``range()`` or numpy call raise ``TypeError``.
    """
    if isinstance(value, bool):
        raise ModelDomainError(f"{name} must be an integer, got {value!r}")
    if isinstance(value, (int, np.integer)):
        count = int(value)
    elif isinstance(value, (float, np.floating)):
        if not math.isfinite(value) or value != int(value):
            raise ModelDomainError(
                f"{name} must be an integer, got {value!r}")
        count = int(value)
    else:
        raise ModelDomainError(f"{name} must be an integer, got {value!r}")
    if count < minimum:
        raise ModelDomainError(
            f"{name} must be >= {minimum}, got {count}")
    if count > MAX_COUNT:
        raise ModelDomainError(
            f"{name} must be <= {MAX_COUNT}, got {count}")
    return count


def ensure_finite_output(name: str, value: Any) -> Any:
    """Require a model *output* to contain only finite numbers.

    Recurses through dataclasses, mappings, sequences and arrays;
    non-numeric leaves (strings, bools, None) are ignored.  Raises
    :class:`ModelDomainError` naming the producing API so a NaN that
    slipped past the input checks is still caught at the boundary.
    """
    for leaf in iter_numeric_leaves(value):
        if not np.all(np.isfinite(leaf)):
            raise ModelDomainError(
                f"{name} produced a non-finite output "
                f"(model evaluated outside its validity domain)")
    return value


def iter_numeric_leaves(value: Any) -> Iterable[np.ndarray]:
    """Yield every numeric leaf of a nested result as a float array."""
    if value is None or isinstance(value, (bool, str, bytes)):
        return
    if isinstance(value, (int, float, np.integer, np.floating)):
        yield np.asarray(value, dtype=float)
    elif isinstance(value, np.ndarray):
        if value.dtype.kind in "fiu":
            yield value.astype(float, copy=False)
    elif isinstance(value, Mapping):
        for item in value.values():
            yield from iter_numeric_leaves(item)
    elif isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            yield from iter_numeric_leaves(item)
    elif hasattr(value, "__dataclass_fields__"):
        # Diagnostic fields that legitimately hold NaN sentinels (e.g.
        # ConvergenceReport.residual when no residual was recorded)
        # opt out via a __nonfinite_ok__ class attribute.
        exempt = getattr(value, "__nonfinite_ok__", ())
        for field_name in value.__dataclass_fields__:
            if field_name in exempt:
                continue
            yield from iter_numeric_leaves(getattr(value, field_name))


# --- the @validated decorator ---------------------------------------------

#: Spec shorthand strings accepted by :func:`validated`.
_NAMED_CHECKS: Dict[str, Callable[[str, Any], Any]] = {
    "finite": check_finite,
    "positive": check_positive,
    "non-negative": check_non_negative,
    "fraction": check_fraction,
    "count": check_count,
}


def _compile_spec(spec: Any) -> Callable[[str, Any], Any]:
    if isinstance(spec, str):
        try:
            return _NAMED_CHECKS[spec]
        except KeyError:
            # replint: disable=R003 -- decoration-time programmer error, not a model-domain failure; must not depend on the taxonomy it guards
            raise ValueError(f"unknown validation spec {spec!r}") from None
    if isinstance(spec, tuple) and len(spec) == 2:
        low, high = spec
        return lambda name, value: check_range(name, value, low, high)
    if callable(spec):
        return spec
    # replint: disable=R003 -- decoration-time programmer error, not a model-domain failure; must not depend on the taxonomy it guards
    raise ValueError(f"unsupported validation spec {spec!r}")


def validated(_result_finite: bool = False,
              **param_specs: Any) -> Callable[[Callable], Callable]:
    """Declare per-parameter domains on a public model API.

    Parameters
    ----------
    _result_finite:
        When True, the wrapped function's return value is checked with
        :func:`ensure_finite_output` -- the NaN/inf guard on model
        outputs.
    **param_specs:
        Maps parameter names to a spec: one of the shorthand strings
        ``"finite"``, ``"positive"``, ``"non-negative"``,
        ``"fraction"``, ``"count"``, a ``(low, high)`` closed-range
        tuple, or a callable ``(name, value) -> value``.

    ``None`` arguments are skipped (they select the default).  The
    signature is parsed once at decoration time; per-call overhead is
    one ``bind`` plus the declared checks.

    Examples
    --------
    >>> @validated(_result_finite=True, n_bits="positive")
    ... def dynamic_range(n_bits):
    ...     return 2.0 ** n_bits
    >>> dynamic_range(8.0)
    256.0
    """

    def decorate(func: Callable) -> Callable:
        signature = inspect.signature(func)
        unknown = set(param_specs) - set(signature.parameters)
        if unknown:
            # replint: disable=R003 -- decoration-time programmer error (bad spec in source), raised at import, not at model evaluation
            raise ValueError(
                f"validated: {func.__qualname__} has no parameters "
                f"{sorted(unknown)}")
        checks = [(name, _compile_spec(spec))
                  for name, spec in param_specs.items()]

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            bound = signature.bind(*args, **kwargs)
            for name, check in checks:
                if name in bound.arguments:
                    value = bound.arguments[name]
                    if value is not None:
                        check(name, value)
            result = func(*args, **kwargs)
            if _result_finite:
                label = getattr(func, "__qualname__", str(func))
                ensure_finite_output(label, result)
            return result

        wrapper.__validated_params__ = dict(param_specs)  # type: ignore
        return wrapper

    return decorate
