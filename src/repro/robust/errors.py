"""Typed exception hierarchy for the model boundary.

Every failure the library can diagnose is reported through a subclass
of :class:`ReproError`, so callers (the CLI, sweep drivers, the
fault-injection harness) can distinguish "the model was asked
something outside its validity domain" from genuine bugs.  Each typed
error also inherits the ad-hoc builtin it replaces (``ValueError``,
``RuntimeError``, ``KeyError``), so pre-existing ``except`` clauses
and tests keep working unchanged.

The paper's closed-form models are evaluated at the edge of their
validity -- sub-100 mV overdrives, exponential leakage, sigma-driven
yield tails -- exactly where a silently propagated NaN produces a
confidently wrong "end of the road" number.  The contract enforced
across the package (and checked by :mod:`repro.robust.faults`) is:
every public model API either returns finite values or raises a
:class:`ReproError` subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every typed error raised by the repro models."""


class ModelDomainError(ReproError, ValueError):
    """An input lies outside the model's physical validity domain.

    Raised for NaN/inf parameters, non-positive geometry, voltages or
    temperatures outside the calibrated range, and for model outputs
    that come back non-finite.  Inherits ``ValueError`` for backward
    compatibility with the ad-hoc raises it replaced.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge and cannot continue.

    Most iterative loops in the package prefer to *return* a partial
    result carrying a :class:`repro.robust.guards.ConvergenceReport`;
    this error is reserved for callers that opt into strict behaviour
    (``IterationGuard(raise_on_exhaust=True)``).
    """


class RoadmapDataError(ReproError, KeyError):
    """A lookup into the technology roadmap / node library failed.

    Inherits ``KeyError`` so existing ``except KeyError`` handlers and
    tests keep working, but stringifies as a plain message (no quoted
    repr) so CLI error lines stay readable.
    """

    def __str__(self) -> str:
        if self.args and isinstance(self.args[0], str):
            return self.args[0]
        return super().__str__()


class SimulationBudgetError(ReproError, RuntimeError):
    """A simulation exceeded its event/iteration/search budget.

    Raised by the event-driven logic simulator on event-budget
    exhaustion or per-net oscillation, and available to any long loop
    through :class:`repro.robust.guards.SimulationBudget`.
    """


class CalibrationError(ReproError, RuntimeError):
    """An operation requires calibration data that is not present."""


class ExecError(ReproError, RuntimeError):
    """Base class of the fault-tolerant execution layer's failures.

    Everything the sharded Monte Carlo runtime (:mod:`repro.exec`) can
    diagnose about a *worker* -- crashes, hangs, poisoned results --
    is reported through a subclass, so retry logic can distinguish
    recoverable shard failures from model-domain errors that would
    fail identically on every attempt.
    """


class WorkerCrashError(ExecError):
    """A shard worker process died before delivering its result.

    Covers nonzero exit codes, killed processes, and in-process
    workers that raised an untyped exception.
    """


class ShardTimeoutError(ExecError):
    """A shard attempt exceeded its :class:`RetryPolicy` timeout.

    The worker (if any) has been terminated; the shard replays the
    same deterministic child stream on retry.
    """


class PoisonedResultError(ExecError):
    """A shard delivered a result that fails payload validation.

    Non-finite statistics, wrong array lengths, or counts outside the
    shard's die range -- the symptoms of a corrupted worker.  The
    payload is discarded and the shard retried.
    """


class ExecBudgetError(ExecError):
    """The retry budget of a sharded run is exhausted.

    Raised by :func:`repro.exec.run_sharded` in strict mode (and
    always when *no* shard completed); in degraded mode the run
    returns a typed :class:`repro.exec.PartialResult` instead.
    """


class BackendEquivalenceError(ReproError, AssertionError):
    """Oracle and vectorized backend results violate their contract.

    Raised by :func:`repro.backends.contracts.assert_backends_agree`
    when the two paths of a registered engine disagree beyond the
    engine's declared tolerance.  Inherits ``AssertionError`` so the
    equivalence test suite gets ordinary assertion semantics.
    """


class ModelIndexError(ReproError, IndexError):
    """An index or position lies outside a model grid or sample set.

    Raised for mesh-node lookups outside the substrate grid and for
    Monte Carlo sample indices beyond the batch.  Inherits
    ``IndexError`` so pre-existing handlers keep working.
    """


# --- warning taxonomy -----------------------------------------------------

class ReproWarning(UserWarning):
    """Base class of the package's diagnostic warnings.

    The CLI's ``--strict`` flag promotes these to errors.
    """


class ModelDomainWarning(ReproWarning):
    """Input is inside the hard domain but outside the calibrated range.

    The model still evaluates, but the result is an extrapolation the
    paper's data does not back.
    """


class ConvergenceWarning(ReproWarning):
    """An iterative solver stopped on its budget without converging.

    Emitted alongside the partial result so long sweeps surface the
    problem without dying mid-run.
    """
