"""Deterministic fault-injection harness for the public model APIs.

The contract every public model entry point must honour (enforced as
a tier-1 test suite)::

    for any perturbed numeric input -- NaN, +/-inf, zero, negative,
    or an extreme corner -- the call either returns only finite
    values or raises a typed ReproError subclass.

No raw NaN/inf escapes; no unhandled ``TypeError`` /
``ZeroDivisionError`` / bare builtin exceptions.  The sweep is fully
deterministic: a fixed perturbation set applied parameter-by-
parameter over a fixed registry, with fixed RNG seeds where an API is
stochastic.

Registering a new API
---------------------
Append an :class:`ApiSpec` in :func:`default_registry` (or pass your
own registry to :func:`run_fault_sweep`): a name, a keyword-only
callable, a known-good ``baseline`` kwarg dict, and the tuple of
numeric parameter names to ``perturb``.  The baseline call itself
must return finite values -- the sweep checks that first.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .errors import ReproError
from .validate import iter_numeric_leaves

__all__ = ["ApiSpec", "FaultOutcome", "FaultReport", "PERTURBATIONS",
           "default_registry", "run_fault_sweep"]


#: The perturbation set swept over every registered numeric parameter.
PERTURBATIONS: Tuple[float, ...] = (
    float("nan"), float("inf"), float("-inf"),
    0.0, -1.0, 1e30, 1e-30,
)


@dataclass(frozen=True)
class ApiSpec:
    """One public model API registered for fault injection.

    ``call`` must accept keyword arguments only (wrap methods and
    constructors in a lambda); ``baseline`` is a known-good input set
    and ``perturb`` names the numeric parameters to sweep.
    """

    name: str
    call: Callable[..., Any]
    baseline: Mapping[str, Any]
    perturb: Tuple[str, ...]


@dataclass(frozen=True)
class FaultOutcome:
    """Result of one perturbed call."""

    api: str
    param: str
    value: str              # repr of the injected value
    status: str             # "finite" | "typed-error" | "nan-escape" | "crash"
    detail: str = ""

    @property
    def ok(self) -> bool:
        """Whether this call honoured the robustness contract."""
        return self.status in ("finite", "typed-error")


@dataclass
class FaultReport:
    """Aggregate outcome of a fault-injection sweep."""

    outcomes: List[FaultOutcome] = field(default_factory=list)
    n_apis: int = 0

    @property
    def failures(self) -> List[FaultOutcome]:
        """Calls that leaked non-finite values or crashed untyped."""
        return [o for o in self.outcomes if not o.ok]

    @property
    def passed(self) -> bool:
        """True when every perturbed call honoured the contract."""
        return not self.failures

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        by_status: Dict[str, int] = {}
        for outcome in self.outcomes:
            by_status[outcome.status] = by_status.get(outcome.status, 0) + 1
        lines = [f"fault sweep: {self.n_apis} APIs, "
                 f"{len(self.outcomes)} perturbed calls, "
                 f"{len(self.failures)} contract violations"]
        for status in sorted(by_status):
            lines.append(f"  {status}: {by_status[status]}")
        for outcome in self.failures[:20]:
            lines.append(f"  FAIL {outcome.api}({outcome.param}="
                         f"{outcome.value}): {outcome.status} "
                         f"{outcome.detail}")
        return "\n".join(lines)


def _classify(result: Any) -> Tuple[str, str]:
    """Classify a returned value: all-finite or a NaN/inf escape."""
    for leaf in iter_numeric_leaves(result):
        if not np.all(np.isfinite(leaf)):
            return "nan-escape", f"non-finite value in {type(result).__name__}"
    return "finite", ""


def _call_one(spec: ApiSpec, kwargs: Dict[str, Any]) -> Tuple[str, str]:
    """Invoke one API and classify the outcome.

    Numpy overflow/invalid warnings are expected when probing extreme
    corners -- the classification below catches the non-finite result
    itself, which is the actual contract.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with np.errstate(all="ignore"):
            try:
                result = spec.call(**kwargs)
            except ReproError as error:
                return "typed-error", f"{type(error).__name__}: {error}"
            except Exception as error:  # noqa: BLE001 - the point of the sweep
                return "crash", f"{type(error).__name__}: {error}"
    return _classify(result)


def run_fault_sweep(registry: Optional[Sequence[ApiSpec]] = None,
                    perturbations: Sequence[float] = PERTURBATIONS
                    ) -> FaultReport:
    """Sweep every registered API with every perturbation.

    Returns a :class:`FaultReport`; ``report.passed`` is the tier-1
    assertion.  The baseline (unperturbed) call of each API is checked
    first -- a registry entry whose baseline crashes or returns
    non-finite values is itself a failure.
    """
    registry = list(default_registry() if registry is None else registry)
    report = FaultReport(n_apis=len(registry))
    for spec in registry:
        status, detail = _call_one(spec, dict(spec.baseline))
        if status != "finite":
            report.outcomes.append(FaultOutcome(
                api=spec.name, param="<baseline>", value="-",
                status="crash" if status == "typed-error" else status,
                detail=f"baseline call must succeed finitely: {detail}"))
            continue
        for param in spec.perturb:
            for value in perturbations:
                kwargs = dict(spec.baseline)
                kwargs[param] = value
                status, detail = _call_one(spec, kwargs)
                report.outcomes.append(FaultOutcome(
                    api=spec.name, param=param, value=repr(value),
                    status=status, detail=detail))
    return report


def default_registry() -> List[ApiSpec]:
    """The built-in registry of public model APIs (>= 25 entries).

    Imports lazily so ``repro.robust`` stays import-light and free of
    circular dependencies.
    """
    from ..analog import chain as achain
    from ..analog import metrics as ametrics
    from ..analog import tradeoff
    from ..devices import leakage
    from ..devices.mosfet import Mosfet
    from ..digital import delay as ddelay
    from ..digital.generators import ripple_adder, soc_netlist
    from ..digital.simulator_compiled import CompiledEventEngine
    from ..digital.ssta import StatisticalTimingAnalyzer
    from ..digital.timing import delay_under_mismatch
    from ..digital.timing_compiled import CompiledTimingGraph
    from ..interconnect import elmore, wire
    from ..lint.semantic import AnalysisCache
    from ..technology.library import get_node
    from ..technology.node import TechnologyNode
    from ..thermal.electrothermal import solve_operating_point
    from ..thermal.mesh import ThermalStack
    from ..variability import dopants, ler, pelgrom
    from ..variability.statistical import (MonteCarloSampler, VariationSpec,
                                           monte_carlo_yield_batch)

    node = get_node("65nm")
    f = node.feature_size
    geometry = wire.WireGeometry.for_node(node)

    def mosfet_ids(width: float, vgs: float, vds: float,
                   vbs: float) -> float:
        return Mosfet(node, width=width).ids(vgs, vds, vbs)

    def mosfet_off_current(width: float, vds: float) -> float:
        return Mosfet(node, width=width).off_current(vds=vds)

    def fo4_delay(drive_width: float, vth: float, vdd: float) -> float:
        return ddelay.fo4_delay_model(node, drive_width).delay(
            vth=vth, vdd=vdd)

    def delay_spread(sigma_vth: float, n_sigma: float) -> Dict[str, float]:
        return ddelay.fo4_delay_model(node).delay_spread(
            sigma_vth, n_sigma=n_sigma)

    def wire_geometry(pitch: float, width_fraction: float,
                      aspect_ratio: float) -> wire.WireGeometry:
        return wire.WireGeometry(pitch=pitch,
                                 width_fraction=width_fraction,
                                 aspect_ratio=aspect_ratio)

    def uniform_line_delay(length: float, driver_resistance: float,
                           load_capacitance: float) -> float:
        tree = elmore.uniform_line(
            geometry, length, segments=4,
            driver_resistance=driver_resistance,
            load_capacitance=load_capacitance)
        return tree.elmore_delay("seg_sink")

    def node_override(vdd: float, vth: float, tox: float
                      ) -> TechnologyNode:
        return node.with_overrides(vdd=vdd, vth=vth, tox=tox)

    def sample_batch(n_dies: Any, width: float) -> Any:
        sampler = MonteCarloSampler(node, seed=7)
        return sampler.sample_dies_batch(n_dies, n_devices=2, width=width)

    def variation_spec(vth_inter: float, length_inter_rel: float
                       ) -> VariationSpec:
        return VariationSpec(vth_inter=vth_inter,
                             length_inter_rel=length_inter_rel)

    def yield_batch(limit: float, n_dies: Any) -> float:
        sampler = MonteCarloSampler(node, seed=11)
        result = monte_carlo_yield_batch(
            sampler, lambda batch: batch.vth_global, limit,
            n_dies=n_dies)
        return result.yield_fraction

    def intra_sigma(width: float, length: float) -> float:
        return float(VariationSpec().intra_sigma_vth(node, width, length))

    def electrothermal(frequency: float, activity: float,
                       rth: float) -> Any:
        return solve_operating_point(
            node, n_gates=10_000, frequency=frequency,
            activity=activity,
            stack=ThermalStack(rth_junction_to_ambient=rth),
            max_iterations=8)

    def retry_policy(timeout_s: float, backoff_initial_s: float,
                     backoff_factor: float) -> Any:
        from ..exec import RetryPolicy
        return RetryPolicy(max_retries=2, timeout_s=timeout_s,
                           backoff_initial_s=backoff_initial_s,
                           backoff_factor=backoff_factor
                           ).delay_before(2)

    def chaos_spec(crash_rate: float, hang_rate: float,
                   poison_rate: float) -> Any:
        from ..exec import ChaosSpec
        return ChaosSpec(seed=7, crash_rate=crash_rate,
                         hang_rate=hang_rate,
                         poison_rate=poison_rate).total_rate

    def exec_plan_shards(n_total: Any, n_shards: Any) -> Any:
        from ..exec import plan_shards
        return [s.size for s in plan_shards(n_total, n_shards)]

    def exec_wilson(n_pass: Any, level: float) -> Any:
        from ..exec import wilson_interval
        return wilson_interval(n_pass, 50, level=level)

    def exec_clopper_pearson(n_pass: Any, level: float) -> Any:
        from ..exec import clopper_pearson_interval
        return clopper_pearson_interval(n_pass, 50, level=level)

    def exec_run_sharded(limit: float, n_shards: Any) -> Any:
        from ..exec import YieldWorkload, run_sharded
        result = run_sharded(
            YieldWorkload(node_name="65nm", metric="vth-shift",
                          limit=limit, n_dies=8, seed=11),
            n_shards=n_shards, env_chaos=False, use_cache=False)
        return result.value.yield_fraction

    def lint_cache_capacity(max_files: Any) -> float:
        return float(AnalysisCache(max_files=max_files).max_files)

    coherent_record = np.sin(
        2.0 * np.pi * 5.0 * np.arange(128) / 128.0)
    ramp_codes_2bit = np.repeat(np.arange(4), 4)

    def chain_batch(n_dies: Any, n_ramp_per_code: Any, n_fft: Any,
                    cycles: Any, amplitude_fraction: float) -> Any:
        sampler = MonteCarloSampler(node, seed=23)
        return achain.chain_signoff_batch(
            sampler, n_dies=n_dies, n_ramp_per_code=n_ramp_per_code,
            n_fft=n_fft, cycles=cycles,
            amplitude_fraction=amplitude_fraction)

    timing_netlist = ripple_adder(node, width=2)

    def compiled_evaluate(global_vth_offset: float,
                          wire_cap_per_fanout: float,
                          vth_offset: float) -> Any:
        graph = CompiledTimingGraph(
            timing_netlist, wire_cap_per_fanout=wire_cap_per_fanout)
        offsets = np.full((2, graph.n_gates), vth_offset)
        result = graph.evaluate(
            offsets, global_vth_offset=global_vth_offset)
        return {"critical_delays": result.critical_delays,
                "criticality": result.criticality()}

    def batched_ssta(n_samples: Any, vth_inter: float) -> Any:
        from ..variability.statistical import VariationSpec as _Spec
        analyzer = StatisticalTimingAnalyzer(
            timing_netlist, _Spec(vth_inter=vth_inter), seed=13)
        result = analyzer.run(n_samples)
        return {"samples": result.samples,
                "nominal": result.nominal_delay}

    def mismatch_delays(sigma_vth: float, n_samples: Any) -> Any:
        return delay_under_mismatch(timing_netlist, sigma_vth,
                                    n_samples=n_samples, seed=17)

    sim_stimulus = {net: [True, False]
                    for net in timing_netlist.primary_inputs}

    def compiled_sim_run(clock_period: float,
                         wire_cap_per_fanout: float,
                         n_cycles: Any) -> Any:
        engine = CompiledEventEngine(
            timing_netlist, clock_period=clock_period,
            wire_cap_per_fanout=wire_cap_per_fanout)
        trace = engine.run(sim_stimulus, n_cycles)
        return {"times": trace.times,
                "activity": trace.activity_factor(n_cycles),
                "toggles": float(trace.toggle_count())}

    def trace_activity_factor(n_cycles: Any) -> float:
        trace = CompiledEventEngine(
            timing_netlist, clock_period=1e-9).run(sim_stimulus, 2)
        return trace.activity_factor(n_cycles)

    def soc_generator(target_gates: Any, glue_fraction: float) -> Any:
        netlist = soc_netlist(node, target_gates=target_gates,
                              n_blocks=2, adder_width=4,
                              glue_fraction=glue_fraction, seed=1)
        return {"n_gates": float(len(netlist.instances))}

    def mesh_batched_solve(die_width: float,
                           backside_resistance: float,
                           current: float) -> Any:
        from ..substrate.mesh import SubstrateMesh, SubstrateProcess
        mesh = SubstrateMesh(
            die_width, 1e-3, nx=8, ny=8,
            process=SubstrateProcess(
                backside_resistance=backside_resistance))
        rhs = np.full((mesh.n_nodes, 2), current)
        return mesh.solve(rhs)

    def ler_spread(sigma: float, correlation_length: float,
                   width: float) -> Dict[str, float]:
        params = ler.LerParameters(sigma=sigma,
                                   correlation_length=correlation_length)
        return ler.current_spread_from_ler(
            node, params, n_devices=8, width=width, n_points=32, seed=5)

    def ota_evaluate_batch(input_width: float, tail_current: float,
                           vth_override: float) -> Any:
        from ..analog.circuits import SingleStageOta
        engine = SingleStageOta(node, load_capacitance=1e-12)
        return engine.evaluate_batch(
            np.array([input_width, 20 * f]),
            np.array([4 * f, 4 * f]), np.array([10 * f, 10 * f]),
            np.array([6 * f, 6 * f]),
            np.array([tail_current, 20e-6]),
            node_overrides={"vth": np.array([vth_override, node.vth])})

    def frontend_evaluate_batch(input_width: float,
                                feedback_capacitance: float,
                                drain_current: float) -> Any:
        from ..analog.circuits import DetectorFrontend
        engine = DetectorFrontend(node, detector_capacitance=5e-12)
        return engine.evaluate_batch(
            np.array([input_width, 200 * f]),
            np.array([2 * f, 2 * f]),
            np.array([feedback_capacitance, 0.3e-12]),
            np.array([1e-6, 1e-6]),
            np.array([drain_current, 300e-6]))

    def electrothermal_batch(frequency: float, activity: float,
                             rth: float) -> Any:
        from ..thermal.electrothermal import solve_operating_point_batch
        return solve_operating_point_batch(
            node, rth=np.array([rth, 2.0 * rth]),
            n_gates=10_000, frequency=frequency,
            activity=activity, max_iterations=8)

    def runaway_thresholds_batch(frequency: float,
                                 activity: float) -> Any:
        from ..thermal.electrothermal import runaway_rth_thresholds
        return runaway_rth_thresholds(
            [node], n_gates=10_000, frequency=frequency,
            activity=activity)

    def synthesis_run_vectorized(gain_bound: float,
                                 power_bound: float) -> Any:
        from ..synthesis.sizing import Specification, ota_synthesizer
        spec = Specification(
            objective="power",
            constraints={"gain_db": ("min", gain_bound),
                         "power": ("max", power_bound)})
        synthesizer = ota_synthesizer(node, 1e-12, spec)
        result = synthesizer.run(seed=5, maxiter=2, popsize=6,
                                 backend="vectorized")
        return {"cost": result.cost, "values": result.values}

    def specification_penalty(gain_bound: float,
                              gain_value: float) -> float:
        from types import SimpleNamespace

        from ..synthesis.sizing import Specification
        spec = Specification(
            objective="power",
            constraints={"gain_db": ("min", gain_bound)})
        return spec.penalty(SimpleNamespace(gain_db=gain_value,
                                            power=1e-3))

    def ota_yield_run(gain_bound: float, offset_bound: float) -> Any:
        from ..analog.circuits import OtaDesign
        from ..analog.yield_analysis import OtaYieldAnalyzer
        analyzer = OtaYieldAnalyzer(
            node, OtaDesign(input_width=40 * f, input_length=4 * f,
                            load_width=20 * f, load_length=6 * f,
                            tail_current=20e-6),
            load_capacitance=1e-12, seed=19)
        report = analyzer.run({"gain_db": gain_bound,
                               "offset_sigma": offset_bound},
                              n_samples=32)
        return {"overall": report.overall_yield,
                "sigma_offset": report.sigma_offset}

    return [
        ApiSpec("devices.leakage.subthreshold_current",
                leakage.subthreshold_current,
                {"i0": 1e-7, "vth": 0.22, "n": 1.45,
                 "temperature": 300.0, "vgs": 0.0},
                ("i0", "vth", "n", "temperature", "vgs")),
        ApiSpec("devices.leakage.dibl_effective_vth",
                leakage.dibl_effective_vth,
                {"vth0": 0.22, "dibl": 0.08, "vds": 1.0},
                ("vth0", "dibl", "vds")),
        ApiSpec("devices.leakage.gate_leakage_current",
                leakage.gate_leakage_current,
                {"width": 2 * f, "vgb": 1.0, "tox": node.tox,
                 "k_fit": node.gate_leak_k,
                 "alpha_fit": node.gate_leak_alpha},
                ("width", "vgb", "tox", "k_fit", "alpha_fit")),
        ApiSpec("devices.leakage.device_leakage",
                lambda **kw: leakage.device_leakage(node, **kw),
                {"width": 2 * f, "vds": 1.0, "vbs": 0.0,
                 "vth_offset": 0.0},
                ("width", "vds", "vbs", "vth_offset")),
        ApiSpec("devices.leakage.gate_leakage_per_gate",
                lambda **kw: leakage.gate_leakage_per_gate(node, **kw),
                {"nmos_width": 2 * f, "pmos_width": 4 * f},
                ("nmos_width", "pmos_width")),
        ApiSpec("devices.leakage.leakage_power_density",
                lambda **kw: leakage.leakage_power_density(node, **kw),
                {"gates_per_mm2": 1e5},
                ("gates_per_mm2",)),
        ApiSpec("devices.leakage.ioff_vs_vth_sweep",
                lambda **kw: leakage.ioff_vs_vth_sweep(node, **kw),
                {"vth_values": 0.3, "width": 2 * f},
                ("vth_values", "width")),
        ApiSpec("devices.mosfet.Mosfet.ids", mosfet_ids,
                {"width": 2 * f, "vgs": 1.0, "vds": 1.0, "vbs": 0.0},
                ("width", "vgs", "vds", "vbs")),
        ApiSpec("devices.mosfet.Mosfet.off_current", mosfet_off_current,
                {"width": 2 * f, "vds": 1.0},
                ("width", "vds")),
        ApiSpec("digital.delay.DelayModel.delay", fo4_delay,
                {"drive_width": 2 * f, "vth": 0.22, "vdd": 1.0},
                ("drive_width", "vth", "vdd")),
        ApiSpec("digital.delay.delay_spread", delay_spread,
                {"sigma_vth": 0.015, "n_sigma": 3.0},
                ("sigma_vth", "n_sigma")),
        ApiSpec("digital.delay.energy_delay_product",
                lambda **kw: ddelay.energy_delay_product(node, **kw),
                {"vdd": 1.0, "vth": 0.22},
                ("vdd", "vth")),
        ApiSpec("digital.timing_compiled.CompiledTimingGraph.evaluate",
                compiled_evaluate,
                {"global_vth_offset": 0.0,
                 "wire_cap_per_fanout": 0.5e-15,
                 "vth_offset": 0.01},
                ("global_vth_offset", "wire_cap_per_fanout",
                 "vth_offset")),
        ApiSpec("digital.ssta.StatisticalTimingAnalyzer.run",
                batched_ssta,
                {"n_samples": 6, "vth_inter": 0.015},
                ("n_samples", "vth_inter")),
        ApiSpec("digital.timing.delay_under_mismatch",
                mismatch_delays,
                {"sigma_vth": 0.01, "n_samples": 6},
                ("sigma_vth", "n_samples")),
        ApiSpec("digital.simulator_compiled.CompiledEventEngine.run",
                compiled_sim_run,
                {"clock_period": 1e-9,
                 "wire_cap_per_fanout": 0.5e-15, "n_cycles": 2},
                ("clock_period", "wire_cap_per_fanout", "n_cycles")),
        ApiSpec("digital.simulator_compiled.EventTrace.activity_factor",
                trace_activity_factor,
                {"n_cycles": 2}, ("n_cycles",)),
        ApiSpec("digital.generators.soc_netlist", soc_generator,
                {"target_gates": 200, "glue_fraction": 0.1},
                ("target_gates", "glue_fraction")),
        ApiSpec("substrate.mesh.SubstrateMesh.solve",
                mesh_batched_solve,
                {"die_width": 1e-3, "backside_resistance": 2.0,
                 "current": 1e-3},
                ("die_width", "backside_resistance", "current")),
        ApiSpec("interconnect.wire.WireGeometry", wire_geometry,
                {"pitch": 180e-9, "width_fraction": 0.5,
                 "aspect_ratio": 2.0},
                ("pitch", "width_fraction", "aspect_ratio")),
        ApiSpec("interconnect.wire.capacitance_per_length",
                lambda **kw: wire.capacitance_per_length(geometry, **kw),
                {"miller_factor": 1.0},
                ("miller_factor",)),
        ApiSpec("interconnect.wire.wire_delay",
                lambda **kw: wire.wire_delay(geometry, **kw),
                {"length": 1e-3, "miller_factor": 1.0},
                ("length", "miller_factor")),
        ApiSpec("interconnect.wire.wire_energy",
                lambda **kw: wire.wire_energy(geometry, **kw),
                {"length": 1e-3, "vdd": 1.0, "activity": 0.5},
                ("length", "vdd", "activity")),
        ApiSpec("interconnect.elmore.driver_wire_load_delay",
                lambda **kw: elmore.driver_wire_load_delay(geometry, **kw),
                {"length": 1e-3, "driver_resistance": 1e3,
                 "load_capacitance": 1e-15},
                ("length", "driver_resistance", "load_capacitance")),
        ApiSpec("interconnect.elmore.uniform_line", uniform_line_delay,
                {"length": 1e-3, "driver_resistance": 1e3,
                 "load_capacitance": 1e-15},
                ("length", "driver_resistance", "load_capacitance")),
        ApiSpec("analog.tradeoff.accuracy_from_bits",
                tradeoff.accuracy_from_bits,
                {"n_bits": 10.0}, ("n_bits",)),
        ApiSpec("analog.tradeoff.bits_from_accuracy",
                tradeoff.bits_from_accuracy,
                {"accuracy": 1254.0}, ("accuracy",)),
        ApiSpec("analog.tradeoff.thermal_noise_constant",
                tradeoff.thermal_noise_constant,
                {"temperature": 300.0, "efficiency": 0.01},
                ("temperature", "efficiency")),
        ApiSpec("analog.tradeoff.mismatch_constant",
                lambda **kw: tradeoff.mismatch_constant(node, **kw),
                {"swing_fraction": 0.6, "efficiency": 0.01},
                ("swing_fraction", "efficiency")),
        ApiSpec("analog.tradeoff.minimum_power",
                lambda **kw: tradeoff.minimum_power(node=node, **kw),
                {"speed": 1e8, "accuracy": 1254.0, "temperature": 300.0},
                ("speed", "accuracy", "temperature")),
        ApiSpec("variability.pelgrom.sigma_delta_vth",
                lambda **kw: pelgrom.sigma_delta_vth(node, **kw),
                {"width": 10 * f, "length": 2 * f, "distance": 1e-5},
                ("width", "length", "distance")),
        ApiSpec("variability.pelgrom.sigma_delta_beta",
                lambda **kw: pelgrom.sigma_delta_beta(node, **kw),
                {"width": 10 * f, "length": 2 * f},
                ("width", "length")),
        ApiSpec("variability.pelgrom.area_for_matching",
                lambda **kw: pelgrom.area_for_matching(node, **kw),
                {"sigma_vth_target": 1e-3},
                ("sigma_vth_target",)),
        ApiSpec("variability.pelgrom.offset_sigma_diff_pair",
                lambda **kw: pelgrom.offset_sigma_diff_pair(node, **kw),
                {"width": 10 * f, "length": 2 * f, "gm_over_id": 10.0},
                ("width", "length", "gm_over_id")),
        ApiSpec("variability.pelgrom.sigma_resistor_mismatch",
                lambda **kw: pelgrom.sigma_resistor_mismatch(node, **kw),
                {"width": 8 * f, "length": 64 * f},
                ("width", "length", "matching_coefficient")),
        ApiSpec("variability.pelgrom.sigma_capacitor_mismatch",
                lambda **kw: pelgrom.sigma_capacitor_mismatch(node, **kw),
                {"width": 12 * f, "length": 12 * f},
                ("width", "length", "matching_coefficient")),
        ApiSpec("analog.metrics.transfer_linearity",
                ametrics.transfer_linearity,
                {"levels": [0.0, 0.25, 0.5, 0.75, 1.0]},
                ("levels",)),
        ApiSpec("analog.metrics.transfer_linearity_batch",
                ametrics.transfer_linearity_batch,
                {"levels": [[0.0, 0.25, 0.5, 0.75, 1.0],
                            [0.0, 0.3, 0.5, 0.7, 1.0]]},
                ("levels",)),
        ApiSpec("analog.metrics.histogram_linearity",
                ametrics.histogram_linearity,
                {"codes": ramp_codes_2bit, "n_bits": 2},
                ("codes", "n_bits")),
        ApiSpec("analog.metrics.histogram_linearity_batch",
                ametrics.histogram_linearity_batch,
                {"codes": np.stack([ramp_codes_2bit, ramp_codes_2bit]),
                 "n_bits": 2},
                ("codes", "n_bits")),
        ApiSpec("analog.metrics.spectral_metrics",
                ametrics.spectral_metrics,
                {"signal": coherent_record, "cycles": 5,
                 "full_scale": 2.0},
                ("signal", "cycles", "full_scale")),
        ApiSpec("analog.metrics.spectral_metrics_batch",
                ametrics.spectral_metrics_batch,
                {"signals": np.stack([coherent_record,
                                      -coherent_record]),
                 "cycles": 5, "full_scale": 2.0},
                ("signals", "cycles", "full_scale")),
        ApiSpec("analog.chain.chain_signoff",
                lambda **kw: achain.chain_signoff(node, **kw),
                {"n_ramp_per_code": 4, "n_fft": 256, "cycles": 67,
                 "amplitude_fraction": 0.9},
                ("n_ramp_per_code", "n_fft", "cycles",
                 "amplitude_fraction")),
        ApiSpec("analog.chain.chain_signoff_batch", chain_batch,
                {"n_dies": 4, "n_ramp_per_code": 4, "n_fft": 256,
                 "cycles": 67, "amplitude_fraction": 0.9},
                ("n_dies", "n_ramp_per_code", "n_fft", "cycles",
                 "amplitude_fraction")),
        ApiSpec("analog.chain.chain_yield_vs_node",
                lambda **kw: achain.chain_yield_vs_node(
                    nodes=[node], n_ramp_per_code=4, n_fft=256, **kw),
                {"n_dies": 3, "seed": 1, "amplitude_fraction": 0.9},
                ("n_dies", "seed", "amplitude_fraction")),
        ApiSpec("variability.dopants.channel_dopant_count",
                lambda **kw: dopants.channel_dopant_count(node, **kw),
                {"width": 2 * f, "length": f},
                ("width", "length")),
        ApiSpec("variability.dopants.dopant_count_sigma",
                dopants.dopant_count_sigma,
                {"mean_count": 100.0},
                ("mean_count",)),
        ApiSpec("variability.dopants.vth_sigma_from_rdf",
                lambda **kw: dopants.vth_sigma_from_rdf(node, **kw),
                {"width": 2 * f, "length": f},
                ("width", "length")),
        ApiSpec("variability.ler.current_spread_from_ler", ler_spread,
                {"sigma": 1.5e-9, "correlation_length": 25e-9,
                 "width": 130e-9},
                ("sigma", "correlation_length", "width")),
        ApiSpec("variability.statistical.VariationSpec", variation_spec,
                {"vth_inter": 0.015, "length_inter_rel": 0.04},
                ("vth_inter", "length_inter_rel")),
        ApiSpec("variability.statistical.intra_sigma_vth", intra_sigma,
                {"width": 2 * f, "length": f},
                ("width", "length")),
        ApiSpec("variability.statistical.sample_dies_batch", sample_batch,
                {"n_dies": 4, "width": 2 * f},
                ("n_dies", "width")),
        ApiSpec("variability.statistical.monte_carlo_yield_batch",
                yield_batch,
                {"limit": 0.03, "n_dies": 16},
                ("limit", "n_dies")),
        ApiSpec("technology.node.with_overrides", node_override,
                {"vdd": 1.0, "vth": 0.22, "tox": 1.6e-9},
                ("vdd", "vth", "tox")),
        ApiSpec("technology.node.at_temperature",
                lambda **kw: node.at_temperature(**kw),
                {"temperature": 358.0}, ("temperature",)),
        ApiSpec("technology.node.scaled",
                lambda **kw: node.scaled(**kw),
                {"s": 1.4}, ("s",)),
        ApiSpec("technology.node.sigma_vt",
                lambda **kw: node.sigma_vt(**kw),
                {"width": 2 * f, "length": f},
                ("width", "length")),
        ApiSpec("thermal.electrothermal.solve_operating_point",
                electrothermal,
                {"frequency": 1e9, "activity": 0.1, "rth": 1.0},
                ("frequency", "activity", "rth")),
        ApiSpec("thermal.electrothermal.solve_operating_point_batch",
                electrothermal_batch,
                {"frequency": 1e9, "activity": 0.1, "rth": 1.0},
                ("frequency", "activity", "rth")),
        ApiSpec("thermal.electrothermal.runaway_rth_thresholds",
                runaway_thresholds_batch,
                {"frequency": 1e9, "activity": 0.1},
                ("frequency", "activity")),
        ApiSpec("analog.circuits.SingleStageOta.evaluate_batch",
                ota_evaluate_batch,
                {"input_width": 40 * f, "tail_current": 20e-6,
                 "vth_override": 0.22},
                ("input_width", "tail_current", "vth_override")),
        ApiSpec("analog.circuits.DetectorFrontend.evaluate_batch",
                frontend_evaluate_batch,
                {"input_width": 200 * f,
                 "feedback_capacitance": 0.3e-12,
                 "drain_current": 300e-6},
                ("input_width", "feedback_capacitance",
                 "drain_current")),
        ApiSpec("synthesis.sizing.CircuitSynthesizer.run",
                synthesis_run_vectorized,
                {"gain_bound": 40.0, "power_bound": 1e-3},
                ("gain_bound", "power_bound")),
        ApiSpec("synthesis.sizing.Specification.penalty",
                specification_penalty,
                {"gain_bound": 40.0, "gain_value": 45.0},
                ("gain_bound",)),
        ApiSpec("analog.yield_analysis.OtaYieldAnalyzer.run",
                ota_yield_run,
                {"gain_bound": 30.0, "offset_bound": 5e-3},
                ("gain_bound", "offset_bound")),
        ApiSpec("exec.policy.RetryPolicy", retry_policy,
                {"timeout_s": 1.0, "backoff_initial_s": 0.05,
                 "backoff_factor": 2.0},
                ("timeout_s", "backoff_initial_s",
                 "backoff_factor")),
        ApiSpec("exec.chaos.ChaosSpec", chaos_spec,
                {"crash_rate": 0.2, "hang_rate": 0.1,
                 "poison_rate": 0.2},
                ("crash_rate", "hang_rate", "poison_rate")),
        ApiSpec("exec.shards.plan_shards", exec_plan_shards,
                {"n_total": 100, "n_shards": 7},
                ("n_total", "n_shards")),
        ApiSpec("exec.result.wilson_interval", exec_wilson,
                {"n_pass": 45, "level": 0.95},
                ("n_pass", "level")),
        ApiSpec("exec.result.clopper_pearson_interval",
                exec_clopper_pearson,
                {"n_pass": 45, "level": 0.95},
                ("n_pass", "level")),
        ApiSpec("exec.runner.run_sharded", exec_run_sharded,
                {"limit": 0.03, "n_shards": 2},
                ("limit", "n_shards")),
        ApiSpec("lint.semantic.cache.AnalysisCache", lint_cache_capacity,
                {"max_files": 64},
                ("max_files",)),
    ]
