"""Uniform convergence and budget guards for iterative solvers.

Three long-running loop families live in the package: fixed-point
iterations (electrothermal feedback), stochastic optimizers (AMGIE
sizing / design centering) and discrete-event searches (the logic
simulator, the maze router).  Each used to hand-roll its own
``max_iterations`` bookkeeping and either hang, die mid-sweep, or
silently return the last iterate.  These guards make the policy
uniform:

* :class:`IterationGuard` wraps a bounded iteration and records
  convergence, producing a :class:`ConvergenceReport` that solvers
  attach to their (possibly partial) result;
* :class:`SimulationBudget` meters a consumable budget (events,
  search expansions) and either raises a typed
  :class:`~repro.robust.errors.SimulationBudgetError` or reports
  graceful exhaustion, as the caller chooses.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Iterator, Optional

from .errors import (ConvergenceError, ConvergenceWarning, ModelDomainError,
                     SimulationBudgetError)


@dataclass(frozen=True)
class ConvergenceReport:
    """Outcome of a guarded iterative loop.

    Attached to solver results so sweeps can aggregate *which* points
    converged instead of losing the whole run to one bad corner.
    """

    #: ``residual`` is NaN when the loop never measured one (e.g. an
    #: early runaway exit), and ``elapsed_s`` is NaN on hand-built
    #: reports that never ran; finiteness audits skip both.
    __nonfinite_ok__ = ("residual", "elapsed_s")

    name: str
    converged: bool
    n_iterations: int
    max_iterations: int
    residual: float = float("nan")
    tolerance: float = 0.0
    message: str = ""
    #: Wall-clock seconds between guard construction and this report
    #: -- the datum timeout tuning in :mod:`repro.exec` needs.
    elapsed_s: float = float("nan")

    def __str__(self) -> str:
        state = "converged" if self.converged else "did NOT converge"
        text = (f"{self.name}: {state} after {self.n_iterations}/"
                f"{self.max_iterations} iterations")
        if self.elapsed_s == self.elapsed_s:  # not NaN
            text += f" in {self.elapsed_s:.3g} s wall-clock"
        if self.residual == self.residual:  # not NaN
            text += f" (residual {self.residual:.3g}"
            if self.tolerance > 0:
                text += f", tolerance {self.tolerance:.3g}"
            text += ")"
        if self.message:
            text += f": {self.message}"
        return text


class IterationGuard:
    """Bounded-iteration guard with convergence bookkeeping.

    Usage::

        guard = IterationGuard(100, tolerance=0.01, name="electrothermal")
        for _ in guard:
            new = step(old)
            if guard.converged(abs(new - old)):
                break
            old = new
        report = guard.report()

    When the loop exhausts its budget without :meth:`converged`
    returning True, :meth:`report` (and the iterator's natural end)
    either raises :class:`ConvergenceError` (``raise_on_exhaust``),
    emits a :class:`ConvergenceWarning` (``warn_on_exhaust``), or just
    records the failure in the report -- the default, so sweeps keep
    their partial results.
    """

    def __init__(self, max_iterations: int, tolerance: float = 0.0,
                 name: str = "iteration",
                 raise_on_exhaust: bool = False,
                 warn_on_exhaust: bool = False):
        if not isinstance(max_iterations, (int,)) or max_iterations < 1:
            raise ModelDomainError(
                f"max_iterations must be a positive integer, "
                f"got {max_iterations!r}")
        if not tolerance >= 0.0:   # catches NaN too
            raise ModelDomainError(
                f"tolerance must be finite and >= 0, got {tolerance!r}")
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.name = name
        self.raise_on_exhaust = raise_on_exhaust
        self.warn_on_exhaust = warn_on_exhaust
        self.n_iterations = 0
        self.residual = float("nan")
        self._converged = False
        self._finished = False
        self._start = time.perf_counter()  # replint: disable=R008 -- wall time only feeds diagnostics, never results

    def __iter__(self) -> Iterator[int]:
        for i in range(1, self.max_iterations + 1):
            self.n_iterations = i
            yield i
            if self._converged:
                return
        self._on_exhaust()

    def converged(self, residual: float) -> bool:
        """Record ``residual``; True (and stop) when it meets tolerance.

        A NaN residual never converges -- a diverged iterate must not
        masquerade as a fixed point.
        """
        self.residual = float(residual)
        if self.residual == self.residual and \
                abs(self.residual) <= self.tolerance:
            self._converged = True
        return self._converged

    @property
    def is_converged(self) -> bool:
        """Whether :meth:`converged` has been satisfied."""
        return self._converged

    def _on_exhaust(self) -> None:
        if self._finished:
            return
        self._finished = True
        if self._converged:
            return
        report = self.report()
        if self.raise_on_exhaust:
            raise ConvergenceError(str(report))
        if self.warn_on_exhaust:
            warnings.warn(str(report), ConvergenceWarning, stacklevel=3)

    @property
    def elapsed_s(self) -> float:
        """Wall-clock seconds since the guard was constructed."""
        return time.perf_counter() - self._start  # replint: disable=R008 -- elapsed time decorates reports only

    def report(self, message: str = "") -> ConvergenceReport:
        """The loop outcome as a structured report."""
        return ConvergenceReport(
            name=self.name,
            converged=self._converged,
            n_iterations=self.n_iterations,
            max_iterations=self.max_iterations,
            residual=self.residual,
            tolerance=self.tolerance,
            message=message,
            elapsed_s=self.elapsed_s,
        )


class SimulationBudget:
    """A consumable work budget (events, node expansions, samples).

    With ``raise_on_exhaust`` (the default) :meth:`spend` raises a
    typed :class:`SimulationBudgetError` the moment the budget is
    exceeded; otherwise it returns False and the caller winds down
    gracefully, reporting partial results.
    """

    def __init__(self, limit: Optional[int], name: str = "budget",
                 raise_on_exhaust: bool = True):
        if limit is not None and limit < 1:
            raise ModelDomainError(
                f"{name} limit must be positive or None, got {limit!r}")
        self.limit = limit
        self.name = name
        self.raise_on_exhaust = raise_on_exhaust
        self.spent = 0
        self._start = time.perf_counter()  # replint: disable=R008 -- wall time only feeds diagnostics, never results

    @property
    def elapsed_s(self) -> float:
        """Wall-clock seconds since the budget was constructed."""
        return time.perf_counter() - self._start  # replint: disable=R008 -- elapsed time decorates reports only

    def exhaustion_message(self) -> str:
        """The pinned-format exhaustion diagnostic.

        ``"<name> exhausted: spent <spent> of <limit> after <t> s
        wall-clock"`` -- count first (deterministic, parity-testable),
        wall-clock last (the timeout-tuning datum).
        """
        return (f"{self.name} exhausted: spent {self.spent} of "
                f"{self.limit} after {self.elapsed_s:.3g} s wall-clock")

    def spend(self, amount: int = 1) -> bool:
        """Consume ``amount`` units; False (or raise) once exhausted."""
        self.spent += amount
        if self.limit is not None and self.spent > self.limit:
            if self.raise_on_exhaust:
                raise SimulationBudgetError(self.exhaustion_message())
            return False
        return True

    @property
    def exhausted(self) -> bool:
        """True once more than ``limit`` units have been spent."""
        return self.limit is not None and self.spent > self.limit

    @property
    def remaining(self) -> Optional[int]:
        """Units left (None for an unlimited budget)."""
        if self.limit is None:
            return None
        return max(self.limit - self.spent, 0)
