"""RNG discipline: one sanctioned way to obtain a random Generator.

Every number this reproduction publishes -- yield, timing slack,
analog accuracy -- comes out of a Monte Carlo loop over mismatch
models, so an unseeded generator anywhere in model code makes a
headline figure unreproducible.  The package-wide rule (machine
checked by lint rule R001) is:

* model code never touches the legacy global ``numpy.random.*``
  state, and
* every ``Generator`` is either *injected* by the caller or obtained
  from :func:`resolve_rng`, which is deterministic by default.

:func:`resolve_rng` keeps the long-standing call-site idiom
``seed: Optional[int] = None`` working: an explicit seed gives exactly
the stream ``numpy.random.default_rng(seed)`` would (so fixed-seed
results are bit-for-bit unchanged from the pre-lint code), while
``seed=None`` now draws a child stream from a fixed process-wide root
:class:`numpy.random.SeedSequence` instead of OS entropy.  Two
unseeded calls still get *independent* streams -- repeated sampling
does not silently correlate -- but a full program run is repeatable
end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .errors import ModelDomainError

__all__ = ["DEFAULT_ROOT_SEED", "resolve_rng", "reseed", "spawn_seed"]

#: Root seed of the process-wide deterministic stream used when a
#: call site passes neither ``rng`` nor ``seed``.  65 for the node,
#: 2005 for the paper.
DEFAULT_ROOT_SEED = 65_2005

SeedLike = Union[int, np.integer, np.random.SeedSequence]

_root: np.random.SeedSequence = np.random.SeedSequence(DEFAULT_ROOT_SEED)


def reseed(root_seed: int = DEFAULT_ROOT_SEED) -> None:
    """Reset the process-wide root stream (tests use this).

    After ``reseed(s)`` the sequence of generators handed out for
    ``seed=None`` calls replays exactly, in call order.
    """
    global _root
    if not isinstance(root_seed, (int, np.integer)) or isinstance(
            root_seed, bool):
        raise ModelDomainError(
            f"root_seed must be an integer, got {root_seed!r}")
    _root = np.random.SeedSequence(int(root_seed))


def spawn_seed() -> np.random.SeedSequence:
    """Draw the next child :class:`SeedSequence` from the root stream."""
    return _root.spawn(1)[0]


def resolve_rng(rng: Optional[np.random.Generator] = None,
                seed: Optional[SeedLike] = None) -> np.random.Generator:
    """Return the Generator a model entry point should draw from.

    Precedence: an injected ``rng`` wins; otherwise an explicit
    ``seed`` gives ``numpy.random.default_rng(seed)`` (identical
    stream, draw for draw, to the historical idiom); otherwise a fresh
    deterministic child of the package root stream.

    Raises :class:`ModelDomainError` for a non-``Generator`` ``rng``
    or a non-integer ``seed`` instead of letting numpy throw a bare
    ``TypeError`` deep inside a sweep.
    """
    if rng is not None:
        if not isinstance(rng, np.random.Generator):
            raise ModelDomainError(
                f"rng must be a numpy.random.Generator, got {rng!r}")
        return rng
    if seed is not None:
        if isinstance(seed, np.random.SeedSequence):
            return np.random.default_rng(seed)
        if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
            raise ModelDomainError(
                f"seed must be an integer or SeedSequence, got {seed!r}")
        return np.random.default_rng(int(seed))
    return np.random.default_rng(spawn_seed())
