"""Physical constants and unit helpers used throughout the library.

All internal computations use SI units (metres, volts, amperes, seconds,
farads, joules).  The helpers below make intent explicit at call sites,
e.g. ``nm(65)`` instead of ``65e-9``.
"""

from __future__ import annotations

import math
from ..robust.errors import ModelDomainError

__all__ = [
    "BOLTZMANN", "ELECTRON_CHARGE", "EPSILON_0", "EPSILON_SIO2",
    "EPSILON_SI", "N_INTRINSIC_SI", "ROOM_TEMPERATURE", "RHO_COPPER",
    "RHO_ALUMINIUM",
    "thermal_voltage", "kt_energy",
    "nm", "um", "mm", "to_nm", "to_um",
    "ps", "to_ps", "ns", "to_ns", "ghz", "mhz",
    "ff", "to_ff", "pf",
    "mw", "to_mw", "uw",
    "db", "db20", "from_db", "dbm_to_watts", "watts_to_dbm",
]

# --- fundamental constants (CODATA values, SI units) ---------------------

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Elementary charge [C].
ELECTRON_CHARGE = 1.602176634e-19

#: Vacuum permittivity [F/m].
EPSILON_0 = 8.8541878128e-12

#: Relative permittivity of SiO2.
EPSILON_SIO2 = 3.9

#: Relative permittivity of silicon.
EPSILON_SI = 11.7

#: Intrinsic carrier concentration of silicon at 300 K [1/m^3].
N_INTRINSIC_SI = 1.45e16

#: Default junction / operating temperature [K].
ROOM_TEMPERATURE = 300.0

#: Resistivity of copper [ohm*m].
RHO_COPPER = 1.68e-8

#: Resistivity of aluminium [ohm*m].
RHO_ALUMINIUM = 2.65e-8


def thermal_voltage(temperature: float = ROOM_TEMPERATURE) -> float:
    """Return the thermal voltage kT/q [V] at ``temperature`` [K].

    At 300 K this is approximately 25.85 mV.
    """
    if temperature <= 0:
        raise ModelDomainError(f"temperature must be positive, got {temperature}")
    return BOLTZMANN * temperature / ELECTRON_CHARGE


def kt_energy(temperature: float = ROOM_TEMPERATURE) -> float:
    """Return the thermal energy kT [J] at ``temperature`` [K]."""
    if temperature <= 0:
        raise ModelDomainError(f"temperature must be positive, got {temperature}")
    return BOLTZMANN * temperature


# --- unit helpers ---------------------------------------------------------

def nm(value: float) -> float:
    """Convert nanometres to metres."""
    return value * 1e-9


def um(value: float) -> float:
    """Convert micrometres to metres."""
    return value * 1e-6


def mm(value: float) -> float:
    """Convert millimetres to metres."""
    return value * 1e-3


def to_nm(metres: float) -> float:
    """Convert metres to nanometres."""
    return metres * 1e9


def to_um(metres: float) -> float:
    """Convert metres to micrometres."""
    return metres * 1e6


def ps(value: float) -> float:
    """Convert picoseconds to seconds."""
    return value * 1e-12

def to_ps(seconds: float) -> float:
    """Convert seconds to picoseconds."""
    return seconds * 1e12


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * 1e-9


def to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds * 1e9


def ghz(value: float) -> float:
    """Convert gigahertz to hertz."""
    return value * 1e9


def mhz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * 1e6


def ff(value: float) -> float:
    """Convert femtofarads to farads."""
    return value * 1e-15


def to_ff(farads: float) -> float:
    """Convert farads to femtofarads."""
    return farads * 1e15


def pf(value: float) -> float:
    """Convert picofarads to farads."""
    return value * 1e-12


def mw(value: float) -> float:
    """Convert milliwatts to watts."""
    return value * 1e-3


def to_mw(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts * 1e3


def uw(value: float) -> float:
    """Convert microwatts to watts."""
    return value * 1e-6


def db(ratio: float) -> float:
    """Express a power ratio in decibels (10*log10)."""
    if ratio <= 0:
        raise ModelDomainError(f"ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def db20(ratio: float) -> float:
    """Express an amplitude ratio in decibels (20*log10)."""
    if ratio <= 0:
        raise ModelDomainError(f"ratio must be positive, got {ratio}")
    return 20.0 * math.log10(ratio)


def from_db(decibels: float) -> float:
    """Convert decibels back to a power ratio."""
    return 10.0 ** (decibels / 10.0)


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 1e-3 * 10.0 ** (dbm / 10.0)


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm."""
    if watts <= 0:
        raise ModelDomainError(f"power must be positive, got {watts}")
    return 10.0 * math.log10(watts / 1e-3)
