"""Roadmap projection: extrapolate technology nodes beyond the library.

The paper reasons about "65 nm and beyond" ([1], the ITRS 2003 roadmap).
This module fits the scaling trends of the built-in node library and
projects hypothetical future nodes, so that every analysis in the
library can be asked "and what happens at 22 nm?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..technology.library import all_nodes
from ..technology.node import TechnologyNode
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class TrendFit:
    """Power-law fit of one node parameter against feature size.

    ``value = coefficient * (feature_size / 1 m) ** exponent``, with an
    optional floor below which the parameter saturates (e.g. t_ox
    cannot scale below ~1 nm, V_T stops near 0.1 V -- the saturation
    effects the paper's argument hinges on).
    """

    parameter: str
    coefficient: float
    exponent: float
    floor: float = 0.0

    def evaluate(self, feature_size: float) -> float:
        """Evaluate the trend at ``feature_size`` [m]."""
        if feature_size <= 0:
            raise ModelDomainError("feature_size must be positive")
        value = self.coefficient * feature_size ** self.exponent
        return max(value, self.floor)


# Physical floors the roadmap cannot scale through.
_FLOORS = {
    "vdd": 0.5,          # V: subthreshold operation limit for logic
    "vth": 0.10,         # V: leakage explosion limit
    "tox": 0.8e-9,       # m: direct-tunnelling limit
    "wire_pitch": 20e-9, # m: patterning limit
    "avt": 0.5e-3 * 1e-6,
    "body_factor": 0.02,
}

_FITTED_PARAMETERS = (
    "vdd", "vth", "tox", "wire_pitch", "channel_doping", "subthreshold_n",
    "dibl", "body_factor", "avt", "alpha_power", "i0_per_width",
    "dielectric_k",
)


def fit_trend(parameter: str,
              nodes: Optional[Sequence[TechnologyNode]] = None) -> TrendFit:
    """Fit ``parameter`` vs feature size as a power law over ``nodes``.

    Uses least squares in log-log space.  Defaults to the built-in
    library.
    """
    if nodes is None:
        nodes = all_nodes()
    if len(nodes) < 2:
        raise ModelDomainError("need at least two nodes to fit a trend")
    sizes = np.array([node.feature_size for node in nodes])
    values = np.array([getattr(node, parameter) for node in nodes])
    if np.any(values <= 0):
        raise ModelDomainError(f"parameter {parameter} must be positive to fit")
    exponent, log_coeff = np.polyfit(np.log(sizes), np.log(values), 1)
    return TrendFit(
        parameter=parameter,
        coefficient=math.exp(log_coeff),
        exponent=float(exponent),
        floor=_FLOORS.get(parameter, 0.0),
    )


class Roadmap:
    """Projects :class:`TechnologyNode` parameters to arbitrary sizes.

    Examples
    --------
    >>> roadmap = Roadmap()
    >>> node22 = roadmap.project(22e-9)
    >>> node22.vdd < 1.0
    True
    """

    def __init__(self, nodes: Optional[Sequence[TechnologyNode]] = None):
        self._nodes = list(nodes) if nodes is not None else all_nodes()
        self._fits: Dict[str, TrendFit] = {
            parameter: fit_trend(parameter, self._nodes)
            for parameter in _FITTED_PARAMETERS
        }

    @property
    def fits(self) -> Dict[str, TrendFit]:
        """The per-parameter power-law fits."""
        return dict(self._fits)

    def project(self, feature_size: float,
                name: Optional[str] = None) -> TechnologyNode:
        """Return a projected node at ``feature_size`` [m]."""
        if feature_size <= 0:
            raise ModelDomainError("feature_size must be positive")
        params = {parameter: fit.evaluate(feature_size)
                  for parameter, fit in self._fits.items()}
        # Keep VT a sane fraction of VDD even deep in extrapolation.
        params["vth"] = min(params["vth"], 0.6 * params["vdd"])
        metal_layers = max(node.metal_layers for node in self._nodes)
        return TechnologyNode(
            name=name or f"{feature_size*1e9:.0f}nm(projected)",
            feature_size=feature_size,
            metal_layers=metal_layers,
            **params,
        )

    def project_series(self, feature_sizes: Sequence[float]
                       ) -> List[TechnologyNode]:
        """Project a whole series of nodes."""
        return [self.project(size) for size in feature_sizes]

    def halving_generations(self, start: float, count: int,
                            factor: float = math.sqrt(2.0)
                            ) -> List[TechnologyNode]:
        """Generate ``count`` successive generations from ``start`` [m],
        each smaller by ``factor`` (default: the historical sqrt(2) per
        generation, which doubles density each step)."""
        if count < 1:
            raise ModelDomainError("count must be at least 1")
        sizes = [start / factor ** i for i in range(count)]
        return self.project_series(sizes)
