"""The "end of the road?" analysis: the paper's central question.

Combines the library's models into per-node scorecards that quantify
each of the paper's warning signs, and a composite figure of merit
showing where the *net* benefit of moving to the next node flips:

* digital: intrinsic speedup vs the leakage-power fraction and the
  worst-case-sizing energy penalty (sections 2-3);
* interconnect: the shrinking synchronous region (section 3.3);
* analog: flat power at fixed spec, vanishing headroom (section 4.1);
* mitigation costs: VTCMOS effectiveness loss (section 3.2).

This is the paper's qualitative argument made executable: scaling
keeps paying for raw delay, but an increasing share of the gain is
clawed back by leakage, margining and analog/interconnect overheads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..technology.node import TechnologyNode


@dataclass(frozen=True)
class NodeScorecard:
    """All 'end of the road' indicators for one node.

    Each field is defined so that *larger is worse*, except
    ``gate_speed`` (larger is better).
    """

    node_name: str
    feature_size_nm: float
    gate_speed: float               # 1 / FO4 delay [1/s]
    leakage_fraction: float         # static share of total power
    worst_case_energy_penalty: float  # relative energy overhead
    sigma_vt_over_overdrive: float  # variability pressure
    analog_power_rel: float         # vs the first node, fixed spec
    sync_region_mm: float           # max synchronous wire at 1 GHz
    body_bias_delta_vth: float      # V_T shift per 0.5 V VBS [V]

    def composite_benefit(self, reference: "NodeScorecard") -> float:
        """Net benefit of this node vs ``reference`` (> 1 = still
        worth scaling).

        Speedup, degraded by the growth in leakage fraction, margining
        energy and analog power.  The specific weighting is documented
        rather than principled -- the paper itself argues trends, not
        a closed-form metric.
        """
        speedup = self.gate_speed / reference.gate_speed
        leakage_tax = (1.0 + self.leakage_fraction) \
            / (1.0 + reference.leakage_fraction)
        margin_tax = self.worst_case_energy_penalty \
            / reference.worst_case_energy_penalty
        analog_tax = max(self.analog_power_rel
                         / max(reference.analog_power_rel, 1e-12), 1e-12)
        return speedup / (leakage_tax * margin_tax * analog_tax ** 0.5)


def node_scorecard(node: TechnologyNode,
                   reference_analog_power: Optional[float] = None,
                   operating_temperature: float = 358.0
                   ) -> NodeScorecard:
    """Evaluate every indicator for one node.

    ``reference_analog_power`` normalizes the analog column (pass the
    first node's absolute power); defaults to self-normalized (1.0).
    """
    from ..digital.delay import fo4_delay_model
    from ..digital.energy import leakage_fraction_trend
    from ..digital.sizing import worst_case_penalty
    from ..analog.supply_scaling import mismatch_limited_power
    from ..interconnect.clocktree import max_wire_length_for_skew

    fo4 = fo4_delay_model(node).delay()
    hot = node.at_temperature(operating_temperature)
    leakage = leakage_fraction_trend([hot], frequency=1e9)[0]
    penalty = worst_case_penalty(node)
    analog = mismatch_limited_power(node, speed=100e6, n_bits=10.0)
    if reference_analog_power is None:
        reference_analog_power = analog
    return NodeScorecard(
        node_name=node.name,
        feature_size_nm=node.feature_size * 1e9,
        gate_speed=1.0 / fo4,
        leakage_fraction=leakage["leakage_fraction"],
        worst_case_energy_penalty=penalty.energy_penalty,
        sigma_vt_over_overdrive=node.sigma_vt_min_device / node.overdrive,
        analog_power_rel=analog / reference_analog_power,
        sync_region_mm=max_wire_length_for_skew(node, 1e9) * 1e3,
        body_bias_delta_vth=node.body_factor * 0.5,
    )


def end_of_road_table(nodes: Sequence[TechnologyNode],
                      operating_temperature: float = 358.0
                      ) -> List[Dict[str, float]]:
    """Scorecards plus generation-over-generation net benefit.

    ``benefit_vs_prev`` < 1 marks a transition where the taxes eat the
    whole speedup -- the quantitative "end of the road".
    """
    if not nodes:
        return []
    first_analog = None
    cards: List[NodeScorecard] = []
    for node in nodes:
        from ..analog.supply_scaling import mismatch_limited_power
        if first_analog is None:
            first_analog = mismatch_limited_power(
                node, speed=100e6, n_bits=10.0)
        cards.append(node_scorecard(
            node, reference_analog_power=first_analog,
            operating_temperature=operating_temperature))
    rows = []
    for index, card in enumerate(cards):
        row = {
            "node": card.node_name,
            "feature_size_nm": card.feature_size_nm,
            "fo4_ps": 1e12 / card.gate_speed,
            "leakage_fraction": card.leakage_fraction,
            "wc_energy_penalty": card.worst_case_energy_penalty,
            "sigma_vt_over_vov": card.sigma_vt_over_overdrive,
            "analog_power_rel": card.analog_power_rel,
            "sync_region_mm": card.sync_region_mm,
            "body_bias_mV": card.body_bias_delta_vth * 1e3,
        }
        if index > 0:
            row["benefit_vs_prev"] = card.composite_benefit(
                cards[index - 1])
        rows.append(row)
    return rows


def find_diminishing_node(nodes: Sequence[TechnologyNode],
                          threshold: float = 1.0) -> Optional[str]:
    """First node whose generation-over-generation benefit drops below
    ``threshold`` -- where the road (by this metric) ends."""
    table = end_of_road_table(nodes)
    for row in table[1:]:
        if row["benefit_vs_prev"] < threshold:
            return row["node"]
    return None
