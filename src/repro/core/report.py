"""One-shot reproduction report: every headline trend in one document.

``generate_report()`` runs the library's key analyses (the data behind
the paper's figures and prose claims) and renders them as a markdown
document -- the artifact to attach to a reproduction claim, or to diff
after changing a model.  Runtime: tens of seconds; the heavier
Monte Carlo experiments (Figs. 8-10) live in ``benchmarks/`` and are
summarized by reference.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence, TextIO

from ..technology.node import TechnologyNode


def _table(rows: Sequence[Dict], columns: Optional[List[str]] = None,
           float_format: str = "{:.4g}") -> str:
    if not rows:
        return "(no data)\n"
    columns = columns or list(rows[0].keys())
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            cells.append(float_format.format(value)
                         if isinstance(value, float) else str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def generate_report(nodes: Optional[Sequence[TechnologyNode]] = None,
                    stream: Optional[TextIO] = None,
                    operating_temperature: float = 358.0) -> str:
    """Run the headline analyses and return the markdown report.

    Parameters
    ----------
    nodes:
        Node set (defaults to the built-in library).
    stream:
        Optional stream to write progressively (e.g. sys.stdout).
    operating_temperature:
        Junction temperature for the leakage sections [K].
    """
    from ..technology.library import all_nodes
    from ..core.endofroad import end_of_road_table
    from ..digital.delay import delay_variability_trend
    from ..digital.energy import leakage_fraction_trend
    from ..digital.sizing import worst_case_energy_trend
    from ..digital.gals import gals_trend
    from ..devices.body_bias import body_bias_effectiveness
    from ..interconnect.clocktree import synchronous_region_trend
    from ..analog.supply_scaling import (analog_power_trend,
                                         headroom_trend)
    from ..analog.tradeoff import limit_gap
    from ..variability.dopants import channel_dopant_count
    from ..memory.sram import snm_trend

    nodes = list(nodes) if nodes is not None else all_nodes()
    out = io.StringIO()

    def emit(text: str = "") -> None:
        out.write(text + "\n")
        if stream is not None:
            stream.write(text + "\n")

    emit("# Reproduction report: 65 nm CMOS -- end of the road?")
    emit()
    emit(f"Nodes analyzed: {', '.join(n.name for n in nodes)}.  "
         f"Leakage sections at {operating_temperature - 273.15:.0f} C "
         f"junction.")
    emit()

    emit("## 1. Leakage (paper sections 2.1-2.2, Tab B)")
    emit()
    hot = [node.at_temperature(operating_temperature)
           for node in nodes]
    emit(_table(leakage_fraction_trend(hot, frequency=1e9),
                columns=["node", "dynamic_mW", "subthreshold_mW",
                         "gate_leak_mW", "leakage_fraction"]))

    emit("## 2. Variability (sections 2.4, 3.1; Figs. 2-4, Tab C)")
    emit()
    dopants = [{
        "node": node.name,
        "dopant_atoms": channel_dopant_count(node),
        "sigma_vt_min_mV": node.sigma_vt_min_device * 1e3,
        "sigma_over_overdrive":
            node.sigma_vt_min_device / node.overdrive,
    } for node in nodes]
    emit(_table(dopants))
    emit("Delay impact of a 50 mV V_T shift (Fig. 4):")
    emit()
    emit(_table(delay_variability_trend(nodes),
                columns=["node", "fo4_delay_ps",
                         "delay_increase_pct"]))
    emit("Worst-case sizing energy penalty (Tab C):")
    emit()
    emit(_table(worst_case_energy_trend(nodes),
                columns=["node", "width_ratio",
                         "energy_penalty_pct"]))

    emit("## 3. Leakage countermeasures (section 3.2, Tab D)")
    emit()
    body = [{
        "node": r.node_name,
        "delta_vth_mV": r.delta_vth * 1e3,
        "subthreshold_reduction": r.leakage_reduction,
    } for r in body_bias_effectiveness(nodes, vsb=0.5)]
    emit(_table(body))

    emit("## 4. Interconnect and architecture (sections 2.3, 3.3; "
         "Fig. 5)")
    emit()
    emit(_table(synchronous_region_trend(nodes, frequency=1e9)))
    emit("GALS partitioning of a 10 mm die at 1 GHz:")
    emit()
    emit(_table(gals_trend(nodes, die_edge=10e-3, frequency=1e9),
                columns=["node", "island_edge_mm", "n_islands",
                         "area_overhead_pct"]))

    emit("## 5. Analog scaling (section 4.1; eqs. 4-5, Figs. 6-7)")
    emit()
    gap_rows = [{"node": node.name, "mismatch_over_thermal":
                 limit_gap(node)} for node in nodes]
    emit(_table(gap_rows))
    emit(_table(analog_power_trend(nodes, normalize_to=nodes[0].name),
                columns=["node", "power_matching_only_rel",
                         "power_actual_rel"]))
    emit("Supply headroom:")
    emit()
    emit(_table(headroom_trend(nodes),
                columns=["node", "vdd_V", "cascode_possible",
                         "stackable_devices", "swing_fraction"]))

    emit("## 6. Embedded memory (abstract; 6T SRAM)")
    emit()
    emit(_table(snm_trend(nodes),
                columns=["node", "hold_snm_mV", "read_snm_mV",
                         "sigma_vt_access_mV", "cell_leakage_pA"]))

    emit("## 7. The composite question (end of the road?)")
    emit()
    emit(_table(end_of_road_table(
        nodes, operating_temperature=operating_temperature)))
    emit("Monte-Carlo-heavy reproductions (Figs. 8-10: synthesis, "
         "VCO spurs, SWAN accuracy) run under `benchmarks/` -- see "
         "EXPERIMENTS.md.")
    return out.getvalue()


def write_report(path: str,
                 nodes: Optional[Sequence[TechnologyNode]] = None,
                 operating_temperature: float = 358.0) -> str:
    """Generate the report and write it to ``path``; returns the text."""
    text = generate_report(nodes,
                           operating_temperature=operating_temperature)
    with open(path, "w") as handle:
        handle.write(text)
    return text
