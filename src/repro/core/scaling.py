"""Classical CMOS scaling scenarios (section 1 of the paper).

The paper's introduction recalls the *full scaling* scenario: every
geometry and voltage parameter divides by the scale factor S, giving

* density increase of S^2,
* intrinsic gate delay decrease of 1/S,
* power per gate decrease of 1/S^2 (constant power density),
* slowly degrading (but acceptable) noise margins.

This module implements full scaling, constant-voltage scaling and the
*general* scenario (separate geometry and voltage factors) and derives
those first-order consequences, which benchmark ``test_tab_scaling_laws``
regenerates as the paper's implicit "Table A".
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List

from ..technology.node import TechnologyNode
from ..robust.errors import ModelDomainError


class ScalingScenario(enum.Enum):
    """The three textbook scaling disciplines."""

    #: Geometry and voltages scale by 1/S (Dennard scaling).
    FULL = "full"
    #: Geometry scales by 1/S, voltages stay constant.
    CONSTANT_VOLTAGE = "constant-voltage"
    #: Geometry scales by 1/S, voltages by 1/U with U independent of S.
    GENERAL = "general"


@dataclass(frozen=True)
class ScalingConsequences:
    """First-order consequences of scaling by S (and voltage factor U).

    Every field is a *multiplicative factor* relative to the unscaled
    design; e.g. ``density = 4.0`` means four times denser.
    """

    scenario: ScalingScenario
    s: float
    u: float
    density: float
    gate_delay: float
    power_per_gate: float
    power_density: float
    energy_per_switch: float
    electric_field: float
    current: float
    capacitance: float

    def as_dict(self) -> Dict[str, float]:
        """Return the factors keyed by name (for table generation)."""
        return {
            "density": self.density,
            "gate_delay": self.gate_delay,
            "power_per_gate": self.power_per_gate,
            "power_density": self.power_density,
            "energy_per_switch": self.energy_per_switch,
            "electric_field": self.electric_field,
            "current": self.current,
            "capacitance": self.capacitance,
        }


def scale(s: float, scenario: ScalingScenario = ScalingScenario.FULL,
          u: float = None) -> ScalingConsequences:
    """Derive the first-order scaling consequences for factor ``s`` > 0.

    Parameters
    ----------
    s:
        Geometry scale factor (s > 1 shrinks the design).
    scenario:
        Which scaling discipline to apply.
    u:
        Voltage scale factor for :data:`ScalingScenario.GENERAL`;
        ignored (and derived) for the other scenarios.

    Returns
    -------
    ScalingConsequences
        Multiplicative factors relative to the unscaled design.

    Notes
    -----
    Standard derivation (Rabaey et al., [2] in the paper).  With
    geometry scaled by 1/s and voltage by 1/u: capacitance C = Cox*W*L
    scales by 1/s, long-channel saturation current I ~ (W/L)*Cox*V^2
    scales by s/u^2, so delay C*V/I, power V*I, density s^2 and energy
    C*V^2 follow.  Full scaling (u = s) recovers the paper's headline
    numbers: density s^2, delay 1/s, power 1/s^2 at constant power
    density.
    """
    if s <= 0:
        raise ModelDomainError(f"scale factor must be positive, got {s}")
    if scenario is ScalingScenario.FULL:
        u = s
    elif scenario is ScalingScenario.CONSTANT_VOLTAGE:
        u = 1.0
    else:
        if u is None or u <= 0:
            raise ModelDomainError(
                "general scaling requires a positive voltage factor u")

    # Factor convention: new_value = old_value * factor.
    capacitance = 1.0 / s                   # C = Cox*W*L, Cox ~ s, area ~ 1/s^2
    voltage = 1.0 / u
    # Saturation current I ~ (W/L) * Cox * (V - VT)^2 -> s * (1/u^2) ... the
    # W/L ratio is scale-invariant, Cox scales by s, V^2 by 1/u^2:
    current = s / u ** 2
    gate_delay = capacitance * voltage / current      # C*V/I
    power_per_gate = voltage * current                # V*I (dynamic, fixed f)
    density = s ** 2
    power_density = power_per_gate * density
    energy_per_switch = capacitance * voltage ** 2    # C*V^2
    electric_field = s / u                            # V / geometry

    return ScalingConsequences(
        scenario=scenario, s=s, u=u,
        density=density,
        gate_delay=gate_delay,
        power_per_gate=power_per_gate,
        power_density=power_density,
        energy_per_switch=energy_per_switch,
        electric_field=electric_field,
        current=current,
        capacitance=capacitance,
    )


def scaling_table(s_values: List[float],
                  scenario: ScalingScenario = ScalingScenario.FULL,
                  u: float = None) -> List[Dict[str, float]]:
    """Tabulate :func:`scale` over several scale factors.

    Returns one row per ``s``, each row a dict with ``s`` plus the
    consequence factors.  This regenerates the paper's section-1
    full-scaling claims (density S^2, delay 1/S, power 1/S^2).
    """
    rows = []
    for s in s_values:
        consequences = scale(s, scenario, u)
        row = {"s": s}
        row.update(consequences.as_dict())
        rows.append(row)
    return rows


def node_scale_factor(from_node: TechnologyNode,
                      to_node: TechnologyNode) -> float:
    """Geometry scale factor S between two technology nodes (> 1 if
    ``to_node`` is smaller)."""
    return from_node.feature_size / to_node.feature_size


def voltage_scale_factor(from_node: TechnologyNode,
                         to_node: TechnologyNode) -> float:
    """Supply-voltage scale factor U between two nodes."""
    return from_node.vdd / to_node.vdd


def effective_scenario(from_node: TechnologyNode,
                       to_node: TechnologyNode,
                       tolerance: float = 0.15) -> ScalingScenario:
    """Classify which textbook scenario a real node transition resembles.

    Real roadmaps scale voltage slower than geometry (the deviation the
    paper builds its argument on); this helper quantifies that.
    """
    s = node_scale_factor(from_node, to_node)
    u = voltage_scale_factor(from_node, to_node)
    if abs(u - 1.0) <= tolerance * abs(s - 1.0):
        return ScalingScenario.CONSTANT_VOLTAGE
    if abs(u - s) <= tolerance * abs(s - 1.0):
        return ScalingScenario.FULL
    return ScalingScenario.GENERAL


def noise_margin_trend(nodes: List[TechnologyNode]) -> List[Dict[str, float]]:
    """First-order static noise margin of a CMOS inverter per node.

    NM ~ (V_DD - 2*V_T)/2 + V_T/2 in the symmetric approximation; the
    paper notes the margin decreases with scaling but stays acceptable.
    Returns absolute margin [V] and margin relative to V_DD.
    """
    rows = []
    for node in nodes:
        switching = node.vdd / 2.0
        margin = min(switching - node.vth / 2.0,
                     node.vdd - switching - node.vth / 2.0) + node.vth / 2.0
        margin = max(margin, 0.0)
        # Simple symmetric estimate: NM = (VDD/2 + VT)/2 bounded by VDD/2.
        nm_est = min(node.vdd / 2.0, (node.vdd / 2.0 + node.vth) / 2.0)
        rows.append({
            "node": node.name,
            "feature_size_nm": node.feature_size * 1e9,
            "noise_margin_V": nm_est,
            "noise_margin_rel": nm_est / node.vdd,
            "margin_V": margin,
        })
    return rows
