"""Core: constants, scaling laws, roadmap projection, end-of-road."""

from . import constants
from .constants import (
    BOLTZMANN,
    ELECTRON_CHARGE,
    EPSILON_0,
    ROOM_TEMPERATURE,
    kt_energy,
    thermal_voltage,
)
from .scaling import (
    ScalingConsequences,
    ScalingScenario,
    effective_scenario,
    node_scale_factor,
    noise_margin_trend,
    scale,
    scaling_table,
    voltage_scale_factor,
)
from .roadmap import Roadmap, TrendFit, fit_trend
from .report import generate_report, write_report
from .endofroad import (
    NodeScorecard,
    end_of_road_table,
    find_diminishing_node,
    node_scorecard,
)

__all__ = [
    "constants",
    "BOLTZMANN", "ELECTRON_CHARGE", "EPSILON_0", "ROOM_TEMPERATURE",
    "kt_energy", "thermal_voltage",
    "ScalingConsequences", "ScalingScenario", "effective_scenario",
    "node_scale_factor", "noise_margin_trend", "scale", "scaling_table",
    "voltage_scale_factor",
    "Roadmap", "TrendFit", "fit_trend",
    "generate_report", "write_report",
    "NodeScorecard", "end_of_road_table", "find_diminishing_node",
    "node_scorecard",
]
