"""SARIF 2.1.0 serialization of a lint report.

One ``run`` with driver ``replint``; every registered rule (plus the
engine-level ``R000`` and ``E999`` pseudo-rules) appears in the
driver's rule table so CI code-scanning UIs can show descriptions.
Waived findings are emitted as results carrying an ``inSource``
suppression -- they surface in the UI as suppressed, not silently
dropped.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .findings import Finding, LintReport
from .rules import get_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: Engine-level codes without Rule classes behind them.
_PSEUDO_RULES = [
    ("E999", "parse-error", "file could not be read or parsed"),
    ("R000", "undocumented-waiver",
     "a replint waiver must carry a reason after the code list"),
]


def _rule_table() -> List[Dict[str, Any]]:
    table = [
        {"id": code, "name": name,
         "shortDescription": {"text": description}}
        for code, name, description in _PSEUDO_RULES]
    for rule in get_rules():
        table.append({
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "properties": {"scope": rule.scope},
        })
    return table


def _result(finding: Finding, rule_index: Dict[str, int],
            suppressed: bool) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.code,
        "level": "error" if finding.code == "E999" else "warning",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": str(finding.path).replace("\\", "/")},
                "region": {
                    "startLine": max(1, finding.line),
                    "startColumn": max(1, finding.col + 1)},
            },
        }],
    }
    if finding.code in rule_index:
        result["ruleIndex"] = rule_index[finding.code]
    if suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def to_sarif(report: LintReport) -> Dict[str, Any]:
    """The report as a SARIF 2.1.0 log (a plain JSON-able dict)."""
    rules = _rule_table()
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}
    results = [_result(finding, rule_index, suppressed=False)
               for finding in report.findings]
    results += [_result(finding, rule_index, suppressed=True)
                for finding in report.waived]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "replint",
                "informationUri":
                    "https://example.invalid/repro/docs/architecture",
                "rules": rules,
            }},
            "results": results,
            "properties": {
                "nFiles": report.n_files,
                "rulesRun": list(report.rules),
            },
        }],
    }
