"""Lint engine: file discovery, rule dispatch, caching, waivers.

The engine (not individual rules) owns the waiver mechanics: rules
yield every violation they see; findings whose line carries a
documented ``# replint: disable=CODE -- reason`` waiver move to the
report's ``waived`` list.  Waivers *without* a reason are themselves
violations (``R000``) and cannot be waived.

Rule dispatch is scope-driven.  ``module``/``project`` rules need the
parsed AST of every file; ``semantic`` rules need only the per-file
:class:`~repro.lint.semantic.summary.FileSummary` objects, which are
served from the content-hash cache under ``.replint_cache/`` when
possible.  A run selecting *only* semantic rules therefore skips
``ast.parse`` entirely on warm files -- the summaries carry the
signatures, effects, call candidates, waiver tables, and even the
syntax-error records (``E999``) the engine needs.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..robust.errors import ModelDomainError
from .context import ModuleInfo, load_module, module_name_for
from .findings import Finding, LintReport
from .rules import Rule, get_rules
from .semantic import AnalysisCache, build_semantic_model, summarize
from .semantic.cache import DEFAULT_CACHE_DIR
from .semantic.summary import FileSummary, error_summary

#: Directories never worth descending into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "build", "dist",
              ".mypy_cache", ".pytest_cache", "node_modules"}


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises :class:`ModelDomainError` for paths that do not exist or
    name a non-Python file: a silently dropped argument looks exactly
    like a clean lint run, which is the worst possible failure mode
    for a checker.
    """
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                candidate for candidate in sorted(path.rglob("*.py"))
                if not _SKIP_DIRS.intersection(candidate.parts))
        elif path.is_file():
            if path.suffix != ".py":
                raise ModelDomainError(
                    f"not a Python file: {path}")
            files.append(path)
        else:
            raise ModelDomainError(f"no such file or directory: {path}")
    seen = set()
    unique = []
    for path in files:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _summarize_path(path: Path, content: str,
                    cache: Optional[AnalysisCache]) -> FileSummary:
    """Cache-through summary of one file (parses only on miss)."""
    if cache is not None:
        cached = cache.load(path, content)
        if cached is not None:
            return cached
    info, error = load_module(path)
    if error is not None:
        summary = error_summary(str(path), module_name_for(path), error)
    else:
        summary = summarize(info)
    if cache is not None:
        cache.store(path, content, summary)
    return summary


def run_lint(paths: Sequence[Path],
             select: Optional[Sequence[str]] = None,
             ignore: Optional[Sequence[str]] = None,
             *,
             use_cache: bool = True,
             cache_dir: Optional[os.PathLike] = None) -> LintReport:
    """Lint ``paths`` and return the aggregated report.

    ``use_cache``/``cache_dir`` control the semantic summary cache
    (default ``.replint_cache/`` under the working directory); the
    cache is a pure accelerator -- results are identical with it off.
    """
    rules = get_rules(select=select, ignore=ignore)
    files = discover_files([Path(p) for p in paths])

    ast_rules = [r for r in rules if r.scope in ("module", "project")]
    semantic_rules = [r for r in rules if r.scope == "semantic"]
    cache = AnalysisCache(cache_dir or DEFAULT_CACHE_DIR) \
        if (use_cache and semantic_rules) else None

    infos: List[ModuleInfo] = []
    summaries: Dict[str, FileSummary] = {}
    findings: List[Finding] = []
    #: per-path documented-waiver lookup, from whichever per-file
    #: record (AST or summary) this run produced.
    waiver_lookup: Dict[str, object] = {}
    #: per-path undocumented waiver sites for R000.
    undocumented: Dict[str, List] = {}

    for path in files:
        key = str(path)
        if ast_rules or not semantic_rules:
            info, error = load_module(path)
            if error is not None:
                findings.append(Finding(path=key, line=1, col=0,
                                        code="E999", message=error))
                if semantic_rules:
                    summaries[key] = error_summary(
                        key, module_name_for(path), error)
                continue
            infos.append(info)
            waiver_lookup[key] = info.waived_codes_for_line
            undocumented[key] = [(w.line, w.codes)
                                 for w in info.undocumented]
            if semantic_rules:
                content = info.source
                summary = None
                if cache is not None:
                    summary = cache.load(path, content)
                if summary is None:
                    summary = summarize(info)
                    if cache is not None:
                        cache.store(path, content, summary)
                summaries[key] = summary
        else:
            # Semantic-only run: summaries (cached or fresh) carry
            # everything, including syntax errors and waiver tables.
            try:
                content = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                findings.append(Finding(
                    path=key, line=1, col=0, code="E999",
                    message=f"cannot read: {exc}"))
                continue
            summary = _summarize_path(path, content, cache)
            summaries[key] = summary
            if summary.error is not None:
                findings.append(Finding(path=key, line=1, col=0,
                                        code="E999",
                                        message=summary.error))
                continue
            waiver_lookup[key] = summary.waived_codes_for_line
            undocumented[key] = list(summary.undocumented_waivers)

    # R000: undocumented waivers are findings in their own right and
    # deliberately bypass the waiver filter below.
    unwaivable: List[Finding] = []
    for key in sorted(undocumented):
        for line, codes in undocumented[key]:
            unwaivable.append(Finding(
                path=key, line=line, col=0, code="R000",
                message=("waiver without a reason -- write "
                         "'# replint: disable="
                         f"{','.join(codes)} -- <why>'")))

    for rule in ast_rules:
        if rule.scope == "project":
            findings.extend(rule.check_project(infos))
        else:
            for info in infos:
                findings.extend(rule.check_module(info))

    if semantic_rules:
        model = build_semantic_model(summaries)
        for rule in semantic_rules:
            findings.extend(rule.check_semantic(model))

    active: List[Finding] = []
    waived: List[Finding] = []
    for finding in findings:
        lookup = waiver_lookup.get(finding.path)
        if lookup is not None and finding.code in lookup(finding.line):
            waived.append(finding)
        else:
            active.append(finding)
    active.extend(unwaivable)

    return LintReport(findings=sorted(active), waived=sorted(waived),
                      n_files=len(files),
                      rules=[rule.code for rule in rules])


def iter_rule_docs() -> Iterable[Rule]:
    """All registered rules, for ``--list-rules``."""
    return get_rules()
