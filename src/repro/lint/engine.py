"""Lint engine: file discovery, rule dispatch, waiver filtering.

The engine (not individual rules) owns the waiver mechanics: rules
yield every violation they see; findings whose line carries a
documented ``# replint: disable=CODE -- reason`` waiver move to the
report's ``waived`` list.  Waivers *without* a reason are themselves
violations (``R000``) and cannot be waived.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .context import ModuleInfo, load_module
from .findings import Finding, LintReport
from .rules import Rule, get_rules

#: Directories never worth descending into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "build", "dist",
              ".mypy_cache", ".pytest_cache", "node_modules"}


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                candidate for candidate in sorted(path.rglob("*.py"))
                if not _SKIP_DIRS.intersection(candidate.parts))
        elif path.suffix == ".py":
            files.append(path)
    seen = set()
    unique = []
    for path in files:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def run_lint(paths: Sequence[Path],
             select: Optional[Sequence[str]] = None,
             ignore: Optional[Sequence[str]] = None) -> LintReport:
    """Lint ``paths`` and return the aggregated report."""
    rules = get_rules(select=select, ignore=ignore)
    files = discover_files([Path(p) for p in paths])

    infos: List[ModuleInfo] = []
    findings: List[Finding] = []
    for path in files:
        info, error = load_module(path)
        if error is not None:
            findings.append(Finding(
                path=str(path), line=1, col=0, code="E999",
                message=error))
            continue
        infos.append(info)

    # R000: undocumented waivers are findings in their own right and
    # deliberately bypass the waiver filter below.
    unwaivable: List[Finding] = []
    for info in infos:
        for waiver in info.undocumented:
            unwaivable.append(Finding(
                path=str(info.path), line=waiver.line, col=0,
                code="R000",
                message=("waiver without a reason -- write "
                         "'# replint: disable="
                         f"{','.join(waiver.codes)} -- <why>'")))

    for rule in rules:
        if rule.scope == "project":
            findings.extend(rule.check_project(infos))
        else:
            for info in infos:
                findings.extend(rule.check_module(info))

    info_by_path: Dict[str, ModuleInfo] = {
        str(info.path): info for info in infos}
    active: List[Finding] = []
    waived: List[Finding] = []
    for finding in findings:
        info = info_by_path.get(finding.path)
        if info is not None and finding.code in \
                info.waived_codes_for_line(finding.line):
            waived.append(finding)
        else:
            active.append(finding)
    active.extend(unwaivable)

    return LintReport(findings=sorted(active), waived=sorted(waived),
                      n_files=len(files),
                      rules=[rule.code for rule in rules])


def iter_rule_docs() -> Iterable[Rule]:
    """All registered rules, for ``--list-rules``."""
    return get_rules()
