"""Per-file lint context: parsed AST, module name, inline waivers.

Waiver grammar (checked by the engine, not by individual rules)::

    x = risky()  # replint: disable=R001 -- why this is fine
    # replint: disable=R003,R005 -- standalone: applies to next line
    # replint: disable-file=R002 -- applies to the whole file

A waiver **must** carry a reason after the code list; a bare
``replint: disable=R001`` is itself reported (code ``R000``) and
cannot be waived away.  The separator between codes and reason is any
run of ``-``, an em-dash, or a colon.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

#: One waiver within a comment.  The reason runs to the next ``#``
#: (or end of comment) so several waivers can share one comment line;
#: reasons therefore cannot contain ``#`` themselves.
_WAIVER_RE = re.compile(
    r"#\s*replint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+?)\s*"
    r"(?:(?:--+|—|–|:)\s*(?P<reason>[^#]*[^#\s]))?\s*(?=#|$)")


@dataclass(frozen=True)
class Waiver:
    """One parsed ``replint: disable`` comment."""

    line: int                   # line the waiver comment sits on
    codes: Tuple[str, ...]
    reason: str
    file_wide: bool = False

    @property
    def documented(self) -> bool:
        return bool(self.reason)


@dataclass
class ModuleInfo:
    """Everything a rule needs to know about one source file."""

    path: Path
    module: str                 # dotted name, e.g. "repro.variability.ler"
    source: str
    tree: ast.Module
    #: effective waived line -> waiver (standalone comments shift to
    #: the next line); file-wide waivers live in ``file_waivers``.
    line_waivers: Dict[int, List[Waiver]] = field(default_factory=dict)
    file_waivers: List[Waiver] = field(default_factory=list)
    #: waivers missing a reason (reported as R000 by the engine).
    undocumented: List[Waiver] = field(default_factory=list)

    def waived_codes_for_line(self, line: int) -> Set[str]:
        codes: Set[str] = set()
        for waiver in self.file_waivers:
            if waiver.documented:
                codes.update(waiver.codes)
        for waiver in self.line_waivers.get(line, []):
            if waiver.documented:
                codes.update(waiver.codes)
        return codes


def module_name_for(path: Path) -> str:
    """Dotted module name, anchored at the installed package root.

    The anchor is the last ``repro`` component whose parent is
    ``src`` -- the layout the package actually installs from -- so a
    vendored or fixture tree *inside* the package
    (``src/repro/vendor/repro/...``) or outside it
    (``tests/repro_fixtures/repro/...``) cannot hijack the anchor.
    Trees with no ``src/repro`` segment fall back to the last
    ``repro`` component (synthetic package layouts in test fixtures);
    files outside any ``repro`` tree use their stem, so
    package-scoped rules simply never match them.
    """
    parts = list(path.with_suffix("").parts)
    anchor = None
    for index, part in enumerate(parts):
        if part == "repro" and index > 0 and parts[index - 1] == "src":
            anchor = index
    if anchor is None:
        for index, part in enumerate(parts):
            if part == "repro":
                anchor = index
    if anchor is None:
        return parts[-1]
    dotted = parts[anchor:]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def _parse_waivers(source: str) -> List[Waiver]:
    """Extract waiver comments via the tokenizer (comment-exact)."""
    waivers: List[Waiver] = []
    import io
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            for match in _WAIVER_RE.finditer(token.string):
                codes = tuple(sorted({
                    c.strip().upper()
                    for c in match.group("codes").split(",")
                    if c.strip()}))
                if not codes:
                    continue
                waivers.append(Waiver(
                    line=token.start[0],
                    codes=codes,
                    reason=(match.group("reason") or "").strip(),
                    file_wide=match.group("kind") == "disable-file"))
    except tokenize.TokenError:  # pragma: no cover - unparsable files
        pass                     # are reported as E999 by the loader
    return waivers


def load_module(path: Path) -> Tuple[Optional[ModuleInfo], Optional[str]]:
    """Parse one file; returns (info, None) or (None, error message)."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return None, f"cannot read: {error}"
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return None, f"syntax error: {error.msg} (line {error.lineno})"

    info = ModuleInfo(path=path, module=module_name_for(path),
                      source=source, tree=tree)
    lines = source.splitlines()
    for waiver in _parse_waivers(source):
        if not waiver.documented:
            info.undocumented.append(waiver)
            continue
        if waiver.file_wide:
            info.file_waivers.append(waiver)
            continue
        text = lines[waiver.line - 1] if waiver.line <= len(lines) else ""
        standalone = text.lstrip().startswith("#")
        target = waiver.line + 1 if standalone else waiver.line
        info.line_waivers.setdefault(target, []).append(waiver)
    return info, None
