"""Finding and report datatypes for ``repro.lint``."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Orders by (path, line, col, code) so reports are stable across
    runs and dict/set iteration orders.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """``path:line:col: CODE message`` -- the text-report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} " \
               f"{self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}


@dataclass
class LintReport:
    """Aggregate outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    waived: List[Finding] = field(default_factory=list)
    n_files: int = 0
    rules: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clean": self.clean,
            "n_files": self.n_files,
            "rules": list(self.rules),
            "n_findings": len(self.findings),
            "n_waived": len(self.waived),
            "findings": [f.to_dict() for f in self.findings],
            "waived": [f.to_dict() for f in self.waived],
        }
