"""Project call graph + transitive effect propagation.

Assembled fresh on every run from the per-file summaries (cached or
just extracted) -- the graph itself is never cached, which is what
makes cache invalidation transitive *by construction*: re-summarizing
one edited file is enough for every downstream fact to be rebuilt.

Resolution of a callee candidate recorded by the summarizer:

* an exact function qualname (``repro.mod.fn``, ``repro.mod.Cls.m``);
* a class qualname -- expands to the methods that run when the class
  is *used*: ``__init__``/``__post_init__`` (construction),
  ``__call__`` (decorator/callable use), ``__enter__``/``__exit__``
  (context-manager use).  Conservative: using a class reaches all of
  them;
* a re-export -- ``repro.perf.timed`` chases through the aliases
  recorded for ``repro/perf/__init__.py`` to
  ``repro.perf.profile.timed`` (bounded chase, cycles tolerated).

Unresolvable candidates contribute no edges; the graph is an
under-approximation everywhere except class expansion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .summary import FileSummary, FunctionSummary

_CLASS_ENTRY_METHODS = ("__init__", "__post_init__", "__call__",
                        "__enter__", "__exit__")

#: Alias-chase bound; re-export chains deeper than this are abandoned.
_MAX_ALIAS_HOPS = 8


@dataclass(frozen=True)
class EffectOrigin:
    """Why a function carries an effect, with a witness call chain.

    ``chain`` runs from the carrying function itself down to ``sink``,
    the function whose body performs the effect (``chain[0]`` is the
    carrier, ``chain[-1] == sink``; a direct effect has a length-1
    chain).
    """

    kind: str
    detail: str
    sink: str
    sink_line: int
    chain: Tuple[str, ...]

    def describe(self) -> str:
        if len(self.chain) <= 1:
            return f"{self.detail} at {self.sink}:{self.sink_line}"
        route = " -> ".join(part.rsplit(".", 2)[-1]
                            if part.count(".") < 2
                            else ".".join(part.rsplit(".", 2)[-2:])
                            for part in self.chain)
        return (f"{self.detail} at {self.sink}:{self.sink_line} "
                f"via {route}")


class CallGraph:
    """Queryable intra-project call graph with effect propagation."""

    def __init__(self, summaries: Dict[str, FileSummary]):
        self.summaries = summaries
        #: qualname -> FunctionSummary, merged across all files.
        self.functions: Dict[str, FunctionSummary] = {}
        #: class qualname -> {"fields": [...], "methods": [...]}
        self.classes: Dict[str, Dict[str, List[str]]] = {}
        #: module dotted name -> that module's alias map.
        self._module_aliases: Dict[str, Dict[str, str]] = {}
        for summary in summaries.values():
            self.functions.update(summary.functions)
            for name, record in summary.classes.items():
                self.classes[f"{summary.module}.{name}"] = record
            self._module_aliases[summary.module] = summary.aliases
        self._edges: Dict[str, Tuple[str, ...]] = {}
        self._callers: Dict[str, List[str]] = {}
        self._build_edges()
        self._origins: Dict[str, Dict[str, EffectOrigin]] = {}
        self._propagate()

    # -- resolution ---------------------------------------------------

    def _chase_alias(self, candidate: str) -> Optional[str]:
        """One re-export hop: ``pkg.name`` -> ``pkg``'s alias target."""
        prefix, _, name = candidate.rpartition(".")
        aliases = self._module_aliases.get(prefix)
        if aliases and name in aliases and aliases[name] != candidate:
            return aliases[name]
        return None

    def resolve(self, candidate: str) -> List[str]:
        """Function qualnames a recorded candidate actually reaches."""
        seen = set()
        for _ in range(_MAX_ALIAS_HOPS):
            if candidate in seen:
                break
            seen.add(candidate)
            if candidate in self.functions:
                return [candidate]
            if candidate in self.classes:
                methods = self.classes[candidate].get("methods", [])
                return [f"{candidate}.{method}"
                        for method in _CLASS_ENTRY_METHODS
                        if method in methods]
            # ``pkg.Cls.method`` through a re-exported class.
            head, _, tail = candidate.rpartition(".")
            chased = self._chase_alias(candidate)
            if chased is None and head:
                chased_head = self._chase_alias(head)
                if chased_head is not None:
                    chased = f"{chased_head}.{tail}"
            if chased is None:
                return []
            candidate = chased
        return []

    def find(self, name: str) -> List[str]:
        """Resolve a possibly-abbreviated function name.

        Exact qualnames win; otherwise a dotted-suffix match
        (``statistical.monte_carlo_yield`` or a bare function name)
        returns every function it unambiguously denotes.
        """
        resolved = self.resolve(name)
        if resolved:
            return resolved
        suffix = "." + name
        return sorted(qual for qual in self.functions
                      if qual.endswith(suffix))

    # -- structure ----------------------------------------------------

    def _build_edges(self) -> None:
        for qual in sorted(self.functions):
            targets: List[str] = []
            for candidate in self.functions[qual].callees:
                for target in self.resolve(candidate):
                    if target != qual and target not in targets:
                        targets.append(target)
            self._edges[qual] = tuple(targets)
            for target in targets:
                self._callers.setdefault(target, []).append(qual)

    def callees(self, qual: str) -> Tuple[str, ...]:
        return self._edges.get(qual, ())

    def callers(self, qual: str) -> Tuple[str, ...]:
        return tuple(self._callers.get(qual, ()))

    # -- effect propagation -------------------------------------------

    def _propagate(self) -> None:
        origins: Dict[str, Dict[str, EffectOrigin]] = {
            qual: {} for qual in self.functions}
        for qual in sorted(self.functions):
            for effect in self.functions[qual].effects:
                if effect.waived:
                    continue
                origins[qual].setdefault(effect.kind, EffectOrigin(
                    kind=effect.kind, detail=effect.detail, sink=qual,
                    sink_line=effect.line, chain=(qual,)))
        # Round-based fixpoint in sorted order: deterministic output
        # regardless of dict insertion order, and each function gains
        # each effect kind at most once, so it terminates.
        changed = True
        while changed:
            changed = False
            for qual in sorted(self.functions):
                mine = origins[qual]
                for callee in self._edges.get(qual, ()):
                    for kind, origin in sorted(
                            origins.get(callee, {}).items()):
                        if kind in mine:
                            continue
                        mine[kind] = EffectOrigin(
                            kind=kind, detail=origin.detail,
                            sink=origin.sink,
                            sink_line=origin.sink_line,
                            chain=(qual,) + origin.chain)
                        changed = True
        self._origins = origins

    def effects_of(self, qual: str) -> Dict[str, EffectOrigin]:
        """Transitive effect kinds carried by ``qual`` (with witnesses)."""
        return dict(self._origins.get(qual, {}))

    def reachable(self, roots: Iterable[str]) -> List[str]:
        """Every function reachable from ``roots`` (roots included)."""
        stack = [root for root in roots if root in self.functions]
        seen = set(stack)
        while stack:
            qual = stack.pop()
            for callee in self._edges.get(qual, ()):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return sorted(seen)
