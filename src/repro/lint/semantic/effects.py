"""Direct effect detection: which nondeterministic operations does a
function body perform *itself*?

Each detector inspects one AST node in the context of the module's
import map and yields ``(kind, detail)`` pairs; the transitive story
(who *reaches* these effects) is the call graph's job
(:mod:`repro.lint.semantic.callgraph`).

The effect vocabulary:

``reads-clock``
    Wall-clock or CPU-clock reads (``time.perf_counter``,
    ``datetime.now``, ...).  Harmless in profiling, fatal in anything
    whose output must replay bit-for-bit.
``unseeded-rng``
    Hidden global RNG state (legacy ``numpy.random.*`` functions,
    stdlib ``random``), unseeded ``default_rng()`` (including the
    ``seed=None`` pass-through), and unseeded
    ``resolve_rng()``/``spawn_seed()`` -- deterministic per process,
    but dependent on global call order, which the shard replay
    contract forbids.
``env-dependent``
    Reads of ambient process/host state: ``os.environ``, PIDs,
    hostnames, CPU counts.
``io``
    Filesystem/subprocess interaction (``open``, ``Path.read_text``,
    ``subprocess.run``, ...).
``unordered-iteration``
    Direct iteration over a set (literal, ``set()``/``frozenset()``
    constructor, or a set-algebra method result) whose order depends
    on hash seeding.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Tuple

from ..astutil import ImportMap, dotted_name, is_none_constant, \
    param_default_map

#: Effect kinds that void a determinism contract when reached from a
#: contract-bearing root (the R008 set -- currently every kind).
NONDETERMINISTIC_EFFECTS: Tuple[str, ...] = (
    "reads-clock", "unseeded-rng", "env-dependent", "io",
    "unordered-iteration",
)

_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns", "time.clock_gettime",
    "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_ENV_CALLS = {
    "os.getenv", "os.getpid", "os.getppid", "os.urandom",
    "os.cpu_count", "os.getcwd", "os.getlogin",
    "platform.system", "platform.node", "platform.platform",
    "platform.machine", "platform.release",
    "socket.gethostname", "socket.getfqdn",
    "getpass.getuser", "multiprocessing.cpu_count",
}

#: Bare attribute chains (not calls) that read ambient state.
_ENV_ATTRS = {"os.environ"}

_IO_CALLS = {
    "open", "io.open",
    "tempfile.mkstemp", "tempfile.mkdtemp",
    "tempfile.NamedTemporaryFile", "tempfile.TemporaryFile",
    "tempfile.TemporaryDirectory",
    "os.remove", "os.unlink", "os.rename", "os.replace",
    "os.makedirs", "os.mkdir", "os.rmdir", "os.listdir",
    "os.scandir", "os.stat",
    "shutil.copy", "shutil.copyfile", "shutil.copytree",
    "shutil.move", "shutil.rmtree",
    "subprocess.run", "subprocess.Popen", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
}

#: Method names that do file I/O on any receiver (Path idioms).
_IO_METHODS = {
    "read_text", "write_text", "read_bytes", "write_bytes",
}

#: numpy.random attributes that are construction machinery, not
#: hidden global state (mirrors the R001 allow list).
_NUMPY_ALLOWED = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}

_STDLIB_RANDOM = {
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "sample", "shuffle", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "gammavariate", "triangular",
    "vonmisesvariate", "paretovariate", "weibullvariate", "seed",
    "getrandbits", "getstate", "setstate", "binomialvariate",
}

_SET_METHODS = {
    "intersection", "union", "difference", "symmetric_difference",
}


def _default_rng_unseeded(node: ast.Call,
                          stack: Sequence[ast.AST]) -> bool:
    """The R001 predicate: no arguments, a literal ``None``, or a
    bare name that is an enclosing parameter defaulting to ``None``
    (the ``seed=None`` pass-through)."""
    if node.keywords:
        return False
    if not node.args:
        return True
    first = node.args[0]
    if is_none_constant(first):
        return True
    if isinstance(first, ast.Name):
        for fn in reversed(list(stack)):
            if not isinstance(fn, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                continue
            defaults = param_default_map(fn)
            if first.id in defaults:
                return is_none_constant(defaults[first.id])
    return False


def _forwarding_unpinned(node: ast.Call) -> bool:
    """The R006 predicate for ``resolve_rng``/``spawn_seed``: pinned
    by any argument that is not a literal ``None`` (forwarding a
    caller's ``rng``/``seed`` variable is the sanctioned idiom)."""
    pinned = [arg for arg in node.args if not is_none_constant(arg)]
    pinned += [kw for kw in node.keywords
               if not is_none_constant(kw.value)]
    return not pinned


def _rng_effects(node: ast.Call, canonical: str, dotted: str,
                 import_heads: frozenset,
                 stack: Sequence[ast.AST]) -> Iterator[Tuple[str, str]]:
    parts = canonical.split(".")
    if canonical.startswith("numpy.random.") and len(parts) >= 3:
        attr = parts[2]
        if attr == "default_rng":
            if _default_rng_unseeded(node, stack):
                yield "unseeded-rng", "unseeded numpy.random.default_rng()"
        elif attr not in _NUMPY_ALLOWED:
            yield "unseeded-rng", f"legacy global numpy.random.{attr}()"
        return
    if canonical == "numpy.random.default_rng" \
            and _default_rng_unseeded(node, stack):
        yield "unseeded-rng", "unseeded default_rng()"
        return
    bare = dotted.split(".")[-1]
    if len(parts) == 2 and parts[0] == "random" \
            and dotted.split(".")[0] in import_heads \
            and parts[1] in _STDLIB_RANDOM:
        yield "unseeded-rng", f"stdlib random.{parts[1]}()"
        return
    if (canonical == "repro.robust.rng.resolve_rng"
            or (bare == "resolve_rng" and "." not in dotted)):
        if _forwarding_unpinned(node):
            yield "unseeded-rng", \
                "resolve_rng() without rng or seed (global child stream)"
        return
    if (canonical == "repro.robust.rng.spawn_seed"
            or (bare == "spawn_seed" and "." not in dotted)):
        if _forwarding_unpinned(node):
            yield "unseeded-rng", \
                "spawn_seed() without a parent seed (global child stream)"


def _unordered_source(expr: ast.AST) -> str:
    """Why iterating ``expr`` is hash-order dependent ('' if it isn't)."""
    if isinstance(expr, ast.Set):
        return "a set literal"
    if isinstance(expr, ast.SetComp):
        return "a set comprehension"
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func) or ""
        bare = name.split(".")[-1]
        if bare in ("set", "frozenset") and "." not in name:
            return f"{bare}(...)"
        if isinstance(expr.func, ast.Attribute) \
                and expr.func.attr in _SET_METHODS:
            return f".{expr.func.attr}(...)"
    return ""


#: The sanctioned generator construction site: its internal
#: ``default_rng``/root-stream handling is what the call-site
#: detectors (``resolve_rng()``/``spawn_seed()`` unpinned) model, so
#: detecting it *inside* the module would double-count every caller.
_RNG_MODULE = "repro.robust.rng"


def detect_effects(node: ast.AST, imports: ImportMap,
                   import_heads: frozenset,
                   stack: Sequence[ast.AST],
                   module: str = "") -> List[Tuple[str, str]]:
    """All ``(kind, detail)`` effects this single AST node performs."""
    found: List[Tuple[str, str]] = []
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is not None:
            canonical = imports.canonical(dotted)
            if canonical in _CLOCK_CALLS:
                found.append(("reads-clock", canonical))
            elif canonical in _ENV_CALLS:
                found.append(("env-dependent", f"{canonical}()"))
            elif canonical in _IO_CALLS:
                found.append(("io", f"{canonical}()"))
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _IO_METHODS:
                found.append(("io", f".{node.func.attr}()"))
            if module != _RNG_MODULE:
                found.extend(_rng_effects(node, canonical, dotted,
                                          import_heads, stack))
    elif isinstance(node, ast.Attribute):
        dotted = dotted_name(node)
        if dotted is not None and imports.canonical(dotted) in _ENV_ATTRS:
            found.append(("env-dependent",
                          imports.canonical(dotted)))
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        source = _unordered_source(node.iter)
        if source:
            found.append(("unordered-iteration",
                          f"for-loop over {source}"))
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp)):
        for generator in node.generators:
            source = _unordered_source(generator.iter)
            if source:
                found.append(("unordered-iteration",
                              f"comprehension over {source}"))
    return found
