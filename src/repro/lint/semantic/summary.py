"""Per-file semantic summaries: the cacheable unit of analysis.

A :class:`FileSummary` is everything the project-wide passes need to
know about one source file -- per-function signatures, direct effect
sets, resolved callee candidates, name references, ``__all__``
exports, backend/contract registrations, and the waiver tables -- as
plain JSON-serializable data.  It is a *pure function of the file's
content and path*, which is what makes the incremental cache
(:mod:`repro.lint.semantic.cache`) sound: a content hash fully keys
the summary, and everything derived across files (the call graph,
transitive effects) is recomputed from summaries on every run.

Call resolution here is deliberately an under-approximation that
never guesses: bare names resolve through local symbols and explicit
imports, ``self.x`` through the enclosing class (attribute *reads*
too, so properties join the graph), ``Cls.meth`` and
``var = Cls(...); var.meth()`` through locally visible classes.
Unresolvable receivers contribute no edges.  Nested function bodies
fold into their enclosing top-level function: defining a closure is
not executing it, but for reachability lint the conservative merge
is the useful convention (it is what makes decorator factories and
``wrapper`` closures carry their effects).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..astutil import ImportMap, dotted_name
from ..context import ModuleInfo
from .effects import detect_effects

#: Bump whenever the summary layout or the extraction semantics
#: change: the cache keys include it, so stale layouts self-evict.
SUMMARY_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ParamSummary:
    """One parameter of a summarized function."""

    name: str
    kind: str                   # "pos" | "kwonly" | "vararg" | "kwarg"
    default: Optional[str]      # source text, None when required
    annotation: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind,
                "default": self.default, "annotation": self.annotation}


@dataclass(frozen=True)
class EffectSummary:
    """One direct nondeterministic/impure operation in a function."""

    kind: str
    line: int
    col: int
    detail: str
    waived: bool = False        # an R008 waiver sits on the source line

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "line": self.line, "col": self.col,
                "detail": self.detail, "waived": self.waived}


@dataclass
class FunctionSummary:
    """One module-level function or method, semantically summarized."""

    name: str                   # bare name
    qual: str                   # "repro.mod.fn" / "repro.mod.Cls.fn"
    class_name: Optional[str]
    line: int
    col: int
    params: List[ParamSummary] = field(default_factory=list)
    decorators: List[str] = field(default_factory=list)
    effects: List[EffectSummary] = field(default_factory=list)
    callees: List[str] = field(default_factory=list)
    is_public: bool = True
    is_shard_entry: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "qual": self.qual,
            "class_name": self.class_name,
            "line": self.line, "col": self.col,
            "params": [p.to_dict() for p in self.params],
            "decorators": list(self.decorators),
            "effects": [e.to_dict() for e in self.effects],
            "callees": list(self.callees),
            "is_public": self.is_public,
            "is_shard_entry": self.is_shard_entry,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FunctionSummary":
        return FunctionSummary(
            name=data["name"], qual=data["qual"],
            class_name=data["class_name"],
            line=data["line"], col=data["col"],
            params=[ParamSummary(**p) for p in data["params"]],
            decorators=list(data["decorators"]),
            effects=[EffectSummary(**e) for e in data["effects"]],
            callees=list(data["callees"]),
            is_public=data["is_public"],
            is_shard_entry=data["is_shard_entry"],
        )


@dataclass
class BackendRegistration:
    """One ``register_backend(engine, name, target)`` call site."""

    engine: str                 # "" when not a string literal
    backend: str
    target: str                 # resolved qualname, "" when opaque
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {"engine": self.engine, "backend": self.backend,
                "target": self.target, "line": self.line,
                "col": self.col}


@dataclass
class ContractRegistration:
    """One ``register_contract(engine, ..., entry_points=...)`` site."""

    engine: str
    entry_points: List[str]
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {"engine": self.engine,
                "entry_points": list(self.entry_points),
                "line": self.line, "col": self.col}


@dataclass
class FileSummary:
    """Everything the semantic passes need to know about one file."""

    path: str
    module: str
    error: Optional[str] = None         # syntax/read error (E999)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: class name -> {"fields": [...], "methods": [...]} in source order
    classes: Dict[str, Dict[str, List[str]]] = field(default_factory=dict)
    #: bare imported name -> absolute repro target ("repro.x.y.name")
    aliases: Dict[str, str] = field(default_factory=dict)
    backend_registrations: List[BackendRegistration] = \
        field(default_factory=list)
    contract_registrations: List[ContractRegistration] = \
        field(default_factory=list)
    #: referenced bare name -> sorted owners ("" = module level / class
    #: body / method; otherwise the enclosing top-level function name)
    references: Dict[str, List[str]] = field(default_factory=dict)
    exports: List[str] = field(default_factory=list)   # __all__ strings
    #: documented waivers: effective line -> codes; file-wide codes;
    #: undocumented waiver sites (line, codes) for R000.
    line_waiver_codes: Dict[int, List[str]] = field(default_factory=dict)
    file_waiver_codes: List[str] = field(default_factory=list)
    undocumented_waivers: List[Tuple[int, List[str]]] = \
        field(default_factory=list)

    def waived_codes_for_line(self, line: int) -> set:
        codes = set(self.file_waiver_codes)
        codes.update(self.line_waiver_codes.get(line, ()))
        return codes

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path, "module": self.module,
            "error": self.error,
            "functions": {qual: fn.to_dict()
                          for qual, fn in self.functions.items()},
            "classes": self.classes,
            "aliases": self.aliases,
            "backend_registrations": [
                r.to_dict() for r in self.backend_registrations],
            "contract_registrations": [
                r.to_dict() for r in self.contract_registrations],
            "references": self.references,
            "exports": self.exports,
            "line_waiver_codes": {str(line): codes for line, codes
                                  in self.line_waiver_codes.items()},
            "file_waiver_codes": self.file_waiver_codes,
            "undocumented_waivers": [
                [line, codes] for line, codes
                in self.undocumented_waivers],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FileSummary":
        return FileSummary(
            path=data["path"], module=data["module"],
            error=data["error"],
            functions={qual: FunctionSummary.from_dict(fn)
                       for qual, fn in data["functions"].items()},
            classes=data["classes"],
            aliases=data["aliases"],
            backend_registrations=[
                BackendRegistration(**r)
                for r in data["backend_registrations"]],
            contract_registrations=[
                ContractRegistration(**r)
                for r in data["contract_registrations"]],
            references=data["references"],
            exports=data["exports"],
            line_waiver_codes={int(line): codes for line, codes
                               in data["line_waiver_codes"].items()},
            file_waiver_codes=data["file_waiver_codes"],
            undocumented_waivers=[
                (int(line), list(codes)) for line, codes
                in data["undocumented_waivers"]],
        )


def error_summary(path: str, module: str, error: str) -> FileSummary:
    """Summary standing in for an unparsable file."""
    return FileSummary(path=path, module=module, error=error)


# -- extraction -------------------------------------------------------


def _repro_aliases(info: ModuleInfo) -> Dict[str, str]:
    """Imported bare name -> absolute repro-internal dotted target."""
    mapping: Dict[str, str] = {}
    # For a package __init__ the module *is* the package, so level-1
    # relative imports resolve against it, not against its parent.
    if info.path.stem == "__init__":
        package_parts = info.module.split(".")
    else:
        package_parts = info.module.split(".")[:-1]
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    mapping[alias.asname
                            or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts[:len(package_parts)
                                           - (node.level - 1)]
                base = ".".join(base_parts
                                + ([node.module] if node.module else []))
            elif node.module and node.module.split(".")[0] == "repro":
                base = node.module
            else:
                continue
            if base.split(".")[0] != "repro":
                continue
            for alias in node.names:
                mapping[alias.asname or alias.name] = \
                    f"{base}.{alias.name}"
    return mapping


def _params(fn: ast.AST) -> List[ParamSummary]:
    args = fn.args
    params: List[ParamSummary] = []

    def annotation(arg: ast.arg) -> str:
        try:
            return ast.unparse(arg.annotation) if arg.annotation else ""
        except Exception:           # pragma: no cover - defensive
            return ""

    positional = args.posonlyargs + args.args
    pos_defaults: List[Optional[ast.AST]] = \
        [None] * (len(positional) - len(args.defaults)) \
        + list(args.defaults)
    for arg, default in zip(positional, pos_defaults):
        params.append(ParamSummary(
            name=arg.arg, kind="pos",
            default=ast.unparse(default) if default is not None else None,
            annotation=annotation(arg)))
    if args.vararg is not None:
        params.append(ParamSummary(name=args.vararg.arg, kind="vararg",
                                   default=None,
                                   annotation=annotation(args.vararg)))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        params.append(ParamSummary(
            name=arg.arg, kind="kwonly",
            default=ast.unparse(default) if default is not None else None,
            annotation=annotation(arg)))
    if args.kwarg is not None:
        params.append(ParamSummary(name=args.kwarg.arg, kind="kwarg",
                                   default=None,
                                   annotation=annotation(args.kwarg)))
    return params


def _is_shard_entry(fn: ast.AST) -> bool:
    if fn.name == "run_shard":
        return True
    args = fn.args
    names = [arg.arg for arg in
             args.posonlyargs + args.args + args.kwonlyargs]
    return "shard" in names


class _Resolver:
    """Resolve dotted call/attribute targets to qualname candidates."""

    def __init__(self, info: ModuleInfo, aliases: Dict[str, str]):
        self.module = info.module
        self.aliases = aliases
        self.local_symbols = {
            node.name for node in info.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef))}
        self.local_classes = {
            node.name for node in info.tree.body
            if isinstance(node, ast.ClassDef)}

    def resolve(self, dotted: str, class_name: Optional[str],
                var_types: Dict[str, str]) -> Optional[str]:
        parts = dotted.split(".")
        head = parts[0]
        if head == "self" and class_name is not None:
            if len(parts) == 2:
                return f"{self.module}.{class_name}.{parts[1]}"
            return None
        if len(parts) == 1:
            if head in self.local_symbols:
                return f"{self.module}.{head}"
            target = self.aliases.get(head)
            return target
        if head in self.local_classes and len(parts) == 2:
            return f"{self.module}.{head}.{parts[1]}"
        if head in var_types and len(parts) == 2:
            return f"{var_types[head]}.{parts[1]}"
        if head in self.aliases:
            return ".".join([self.aliases[head]] + parts[1:])
        if head == "repro":
            return dotted
        return None


def _local_var_types(fn: ast.AST, resolver: _Resolver,
                     class_name: Optional[str]) -> Dict[str, str]:
    """``var -> class qualname`` for direct constructor assignments."""
    types: Dict[str, str] = {}
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            continue
        dotted = dotted_name(node.value.func)
        if dotted is None:
            continue
        target = resolver.resolve(dotted, class_name, {})
        if target is None:
            continue
        # Heuristic: a CamelCase final component is a class.
        final = target.split(".")[-1]
        if final[:1].isupper():
            types[node.targets[0].id] = target
    return types


def _walk_function(fn: ast.AST):
    """Yield (node, stack-of-enclosing-defs) under one function body,
    folding nested defs into it."""
    def visit(node: ast.AST, stack: List[ast.AST]):
        for child in ast.iter_child_nodes(node):
            yield child, stack
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                yield from visit(child, stack + [child])
            else:
                yield from visit(child, stack)
    yield from visit(fn, [fn])


def _summarize_function(info: ModuleInfo, fn: ast.AST,
                        class_name: Optional[str],
                        resolver: _Resolver, imports: ImportMap,
                        import_heads: frozenset) -> FunctionSummary:
    qual = f"{info.module}.{class_name}.{fn.name}" if class_name \
        else f"{info.module}.{fn.name}"
    var_types = _local_var_types(fn, resolver, class_name)
    callees: set = set()
    decorators: List[str] = []
    effects: List[EffectSummary] = []

    for decorator in fn.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        dotted = dotted_name(target)
        if dotted:
            decorators.append(dotted)
            resolved = resolver.resolve(dotted, class_name, var_types)
            if resolved:
                callees.add(resolved)

    for node, stack in _walk_function(fn):
        for kind, detail in detect_effects(node, imports, import_heads,
                                           stack, module=info.module):
            line = getattr(node, "lineno", fn.lineno)
            col = getattr(node, "col_offset", 0)
            effects.append(EffectSummary(
                kind=kind, line=line, col=col, detail=detail,
                waived="R008" in info.waived_codes_for_line(line)))
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted:
                resolved = resolver.resolve(dotted, class_name,
                                            var_types)
                if resolved:
                    callees.add(resolved)
        elif isinstance(node, ast.Attribute) \
                and isinstance(node.ctx, ast.Load) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self" and class_name is not None:
            # self.<attr> reads pull properties into the graph.
            callees.add(f"{info.module}.{class_name}.{node.attr}")

    return FunctionSummary(
        name=fn.name, qual=qual, class_name=class_name,
        line=fn.lineno, col=fn.col_offset,
        params=_params(fn),
        decorators=decorators,
        effects=sorted(effects, key=lambda e: (e.line, e.col, e.kind)),
        callees=sorted(callees),
        is_public=not fn.name.startswith("_")
        and not (class_name or "").startswith("_"),
        is_shard_entry=_is_shard_entry(fn),
    )


def _literal_str(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _call_arg(call: ast.Call, position: int,
              keyword: str) -> Optional[ast.AST]:
    node: Optional[ast.AST] = call.args[position] \
        if len(call.args) > position else None
    for kw in call.keywords:
        if kw.arg == keyword:
            node = kw.value
    return node


def _collect_registrations(info: ModuleInfo, resolver: _Resolver,
                           summary: FileSummary) -> None:
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted_name(node.func)
        short = callee.split(".")[-1] if callee else ""
        if short == "register_backend":
            engine = _literal_str(_call_arg(node, 0, "engine")) or ""
            backend = _literal_str(_call_arg(node, 1, "name")) or ""
            target_node = _call_arg(node, 2, "call")
            target = ""
            if target_node is not None:
                dotted = dotted_name(target_node)
                if dotted:
                    target = resolver.resolve(dotted, None, {}) or ""
            summary.backend_registrations.append(BackendRegistration(
                engine=engine, backend=backend, target=target,
                line=node.lineno, col=node.col_offset))
        elif short == "register_contract":
            engine = _literal_str(_call_arg(node, 0, "engine")) or ""
            points_node = _call_arg(node, 3, "entry_points")
            points: List[str] = []
            if isinstance(points_node, (ast.Tuple, ast.List)):
                for element in points_node.elts:
                    literal = _literal_str(element)
                    if literal is not None:
                        points.append(literal)
            summary.contract_registrations.append(ContractRegistration(
                engine=engine, entry_points=points,
                line=node.lineno, col=node.col_offset))


def _collect_references(info: ModuleInfo,
                        summary: FileSummary) -> None:
    references: Dict[str, set] = {}

    def note(name: str, owner: str) -> None:
        references.setdefault(name, set()).add(owner)

    def visit(node: ast.AST, owner: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Name) \
                    and isinstance(child.ctx, ast.Load):
                note(child.id, owner)
            elif isinstance(child, ast.Attribute):
                note(child.attr, owner)
            elif isinstance(child, ast.ImportFrom):
                for alias in child.names:
                    note(alias.name, owner)
            child_owner = owner
            if owner == "" and isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is info.tree:
                child_owner = child.name
            visit(child, child_owner)

    visit(info.tree, "")
    for node in info.tree.body:
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in node.targets) \
                and isinstance(node.value, (ast.List, ast.Tuple)):
            for element in node.value.elts:
                literal = _literal_str(element)
                if literal is not None:
                    summary.exports.append(literal)
    summary.references = {name: sorted(owners)
                          for name, owners in sorted(references.items())}


def summarize(info: ModuleInfo) -> FileSummary:
    """Extract the :class:`FileSummary` of one parsed module."""
    aliases = _repro_aliases(info)
    resolver = _Resolver(info, aliases)
    imports = ImportMap(info.tree)
    import_heads = frozenset(_import_heads(info))

    summary = FileSummary(path=str(info.path), module=info.module,
                          aliases=aliases)

    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _summarize_function(info, node, None, resolver,
                                     imports, import_heads)
            summary.functions[fn.qual] = fn
        elif isinstance(node, ast.ClassDef):
            fields: List[str] = []
            methods: List[str] = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    fn = _summarize_function(info, item, node.name,
                                             resolver, imports,
                                             import_heads)
                    summary.functions[fn.qual] = fn
                elif isinstance(item, ast.AnnAssign) \
                        and isinstance(item.target, ast.Name):
                    fields.append(item.target.id)
            summary.classes[node.name] = {"fields": fields,
                                          "methods": methods}

    _collect_registrations(info, resolver, summary)
    _collect_references(info, summary)

    summary.line_waiver_codes = {
        line: sorted({code for waiver in waivers if waiver.documented
                      for code in waiver.codes})
        for line, waivers in info.line_waivers.items()}
    summary.file_waiver_codes = sorted(
        {code for waiver in info.file_waivers if waiver.documented
         for code in waiver.codes})
    summary.undocumented_waivers = [
        (waiver.line, list(waiver.codes))
        for waiver in info.undocumented]
    return summary


def _import_heads(info: ModuleInfo):
    heads = set()
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                heads.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                heads.add(alias.asname or alias.name)
    return heads
