"""repro.lint.semantic -- project-wide semantic analysis layer.

The per-file rules (R001-R007) are syntactic: they judge what a
function *does*, line by line.  The headline guarantees of this
codebase, though, are *reachability* properties -- "no shard entry
point may **reach** a wall-clock read", "scalar/batched twins may not
drift apart" -- so this subpackage lowers every parsed module to a
compact, JSON-serializable :class:`~repro.lint.semantic.summary.
FileSummary` (per-function effect sets, resolved callees, signatures,
references, waivers) and assembles the summaries into a queryable
:class:`~repro.lint.semantic.model.SemanticModel`:

* :mod:`~repro.lint.semantic.effects` -- direct nondeterminism /
  impurity detection (``reads-clock``, ``unseeded-rng``,
  ``env-dependent``, ``io``, ``unordered-iteration``);
* :mod:`~repro.lint.semantic.summary` -- the per-file summary
  extraction (a pure function of file content, hence cacheable);
* :mod:`~repro.lint.semantic.callgraph` -- intra-project call
  resolution into a graph with transitive effect propagation and
  witness chains;
* :mod:`~repro.lint.semantic.cache` -- the incremental analysis
  cache (content-hash keyed summaries under ``.replint_cache/``) so
  semantic-only lint runs skip re-parsing unchanged files;
* :mod:`~repro.lint.semantic.model` -- ties summaries + graph into
  the object the semantic rules (R008-R010) consume.

Summaries are extracted once per file content; the propagation layer
is recomputed from summaries on every run (it is cheap relative to
parsing), which makes cache invalidation transitive by construction:
editing one file re-summarizes only that file, yet every derived
transitive fact downstream of it is rebuilt.
"""

from .cache import AnalysisCache
from .callgraph import CallGraph, EffectOrigin
from .effects import NONDETERMINISTIC_EFFECTS
from .model import SemanticModel, build_semantic_model
from .summary import (EffectSummary, FileSummary, FunctionSummary,
                      ParamSummary, SUMMARY_SCHEMA_VERSION, summarize)

__all__ = [
    "AnalysisCache",
    "CallGraph",
    "EffectOrigin",
    "EffectSummary",
    "FileSummary",
    "FunctionSummary",
    "NONDETERMINISTIC_EFFECTS",
    "ParamSummary",
    "SUMMARY_SCHEMA_VERSION",
    "SemanticModel",
    "build_semantic_model",
    "summarize",
]
