"""Incremental analysis cache: content-hash keyed file summaries.

Each entry is one :class:`~repro.lint.semantic.summary.FileSummary`
serialized to JSON under ``.replint_cache/``, keyed by
``sha256(schema-version || path || content)``.  Because a summary is
a pure function of (path, content), a hash hit is always safe to
reuse; anything *derived* across files (call graph, transitive
effects) is recomputed from summaries on every run, so no transitive
invalidation bookkeeping is needed -- editing a file changes its hash,
misses the cache, and every downstream fact rebuilds automatically.

Writes are atomic (tempfile + ``os.replace``) so a crashed or
concurrent run can never leave a torn entry; unreadable or
schema-mismatched entries are treated as misses and overwritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from ...robust.errors import ModelDomainError
from .summary import FileSummary, SUMMARY_SCHEMA_VERSION

#: Default location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".replint_cache"


class AnalysisCache:
    """Content-addressed store of per-file semantic summaries."""

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR, *,
                 max_files: int = 4096):
        if not isinstance(max_files, int) or isinstance(max_files, bool):
            raise ModelDomainError(
                f"max_files must be an int, got {max_files!r}")
        if max_files < 1:
            raise ModelDomainError(
                f"max_files must be >= 1, got {max_files}")
        self.root = Path(root)
        self.max_files = max_files
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(path: os.PathLike, content: str) -> str:
        digest = hashlib.sha256()
        digest.update(f"v{SUMMARY_SCHEMA_VERSION}\0".encode("utf-8"))
        digest.update(f"{Path(path)}\0".encode("utf-8"))
        digest.update(content.encode("utf-8"))
        return digest.hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, path: os.PathLike,
             content: str) -> Optional[FileSummary]:
        """The cached summary for this exact content, or ``None``."""
        entry = self._entry_path(self.key_for(path, content))
        try:
            data = json.loads(entry.read_text(encoding="utf-8"))
            summary = FileSummary.from_dict(data["summary"]) \
                if data.get("schema") == SUMMARY_SCHEMA_VERSION else None
        except (OSError, ValueError, KeyError, TypeError):
            summary = None
        if summary is None:
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def store(self, path: os.PathLike, content: str,
              summary: FileSummary) -> None:
        """Persist a summary atomically; errors are non-fatal (the
        cache is an accelerator, never a correctness dependency)."""
        entry = self._entry_path(self.key_for(path, content))
        payload = json.dumps({"schema": SUMMARY_SCHEMA_VERSION,
                              "summary": summary.to_dict()},
                             separators=(",", ":"), sort_keys=True)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(
                dir=str(self.root), suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                os.replace(temp_name, entry)
            finally:
                if os.path.exists(temp_name):
                    os.unlink(temp_name)
        except OSError:
            return
        self._prune()

    def _prune(self) -> None:
        """Drop oldest entries beyond ``max_files`` (by mtime)."""
        try:
            entries = sorted(self.root.glob("*.json"),
                             key=lambda p: p.stat().st_mtime)
        except OSError:
            return
        for stale in entries[:max(0, len(entries) - self.max_files)]:
            try:
                stale.unlink()
            except OSError:
                continue
