"""The object the semantic rules consume.

A :class:`SemanticModel` bundles the per-file summaries (cache-served
or freshly extracted) with the :class:`~repro.lint.semantic.callgraph.
CallGraph` built from them, and pre-digests the project-wide facts
the R008-R010 rules query: determinism roots (shard entry points,
backend registration targets, contract entry points), backend twin
pairs per engine, and the merged reference/export tables for liveness
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .callgraph import CallGraph
from .summary import (BackendRegistration, ContractRegistration,
                      FileSummary, FunctionSummary)


@dataclass
class EnginePair:
    """One backend engine's registered oracle/vectorized targets."""

    engine: str
    oracle: str = ""            # resolved qualname ("" = unregistered)
    vectorized: str = ""
    #: (path, line) of the registration sites, for finding anchors.
    oracle_site: Tuple[str, int] = ("", 0)
    vectorized_site: Tuple[str, int] = ("", 0)
    entry_points: List[str] = field(default_factory=list)
    contract_site: Tuple[str, int] = ("", 0)


@dataclass
class SemanticModel:
    """Project-wide semantic facts, ready for rule consumption."""

    #: path string -> that file's summary.
    summaries: Dict[str, FileSummary]
    graph: CallGraph
    engines: Dict[str, EnginePair] = field(default_factory=dict)
    #: bare name -> True when referenced outside the function's own
    #: body somewhere in the project (or exported via ``__all__``).
    _live_names: Set[str] = field(default_factory=set)
    #: bare name -> owners that reference it ("module.owner" tags).
    _reference_owners: Dict[str, Set[str]] = field(default_factory=dict)

    # -- R008: determinism roots --------------------------------------

    def determinism_roots(self) -> List[Tuple[str, str]]:
        """``(qualname, why-it-is-a-root)`` for every contract-bearing
        function: R006 shard entry points, registered backend targets,
        and functions named in an equivalence contract."""
        roots: Dict[str, str] = {}

        def add(qual: str, why: str) -> None:
            roots.setdefault(qual, why)

        for qual in sorted(self.graph.functions):
            if self.graph.functions[qual].is_shard_entry:
                add(qual, "shard entry point")
        for engine in sorted(self.engines):
            pair = self.engines[engine]
            if pair.oracle:
                add(pair.oracle, f"oracle backend of '{engine}'")
            if pair.vectorized:
                add(pair.vectorized,
                    f"vectorized backend of '{engine}'")
            for name in pair.entry_points:
                for qual in self.graph.find(name):
                    add(qual,
                        f"entry point of '{engine}' contract")
        return sorted(roots.items())

    # -- R010: liveness -----------------------------------------------

    def is_referenced(self, fn: FunctionSummary) -> bool:
        """Is ``fn`` referenced anywhere beyond its own body?"""
        owners = self._reference_owners.get(fn.name)
        if not owners:
            return False
        # A reference from the function's own body (recursion) does
        # not make it live: its owner tag equals the qualname.
        return any(owner != fn.qual for owner in owners)

    def live_names(self) -> Set[str]:
        return set(self._live_names)

    def reference_owners(self, name: str) -> Set[str]:
        return set(self._reference_owners.get(name, ()))


def build_semantic_model(
        summaries: Dict[str, FileSummary]) -> SemanticModel:
    """Assemble the model from per-file summaries (any dict key)."""
    graph = CallGraph(summaries)
    model = SemanticModel(summaries=dict(summaries), graph=graph)

    for summary in summaries.values():
        for registration in summary.backend_registrations:
            _fold_backend(model, summary, registration)
        for registration in summary.contract_registrations:
            _fold_contract(model, summary, registration)
        for name, owners in summary.references.items():
            bucket = model._reference_owners.setdefault(name, set())
            for owner in owners:
                # Tag owners with their defining module so a function
                # referencing itself in another module still counts.
                bucket.add(f"{summary.module}.{owner}" if owner
                           else f"{summary.module}:<toplevel>")
            model._live_names.add(name)
        for exported in summary.exports:
            model._live_names.add(exported)
    return model


def _fold_backend(model: SemanticModel, summary: FileSummary,
                  registration: BackendRegistration) -> None:
    if not registration.engine:
        return
    pair = model.engines.setdefault(
        registration.engine, EnginePair(engine=registration.engine))
    site = (summary.path, registration.line)
    if registration.backend == "oracle":
        pair.oracle = registration.target
        pair.oracle_site = site
    elif registration.backend == "vectorized":
        pair.vectorized = registration.target
        pair.vectorized_site = site


def _fold_contract(model: SemanticModel, summary: FileSummary,
                   registration: ContractRegistration) -> None:
    if not registration.engine:
        return
    pair = model.engines.setdefault(
        registration.engine, EnginePair(engine=registration.engine))
    pair.entry_points.extend(registration.entry_points)
    pair.contract_site = (summary.path, registration.line)
