"""repro.lint -- AST- and call-graph-based model-correctness linter.

Self-contained static analysis (stdlib ``ast``/``tokenize`` plus the
``repro.robust.errors`` taxonomy, no third-party dependencies)
enforcing the codebase's cross-cutting invariants:

========  ========================  =======================================
code      name                      invariant
========  ========================  =======================================
``R001``  rng-discipline            no hidden global RNG state; streams
                                    are injected or seeded via
                                    :func:`repro.robust.rng.resolve_rng`
``R002``  validation-boundary       public numeric model APIs reach
                                    ``repro.robust`` validation
``R003``  exception-hygiene         no bare except; raises use the
                                    ``repro.robust.errors`` taxonomy
``R004``  fault-registry-drift      fault-sweep registrations track the
                                    live API surface in both directions
``R005``  vectorization-safety      no scalar ``math.*`` on
                                    array-annotated parameters
``R006``  shard-seed-discipline     shard entry points derive their
                                    streams from the pinned shard seed
``R007``  backend-conformance       every registered engine exposes both
                                    an oracle and a vectorized path
``R008``  transitive-determinism    no determinism root *reaches* a
                                    nondeterministic effect through the
                                    project call graph
``R009``  twin-signature-parity     scalar/batched twin signatures agree
                                    modulo the batching axis
``R010``  dead-public-api           public functions are referenced or
                                    exported somewhere in the project
========  ========================  =======================================

R001-R007 are per-file (syntactic); R008-R010 run on the project-wide
semantic model (:mod:`repro.lint.semantic`) built from content-hash
cached per-file summaries (``.replint_cache/``; disable with
``--no-cache``).  Run ``python -m repro.lint --list-rules`` for the
live catalog, and see ``docs/architecture.md`` for the full rule
catalog and waiver policy.
"""

from .engine import discover_files, run_lint
from .findings import Finding, LintReport
from .rules import Rule, all_rules, get_rules, register
from .sarif import to_sarif
from .semantic import (AnalysisCache, CallGraph, SemanticModel,
                       build_semantic_model, summarize)

__all__ = [
    "AnalysisCache",
    "CallGraph",
    "Finding",
    "LintReport",
    "Rule",
    "SemanticModel",
    "all_rules",
    "build_semantic_model",
    "discover_files",
    "get_rules",
    "register",
    "run_lint",
    "summarize",
    "to_sarif",
]
