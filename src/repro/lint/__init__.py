"""repro.lint -- AST-based model-correctness linter.

Self-contained static analysis (stdlib ``ast``/``tokenize`` plus the
``repro.robust.errors`` taxonomy, no third-party dependencies)
enforcing the codebase's cross-cutting invariants:

========  ======================  =========================================
code      name                    invariant
========  ======================  =========================================
``R001``  rng-discipline          no hidden global RNG state; streams are
                                  injected or seeded via
                                  :func:`repro.robust.rng.resolve_rng`
``R002``  validation-boundary     public numeric model APIs reach
                                  ``repro.robust`` validation
``R003``  exception-hygiene       no bare except; raises use the
                                  ``repro.robust.errors`` taxonomy
``R004``  fault-registry-drift    fault-sweep registrations track the
                                  live API surface in both directions
``R005``  vectorization-safety    no scalar ``math.*`` on array-annotated
                                  parameters
========  ======================  =========================================

Run ``python -m repro.lint --list-rules`` for the live catalog, and see
``docs/architecture.md`` for the waiver policy.
"""

from .engine import discover_files, run_lint
from .findings import Finding, LintReport
from .rules import Rule, all_rules, get_rules, register

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "discover_files",
    "get_rules",
    "register",
    "run_lint",
]
