"""R002 validation-boundary coverage.

Public module-level functions in the model packages that accept raw
numeric inputs must route through the robustness layer before doing
physics: either directly (an ``@validated`` decorator, a ``check_*``
call, ``ensure_finite_output``, or an explicit taxonomy raise) or by
delegating to something that does (a validated function, or a class
whose ``__init__``/``__post_init__`` validates).  The delegation
closure is computed project-wide, so thin public wrappers over guarded
cores stay clean without decoration.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..astutil import annotation_source, decorator_names, dotted_name
from ..context import ModuleInfo
from ..findings import Finding
from . import Rule, register

#: Packages whose public API forms the model boundary.
GUARDED_PACKAGES = (
    "repro.devices", "repro.digital", "repro.interconnect",
    "repro.analog", "repro.variability", "repro.technology",
)

#: Annotation substrings marking a parameter as raw numeric input.
_NUMERIC_TOKENS = ("float", "int", "ndarray", "ArrayLike", "complex")

#: Parameters that are control knobs, not physical quantities.
_EXEMPT_PARAMS = {"self", "cls", "seed", "rng"}

#: Raising one of these counts as an explicit domain guard.
_TAXONOMY = {
    "ReproError", "ModelDomainError", "ConvergenceError",
    "RoadmapDataError", "SimulationBudgetError", "CalibrationError",
    "ModelIndexError",
}

_DIRECT_CALL_EVIDENCE_PREFIX = "check_"
_DIRECT_CALL_EVIDENCE = {"ensure_finite_output"}


@dataclass
class _FunctionFacts:
    """What one function (or method) does, validation-wise."""

    qualname: str                       # "repro.mod.fn" / "repro.mod.Cls.fn"
    node: ast.AST
    module: str
    public: bool
    numeric_params: List[str]
    direct: bool                        # direct evidence in the body
    callees: Set[str] = field(default_factory=set)  # resolved qualnames
    has_evidence: bool = False


@register
class ValidationBoundaryRule(Rule):
    code = "R002"
    name = "validation-boundary"
    description = (
        "Public numeric model APIs must validate their inputs via "
        "repro.robust (directly or by delegating to guarded code).")
    scope = "project"

    def check_project(
            self, infos: Sequence[ModuleInfo]) -> Iterable[Finding]:
        facts: Dict[str, _FunctionFacts] = {}
        info_by_module = {info.module: info for info in infos}
        for info in infos:
            if self._guarded(info.module):
                self._collect(info, facts)

        self._close_over_delegation(facts)

        findings: List[Finding] = []
        for fact in facts.values():
            if "." in fact.qualname.rsplit(fact.module + ".", 1)[-1]:
                continue                # methods: constructors feed the
                                        # closure but are not boundaries
            if not fact.public or not fact.numeric_params \
                    or fact.has_evidence:
                continue
            info = info_by_module[fact.module]
            findings.append(Finding(
                path=str(info.path), line=fact.node.lineno,
                col=fact.node.col_offset, code=self.code,
                message=(
                    f"public function '{fact.node.name}' takes numeric "
                    f"input ({', '.join(fact.numeric_params[:4])}) but "
                    "never reaches repro.robust validation -- add "
                    "@validated/check_* or delegate to guarded code")))
        return findings

    # -- collection ----------------------------------------------------

    @staticmethod
    def _guarded(module: str) -> bool:
        return any(module == pkg or module.startswith(pkg + ".")
                   for pkg in GUARDED_PACKAGES)

    def _collect(self, info: ModuleInfo,
                 facts: Dict[str, _FunctionFacts]) -> None:
        imports = _local_imports(info)
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, node, None, imports, facts)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item,
                                  (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(info, item, node.name,
                                           imports, facts)

    def _add_function(self, info: ModuleInfo, fn: ast.AST,
                      class_name: Optional[str],
                      imports: Dict[str, str],
                      facts: Dict[str, _FunctionFacts]) -> None:
        qual = f"{info.module}.{class_name}.{fn.name}" if class_name \
            else f"{info.module}.{fn.name}"
        fact = _FunctionFacts(
            qualname=qual, node=fn, module=info.module,
            public=not fn.name.startswith("_") and not (
                class_name or "").startswith("_"),
            numeric_params=_numeric_params(fn),
            direct=_direct_evidence(fn))
        fact.callees = _resolved_callees(fn, info.module, class_name,
                                         imports)
        facts[qual] = fact

    # -- delegation closure --------------------------------------------

    @staticmethod
    def _close_over_delegation(facts: Dict[str, _FunctionFacts]) -> None:
        """Fixpoint: evidence flows backwards along resolved calls.

        Calling a class name counts when that class's ``__init__`` or
        ``__post_init__`` has evidence (dataclass validation in
        ``__post_init__`` is the house style).
        """
        class_ctor_evidence: Dict[str, bool] = {}

        def ctor_ok(class_qual: str) -> bool:
            if class_qual not in class_ctor_evidence:
                class_ctor_evidence[class_qual] = any(
                    facts.get(f"{class_qual}.{ctor}") is not None
                    and facts[f"{class_qual}.{ctor}"].has_evidence
                    for ctor in ("__init__", "__post_init__"))
            return class_ctor_evidence[class_qual]

        for fact in facts.values():
            fact.has_evidence = fact.direct
        changed = True
        while changed:
            changed = False
            class_ctor_evidence.clear()
            for fact in facts.values():
                if fact.has_evidence:
                    continue
                for callee in fact.callees:
                    target = facts.get(callee)
                    if (target is not None and target.has_evidence) \
                            or ctor_ok(callee):
                        fact.has_evidence = True
                        changed = True
                        break


# -- helpers ----------------------------------------------------------


def _numeric_params(fn: ast.AST) -> List[str]:
    names = []
    args = fn.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg in _EXEMPT_PARAMS:
            continue
        annotation = annotation_source(arg)
        if any(token in annotation for token in _NUMERIC_TOKENS):
            names.append(arg.arg)
    return names


def _direct_evidence(fn: ast.AST) -> bool:
    if "validated" in decorator_names(fn):
        return True
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if callee:
                bare = callee.split(".")[-1]
                if bare.startswith(_DIRECT_CALL_EVIDENCE_PREFIX) \
                        or bare in _DIRECT_CALL_EVIDENCE:
                    return True
        elif isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = dotted_name(target)
            if name and name.split(".")[-1] in _TAXONOMY:
                return True
    return False


def _local_imports(info: ModuleInfo) -> Dict[str, str]:
    """Imported bare name -> absolute repro qualname (best effort)."""
    mapping: Dict[str, str] = {}
    package_parts = info.module.split(".")[:-1]
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        if node.level:
            base_parts = package_parts[:len(package_parts)
                                       - (node.level - 1)]
            base = ".".join(base_parts + ([node.module]
                                          if node.module else []))
        elif node.module and node.module.startswith("repro"):
            base = node.module
        else:
            continue
        for alias in node.names:
            mapping[alias.asname or alias.name] = f"{base}.{alias.name}"
    return mapping


def _resolved_callees(fn: ast.AST, module: str,
                      class_name: Optional[str],
                      imports: Dict[str, str]) -> Set[str]:
    """Qualnames this function may delegate to.

    Bare names resolve to same-module symbols or repro imports;
    ``self.method()`` resolves within the enclosing class.
    """
    callees: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if not dotted:
            continue
        parts = dotted.split(".")
        if len(parts) == 1:
            name = parts[0]
            callees.add(imports.get(name, f"{module}.{name}"))
        elif parts[0] == "self" and class_name and len(parts) == 2:
            callees.add(f"{module}.{class_name}.{parts[1]}")
        elif len(parts) == 2 and parts[0] in imports:
            # imported class used as Mod.fn or Cls.method
            callees.add(f"{imports[parts[0]]}.{parts[1]}")
    return callees
