"""Rule base class and registry for ``repro.lint``.

A rule is a small stateless object with a ``code`` (``R0xx``), a
``name`` and one of three hooks, selected by ``scope``:

* ``"module"`` -- ``check_module(info)`` sees one parsed file;
* ``"project"`` -- ``check_project(infos)`` sees every parsed file;
* ``"semantic"`` -- ``check_semantic(model)`` sees the project-wide
  :class:`~repro.lint.semantic.model.SemanticModel` (call graph,
  transitive effects, backend/contract registrations) built from
  cached per-file summaries -- these rules never touch raw ASTs, so
  a warm cache runs them without re-parsing anything.

Rules yield :class:`~repro.lint.findings.Finding` objects; waiver
filtering happens centrally in the engine.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Type

from ..context import ModuleInfo
from ..findings import Finding
from ...robust.errors import ModelDomainError, RoadmapDataError


class Rule:
    """Base class for lint rules."""

    code: str = "R000"
    name: str = "base"
    description: str = ""
    #: "module" rules see one file at a time; "project" rules see
    #: all parsed files; "semantic" rules see the SemanticModel.
    scope: str = "module"

    def check_module(self, info: ModuleInfo) -> Iterable[Finding]:
        return ()

    def check_project(
            self, infos: Sequence[ModuleInfo]) -> Iterable[Finding]:
        return ()

    def check_semantic(self, model) -> Iterable[Finding]:
        return ()


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.code in _REGISTRY:
        raise ModelDomainError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Rule]:
    _load_builtin_rules()
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def get_rules(select: Optional[Sequence[str]] = None,
              ignore: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the registered rules, honouring --select/--ignore."""
    rules = all_rules()
    if select:
        wanted = {code.upper() for code in select}
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            raise RoadmapDataError(
                f"unknown rule code(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.code in wanted]
    if ignore:
        dropped = {code.upper() for code in ignore}
        rules = [rule for rule in rules if rule.code not in dropped]
    return rules


def _load_builtin_rules() -> None:
    """Import the rule modules exactly once (registration side effect)."""
    from . import (rng, validation, exceptions, registry,  # noqa: F401
                   vectorization, shard_rng, backends,  # noqa: F401
                   determinism, twins, deadapi)  # noqa: F401
