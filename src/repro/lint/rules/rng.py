"""R001 rng-discipline: every random stream must be seedable/injectable.

Model code may not draw from process-global RNG state (legacy
``numpy.random.*`` functions, ``RandomState``, or the stdlib ``random``
module) and may not construct *unseeded* ``default_rng()`` generators:
the blessed pattern is ``repro.robust.rng.resolve_rng(rng, seed=seed)``,
which keeps explicit seeds bit-stable and gives seed-less callers an
independent child stream of the fixed root ``SeedSequence``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..astutil import (ImportMap, dotted_name, is_none_constant,
                       param_default_map, walk_with_function_stack)
from ..context import ModuleInfo
from ..findings import Finding
from . import Rule, register

#: numpy.random attributes that are fine to touch directly: generator
#: construction machinery, not hidden global state.
_NUMPY_ALLOWED = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}

#: stdlib ``random`` module-level functions that mutate/consume the
#: hidden global Mersenne-Twister state.
_STDLIB_RANDOM = {
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "sample", "shuffle", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "gammavariate", "triangular",
    "vonmisesvariate", "paretovariate", "weibullvariate", "seed",
    "getrandbits", "getstate", "setstate", "binomialvariate",
}

#: The one module allowed to construct generators directly -- it *is*
#: the sanctioned construction site.
_ALLOWED_MODULES = {"repro.robust.rng"}


@register
class RngDisciplineRule(Rule):
    code = "R001"
    name = "rng-discipline"
    description = (
        "No legacy global numpy.random.* / stdlib random state, no "
        "unseeded default_rng() in model code; inject a Generator or "
        "route through repro.robust.rng.resolve_rng.")

    def check_module(self, info: ModuleInfo) -> Iterable[Finding]:
        if info.module in _ALLOWED_MODULES:
            return []
        imports = ImportMap(info.tree)
        findings: List[Finding] = []
        for node, stack in walk_with_function_stack(info.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            canonical = imports.canonical(dotted)
            findings.extend(self._check_call(info, node, dotted,
                                             canonical, stack))
        return findings

    def _check_call(self, info: ModuleInfo, node: ast.Call, dotted: str,
                    canonical: str, stack) -> Iterable[Finding]:
        head = dotted.split(".")[0]
        parts = canonical.split(".")

        # Legacy numpy.random global-state functions / RandomState.
        if canonical.startswith("numpy.random.") and len(parts) >= 3:
            attr = parts[2]
            if attr == "default_rng":
                if self._is_unseeded(node, stack):
                    yield self._finding(
                        info, node,
                        "unseeded numpy.random.default_rng() -- use "
                        "repro.robust.rng.resolve_rng(rng, seed=seed) so "
                        "the stream is injectable and deterministic")
            elif attr not in _NUMPY_ALLOWED:
                yield self._finding(
                    info, node,
                    f"legacy global numpy.random.{attr}() draws from "
                    "hidden process state -- use an injected "
                    "numpy.random.Generator (repro.robust.rng.resolve_rng)")
            return

        # Bare ``default_rng(...)`` via ``from numpy.random import ...``.
        if canonical == "numpy.random.default_rng" and \
                self._is_unseeded(node, stack):
            yield self._finding(
                info, node,
                "unseeded default_rng() -- use "
                "repro.robust.rng.resolve_rng(rng, seed=seed)")
            return

        # stdlib random module-level functions (only when ``random`` is
        # really an import in this file, not a local variable).
        if len(parts) == 2 and parts[0] == "random" \
                and head in imports_heads(info) \
                and parts[1] in _STDLIB_RANDOM:
            yield self._finding(
                info, node,
                f"stdlib random.{parts[1]}() uses hidden global state -- "
                "use a numpy Generator via repro.robust.rng.resolve_rng")

    @staticmethod
    def _is_unseeded(node: ast.Call, stack) -> bool:
        """True when the default_rng call has no real entropy argument.

        Unseeded means: no arguments, a literal ``None``, or a bare
        name that is a parameter of an enclosing function defaulting to
        ``None`` (the classic ``seed: Optional[int] = None`` pass-through,
        which silently goes non-deterministic when the caller omits it).
        """
        if node.keywords:
            return False
        if not node.args:
            return True
        first = node.args[0]
        if is_none_constant(first):
            return True
        if isinstance(first, ast.Name):
            for fn in reversed(stack):
                defaults = param_default_map(fn)
                if first.id in defaults:
                    return is_none_constant(defaults[first.id])
        return False

    def _finding(self, info: ModuleInfo, node: ast.AST,
                 message: str) -> Finding:
        return Finding(path=str(info.path), line=node.lineno,
                       col=node.col_offset, code=self.code,
                       message=message)


def imports_heads(info: ModuleInfo) -> set:
    """Top-level names actually bound by import statements."""
    heads = set()
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                heads.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                heads.add(alias.asname or alias.name)
    return heads
