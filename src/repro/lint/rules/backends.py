"""R007 backend conformance.

The evaluation-backend protocol (:mod:`repro.backends.protocol`)
requires every registered engine to expose **both** paths -- the
scalar ``"oracle"`` and its array-valued ``"vectorized"`` twin -- and
to declare an equivalence contract stating how closely they must
agree.  Registrations use literal strings precisely so this can be
checked statically:

* an engine registered with only one backend is a half-migrated fast
  path (or an oracle that silently lost its twin);
* an engine with backends but no ``register_contract`` call has no
  pinned oracle-equivalence tolerance, so the equivalence suite
  skips it;
* a non-literal engine or backend name defeats the static check and
  is flagged directly.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..astutil import dotted_name
from ..context import ModuleInfo
from ..findings import Finding
from . import Rule, register

#: The canonical backend names (mirrors
#: ``repro.backends.protocol.BACKEND_NAMES``; literal here because the
#: lint layer never imports model code).
_BACKEND_NAMES = ("oracle", "vectorized")


@register
class BackendConformanceRule(Rule):
    code = "R007"
    name = "backend-conformance"
    description = (
        "Every register_backend engine must expose both the oracle "
        "and vectorized paths, declare an equivalence contract, and "
        "use literal engine/backend names.")
    scope = "project"

    def check_project(
            self, infos: Sequence[ModuleInfo]) -> Iterable[Finding]:
        findings: List[Finding] = []
        #: engine -> {backend name} with the first registration site.
        backends: Dict[str, Dict[str, Tuple[str, int, int]]] = {}
        contracts: Dict[str, Tuple[str, int, int]] = {}

        for info in infos:
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                callee = dotted_name(node.func)
                short = callee.split(".")[-1] if callee else ""
                if short == "register_backend":
                    self._collect_backend(info, node, backends,
                                          findings)
                elif short == "register_contract":
                    engine = _literal_arg(node, 0, "engine")
                    if engine is not None:
                        contracts.setdefault(
                            engine, (str(info.path), node.lineno,
                                     node.col_offset))

        for engine in sorted(backends):
            names = backends[engine]
            site = next(iter(names.values()))
            missing = [name for name in _BACKEND_NAMES
                       if name not in names]
            if missing:
                findings.append(Finding(
                    path=site[0], line=site[1], col=site[2],
                    code=self.code,
                    message=(
                        f"engine '{engine}' registers only "
                        f"{sorted(names)} -- the oracle/vectorized "
                        f"protocol requires the "
                        f"{' and '.join(repr(m) for m in missing)} "
                        "path(s) too")))
            if engine not in contracts:
                findings.append(Finding(
                    path=site[0], line=site[1], col=site[2],
                    code=self.code,
                    message=(
                        f"engine '{engine}' has no register_contract "
                        "call -- declare its oracle-equivalence "
                        "tolerance next to the registrations")))
        return findings

    def _collect_backend(
            self, info: ModuleInfo, node: ast.Call,
            backends: Dict[str, Dict[str, Tuple[str, int, int]]],
            findings: List[Finding]) -> None:
        engine = _literal_arg(node, 0, "engine")
        name = _literal_arg(node, 1, "name")
        site = (str(info.path), node.lineno, node.col_offset)
        if engine is None or name is None:
            findings.append(Finding(
                path=site[0], line=site[1], col=site[2],
                code=self.code,
                message=(
                    "register_backend engine/backend names must be "
                    "string literals so conformance is statically "
                    "checkable")))
            return
        backends.setdefault(engine, {}).setdefault(name, site)


def _literal_arg(call: ast.Call, position: int,
                 keyword: str) -> Optional[str]:
    """The literal string of a positional-or-keyword argument."""
    node: Optional[ast.AST] = call.args[position] \
        if len(call.args) > position else None
    for kw in call.keywords:
        if kw.arg == keyword:
            node = kw.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
