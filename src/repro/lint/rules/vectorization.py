"""R005 vectorization safety.

``math.exp``/``math.log``/... raise ``TypeError: only size-1 arrays``
(or silently truncate via ``__float__``) when handed an ndarray.  Any
function whose signature advertises array inputs (``np.ndarray`` /
``ArrayLike`` annotations) must therefore use the ``numpy`` equivalents
in any expression touching those parameters.  Scalar-only helpers may
keep ``math.*`` -- it is faster on scalars and that is the point of the
batched engines keeping both paths.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..astutil import (ImportMap, annotation_source, dotted_name,
                       walk_with_function_stack)
from ..context import ModuleInfo
from ..findings import Finding
from . import Rule, register

#: Annotation substrings that advertise "arrays welcome here".
_ARRAY_TOKENS = ("ndarray", "ArrayLike", "NDArray")


@register
class VectorizationSafetyRule(Rule):
    code = "R005"
    name = "vectorization-safety"
    description = (
        "No scalar math.* calls on parameters annotated as arrays; "
        "use the numpy equivalent.")

    def check_module(self, info: ModuleInfo) -> Iterable[Finding]:
        imports = ImportMap(info.tree)
        findings: List[Finding] = []
        for node, stack in walk_with_function_stack(info.tree):
            if not isinstance(node, ast.Call) or not stack:
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            canonical = imports.canonical(dotted)
            parts = canonical.split(".")
            if len(parts) != 2 or parts[0] != "math":
                continue
            array_params = _array_params(stack)
            if not array_params:
                continue
            touched = _touched_params(node, array_params)
            if touched:
                findings.append(Finding(
                    path=str(info.path), line=node.lineno,
                    col=node.col_offset, code=self.code,
                    message=(
                        f"math.{parts[1]}() on array-annotated "
                        f"parameter(s) {', '.join(sorted(touched))} "
                        "breaks on ndarray inputs -- use "
                        f"numpy.{parts[1]} (or np.asarray first)")))
        return findings


def _array_params(stack) -> Set[str]:
    """Parameters of the enclosing functions annotated as arrays."""
    names: Set[str] = set()
    for fn in stack:
        args = fn.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            annotation = annotation_source(arg)
            if any(token in annotation for token in _ARRAY_TOKENS):
                names.add(arg.arg)
    return names


def _touched_params(call: ast.Call, array_params: Set[str]) -> Set[str]:
    touched: Set[str] = set()
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and node.id in array_params:
                touched.add(node.id)
    return touched
