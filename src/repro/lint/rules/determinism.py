"""R008: transitive determinism of contract-bearing roots.

R001 and R006 police individual call sites; R008 upgrades them to a
*reachability* guarantee.  Every determinism root -- a shard entry
point (the R006 set: ``run_shard`` or any function with a ``shard``
parameter), a registered backend target, or a function named in an
equivalence contract's ``entry_points`` -- must not transitively
reach a nondeterministic effect (``reads-clock``, ``unseeded-rng``,
``env-dependent``, ``io``, ``unordered-iteration``) anywhere in its
call graph.

Two waiver points exist, both requiring a documented reason:

* on the *sink* line (where the effect happens) -- excludes that
  effect from propagation entirely, for "wall-clock only feeds
  diagnostics"-style exemptions shared by every caller;
* on the *root* definition line -- waives the finding for that root
  only, through the normal engine waiver filter.
"""

from __future__ import annotations

from typing import Iterable

from ..findings import Finding
from . import Rule, register


@register
class TransitiveDeterminismRule(Rule):
    code = "R008"
    name = "transitive-determinism"
    description = ("shard entry points, backend targets, and contract "
                   "entry points must not transitively reach "
                   "nondeterministic effects")
    scope = "semantic"

    def check_semantic(self, model) -> Iterable[Finding]:
        graph = model.graph
        paths = {fn.qual: summary.path
                 for summary in model.summaries.values()
                 for fn in summary.functions.values()}
        for qual, why in model.determinism_roots():
            fn = graph.functions[qual]
            for kind, origin in sorted(graph.effects_of(qual).items()):
                yield Finding(
                    path=paths[qual], line=fn.line, col=fn.col,
                    code=self.code,
                    message=(f"{fn.name} ({why}) transitively reaches "
                             f"a '{kind}' effect: "
                             f"{origin.describe()}"))
