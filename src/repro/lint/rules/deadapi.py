"""R010: dead public API.

A public module-level function in ``repro.*`` (no leading underscore,
not a dunder) that is neither referenced anywhere else in the scanned
tree (calls, attribute access, ``from x import name``, decorator use,
fault-registry baselines -- any Name/Attribute load counts) nor
exported through an ``__all__`` list is unreachable surface: it rots
silently, its contracts are never exercised, and it inflates the API
the equivalence/fault suites are supposed to cover.  Either export it
deliberately (add it to ``__all__``), wire it up, or delete it.

Methods are exempt (dispatch hides their references); so are module
``main``/CLI entry hooks.  Recursion does not count as a reference.
"""

from __future__ import annotations

from typing import Iterable

from ..findings import Finding
from . import Rule, register

_ENTRY_NAMES = {"main"}


@register
class DeadPublicApiRule(Rule):
    code = "R010"
    name = "dead-public-api"
    description = ("public repro.* functions must be referenced or "
                   "exported somewhere in the project")
    scope = "semantic"

    def check_semantic(self, model) -> Iterable[Finding]:
        exported = set()
        for summary in model.summaries.values():
            exported.update(summary.exports)
        for summary in sorted(model.summaries.values(),
                              key=lambda s: s.path):
            if not summary.module.startswith("repro"):
                continue
            for fn in summary.functions.values():
                if fn.class_name is not None or not fn.is_public:
                    continue
                if fn.name.startswith("__") or fn.name in _ENTRY_NAMES:
                    continue
                if fn.name in exported:
                    continue
                if model.is_referenced(fn):
                    continue
                yield Finding(
                    path=summary.path, line=fn.line, col=fn.col,
                    code=self.code,
                    message=(f"public function {fn.qual} is never "
                             f"referenced or exported -- wire it up, "
                             f"add it to __all__, or remove it"))
