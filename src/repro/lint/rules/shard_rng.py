"""R006 shard-seed-discipline: shard entry points must replay.

The sharded executor (:mod:`repro.exec`) guarantees that any shard of
a fixed-seed Monte Carlo run is bit-for-bit a slice of the
single-process run -- which is only true if a shard's variates are a
pure function of the *explicit* seed and the shard range.  Two RNG
idioms silently break that:

* ``resolve_rng()`` with neither an injected generator nor a seed --
  it hands out the *next* child of the process-global root stream, so
  the draws depend on how many unseeded calls ran before this one
  (i.e. on worker scheduling and retry history);
* ``spawn_seed()`` -- the same global child counter, one level down.

Both are fine in ordinary model code (deterministic per process run);
inside a *shard entry point* -- a function taking a ``shard``
parameter, or named ``run_shard`` -- they make retries and
redistributions produce different numbers, which is exactly the bug
class :mod:`repro.exec` exists to exclude.  The fix is always to
thread an explicit ``seed``/``rng`` from the workload parameters.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..astutil import (ImportMap, dotted_name, is_none_constant,
                       walk_with_function_stack)
from ..context import ModuleInfo
from ..findings import Finding
from . import Rule, register

#: Canonical paths of the flagged helpers (absolute-import form).
_RESOLVE_RNG = "repro.robust.rng.resolve_rng"
_SPAWN_SEED = "repro.robust.rng.spawn_seed"


def _is_shard_function(fn: ast.AST) -> bool:
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    if fn.name == "run_shard":
        return True
    args = fn.args
    names = [arg.arg for arg in
             args.posonlyargs + args.args + args.kwonlyargs]
    return "shard" in names


def _names(call: ast.Call, imports: ImportMap):
    dotted = dotted_name(call.func)
    if dotted is None:
        return "", ""
    return dotted, imports.canonical(dotted)


def _resolve_rng_unseeded(call: ast.Call) -> bool:
    """True when the call pins neither ``rng`` nor ``seed``.

    Positional or keyword arguments that are anything but a literal
    ``None`` count as pinned -- forwarding a caller's ``seed``
    variable is the sanctioned idiom.
    """
    pinned = [arg for arg in call.args
              if not is_none_constant(arg)]
    pinned += [kw for kw in call.keywords
               if kw.arg in ("rng", "seed")
               and not is_none_constant(kw.value)]
    pinned += [kw for kw in call.keywords if kw.arg is None]
    return not pinned


@register
class ShardSeedDisciplineRule(Rule):
    code = "R006"
    name = "shard-seed-discipline"
    description = (
        "Shard entry points (functions with a 'shard' parameter or "
        "named run_shard) must not draw from the process-global "
        "root stream: no unseeded resolve_rng(), no spawn_seed().")

    def check_module(self, info: ModuleInfo) -> Iterable[Finding]:
        if info.module == "repro.robust.rng":
            return []
        imports = ImportMap(info.tree)
        findings: List[Finding] = []
        for node, stack in walk_with_function_stack(info.tree):
            if not isinstance(node, ast.Call):
                continue
            if not any(_is_shard_function(fn) for fn in stack):
                continue
            dotted, canonical = _names(node, imports)
            bare = dotted.split(".")[-1]
            owner = next(fn.name for fn in reversed(stack)
                         if _is_shard_function(fn))
            if (canonical == _SPAWN_SEED
                    or (bare == "spawn_seed"
                        and "." not in dotted)):
                findings.append(Finding(
                    path=str(info.path), line=node.lineno,
                    col=node.col_offset, code=self.code,
                    message=(
                        f"shard entry point '{owner}' calls "
                        "spawn_seed(): draws then depend on global "
                        "call order, breaking the shard replay "
                        "contract; thread an explicit seed "
                        "instead")))
            elif (canonical == _RESOLVE_RNG
                    or (bare == "resolve_rng"
                        and "." not in dotted)):
                if _resolve_rng_unseeded(node):
                    findings.append(Finding(
                        path=str(info.path), line=node.lineno,
                        col=node.col_offset, code=self.code,
                        message=(
                            f"shard entry point '{owner}' calls "
                            "resolve_rng() without rng or seed: the "
                            "stream depends on global call order, "
                            "breaking the shard replay contract")))
        return findings
