"""R004 fault-registry drift.

``repro.robust.faults.default_registry()`` enumerates ``ApiSpec``
entries naming public model APIs ("devices.mosfet.Mosfet.ids").  Two
ways this decays silently:

* **stale**: a registered name no longer resolves to a symbol (the API
  was renamed/removed but the spec stayed), so the fault sweep tests a
  ghost;
* **missing**: a new module-level function hardened with
  ``@validated(..., _result_finite=True)`` (i.e. one that promises
  finite numerics -- exactly the contract the fault sweep perturbs) is
  never registered, so coverage quietly erodes.

This replaces the hand-bumped ``n_apis >= N`` CI floor with a check
that stays correct as APIs come and go.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..astutil import dotted_name
from ..context import ModuleInfo
from ..findings import Finding
from . import Rule, register
from .validation import GUARDED_PACKAGES

_FAULTS_MODULE = "repro.robust.faults"


@register
class FaultRegistryDriftRule(Rule):
    code = "R004"
    name = "fault-registry-drift"
    description = (
        "repro.robust.faults registrations must resolve to live "
        "symbols, and finite-result @validated model functions must "
        "be registered for the fault sweep.")
    scope = "project"

    def check_project(
            self, infos: Sequence[ModuleInfo]) -> Iterable[Finding]:
        faults_info = next((info for info in infos
                            if info.module == _FAULTS_MODULE), None)
        if faults_info is None:
            return []                   # partial lint run: nothing to say

        registered = _registered_names(faults_info)
        symbols = _SymbolTable(infos)
        findings: List[Finding] = []

        for name, line, col in registered:
            if not symbols.resolves(name):
                findings.append(Finding(
                    path=str(faults_info.path), line=line, col=col,
                    code=self.code,
                    message=(f"registered API '{name}' does not resolve "
                             "to any module function, class or method "
                             "-- stale fault-registry entry")))

        registered_names = {name for name, _, _ in registered}
        for info in infos:
            if not _guarded(info.module):
                continue
            for fn in info.tree.body:
                if not isinstance(fn, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    continue
                if fn.name.startswith("_") \
                        or not _finite_validated(fn):
                    continue
                short = f"{_strip_repro(info.module)}.{fn.name}"
                if short not in registered_names:
                    findings.append(Finding(
                        path=str(info.path), line=fn.lineno,
                        col=fn.col_offset, code=self.code,
                        message=(
                            f"'{fn.name}' promises finite results "
                            "(@validated _result_finite=True) but is "
                            "not registered in repro.robust.faults."
                            "default_registry -- fault-sweep coverage "
                            "gap")))
        return findings


def _guarded(module: str) -> bool:
    return any(module == pkg or module.startswith(pkg + ".")
               for pkg in GUARDED_PACKAGES)


def _strip_repro(module: str) -> str:
    return module[len("repro."):] if module.startswith("repro.") \
        else module


def _finite_validated(fn: ast.AST) -> bool:
    for decorator in fn.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = dotted_name(decorator.func)
        if not name or name.split(".")[-1] != "validated":
            continue
        for keyword in decorator.keywords:
            if keyword.arg == "_result_finite" \
                    and isinstance(keyword.value, ast.Constant) \
                    and keyword.value.value is True:
                return True
    return False


def _registered_names(
        faults_info: ModuleInfo) -> List[Tuple[str, int, int]]:
    """(name, line, col) of every ApiSpec(...) literal name."""
    names: List[Tuple[str, int, int]] = []
    for node in ast.walk(faults_info.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted_name(node.func)
        if not callee or callee.split(".")[-1] != "ApiSpec":
            continue
        name_node: Optional[ast.AST] = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "name":
                name_node = keyword.value
        if isinstance(name_node, ast.Constant) \
                and isinstance(name_node.value, str):
            names.append((name_node.value, name_node.lineno,
                          name_node.col_offset))
    return names


class _SymbolTable:
    """Module-level functions, classes and methods across the lint set."""

    def __init__(self, infos: Sequence[ModuleInfo]):
        self.functions: Set[str] = set()        # "repro.mod.fn"
        self.classes: Set[str] = set()          # "repro.mod.Cls"
        self.methods: Set[str] = set()          # "repro.mod.Cls.meth"
        self.module_methods: Dict[str, Set[str]] = {}  # mod -> meths
        self.modules: Set[str] = set()
        for info in infos:
            self.modules.add(info.module)
            for node in info.tree.body:
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    self.functions.add(f"{info.module}.{node.name}")
                elif isinstance(node, ast.ClassDef):
                    self.classes.add(f"{info.module}.{node.name}")
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                            self.methods.add(
                                f"{info.module}.{node.name}.{item.name}")
                            self.module_methods.setdefault(
                                info.module, set()).add(item.name)
                        elif _is_dataclass_field(item):
                            # dataclass fields are attribute APIs too
                            self.methods.add(
                                f"{info.module}.{node.name}."
                                f"{item.target.id}")
                            self.module_methods.setdefault(
                                info.module, set()).add(item.target.id)

    def resolves(self, registry_name: str) -> bool:
        """Can 'devices.mosfet.Mosfet.ids' be found in the tree?

        Tries every split of the dotted name into a known module prefix
        plus a symbol path; the symbol path may be a function, a class,
        ``Class.method``, or a bare method name of *any* class in the
        module (registry names routinely skip the class, e.g.
        ``technology.node.with_overrides``).
        """
        full = registry_name if registry_name.startswith("repro.") \
            else f"repro.{registry_name}"
        parts = full.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module not in self.modules:
                continue
            symbol = parts[cut:]
            if len(symbol) == 1:
                name = symbol[0]
                if f"{module}.{name}" in self.functions \
                        or f"{module}.{name}" in self.classes \
                        or name in self.module_methods.get(module, ()):
                    return True
            elif len(symbol) == 2:
                qual = f"{module}.{symbol[0]}.{symbol[1]}"
                if qual in self.methods:
                    return True
        return False


def _is_dataclass_field(node: ast.AST) -> bool:
    return isinstance(node, ast.AnnAssign) \
        and isinstance(node.target, ast.Name)
