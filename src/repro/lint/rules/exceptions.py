"""R003 exception hygiene.

Model code communicates failures through the typed taxonomy in
``repro.robust.errors`` so callers can discriminate domain errors from
convergence failures from data gaps.  This rule flags

* ``raise ValueError(...)`` / other builtin exceptions (use the
  taxonomy: they still *are* ValueError/KeyError/... by inheritance),
* bare ``except:`` clauses (swallow KeyboardInterrupt/SystemExit).

Re-raises (``raise`` with no operand, ``raise err from ...`` of a
caught name) and ``NotImplementedError`` (abstract-hook idiom) are
allowed.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..astutil import dotted_name
from ..context import ModuleInfo
from ..findings import Finding
from . import Rule, register

#: Builtin exceptions whose direct raise is a taxonomy violation.
_BUILTIN_BANNED = {
    "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
    "IndexError", "RuntimeError", "ArithmeticError", "ZeroDivisionError",
    "OverflowError", "FloatingPointError", "LookupError", "OSError",
    "IOError", "AssertionError", "StopIteration", "AttributeError",
    "NameError",
}

#: Always-acceptable raises.
_ALLOWED = {"NotImplementedError", "KeyboardInterrupt", "SystemExit"}

_SUGGESTION = {
    "ValueError": "ModelDomainError",
    "TypeError": "ModelDomainError",
    "KeyError": "RoadmapDataError",
    "LookupError": "RoadmapDataError",
    "IndexError": "ModelIndexError",
    "RuntimeError": "ConvergenceError",
    "ZeroDivisionError": "ModelDomainError",
    "ArithmeticError": "ModelDomainError",
    "FloatingPointError": "ModelDomainError",
}


@register
class ExceptionHygieneRule(Rule):
    code = "R003"
    name = "exception-hygiene"
    description = (
        "No bare except; raise through the repro.robust.errors "
        "taxonomy instead of builtin exceptions.")

    def check_module(self, info: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        caught_names = _caught_exception_names(info.tree)
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                findings.append(Finding(
                    path=str(info.path), line=node.lineno,
                    col=node.col_offset, code=self.code,
                    message=("bare 'except:' also catches "
                             "KeyboardInterrupt/SystemExit -- name the "
                             "exception(s) or use 'except Exception'")))
            elif isinstance(node, ast.Raise) and node.exc is not None:
                findings.extend(
                    self._check_raise(info, node, caught_names))
        return findings

    def _check_raise(self, info: ModuleInfo, node: ast.Raise,
                     caught_names: Set[str]) -> Iterable[Finding]:
        exc = node.exc
        target = exc.func if isinstance(exc, ast.Call) else exc
        name = dotted_name(target)
        if name is None:
            return
        bare = name.split(".")[-1]
        if bare in _ALLOWED:
            return
        if not isinstance(exc, ast.Call) and bare in caught_names:
            return                      # ``except X as err: ... raise err``
        if bare in _BUILTIN_BANNED:
            hint = _SUGGESTION.get(bare)
            suggestion = f" (closest taxonomy type: {hint})" if hint \
                else ""
            yield Finding(
                path=str(info.path), line=node.lineno,
                col=node.col_offset, code=self.code,
                message=(
                    f"raise {bare} bypasses the repro.robust.errors "
                    f"taxonomy{suggestion}; taxonomy types still "
                    "subclass the builtin, so callers keep working"))


def _caught_exception_names(tree: ast.Module) -> Set[str]:
    """Names bound by ``except ... as name`` anywhere in the module."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names
