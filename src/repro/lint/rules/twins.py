"""R009: scalar/batched twin signatures must agree.

The equivalence suites (PR 8/9) prove scalar and vectorized
evaluators agree *numerically* -- but only for the signatures the
tests happen to exercise.  R009 pins the signatures themselves so
twins cannot drift between equivalence-test runs:

* every ``X``/``X_batch`` pair in the same module or class, and every
  registered backend engine's oracle/vectorized pair, is a twin;
* shared parameters must appear in the same relative order with the
  same default expressions;
* determinism plumbing (``rng``, ``seed``, ``backend``,
  ``node_overrides``, ``shard``) present on the scalar must be
  accepted by the batched twin;
* batch-only parameters are fine as the *leading* batching axis
  (``n_dies``, ``input_width`` arrays, ...) but once the shared
  parameter region starts they must be optional (defaulted or
  keyword-only), so scalar call shapes translate mechanically;
* when the scalar takes a single dataclass argument that the batch
  unpacks into per-field arrays, the batch's positional parameters
  must be exactly the dataclass fields, in declaration order;
* a registered vectorized backend must be named after its oracle
  (``<oracle>_batch``, with an optional ``_oracle`` suffix stripped)
  so the pairing stays discoverable statically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..findings import Finding
from . import Rule, register

#: Parameters that carry the determinism contract: if the scalar twin
#: accepts one, the batched twin must accept it too.
_PLUMBING = ("rng", "seed", "backend", "node_overrides", "shard")

_IGNORED = {"self", "cls"}


def _sig_params(fn) -> List:
    return [p for p in fn.params
            if p.name not in _IGNORED and p.kind in ("pos", "kwonly")]


def _positional_names(fn) -> List[str]:
    return [p.name for p in fn.params
            if p.name not in _IGNORED and p.kind == "pos"]


@register
class TwinSignatureParityRule(Rule):
    code = "R009"
    name = "twin-signature-parity"
    description = ("scalar and batched twin signatures must agree "
                   "modulo the batching axis")
    scope = "semantic"

    def check_semantic(self, model) -> Iterable[Finding]:
        graph = model.graph
        paths = {fn.qual: summary.path
                 for summary in model.summaries.values()
                 for fn in summary.functions.values()}
        pairs: Dict[Tuple[str, str], str] = {}
        for qual in sorted(graph.functions):
            if not qual.endswith("_batch"):
                continue
            scalar_qual = qual[:-len("_batch")]
            if scalar_qual in graph.functions:
                pairs[(scalar_qual, qual)] = "name twin"
        for engine in sorted(model.engines):
            pair = model.engines[engine]
            if pair.oracle and pair.vectorized:
                base = pair.oracle
                if base.endswith("_oracle"):
                    base = base[:-len("_oracle")]
                expected = f"{base}_batch"
                if pair.vectorized != expected:
                    path, line = pair.vectorized_site
                    yield Finding(
                        path=path, line=line, col=0, code=self.code,
                        message=(f"engine '{engine}': vectorized "
                                 f"backend {pair.vectorized} is not "
                                 f"named after its oracle (expected "
                                 f"{expected})"))
                elif pair.vectorized in graph.functions \
                        and pair.oracle in graph.functions:
                    pairs.setdefault((pair.oracle, pair.vectorized),
                                     f"engine '{engine}'")
        for (scalar_qual, batch_qual), origin in sorted(pairs.items()):
            scalar = graph.functions[scalar_qual]
            batch = graph.functions[batch_qual]
            for message in self._compare(model, scalar, batch):
                yield Finding(
                    path=paths[batch_qual], line=batch.line,
                    col=batch.col, code=self.code,
                    message=(f"{batch.name} vs {scalar.name} "
                             f"({origin}): {message}"))

    # -- pairwise checks ----------------------------------------------

    def _compare(self, model, scalar, batch) -> Iterable[str]:
        scalar_params = _sig_params(scalar)
        batch_params = _sig_params(batch)
        scalar_by_name = {p.name: p for p in scalar_params}
        batch_by_name = {p.name: p for p in batch_params}
        shared = [p.name for p in scalar_params
                  if p.name in batch_by_name]

        # (a) shared parameters keep their relative order.
        batch_order = [p.name for p in batch_params
                       if p.name in scalar_by_name]
        if batch_order != shared:
            yield (f"shared parameters are reordered: scalar has "
                   f"({', '.join(shared)}), batched has "
                   f"({', '.join(batch_order)})")

        # (b) shared defaults must match textually.
        for name in shared:
            scalar_default = scalar_by_name[name].default
            batch_default = batch_by_name[name].default
            if scalar_default != batch_default:
                yield (f"parameter '{name}' default drifted: scalar "
                       f"has {scalar_default!r}, batched has "
                       f"{batch_default!r}")

        # (c) determinism plumbing present on the scalar must exist
        # on the batched twin.
        for name in _PLUMBING:
            if name in scalar_by_name and name not in batch_by_name:
                yield (f"scalar accepts '{name}' but the batched "
                       f"twin does not")

        # (d) batch-only parameters after the shared region must be
        # optional (the leading batching axis is exempt).
        first_shared = None
        for index, p in enumerate(batch_params):
            if p.name in scalar_by_name:
                first_shared = index
                break
        if first_shared is not None:
            for p in batch_params[first_shared:]:
                if p.name in scalar_by_name:
                    continue
                if p.kind == "pos" and p.default is None:
                    yield (f"batch-only parameter '{p.name}' after "
                           f"the shared region must be optional or "
                           f"keyword-only")

        # (e) scalar-takes-a-dataclass, batch-unpacks-fields parity.
        yield from self._unpack_parity(model, scalar, batch)

    def _unpack_parity(self, model, scalar, batch) -> Iterable[str]:
        scalar_positional = [p for p in scalar.params
                             if p.name not in _IGNORED
                             and p.kind == "pos"]
        if len(scalar_positional) != 1:
            return
        fields = self._fields_of(model, scalar,
                                 scalar_positional[0].annotation)
        if not fields:
            return
        batch_positional = _positional_names(batch)
        if batch_positional[:len(fields)] != fields:
            yield (f"scalar takes "
                   f"{scalar_positional[0].annotation} (fields: "
                   f"{', '.join(fields)}) but batched positionals "
                   f"are ({', '.join(batch_positional)}) -- unpack "
                   f"order must match field declaration order")

    @staticmethod
    def _fields_of(model, scalar,
                   annotation: str) -> Optional[List[str]]:
        name = annotation.strip().strip("'\"")
        if not name or "." in name:
            return None
        module = scalar.qual.rsplit(
            ".", 2 if scalar.class_name else 1)[0]
        candidate = f"{module}.{name}"
        record = model.graph.classes.get(candidate)
        if record is None:
            for summary in model.summaries.values():
                if summary.module == module and name in summary.aliases:
                    record = model.graph.classes.get(
                        summary.aliases[name])
                    break
        if record is None:
            return None
        return record.get("fields") or None
