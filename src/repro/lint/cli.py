"""Command-line entry point: ``python -m repro.lint [paths]``.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..robust.errors import ReproError
from .engine import iter_rule_docs, run_lint
from .sarif import to_sarif
from .semantic.cache import DEFAULT_CACHE_DIR


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=("AST- and call-graph-based model-correctness "
                     "linter for the repro codebase (RNG discipline, "
                     "validation coverage, exception hygiene, "
                     "fault-registry drift, vectorization safety, "
                     "transitive determinism, twin-signature parity, "
                     "dead-API detection)."))
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (e.g. R001,R008)")
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "--show-waived", action="store_true",
        help="also print findings suppressed by documented waivers")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the semantic analysis cache")
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help=f"semantic summary cache location "
             f"(default: {DEFAULT_CACHE_DIR})")
    return parser


def _codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rule_docs():
            print(f"{rule.code} {rule.name} [{rule.scope}]")
            print(f"    {rule.description}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    try:
        report = run_lint([Path(p) for p in args.paths],
                          select=_codes(args.select),
                          ignore=_codes(args.ignore),
                          use_cache=not args.no_cache,
                          cache_dir=args.cache_dir)
    except ReproError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return report.exit_code
    if args.format == "sarif":
        print(json.dumps(to_sarif(report), indent=2, sort_keys=True))
        return report.exit_code

    for finding in report.findings:
        print(finding.format())
    if args.show_waived:
        for finding in report.waived:
            print(f"{finding.format()} [waived]")
    summary = (f"{len(report.findings)} finding(s), "
               f"{len(report.waived)} waived, "
               f"{report.n_files} file(s), "
               f"rules: {', '.join(report.rules)}")
    print(("clean: " if report.clean else "") + summary)
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
