"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Resolve local aliases back to canonical module/symbol paths.

    ``import numpy as np``             -> ``np``     => ``numpy``
    ``import numpy.random as npr``     -> ``npr``    => ``numpy.random``
    ``from numpy import random as r``  -> ``r``      => ``numpy.random``
    ``from numpy.random import normal``-> ``normal`` => ``numpy.random.normal``
    """

    def __init__(self, tree: ast.Module):
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] \
                        = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"

    def canonical(self, dotted: str) -> str:
        """Map the leading alias of ``a.b.c`` to its canonical path."""
        head, _, rest = dotted.partition(".")
        base = self.aliases.get(head, head)
        return f"{base}.{rest}" if rest else base


def walk_with_function_stack(
        tree: ast.Module
) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
    """Yield (node, enclosing_function_stack) over the whole tree.

    The stack lists enclosing FunctionDef/AsyncFunctionDef nodes,
    outermost first.
    """
    def visit(node: ast.AST, stack: List[ast.AST]):
        for child in ast.iter_child_nodes(node):
            yield child, stack
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from visit(child, stack + [child])
            else:
                yield from visit(child, stack)
    yield from visit(tree, [])


def param_default_map(fn: ast.AST) -> Dict[str, Optional[ast.AST]]:
    """Parameter name -> default expression (None when required)."""
    args = fn.args
    defaults: Dict[str, Optional[ast.AST]] = {}
    positional = args.posonlyargs + args.args
    pos_defaults = [None] * (len(positional) - len(args.defaults)) \
        + list(args.defaults)
    for arg, default in zip(positional, pos_defaults):
        defaults[arg.arg] = default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        defaults[arg.arg] = default
    return defaults


def is_none_constant(node: Optional[ast.AST]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def annotation_source(arg: ast.arg) -> str:
    if arg.annotation is None:
        return ""
    try:
        return ast.unparse(arg.annotation)
    except Exception:  # pragma: no cover - defensive
        return ""


def decorator_names(fn: ast.AST) -> List[str]:
    """Bare names of all decorators (``validated`` for ``@validated(...)``)."""
    names = []
    for decorator in fn.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = dotted_name(target)
        if name:
            names.append(name.split(".")[-1])
    return names
