"""Lightweight timing instrumentation with a global registry.

``timed("section")`` works both as a context manager and as a
decorator; each entry/exit updates a process-global registry of call
counts and accumulated wall time, so any run can end with a call to
:func:`profile_report` to see where time went -- without external
profilers and with near-zero overhead when nothing is ever timed.

This is deliberately *not* a sampling profiler: hot paths opt in by
name, which keeps the report aligned with the architecture's units
(sampling engine, SWAN superposition, mesh solve, ...).
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, TypeVar

F = TypeVar("F", bound=Callable[..., Any])

_RECORDS: Dict[str, "TimingRecord"] = {}
_LOCK = threading.Lock()


@dataclass
class TimingRecord:
    """Accumulated timing of one named section."""

    name: str
    calls: int = 0
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        """Average wall time per call [s]."""
        return self.total_seconds / self.calls if self.calls else 0.0

    def add(self, elapsed: float) -> None:
        """Fold one measurement into the record."""
        self.calls += 1
        self.total_seconds += elapsed
        self.min_seconds = min(self.min_seconds, elapsed)
        self.max_seconds = max(self.max_seconds, elapsed)


class timed:
    """Time a named section: context manager *and* decorator.

    As a context manager::

        with timed("swan.superposition"):
            ...

    As a decorator (section defaults to the function's qualified
    name)::

        @timed("sampler.batch")
        def sample_dies_batch(...):
            ...

    The measured wall time accumulates in the global registry under
    the section name; read it back with :func:`profile_registry` or
    :func:`profile_report`.
    """

    def __init__(self, name: str):
        self.name = name
        self._start: Optional[float] = None

    # -- context manager protocol --

    def __enter__(self) -> "timed":
        self._start = time.perf_counter()  # replint: disable=R008 -- profiling registry only, never feeds results
        return self

    def __exit__(self, *exc_info: Any) -> None:
        elapsed = time.perf_counter() - (self._start or 0.0)  # replint: disable=R008 -- profiling registry only, never feeds results
        _record(self.name, elapsed)

    # -- decorator protocol --

    def __call__(self, func: F) -> F:
        name = self.name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            start = time.perf_counter()  # replint: disable=R008 -- profiling registry only, never feeds results
            try:
                return func(*args, **kwargs)
            finally:
                _record(name, time.perf_counter() - start)  # replint: disable=R008 -- profiling registry only, never feeds results

        return wrapper  # type: ignore[return-value]


def _record(name: str, elapsed: float) -> None:
    with _LOCK:
        record = _RECORDS.get(name)
        if record is None:
            record = _RECORDS[name] = TimingRecord(name=name)
        record.add(elapsed)


def profile_registry() -> Dict[str, TimingRecord]:
    """Snapshot of all timing records, by section name."""
    with _LOCK:
        return dict(_RECORDS)


def reset_profile() -> None:
    """Forget all accumulated timings."""
    with _LOCK:
        _RECORDS.clear()


def profile_report(sort_by: str = "total_seconds") -> str:
    """Human-readable table of the registry, slowest first."""
    records = sorted(profile_registry().values(),
                     key=lambda r: getattr(r, sort_by), reverse=True)
    if not records:
        return "(no timed sections)"
    lines = [f"{'section':<40} {'calls':>8} {'total [s]':>12} "
             f"{'mean [ms]':>12}"]
    for record in records:
        lines.append(
            f"{record.name:<40} {record.calls:>8} "
            f"{record.total_seconds:>12.6f} "
            f"{record.mean_seconds * 1e3:>12.4f}")
    return "\n".join(lines)
