"""Performance infrastructure: keyed memo caches and profiling hooks.

The ROADMAP's north star asks the system to run "as fast as the
hardware allows".  This layer supplies the two cross-cutting tools the
hot paths share:

* :mod:`repro.perf.cache` -- a keyed memo cache with a global registry
  for quantities that are recomputed identically across sweeps
  (technology-node lookups, standard-cell injection characterization);
* :mod:`repro.perf.profile` -- a ``timed()`` context manager/decorator
  plus a global timing registry so later PRs can see where time goes
  without reaching for an external profiler.

The batched Monte Carlo engines themselves live next to the physics
they accelerate (:mod:`repro.variability.statistical`,
:mod:`repro.substrate.swan`, ...); see the "Performance architecture"
section of ``docs/architecture.md`` for the batching contract.
"""

from .cache import (
    CacheStats,
    KeyedCache,
    cache_registry,
    cache_stats,
    clear_caches,
    memoized,
)
from .profile import (
    TimingRecord,
    profile_registry,
    profile_report,
    reset_profile,
    timed,
)

__all__ = [
    "CacheStats", "KeyedCache", "cache_registry", "cache_stats",
    "clear_caches", "memoized",
    "TimingRecord", "profile_registry", "profile_report",
    "reset_profile", "timed",
]
