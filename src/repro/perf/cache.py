"""Keyed memo caches for identically recomputed quantities.

Sweeps over nodes, sizings and Monte Carlo samples keep re-deriving
the same intermediate objects: the standard-cell injection library of
a node, node lookups, characterization tables.  A plain
``functools.lru_cache`` would do the memoization but hides the cache
behind the wrapped function; here every cache registers itself in a
global registry so hit rates are inspectable (``cache_stats()``) and
all caches can be dropped at once (``clear_caches()``), e.g. between
benchmark rounds.

Keys must be hashable.  :class:`~repro.technology.node.TechnologyNode`
is a frozen dataclass and therefore a valid key component.
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional, TypeVar
from ..robust.errors import ModelDomainError

F = TypeVar("F", bound=Callable[..., Any])

#: All live caches, by name.  Names are unique; creating a second
#: cache with the same name raises.
_REGISTRY: Dict[str, "KeyedCache"] = {}
_REGISTRY_LOCK = threading.Lock()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one cache."""

    name: str
    hits: int
    misses: int
    size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class KeyedCache:
    """A named, thread-safe memo cache with optional size bound.

    ``maxsize`` bounds the number of entries; on overflow the oldest
    entry is evicted (insertion order -- characterization caches are
    write-once, so FIFO == LRU for the intended uses).
    """

    def __init__(self, name: str, maxsize: Optional[int] = None):
        if maxsize is not None and maxsize < 1:
            raise ModelDomainError("maxsize must be positive or None")
        self.name = name
        self.maxsize = maxsize
        self._data: Dict[Hashable, Any] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        with _REGISTRY_LOCK:
            if name in _REGISTRY:
                raise ModelDomainError(f"cache {name!r} already registered")
            _REGISTRY[name] = self

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on miss."""
        with self._lock:
            if key in self._data:
                self._hits += 1
                return self._data[key]
        value = compute()
        with self._lock:
            self._misses += 1
            if key not in self._data:
                if (self.maxsize is not None
                        and len(self._data) >= self.maxsize):
                    self._data.pop(next(iter(self._data)))
                self._data[key] = value
        return value

    def clear(self) -> None:
        """Drop all entries (counters survive)."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    @property
    def stats(self) -> CacheStats:
        """Current counters."""
        return CacheStats(name=self.name, hits=self._hits,
                          misses=self._misses, size=len(self._data))


def memoized(name: str, maxsize: Optional[int] = None,
             key: Optional[Callable[..., Hashable]] = None
             ) -> Callable[[F], F]:
    """Decorator: memoize a function through a registered KeyedCache.

    ``key`` maps the call arguments to the cache key; by default the
    positional/keyword arguments themselves form the key (so they must
    all be hashable).  Exceptions are not cached.

    Example::

        @memoized("injection.characterize_cell")
        def characterize_cell(node, cell_name, drive=1.0):
            ...
    """
    cache = KeyedCache(name, maxsize=maxsize)

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if key is not None:
                cache_key = key(*args, **kwargs)
            else:
                cache_key = (args, tuple(sorted(kwargs.items())))
            return cache.get_or_compute(
                cache_key, lambda: func(*args, **kwargs))

        wrapper.cache = cache          # type: ignore[attr-defined]
        return wrapper                 # type: ignore[return-value]

    return decorate


def cache_registry() -> Dict[str, KeyedCache]:
    """A snapshot of all registered caches, by name."""
    with _REGISTRY_LOCK:
        return dict(_REGISTRY)


def cache_stats() -> Dict[str, CacheStats]:
    """Counters of every registered cache."""
    return {name: cache.stats for name, cache in cache_registry().items()}


def clear_caches() -> None:
    """Empty every registered cache (for tests and benchmarks)."""
    for cache in cache_registry().values():
        cache.clear()
