"""Shardable Monte Carlo workloads and their exact merge rules.

A :class:`ShardWorkload` binds a batched model entry point to the
three things the runner needs:

* ``run_shard(start, stop)`` -- evaluate one contiguous slice of the
  population and return a *JSON payload* (plain lists and scalars:
  picklable for worker processes, checkpointable, and cacheable);
* ``validate_payload`` -- reject corrupted worker output (wrong
  length, non-finite values, impossible counts) with a typed
  :class:`~repro.robust.errors.PoisonedResultError` so the runner
  retries instead of merging garbage;
* ``merge(payloads)`` -- rebuild the single-process result from the
  per-shard payloads in shard order.

The determinism contract is carried by the model layer, not by this
module: every workload rebuilds its sampler from the fixed seed on
each attempt, and the shard-aware entry points
(:func:`~repro.variability.statistical.monte_carlo_yield_batch`,
:func:`~repro.analog.chain.chain_signoff_batch`,
:meth:`~repro.digital.ssta.StatisticalTimingAnalyzer.run_shard`)
guarantee that shard unit ``k`` is bit-for-bit unit ``start + k`` of
the full run.  Merging is then pure concatenation (arrays), integer
addition (counts), or order-independent reduction (max), so merged
statistics equal the single-process oracle's bit for bit -- for any
shard count, worker failure order, or retry history.

The waveform workload (:class:`SocNoiseWorkload`) is the documented
exception: partial sensor waveforms *sum* across shards, so changing
the shard plan moves float round-off exactly like the streaming
chunk size does in :meth:`~repro.substrate.swan.SwanSimulator.
stream_noise`; for a fixed plan the result is still independent of
failures and retries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..robust.errors import ModelDomainError, PoisonedResultError

__all__ = [
    "ShardWorkload", "YieldWorkload", "ChainSignoffWorkload",
    "SstaWorkload", "SocNoiseWorkload", "YIELD_METRICS",
]

#: Named ``DieBatch -> (n_dies,) array`` metrics for the yield
#: workload.  Names (not callables) go into cache keys, checkpoints
#: and worker processes, so CLI runs and resumed runs agree on what
#: was measured.
YIELD_METRICS: Dict[str, Callable[[Any], np.ndarray]] = {
    "vth-shift": lambda batch: np.abs(batch.vth_global),
    "length-shift": lambda batch: np.abs(
        batch.length_factor_global - 1.0),
    "tox-shift": lambda batch: np.abs(batch.tox_factor_global - 1.0),
}


def _require(payload: Any, keys: Tuple[str, ...]) -> None:
    if not isinstance(payload, dict):
        raise PoisonedResultError(
            f"shard payload must be a dict, got {type(payload)!r}")
    missing = [key for key in keys if key not in payload]
    if missing:
        raise PoisonedResultError(
            f"shard payload missing keys {missing}")


def _check_span(payload: Any, start: int, stop: int) -> None:
    if payload.get("start") != start or payload.get("stop") != stop:
        raise PoisonedResultError(
            f"shard payload spans [{payload.get('start')}, "
            f"{payload.get('stop')}), expected [{start}, {stop})")


def _check_floats(name: str, values: Any,
                  length: Optional[int] = None) -> None:
    if not isinstance(values, list):
        raise PoisonedResultError(
            f"payload field {name!r} must be a list")
    if length is not None and len(values) != length:
        raise PoisonedResultError(
            f"payload field {name!r} has {len(values)} entries, "
            f"expected {length}")
    for value in values:
        if isinstance(value, bool) or not isinstance(
                value, (int, float)) or not math.isfinite(value):
            raise PoisonedResultError(
                f"payload field {name!r} contains non-finite or "
                f"non-numeric entry {value!r}")


def _check_bools(name: str, values: Any, length: int) -> None:
    if not isinstance(values, list) or len(values) != length:
        raise PoisonedResultError(
            f"payload field {name!r} must be a list of {length} "
            f"booleans")
    for value in values:
        if not isinstance(value, bool):
            raise PoisonedResultError(
                f"payload field {name!r} contains non-boolean "
                f"{value!r}")


class ShardWorkload:
    """Base protocol of a shardable Monte Carlo workload.

    Subclasses are plain parameter holders (picklable, so worker
    processes can rebuild the computation from scratch) and must
    implement the population size, the shard evaluator, payload
    validation and the exact merge.
    """

    #: Short stable name; part of every cache and checkpoint key.
    name: str = "abstract"

    def n_total(self) -> int:
        """Population size being sharded (dies, samples, events)."""
        raise NotImplementedError

    def key(self) -> tuple:
        """Hashable, JSON-serializable parameter identity."""
        raise NotImplementedError

    def run_shard(self, start: int, stop: int) -> Dict[str, Any]:
        """Evaluate units ``[start, stop)`` and return a payload."""
        raise NotImplementedError

    def validate_payload(self, payload: Any, start: int,
                         stop: int) -> None:
        """Raise :class:`PoisonedResultError` on corrupt output."""
        raise NotImplementedError

    def merge(self, payloads: List[Dict[str, Any]]) -> Any:
        """Rebuild the single-process result (payloads in order)."""
        raise NotImplementedError

    def pass_counts(self, payload: Dict[str, Any]
                    ) -> Optional[Tuple[int, int]]:
        """``(n_pass, n)`` of one payload, or ``None`` if not a
        yield-style workload (then no binomial bounds are emitted)."""
        return None

    def partial_statistics(self, payloads: List[Dict[str, Any]]
                           ) -> Dict[str, float]:
        """Summary statistics over *completed* shards only."""
        return {}


@dataclass(frozen=True)
class YieldWorkload(ShardWorkload):
    """Sharded :func:`~repro.variability.statistical.
    monte_carlo_yield_batch` over one node's die population."""

    node_name: str
    metric: str
    limit: float
    n_dies: int = 500
    seed: int = 0
    upper_is_fail: bool = True

    name = "yield"

    def __post_init__(self) -> None:
        if self.metric not in YIELD_METRICS:
            raise ModelDomainError(
                f"unknown yield metric {self.metric!r}; available: "
                f"{sorted(YIELD_METRICS)}")

    def n_total(self) -> int:
        return self.n_dies

    def key(self) -> tuple:
        return (self.node_name, self.metric, float(self.limit),
                self.n_dies, self.seed, self.upper_is_fail)

    def run_shard(self, start: int, stop: int) -> Dict[str, Any]:
        from ..technology import get_node
        from ..variability.statistical import (MonteCarloSampler,
                                               monte_carlo_yield_batch)
        sampler = MonteCarloSampler(get_node(self.node_name),
                                    seed=self.seed)
        result = monte_carlo_yield_batch(
            sampler, YIELD_METRICS[self.metric], self.limit,
            n_dies=self.n_dies, upper_is_fail=self.upper_is_fail,
            shard=(start, stop))
        return {"start": start, "stop": stop,
                "passed": [bool(ok) for ok in result.passed]}

    def validate_payload(self, payload: Any, start: int,
                         stop: int) -> None:
        _require(payload, ("start", "stop", "passed"))
        _check_span(payload, start, stop)
        _check_bools("passed", payload["passed"], stop - start)

    def merge(self, payloads: List[Dict[str, Any]]) -> Any:
        from ..variability.statistical import YieldResult
        passed = np.concatenate(
            [np.asarray(p["passed"], dtype=bool) for p in payloads])
        return YieldResult(n_samples=int(passed.size),
                           n_pass=int(np.count_nonzero(passed)),
                           passed=passed)

    def pass_counts(self, payload: Dict[str, Any]
                    ) -> Tuple[int, int]:
        passed = payload["passed"]
        return (sum(1 for ok in passed if ok), len(passed))

    def partial_statistics(self, payloads: List[Dict[str, Any]]
                           ) -> Dict[str, float]:
        n_pass = sum(self.pass_counts(p)[0] for p in payloads)
        n = sum(self.pass_counts(p)[1] for p in payloads)
        return {"n_done": float(n), "n_pass": float(n_pass),
                "yield_fraction": n_pass / n if n else float("nan")}


@dataclass(frozen=True)
class ChainSignoffWorkload(ShardWorkload):
    """Sharded DAC -> SC filter -> ADC sign-off
    (:func:`~repro.analog.chain.chain_signoff_batch`), merging to the
    exact :func:`~repro.analog.chain.chain_yield_vs_node` row."""

    node_name: str
    n_dies: int = 64
    seed: int = 0
    dnl_limit: float = 0.5
    inl_limit: float = 1.0
    enob_min: Optional[float] = None

    name = "chain-signoff"

    def n_total(self) -> int:
        return self.n_dies

    def key(self) -> tuple:
        return (self.node_name, self.n_dies, self.seed,
                float(self.dnl_limit), float(self.inl_limit),
                None if self.enob_min is None else float(
                    self.enob_min))

    def _spec(self):
        from ..analog import ChainSpec
        return ChainSpec(dnl_limit=self.dnl_limit,
                         inl_limit=self.inl_limit,
                         enob_min=self.enob_min)

    def run_shard(self, start: int, stop: int) -> Dict[str, Any]:
        from ..analog.chain import chain_signoff_batch
        from ..technology import get_node
        from ..variability.statistical import MonteCarloSampler
        sampler = MonteCarloSampler(get_node(self.node_name),
                                    seed=self.seed)
        result = chain_signoff_batch(
            sampler, spec=self._spec(), n_dies=self.n_dies,
            shard=(start, stop))
        dnl = np.maximum(np.asarray(result.dac.dnl_max, dtype=float),
                         np.asarray(result.adc.dnl_max, dtype=float))
        inl = np.maximum(np.asarray(result.dac.inl_max, dtype=float),
                         np.asarray(result.adc.inl_max, dtype=float))
        return {
            "start": start, "stop": stop,
            "passed": [bool(ok) for ok in np.asarray(result.passed)],
            "enob": [float(v) for v in np.asarray(
                result.spectral.enob, dtype=float)],
            "dnl_max": [float(v) for v in dnl],
            "inl_max": [float(v) for v in inl],
        }

    def validate_payload(self, payload: Any, start: int,
                         stop: int) -> None:
        _require(payload,
                 ("start", "stop", "passed", "enob", "dnl_max",
                  "inl_max"))
        _check_span(payload, start, stop)
        size = stop - start
        _check_bools("passed", payload["passed"], size)
        _check_floats("enob", payload["enob"], size)
        _check_floats("dnl_max", payload["dnl_max"], size)
        _check_floats("inl_max", payload["inl_max"], size)

    def merge(self, payloads: List[Dict[str, Any]]
              ) -> Dict[str, float]:
        passed = np.concatenate(
            [np.asarray(p["passed"], dtype=bool) for p in payloads])
        enob = np.concatenate(
            [np.asarray(p["enob"], dtype=float) for p in payloads])
        dnl = np.concatenate(
            [np.asarray(p["dnl_max"], dtype=float)
             for p in payloads])
        inl = np.concatenate(
            [np.asarray(p["inl_max"], dtype=float)
             for p in payloads])
        n_dies = int(passed.size)
        # Field-for-field the chain_yield_vs_node row: same
        # concatenated arrays, same reductions, same bits.
        return {
            "node": self.node_name,
            "n_dies": float(n_dies),
            "yield_fraction": int(np.count_nonzero(passed)) / n_dies,
            "enob_mean": float(enob.mean()),
            "enob_min": float(enob.min()),
            "dnl_worst_lsb": float(np.max(dnl)),
            "inl_worst_lsb": float(np.max(inl)),
        }

    def pass_counts(self, payload: Dict[str, Any]
                    ) -> Tuple[int, int]:
        passed = payload["passed"]
        return (sum(1 for ok in passed if ok), len(passed))

    def partial_statistics(self, payloads: List[Dict[str, Any]]
                           ) -> Dict[str, float]:
        enob = [v for p in payloads for v in p["enob"]]
        n_pass = sum(self.pass_counts(p)[0] for p in payloads)
        n = sum(self.pass_counts(p)[1] for p in payloads)
        return {
            "n_done": float(n),
            "yield_fraction": n_pass / n if n else float("nan"),
            "enob_mean": (sum(enob) / len(enob)
                          if enob else float("nan")),
            "enob_min": min(enob) if enob else float("nan"),
        }


@dataclass(frozen=True)
class SstaWorkload(ShardWorkload):
    """Sharded Monte Carlo SSTA over a generated ripple-adder
    netlist, merging samples and integer criticality counts exactly
    (:func:`~repro.digital.ssta.merge_ssta_shards`)."""

    node_name: str
    width: int = 8
    n_samples: int = 200
    seed: int = 0

    name = "ssta"

    def n_total(self) -> int:
        return self.n_samples

    def key(self) -> tuple:
        return (self.node_name, self.width, self.n_samples,
                self.seed)

    def _analyzer(self):
        from ..digital.generators import ripple_adder
        from ..digital.ssta import StatisticalTimingAnalyzer
        from ..technology import get_node
        netlist = ripple_adder(get_node(self.node_name),
                               width=self.width)
        return StatisticalTimingAnalyzer(netlist, seed=self.seed)

    def run_shard(self, start: int, stop: int) -> Dict[str, Any]:
        shard = self._analyzer().run_shard(self.n_samples,
                                           (start, stop))
        return {
            "start": start, "stop": stop,
            "samples": [float(v) for v in shard.samples],
            "counts": [int(c) for c in shard.counts],
            "names": list(shard.names),
            "nominal": float(shard.nominal_delay),
        }

    def validate_payload(self, payload: Any, start: int,
                         stop: int) -> None:
        _require(payload, ("start", "stop", "samples", "counts",
                           "names", "nominal"))
        _check_span(payload, start, stop)
        size = stop - start
        _check_floats("samples", payload["samples"], size)
        counts = payload["counts"]
        names = payload["names"]
        if not isinstance(counts, list) or not isinstance(
                names, list) or len(counts) != len(names):
            raise PoisonedResultError(
                "payload counts/names must be lists of equal length")
        for count in counts:
            if isinstance(count, bool) or not isinstance(
                    count, int) or not 0 <= count <= size:
                raise PoisonedResultError(
                    f"criticality count {count!r} outside [0, "
                    f"{size}]")
        nominal = payload["nominal"]
        if not isinstance(nominal, float) or not math.isfinite(
                nominal):
            raise PoisonedResultError(
                f"nominal delay {nominal!r} is not a finite float")

    def merge(self, payloads: List[Dict[str, Any]]) -> Any:
        from ..digital.ssta import SstaShard, merge_ssta_shards
        shards = [SstaShard(
            samples=np.asarray(p["samples"], dtype=float),
            counts=np.asarray(p["counts"], dtype=np.int64),
            names=tuple(p["names"]),
            nominal_delay=p["nominal"],
            start=p["start"], stop=p["stop"]) for p in payloads]
        return merge_ssta_shards(shards)

    def partial_statistics(self, payloads: List[Dict[str, Any]]
                           ) -> Dict[str, float]:
        samples = [v for p in payloads for v in p["samples"]]
        if not samples:
            return {"n_done": 0.0}
        return {
            "n_done": float(len(samples)),
            "mean_delay_ps": 1e12 * sum(samples) / len(samples),
            "max_delay_ps": 1e12 * max(samples),
        }


@dataclass(frozen=True)
class SocNoiseWorkload(ShardWorkload):
    """Sharded SoC activity -> substrate noise: the event trace is
    split into event ranges, each shard propagates its slice to the
    sensor, and partial waveforms sum in shard order.

    The shard plan moves float round-off exactly like
    ``stream_noise``'s ``chunk_events`` does (documented there); for
    a fixed plan the waveform is independent of failures/retries, and
    with one shard it is bit-for-bit the one-shot propagation.
    """

    node_name: str = "65nm"
    target_gates: int = 2_000
    n_blocks: int = 4
    n_cycles: int = 4
    frequency: float = 50e6
    seed: int = 0
    event_budget: int = 10_000_000

    name = "soc-noise"

    #: SWAN sampling step [s] (the stream_noise default).
    dt = 25e-12

    def key(self) -> tuple:
        return (self.node_name, self.target_gates, self.n_blocks,
                self.n_cycles, float(self.frequency), self.seed,
                self.event_budget)

    def _trace_and_swan(self):
        from ..digital import random_stimulus, soc_netlist
        from ..digital.simulator_compiled import CompiledEventEngine
        from ..substrate import SwanSimulator
        from ..technology import get_node
        node = get_node(self.node_name)
        netlist = soc_netlist(node, target_gates=self.target_gates,
                              n_blocks=self.n_blocks, seed=self.seed)
        engine = CompiledEventEngine(
            netlist, clock_period=1.0 / self.frequency,
            event_budget=self.event_budget)
        stimulus = random_stimulus(
            netlist, self.n_cycles, seed=self.seed,
            held_high=["en"] + [f"blk{b}_en"
                                for b in range(self.n_blocks)])
        trace = engine.run(stimulus, self.n_cycles)
        swan = SwanSimulator(netlist,
                             clock_frequency=self.frequency,
                             seed=self.seed)
        return trace, swan

    def n_total(self) -> int:
        trace, _ = self._trace_and_swan()
        return trace.n_events

    def run_shard(self, start: int, stop: int) -> Dict[str, Any]:
        from ..digital.simulator_compiled import EventTrace
        trace, swan = self._trace_and_swan()
        sub_trace = EventTrace(
            times=trace.times[start:stop],
            net_indices=trace.net_indices[start:stop],
            values=trace.values[start:stop],
            source_indices=trace.source_indices[start:stop],
            net_names=trace.net_names,
            instance_names=trace.instance_names,
            final_values=trace.final_values,
            duration=trace.duration)
        time, currents = swan.injected_currents(
            sub_trace, dt=self.dt, duration=trace.duration)
        voltage = swan.propagate(time, currents).voltage
        return {
            "start": start, "stop": stop,
            "n_events": trace.n_events,
            "activity": float(trace.activity_factor(self.n_cycles)),
            "n_gates": len(trace.instance_names),
            "time_step_ps": float((time[1] - time[0]) * 1e12
                                  if time.size > 1 else 0.0),
            "duration": float(trace.duration),
            "voltage": [float(v) for v in voltage],
        }

    def validate_payload(self, payload: Any, start: int,
                         stop: int) -> None:
        _require(payload, ("start", "stop", "voltage", "n_events",
                           "activity", "n_gates", "duration"))
        _check_span(payload, start, stop)
        _check_floats("voltage", payload["voltage"])
        if not payload["voltage"]:
            raise PoisonedResultError(
                "shard produced an empty waveform")

    def merge(self, payloads: List[Dict[str, Any]]
              ) -> Dict[str, float]:
        from ..substrate import NoiseWaveform
        voltage = np.zeros(len(payloads[0]["voltage"]))
        for payload in payloads:
            partial = np.asarray(payload["voltage"], dtype=float)
            if partial.size != voltage.size:
                raise ModelDomainError(
                    "soc-noise shards disagree on the time axis")
            voltage += partial
        duration = payloads[0]["duration"]
        wave = NoiseWaveform(time=np.arange(0.0, duration, self.dt),
                             voltage=voltage)
        return {
            "gates": float(payloads[0]["n_gates"]),
            "events": float(payloads[0]["n_events"]),
            "activity": float(payloads[0]["activity"]),
            "rms_uV": float(wave.rms * 1e6),
            "p2p_uV": float(wave.peak_to_peak * 1e6),
        }

    def partial_statistics(self, payloads: List[Dict[str, Any]]
                           ) -> Dict[str, float]:
        if not payloads:
            return {"n_done": 0.0}
        done = sum(p["stop"] - p["start"] for p in payloads)
        return {"n_done": float(done)}
