"""Deterministic chaos injection for the sharded execution layer.

Fault tolerance that is only exercised by real failures is untested
fault tolerance.  This module injects worker crashes, hangs and
poisoned (corrupted) payloads on a *seeded schedule*: the fault for
``(shard, attempt)`` is drawn from ``SeedSequence([seed, shard,
attempt])``, so the schedule depends only on the chaos seed and the
shard's identity -- never on scheduling order, worker count, or which
other shards failed first.  Re-running a chaotic run replays the
exact same faults, which is what lets the test suite pin the hard
guarantee: results with chaos are bit-for-bit results without chaos.

``REPRO_CHAOS_SEED`` (read by :func:`chaos_from_env`) turns chaos on
for an entire test run -- the CI chaos job sets it while running the
tier-1 suite.  Environment-driven plans are always *recoverable*:
injection stops one attempt short of the retry budget (and hangs are
remapped to crashes when no timeout is armed), so the suite must stay
green under chaos by surviving the faults, not by avoiding them.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from ..robust.errors import ModelDomainError
from .policy import RetryPolicy

#: Fault kinds, in the order the schedule's uniform draw selects them.
FAULT_KINDS = ("crash", "hang", "poison")

#: Environment variable enabling suite-wide chaos (integer seed).
CHAOS_ENV_VAR = "REPRO_CHAOS_SEED"


@dataclass(frozen=True)
class ChaosSpec:
    """Fault mix of a chaos plan (per-attempt injection rates)."""

    seed: int
    crash_rate: float = 0.2
    hang_rate: float = 0.1
    poison_rate: float = 0.2

    def __post_init__(self) -> None:
        if isinstance(self.seed, bool) or not isinstance(
                self.seed, (int, np.integer)) or self.seed < 0:
            raise ModelDomainError(
                f"chaos seed must be a non-negative integer, got "
                f"{self.seed!r}")
        total = 0.0
        for name in ("crash_rate", "hang_rate", "poison_rate"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(
                    value, (int, float)) or not math.isfinite(value) \
                    or not 0.0 <= value <= 1.0:
                raise ModelDomainError(
                    f"{name} must be a fraction in [0, 1], got "
                    f"{value!r}")
            total += float(value)
        if total > 1.0:
            raise ModelDomainError(
                f"fault rates must sum to <= 1, got {total:.3g}")

    @property
    def total_rate(self) -> float:
        """Probability any fault fires on one attempt."""
        return self.crash_rate + self.hang_rate + self.poison_rate


class ChaosPlan:
    """A seeded, order-independent fault schedule.

    ``recoverable=True`` (the environment/CI mode) clamps injection
    so every shard can still succeed within its retry budget: no
    fault on a shard's final allowed attempt, no faults at all when
    the policy allows no retries, and hangs remapped to crashes when
    the policy arms no timeout.  Explicit plans built by tests keep
    ``recoverable=False`` to exercise the degraded paths.
    """

    def __init__(self, spec: ChaosSpec,
                 policy: Optional[RetryPolicy] = None,
                 recoverable: bool = False):
        self.spec = spec
        self.policy = policy
        self.recoverable = bool(recoverable)
        if self.recoverable and policy is None:
            raise ModelDomainError(
                "a recoverable chaos plan needs the RetryPolicy it "
                "must stay within")

    def fault_for(self, shard_index: int,
                  attempt: int) -> Optional[str]:
        """The fault to inject on ``(shard, attempt)``, or ``None``.

        Pure function of ``(seed, shard_index, attempt)``: the draw
        comes from a dedicated ``SeedSequence`` child, so no other
        shard's history (or the global RNG state) can perturb it.
        """
        for name, value in (("shard_index", shard_index),
                            ("attempt", attempt)):
            if isinstance(value, bool) or not isinstance(
                    value, (int, np.integer)) or value < 0:
                raise ModelDomainError(
                    f"{name} must be a non-negative integer, got "
                    f"{value!r}")
        if self.recoverable:
            if self.policy.max_retries == 0:
                return None
            if attempt >= self.policy.max_retries:
                return None     # final allowed attempt must succeed
        seq = np.random.SeedSequence(
            [int(self.spec.seed), int(shard_index), int(attempt)])
        draw = float(np.random.Generator(
            np.random.PCG64(seq)).random())
        edges = (self.spec.crash_rate,
                 self.spec.crash_rate + self.spec.hang_rate,
                 self.spec.total_rate)
        fault: Optional[str] = None
        for kind, edge in zip(FAULT_KINDS, edges):
            if draw < edge:
                fault = kind
                break
        if fault == "hang" and (self.policy is None
                                or self.policy.timeout_s is None):
            fault = "crash" if self.recoverable else fault
        return fault


def chaos_from_env(policy: RetryPolicy,
                   environ: Optional[Dict[str, str]] = None
                   ) -> Optional[ChaosPlan]:
    """The suite-wide chaos plan, or ``None`` when chaos is off.

    Reads :data:`CHAOS_ENV_VAR`; a malformed value raises (a chaos
    run that silently runs fault-free would defeat the CI job's
    purpose).  The returned plan is always recoverable.
    """
    raw = (environ if environ is not None else os.environ).get(
        CHAOS_ENV_VAR)
    if raw is None or raw == "":
        return None
    try:
        seed = int(raw)
    except ValueError:
        raise ModelDomainError(
            f"{CHAOS_ENV_VAR} must be an integer seed, got {raw!r}")
    if seed < 0:
        raise ModelDomainError(
            f"{CHAOS_ENV_VAR} must be non-negative, got {seed}")
    return ChaosPlan(ChaosSpec(seed=seed), policy=policy,
                     recoverable=True)


def poison_payload(payload: Any) -> Any:
    """Corrupt a shard payload the way a sick worker would.

    Deterministic: the first float found in a list-valued entry is
    replaced with NaN; if the payload has no float lists, the first
    list is truncated instead.  Either corruption must be caught by
    the workload's ``validate_payload`` -- that is the contract the
    chaos tests assert.
    """
    if not isinstance(payload, dict):
        raise ModelDomainError(
            f"can only poison dict payloads, got {type(payload)!r}")
    poisoned = {key: (list(value) if isinstance(value, list)
                      else value)
                for key, value in payload.items()}
    for value in poisoned.values():
        if isinstance(value, list) and value and isinstance(
                value[0], float) and math.isfinite(value[0]):
            value[0] = float("nan")
            return poisoned
    for value in poisoned.values():
        if isinstance(value, list) and value:
            value.pop()
            return poisoned
    raise ModelDomainError(
        "payload has no poisonable entries -- workloads must carry "
        "at least one list of numbers")
