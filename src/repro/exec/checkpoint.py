"""Shard checkpoint store: resume a sharded run after interruption.

The store is a single JSON file mapping a *run key* -- a stable hash
of the workload identity (name + parameters + seed + shard plan) --
to the validated payloads of its completed shards.  Because shard
payloads are pure JSON and Python's ``json`` round-trips float64
exactly (``repr`` shortest-round-trip), a resumed run merges the
checkpointed payloads bit-for-bit as if the shards had just executed.

Writes are atomic (temp file + ``os.replace``) so a crash mid-write
never corrupts previously stored shards, and each shard is stored the
moment it validates -- the checkpoint always reflects exactly the
completed work.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from ..robust.errors import ModelDomainError


def run_key(workload_name: str, workload_key: Any,
            n_shards: int) -> str:
    """Stable identity of one sharded run.

    Hashes the workload name, its parameter key and the shard count
    with SHA-256 (never ``hash()`` -- that is salted per process, and
    checkpoints must match across processes and sessions).  Any
    parameter change, including the shard plan, yields a new key, so
    a stale checkpoint can never leak into a different run.
    """
    try:
        blob = json.dumps([workload_name, workload_key, n_shards],
                          sort_keys=True)
    except (TypeError, ValueError) as error:
        raise ModelDomainError(
            f"workload key is not JSON-serializable: {error}")
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class ShardCheckpoint:
    """JSON-file store of completed shard payloads, keyed by run.

    Layout::

        {"<run_key>": {"<start>:<stop>": <payload>, ...}, ...}
    """

    def __init__(self, path: str):
        if not path or not isinstance(path, str):
            raise ModelDomainError(
                f"checkpoint path must be a non-empty string, got "
                f"{path!r}")
        self.path = path

    def _read_all(self) -> Dict[str, Dict[str, Any]]:
        if not os.path.exists(self.path):
            return {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as error:
            raise ModelDomainError(
                f"unreadable checkpoint {self.path!r}: {error}")
        if not isinstance(data, dict):
            raise ModelDomainError(
                f"checkpoint {self.path!r} is not a JSON object")
        return data

    def load(self, key: str) -> Dict[str, Any]:
        """Payloads of the completed shards of run ``key``.

        Returns ``{"start:stop": payload}``; empty when the run has
        no checkpointed shards (or the file does not exist yet).
        """
        return dict(self._read_all().get(key, {}))

    def store(self, key: str, start: int, stop: int,
              payload: Any) -> None:
        """Atomically record one completed shard's payload."""
        data = self._read_all()
        data.setdefault(key, {})[f"{start}:{stop}"] = payload
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".checkpoint-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(data, handle)
            os.replace(tmp_path, self.path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def shard_payload(self, key: str, start: int,
                      stop: int) -> Optional[Any]:
        """One shard's checkpointed payload, or ``None``."""
        return self.load(key).get(f"{start}:{stop}")

    def clear(self, key: Optional[str] = None) -> None:
        """Drop one run's shards (or the whole store)."""
        if key is None:
            if os.path.exists(self.path):
                os.unlink(self.path)
            return
        data = self._read_all()
        if key in data:
            del data[key]
            with open(self.path, "w", encoding="utf-8") as handle:
                json.dump(data, handle)
