"""Shard planning: contiguous, balanced slices of an MC population.

A shard is a half-open ``[start, stop)`` index interval of the full
workload (dies, SSTA samples, trace events).  Planning is pure
arithmetic -- the same ``(n_total, n_shards)`` always yields the same
plan -- and shards tile the population exactly, so concatenating
per-shard results in shard-index order reconstructs the single
process arrays bit for bit (the merge contract every workload in
:mod:`repro.exec.workloads` builds on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..robust.errors import ModelDomainError
from ..robust.validate import check_count


@dataclass(frozen=True)
class Shard:
    """One contiguous slice ``[start, stop)`` of the population."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if not (0 <= self.index and 0 <= self.start < self.stop):
            raise ModelDomainError(
                f"invalid shard {self.index}: [{self.start}, "
                f"{self.stop})")

    @property
    def size(self) -> int:
        """Number of population units in this shard."""
        return self.stop - self.start

    @property
    def range(self) -> tuple:
        """The ``(start, stop)`` pair model entry points accept."""
        return (self.start, self.stop)


def plan_shards(n_total: int, n_shards: int) -> List[Shard]:
    """Split ``n_total`` units into ``n_shards`` balanced slices.

    The first ``n_total % n_shards`` shards get one extra unit, so
    sizes differ by at most one and the plan depends only on the two
    integers -- never on worker count, scheduling, or retry history.
    """
    n_total = check_count("n_total", n_total)
    n_shards = check_count("n_shards", n_shards)
    if n_shards > n_total:
        raise ModelDomainError(
            f"cannot split {n_total} units into {n_shards} shards "
            f"(shards would be empty)")
    base, extra = divmod(n_total, n_shards)
    shards: List[Shard] = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        shards.append(Shard(index=index, start=start,
                            stop=start + size))
        start += size
    return shards
