"""Typed results of a sharded run, including graceful degradation.

A fully successful run returns :class:`ExecResult` -- the merged
workload value plus the per-shard execution history.  When shards
exhaust their retry budget the runner degrades to
:class:`PartialResult`: statistics over the *completed* shards only,
with honest yield confidence bounds (Wilson and Clopper-Pearson) that
reflect the reduced sample count, and the failed shards listed so a
later ``--resume`` can finish the job from the checkpoint.

The binomial intervals are textbook:

* :func:`wilson_interval` -- the score interval, good coverage even
  for small ``n`` and extreme yields;
* :func:`clopper_pearson_interval` -- the exact (conservative) beta
  inversion, the sign-off-grade bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..robust.errors import ModelDomainError
from ..robust.validate import check_fraction


@dataclass(frozen=True)
class ConfidenceBounds:
    """A two-sided binomial confidence interval on a yield fraction."""

    lower: float
    upper: float
    level: float            # e.g. 0.95
    method: str             # "wilson" | "clopper-pearson"

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def _check_counts(n_pass: int, n: int) -> None:
    for name, value in (("n_pass", n_pass), ("n", n)):
        if isinstance(value, bool) or not isinstance(value, int) \
                or value < 0:
            raise ModelDomainError(
                f"{name} must be a non-negative integer, got "
                f"{value!r}")
    if n == 0:
        raise ModelDomainError("cannot bound a yield on 0 samples")
    if n_pass > n:
        raise ModelDomainError(
            f"n_pass={n_pass} exceeds n={n}")


def wilson_interval(n_pass: int, n: int,
                    level: float = 0.95) -> ConfidenceBounds:
    """Wilson score interval for ``n_pass`` successes in ``n``."""
    _check_counts(n_pass, n)
    level = check_fraction("level", level)
    if not 0.0 < level < 1.0:
        raise ModelDomainError("level must be in (0, 1)")
    from scipy.stats import norm
    z = float(norm.ppf(0.5 + level / 2.0))
    p = n_pass / n
    denom = 1.0 + z * z / n
    center = (p + z * z / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(
        p * (1.0 - p) / n + z * z / (4.0 * n * n))
    return ConfidenceBounds(lower=max(0.0, center - half),
                            upper=min(1.0, center + half),
                            level=level, method="wilson")


def clopper_pearson_interval(n_pass: int, n: int,
                             level: float = 0.95) -> ConfidenceBounds:
    """Exact (Clopper-Pearson) binomial interval via beta inversion."""
    _check_counts(n_pass, n)
    level = check_fraction("level", level)
    if not 0.0 < level < 1.0:
        raise ModelDomainError("level must be in (0, 1)")
    from scipy.stats import beta
    alpha = 1.0 - level
    lower = 0.0 if n_pass == 0 else float(
        beta.ppf(alpha / 2.0, n_pass, n - n_pass + 1))
    upper = 1.0 if n_pass == n else float(
        beta.ppf(1.0 - alpha / 2.0, n_pass + 1, n - n_pass))
    return ConfidenceBounds(lower=lower, upper=upper,
                            level=level, method="clopper-pearson")


@dataclass(frozen=True)
class ShardOutcome:
    """Execution history of one shard (success or exhaustion)."""

    index: int
    start: int
    stop: int
    ok: bool
    attempts: int               # attempts actually consumed
    source: str                 # "worker" | "cache" | "checkpoint"
    error_type: str = ""        # last error class name when not ok
    error_message: str = ""

    @property
    def size(self) -> int:
        """Population units covered by this shard."""
        return self.stop - self.start


@dataclass(frozen=True)
class ExecResult:
    """A fully completed sharded run.

    ``value`` is the workload's merged result -- bit-for-bit the
    single-process result under the same seed, whatever the shard
    count or failure history (the determinism contract of
    :mod:`repro.exec`).
    """

    workload: str
    value: Any
    outcomes: Tuple[ShardOutcome, ...]
    n_total: int

    @property
    def n_shards(self) -> int:
        """Number of shards the run was split into."""
        return len(self.outcomes)

    @property
    def total_attempts(self) -> int:
        """Attempts summed over shards (retries included)."""
        return sum(outcome.attempts for outcome in self.outcomes)


@dataclass(frozen=True)
class PartialResult:
    """A degraded run: some shards exhausted their retry budget.

    ``statistics`` summarizes the completed shards only (the
    workload decides what is meaningful to report on a partial
    population); ``yield_bounds`` carries Wilson and Clopper-Pearson
    intervals on the pass fraction when the workload exposes pass
    counts.  ``failed`` names the shards a ``--resume`` run still has
    to execute.
    """

    workload: str
    n_total: int
    n_done: int                 # population units completed
    outcomes: Tuple[ShardOutcome, ...]
    statistics: Dict[str, float] = field(default_factory=dict)
    yield_bounds: Optional[Dict[str, ConfidenceBounds]] = None

    @property
    def failed(self) -> Tuple[ShardOutcome, ...]:
        """The shards that exhausted their retry budget."""
        return tuple(o for o in self.outcomes if not o.ok)

    @property
    def completed(self) -> Tuple[ShardOutcome, ...]:
        """The shards that produced a validated payload."""
        return tuple(o for o in self.outcomes if o.ok)

    @property
    def coverage(self) -> float:
        """Fraction of the population actually evaluated."""
        return self.n_done / self.n_total if self.n_total else 0.0

    def summary(self) -> str:
        """One-line human summary (CLI degraded-mode output)."""
        failed = ", ".join(
            f"#{o.index}[{o.start}:{o.stop}] {o.error_type}"
            for o in self.failed)
        return (f"partial result: {self.n_done}/{self.n_total} "
                f"{self.workload} units over "
                f"{len(self.completed)}/{len(self.outcomes)} shards; "
                f"failed: {failed}")
