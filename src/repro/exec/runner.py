"""The fault-tolerant sharded runner.

:func:`run_sharded` executes a :class:`~repro.exec.workloads.
ShardWorkload` shard by shard with per-attempt timeouts, bounded
exponential back-off retries, a shard-level result cache, optional
checkpoint/resume, and deterministic chaos injection.  The hard
guarantee it preserves -- by construction, and pinned by the test
suite -- is:

    Under a fixed seed, the merged result is bit-for-bit the
    single-process result, for any shard count, worker failure
    order, or retry history.

Three properties make that true:

* every attempt of a shard replays the *same* stream (the workload
  rebuilds its sampler from the fixed seed; the shard-aware model
  entry points slice a deterministic population), so a retry cannot
  produce different numbers;
* payloads merge in shard-index order, never in completion order;
* corrupted payloads are rejected *before* they can merge
  (``validate_payload`` -> :class:`~repro.robust.errors.
  PoisonedResultError` -> retry), so a poisoned worker degrades into
  an ordinary retriable failure.

Backends: ``"serial"`` runs shards in-process (failures simulated,
no sleeps -- the test/CI default); ``"process"`` runs each attempt
in its own worker process, where a crash is a real dead process and
a hang is really terminated at the timeout.

When a shard exhausts its retry budget the runner degrades
gracefully: the completed shards' statistics come back as a typed
:class:`~repro.exec.result.PartialResult` with binomial yield bounds
honest about the reduced population -- unless ``strict=True``, which
turns any degradation into :class:`~repro.robust.errors.
ExecBudgetError`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Dict, List, Optional, Union

from ..perf.cache import KeyedCache
from ..robust.errors import (ExecBudgetError, ExecError,
                             ModelDomainError, PoisonedResultError,
                             ShardTimeoutError, WorkerCrashError)
from .chaos import ChaosPlan, chaos_from_env, poison_payload
from .checkpoint import ShardCheckpoint, run_key
from .policy import RetryPolicy
from .result import (ConfidenceBounds, ExecResult, PartialResult,
                     ShardOutcome, clopper_pearson_interval,
                     wilson_interval)
from .shards import Shard, plan_shards
from .workloads import ShardWorkload

__all__ = ["run_sharded", "SHARD_CACHE"]

#: Shard-level payload cache: (workload, params, shard plan, slice)
#: -> validated payload.  Payloads are deterministic, so cache hits
#: are exact replays; ``repro.perf.clear_caches()`` drops it.
SHARD_CACHE = KeyedCache("exec.shards", maxsize=4096)

#: How long an injected hang sleeps in a worker process before the
#: parent's timeout kills it.
_HANG_SLEEP_S = 3600.0

#: Exit code of an injected worker crash (distinguishable from a
#: Python traceback exit in test assertions).
_CRASH_EXIT_CODE = 23


def _run_serial(workload: ShardWorkload, shard: Shard,
                fault: Optional[str],
                timeout_s: Optional[float]) -> Any:
    """In-process attempt; injected faults are simulated, not slept."""
    if fault == "crash":
        raise WorkerCrashError(
            f"shard {shard.index} [{shard.start}:{shard.stop}]: "
            f"injected worker crash")
    if fault == "hang":
        raise ShardTimeoutError(
            f"shard {shard.index} [{shard.start}:{shard.stop}]: "
            f"injected hang exceeded timeout "
            f"{timeout_s if timeout_s is not None else 'inf'} s")
    payload = workload.run_shard(shard.start, shard.stop)
    if fault == "poison":
        payload = poison_payload(payload)
    return payload


def _worker_main(conn, workload: ShardWorkload, shard: Shard,
                 fault: Optional[str]) -> None:
    """Worker-process entry point (module-level: spawn-picklable)."""
    try:
        if fault == "crash":
            os._exit(_CRASH_EXIT_CODE)
        if fault == "hang":
            time.sleep(_HANG_SLEEP_S)
            os._exit(_CRASH_EXIT_CODE)
        payload = workload.run_shard(shard.start, shard.stop)
        if fault == "poison":
            payload = poison_payload(payload)
        conn.send(("ok", payload))
        conn.close()
    except BaseException as error:   # noqa: BLE001 -- must not hang
        try:
            conn.send(("error", type(error).__name__, str(error)))
            conn.close()
        except Exception:
            pass
        os._exit(1)


def _run_process(workload: ShardWorkload, shard: Shard,
                 fault: Optional[str],
                 timeout_s: Optional[float]) -> Any:
    """One attempt in a fresh worker process.

    A crash is a dead process (non-zero exit), a hang is terminated
    at ``timeout_s``.  With no timeout armed an injected hang is
    remapped to a crash -- a test harness must never dead-lock the
    parent.
    """
    if fault == "hang" and timeout_s is None:
        fault = "crash"
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else None)
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(target=_worker_main,
                          args=(child_conn, workload, shard, fault))
    process.start()
    child_conn.close()
    try:
        process.join(timeout_s)
        if process.is_alive():
            process.terminate()
            process.join(10.0)
            raise ShardTimeoutError(
                f"shard {shard.index} [{shard.start}:{shard.stop}] "
                f"exceeded {timeout_s} s; worker terminated")
        message = None
        if parent_conn.poll():
            try:
                message = parent_conn.recv()
            except (EOFError, OSError):
                message = None  # pipe closed by a dying worker
        if message is not None:
            if message[0] == "ok":
                return message[1]
            raise WorkerCrashError(
                f"shard {shard.index} worker raised "
                f"{message[1]}: {message[2]}")
        raise WorkerCrashError(
            f"shard {shard.index} [{shard.start}:{shard.stop}] "
            f"worker died with exit code {process.exitcode}")
    finally:
        parent_conn.close()
        if process.is_alive():
            process.terminate()


_BACKENDS = {"serial": _run_serial, "process": _run_process}


def run_sharded(workload: ShardWorkload,
                n_shards: int = 1,
                policy: Optional[RetryPolicy] = None,
                backend: str = "serial",
                checkpoint: Optional[Union[str,
                                           ShardCheckpoint]] = None,
                resume: bool = False,
                chaos: Optional[ChaosPlan] = None,
                env_chaos: bool = True,
                strict: bool = False,
                use_cache: bool = True
                ) -> Union[ExecResult, PartialResult]:
    """Execute ``workload`` over ``n_shards`` fault-tolerant shards.

    ``chaos=None`` with ``env_chaos=True`` arms the suite-wide
    recoverable chaos plan when ``REPRO_CHAOS_SEED`` is set (the CI
    chaos job); pass ``env_chaos=False`` to pin attempt counts in
    tests.  ``checkpoint`` (a path or a :class:`ShardCheckpoint`)
    records each validated shard payload; with ``resume=True``
    previously checkpointed shards are loaded instead of re-run.

    Returns :class:`ExecResult` when every shard completes, a
    :class:`PartialResult` when some shards exhausted their retries
    (or raises :class:`ExecBudgetError` if ``strict`` or if *no*
    shard completed).
    """
    if not isinstance(workload, ShardWorkload):
        raise ModelDomainError(
            f"workload must be a ShardWorkload, got {workload!r}")
    if backend not in _BACKENDS:
        raise ModelDomainError(
            f"unknown backend {backend!r}; choose from "
            f"{sorted(_BACKENDS)}")
    policy = policy if policy is not None else RetryPolicy()
    if chaos is None and env_chaos:
        chaos = chaos_from_env(policy)
    execute = _BACKENDS[backend]
    n_total = workload.n_total()
    shards = plan_shards(n_total, n_shards)
    store = (ShardCheckpoint(checkpoint)
             if isinstance(checkpoint, str) else checkpoint)
    ckpt_key = run_key(workload.name, list(workload.key()),
                       n_shards) if store is not None else ""

    payloads: Dict[int, Any] = {}
    outcomes: List[ShardOutcome] = []
    for shard in shards:
        cache_key = (workload.name, workload.key(), n_shards,
                     shard.start, shard.stop)
        payload = None
        source = "worker"
        attempts = 0
        last_error: Optional[ExecError] = None

        if use_cache and cache_key in SHARD_CACHE:
            payload = SHARD_CACHE.get_or_compute(cache_key,
                                                 lambda: None)
            source = "cache"
        elif store is not None and resume:
            stored = store.shard_payload(ckpt_key, shard.start,
                                         shard.stop)
            if stored is not None:
                try:
                    workload.validate_payload(stored, shard.start,
                                              shard.stop)
                    payload = stored
                    source = "checkpoint"
                except PoisonedResultError:
                    payload = None  # corrupt checkpoint: re-run

        if payload is None:
            source = "worker"
            for attempt in range(policy.max_attempts):
                delay = policy.delay_before(attempt)
                if delay > 0.0:
                    time.sleep(delay)
                fault = (chaos.fault_for(shard.index, attempt)
                         if chaos is not None else None)
                attempts += 1
                try:
                    candidate = execute(workload, shard, fault,
                                        policy.timeout_s)
                    workload.validate_payload(candidate, shard.start,
                                              shard.stop)
                    payload = candidate
                    break
                except ExecError as error:
                    last_error = error

        if payload is not None:
            payloads[shard.index] = payload
            if use_cache:
                SHARD_CACHE.get_or_compute(cache_key,
                                           lambda p=payload: p)
            if store is not None and source != "checkpoint":
                store.store(ckpt_key, shard.start, shard.stop,
                            payload)
            outcomes.append(ShardOutcome(
                index=shard.index, start=shard.start,
                stop=shard.stop, ok=True, attempts=attempts,
                source=source))
        else:
            outcomes.append(ShardOutcome(
                index=shard.index, start=shard.start,
                stop=shard.stop, ok=False, attempts=attempts,
                source="worker",
                error_type=type(last_error).__name__,
                error_message=str(last_error)))

    outcome_tuple = tuple(outcomes)
    if len(payloads) == len(shards):
        ordered = [payloads[shard.index] for shard in shards]
        return ExecResult(workload=workload.name,
                          value=workload.merge(ordered),
                          outcomes=outcome_tuple, n_total=n_total)

    done_shards = [shard for shard in shards
                   if shard.index in payloads]
    n_done = sum(shard.size for shard in done_shards)
    failed = [o for o in outcome_tuple if not o.ok]
    if not done_shards:
        raise ExecBudgetError(
            f"{workload.name}: no shard completed within the retry "
            f"budget ({policy.max_attempts} attempts/shard); last "
            f"failures: "
            + "; ".join(f"#{o.index} {o.error_type}" for o in failed))
    ordered_done = [payloads[shard.index] for shard in done_shards]
    bounds: Optional[Dict[str, ConfidenceBounds]] = None
    counts = [workload.pass_counts(p) for p in ordered_done]
    if all(c is not None for c in counts):
        n_pass = sum(c[0] for c in counts)
        n = sum(c[1] for c in counts)
        if n:
            bounds = {
                "wilson": wilson_interval(n_pass, n),
                "clopper_pearson": clopper_pearson_interval(
                    n_pass, n),
            }
    partial = PartialResult(
        workload=workload.name, n_total=n_total, n_done=n_done,
        outcomes=outcome_tuple,
        statistics=workload.partial_statistics(ordered_done),
        yield_bounds=bounds)
    if strict:
        raise ExecBudgetError(partial.summary())
    return partial
