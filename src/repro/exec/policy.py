"""Retry/timeout policy for sharded Monte Carlo execution.

A :class:`RetryPolicy` is pure configuration: how many times a failed
shard may be re-attempted, how long a single attempt may run, and how
the back-off between attempts grows.  It owns no state -- the runner
(:mod:`repro.exec.runner`) tracks attempt counts per shard -- so one
policy object can safely govern every shard of a run.

Retries never touch the determinism contract: a retried shard replays
the *same* SeedSequence child stream as the original attempt (the
workload rebuilds its sampler from the fixed seed on every attempt),
so a result that survives three crashes is bit-for-bit the result
that would have come back first try.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..robust.errors import ModelDomainError
from ..robust.validate import check_finite


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner treats a failing shard.

    ``max_retries`` is the number of *re*-attempts: a shard runs at
    most ``max_retries + 1`` times.  ``timeout_s=None`` disables the
    per-attempt wall-clock limit (hang injection is then remapped to
    a crash by the chaos layer so tests cannot dead-lock).  Back-off
    before re-attempt ``k`` (1-based) is
    ``min(backoff_initial_s * backoff_factor**(k-1), backoff_max_s)``.
    """

    max_retries: int = 2
    timeout_s: Optional[float] = None
    backoff_initial_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0

    def __post_init__(self) -> None:
        if isinstance(self.max_retries, bool) or not isinstance(
                self.max_retries, int) or self.max_retries < 0:
            raise ModelDomainError(
                f"max_retries must be a non-negative integer, got "
                f"{self.max_retries!r}")
        if self.timeout_s is not None:
            check_finite("timeout_s", self.timeout_s)
            if self.timeout_s <= 0.0:
                raise ModelDomainError(
                    f"timeout_s must be positive or None, got "
                    f"{self.timeout_s!r}")
        check_finite("backoff_initial_s", self.backoff_initial_s)
        check_finite("backoff_factor", self.backoff_factor)
        check_finite("backoff_max_s", self.backoff_max_s)
        if self.backoff_initial_s < 0.0 or self.backoff_max_s < 0.0:
            raise ModelDomainError("back-off delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ModelDomainError(
                f"backoff_factor must be >= 1, got "
                f"{self.backoff_factor!r}")

    @property
    def max_attempts(self) -> int:
        """Total attempts a shard may consume (first try + retries)."""
        return self.max_retries + 1

    def delay_before(self, attempt: int) -> float:
        """Back-off [s] before ``attempt`` (0 = first try, no delay).

        Bounded exponential: attempt 1 waits ``backoff_initial_s``,
        each further attempt doubles (``backoff_factor``) up to
        ``backoff_max_s``.
        """
        if isinstance(attempt, bool) or not isinstance(attempt, int) \
                or attempt < 0:
            raise ModelDomainError(
                f"attempt must be a non-negative integer, got "
                f"{attempt!r}")
        if attempt == 0:
            return 0.0
        delay = self.backoff_initial_s \
            * self.backoff_factor ** (attempt - 1)
        return min(delay, self.backoff_max_s)
