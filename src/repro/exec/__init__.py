"""Fault-tolerant sharded execution of batched Monte Carlo workloads.

The paper's headline numbers are all Monte Carlo statistics -- yield
vs node, chain sign-off, SSTA distributions -- and at sign-off scale
those runs move onto many workers, where workers crash, hang, and
occasionally return garbage.  This package makes that regime safe
without touching a single published number:

* :mod:`~repro.exec.shards` -- deterministic balanced shard plans;
* :mod:`~repro.exec.workloads` -- shardable workloads with exact
  merge rules (concatenation, integer count addition);
* :mod:`~repro.exec.policy` -- per-shard timeout + bounded
  exponential back-off retry;
* :mod:`~repro.exec.checkpoint` -- atomic JSON shard checkpoints for
  ``--resume``;
* :mod:`~repro.exec.chaos` -- seeded crash/hang/poison injection
  (``REPRO_CHAOS_SEED`` arms it suite-wide);
* :mod:`~repro.exec.runner` -- :func:`run_sharded`, which ties it
  together and degrades gracefully to a typed
  :class:`~repro.exec.result.PartialResult` with binomial yield
  bounds when shards exhaust their retries.

The package-wide guarantee, pinned by ``tests/exec``: under a fixed
seed, sharded results are bit-for-bit the single-process results,
for any shard count, worker failure order, or retry history.
"""

from .chaos import (CHAOS_ENV_VAR, FAULT_KINDS, ChaosPlan, ChaosSpec,
                    chaos_from_env, poison_payload)
from .checkpoint import ShardCheckpoint, run_key
from .policy import RetryPolicy
from .result import (ConfidenceBounds, ExecResult, PartialResult,
                     ShardOutcome, clopper_pearson_interval,
                     wilson_interval)
from .runner import SHARD_CACHE, run_sharded
from .shards import Shard, plan_shards
from .workloads import (YIELD_METRICS, ChainSignoffWorkload,
                        ShardWorkload, SocNoiseWorkload, SstaWorkload,
                        YieldWorkload)

__all__ = [
    "CHAOS_ENV_VAR", "FAULT_KINDS", "ChaosPlan", "ChaosSpec",
    "chaos_from_env", "poison_payload",
    "ShardCheckpoint", "run_key",
    "RetryPolicy",
    "ConfidenceBounds", "ExecResult", "PartialResult",
    "ShardOutcome", "clopper_pearson_interval", "wilson_interval",
    "SHARD_CACHE", "run_sharded",
    "Shard", "plan_shards",
    "YIELD_METRICS", "ChainSignoffWorkload", "ShardWorkload",
    "SocNoiseWorkload", "SstaWorkload", "YieldWorkload",
]
