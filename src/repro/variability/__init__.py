"""Process variability: dopant statistics, LER, Pelgrom matching, MC."""

from .dopants import (
    DopantPlacementModel,
    PlacedDopants,
    channel_dopant_count,
    dopant_count_sigma,
    dopant_count_vs_length,
    vth_sigma_from_rdf,
)
from .ler import (
    LerParameters,
    current_spread_from_ler,
    effective_length_profile,
    generate_edge,
    relative_ler_trend,
)
from .pelgrom import (
    MismatchSample,
    MismatchSampler,
    area_for_matching,
    matching_area_trend,
    offset_sigma_diff_pair,
    sigma_capacitor_mismatch,
    sigma_delta_beta,
    sigma_delta_vth,
    sigma_resistor_mismatch,
)
from .spatial import (
    SpatialSpec,
    VtMap,
    common_centroid_benefit,
    matching_vs_distance,
    sample_vt_map,
)
from .statistical import (
    DieBatch,
    MonteCarloSampler,
    SampledDevice,
    SampledDie,
    VariationSpec,
    YieldResult,
    monte_carlo_yield,
    monte_carlo_yield_batch,
    relative_variability_trend,
    worst_case_value,
)

__all__ = [
    "DopantPlacementModel", "PlacedDopants", "channel_dopant_count",
    "dopant_count_sigma", "dopant_count_vs_length", "vth_sigma_from_rdf",
    "LerParameters", "current_spread_from_ler", "effective_length_profile",
    "generate_edge", "relative_ler_trend",
    "MismatchSample", "MismatchSampler", "area_for_matching",
    "matching_area_trend", "offset_sigma_diff_pair",
    "sigma_capacitor_mismatch", "sigma_delta_beta", "sigma_delta_vth",
    "sigma_resistor_mismatch",
    "SpatialSpec", "VtMap", "common_centroid_benefit",
    "matching_vs_distance", "sample_vt_map",
    "DieBatch", "MonteCarloSampler", "SampledDevice", "SampledDie",
    "VariationSpec", "YieldResult", "monte_carlo_yield",
    "monte_carlo_yield_batch", "relative_variability_trend",
    "worst_case_value",
]
