"""Pelgrom-law device matching (intra-die variability).

The workhorse mismatch model of analog design, and the origin of the
"mismatch limit" in the paper's eq. 4 / Fig. 6:

    sigma(delta_VT)   = A_VT   / sqrt(W*L)
    sigma(delta_beta)/beta = A_beta / sqrt(W*L)

with an optional distance term for far-apart devices.  The A_VT
coefficient improves roughly proportionally to t_ox with scaling --
the "mismatch improves slightly" observation in section 4.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..robust.validate import check_count, check_range, validated
from ..technology.node import TechnologyNode
from ..robust.rng import resolve_rng


@dataclass(frozen=True)
class MismatchSample:
    """One sampled device-pair mismatch."""

    delta_vth: float       # V
    delta_beta_rel: float  # relative current-factor error


@validated(_result_finite=True, width="positive", length="positive",
           distance="non-negative",
           distance_coefficient="non-negative")
def sigma_delta_vth(node: TechnologyNode, width: float, length: float,
                    distance: float = 0.0,
                    distance_coefficient: float = 1e-6) -> float:
    """Pelgrom sigma of the V_T difference of a device pair [V].

    ``distance_coefficient`` [V/m] adds the long-range gradient term:
    sigma^2 = (A_VT^2)/(W*L) + (S_VT * D)^2.
    """
    area_term = node.avt ** 2 / (width * length)
    dist_term = (distance_coefficient * distance) ** 2
    return math.sqrt(area_term + dist_term)


@validated(_result_finite=True, width="positive", length="positive")
def sigma_delta_beta(node: TechnologyNode, width: float,
                     length: float) -> float:
    """Pelgrom sigma of the relative current-factor difference."""
    return node.abeta / math.sqrt(width * length)


@validated(_result_finite=True, sigma_vth_target="positive")
def area_for_matching(node: TechnologyNode, sigma_vth_target: float) -> float:
    """Gate area W*L [m^2] needed to reach a target sigma_VT.

    This is the key inversion behind the paper's analog-area argument:
    accuracy requirements, not the technology, set analog device area,
    so analog blocks do not shrink with scaling.
    """
    return (node.avt / sigma_vth_target) ** 2


def matching_area_trend(nodes: Sequence[TechnologyNode],
                        sigma_vth_target: float = 1e-3
                        ) -> List[Dict[str, float]]:
    """Required matched-pair area per node vs the minimum device area.

    The ratio explodes with scaling: matched area shrinks only with
    A_VT (~t_ox) while minimum area shrinks with L^2.
    """
    rows = []
    for node in nodes:
        required = area_for_matching(node, sigma_vth_target)
        minimum = node.feature_size ** 2
        rows.append({
            "node": node.name,
            "required_area_um2": required * 1e12,
            "min_device_area_um2": minimum * 1e12,
            "area_ratio": required / minimum,
        })
    return rows


class MismatchSampler:
    """Draws correlated (delta_VT, delta_beta) mismatch samples."""

    def __init__(self, node: TechnologyNode, width: float, length: float,
                 correlation: float = 0.0,
                 seed: Optional[int] = None):
        check_range("correlation", correlation, -1.0, 1.0)
        self.node = node
        self.width = width
        self.length = length
        self.correlation = correlation
        self.rng = resolve_rng(seed=seed)
        self._sigma_vth = sigma_delta_vth(node, width, length)
        self._sigma_beta = sigma_delta_beta(node, width, length)

    def sample(self) -> MismatchSample:
        """Draw one device-pair mismatch."""
        z1, z2 = self.rng.standard_normal(2)
        z2 = self.correlation * z1 + math.sqrt(
            1 - self.correlation ** 2) * z2
        return MismatchSample(delta_vth=self._sigma_vth * z1,
                              delta_beta_rel=self._sigma_beta * z2)

    def sample_many(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` samples; returns (delta_vth, delta_beta)."""
        count = check_count("count", count)
        z = self.rng.standard_normal((2, count))
        z[1] = self.correlation * z[0] + math.sqrt(
            1 - self.correlation ** 2) * z[1]
        return self._sigma_vth * z[0], self._sigma_beta * z[1]


@validated(_result_finite=True, width="positive", length="positive",
           matching_coefficient="positive")
def sigma_resistor_mismatch(node: TechnologyNode, width: float,
                            length: float,
                            matching_coefficient: Optional[float] = None
                            ) -> float:
    """Pelgrom sigma of the relative mismatch of a resistor pair.

    Same area law as device matching: sigma(dR/R) = A_R / sqrt(W*L).
    Poly/diffusion resistors match roughly 2x worse than MOS current
    factors at equal area, so ``matching_coefficient`` [m] defaults to
    ``2 * node.abeta``.  This is the per-leg error source of the R-2R
    DAC in :mod:`repro.analog.chain`.
    """
    a_r = (2.0 * node.abeta if matching_coefficient is None
           else matching_coefficient)
    return a_r / math.sqrt(width * length)


@validated(_result_finite=True, width="positive", length="positive",
           matching_coefficient="positive")
def sigma_capacitor_mismatch(node: TechnologyNode, width: float,
                             length: float,
                             matching_coefficient: Optional[float] = None
                             ) -> float:
    """Pelgrom sigma of the relative mismatch of a capacitor pair.

    sigma(dC/C) = A_C / sqrt(W*L) with ``matching_coefficient`` [m]
    defaulting to ``node.abeta`` (MIM/MOM caps match about as well as
    MOS current factors).  Feeds the SAR cap-DAC mismatch in
    :mod:`repro.analog.chain`; a unit cap of ``2**i`` parallel units
    de-rates by ``sqrt(2**i)`` exactly like any parallel combination.
    """
    a_c = node.abeta if matching_coefficient is None \
        else matching_coefficient
    return a_c / math.sqrt(width * length)


@validated(_result_finite=True, width="positive", length="positive",
           gm_over_id="positive")
def offset_sigma_diff_pair(node: TechnologyNode, width: float,
                           length: float, gm_over_id: float = 10.0,
                           include_beta: bool = True) -> float:
    """Input-referred offset sigma [V] of a differential pair.

    sigma_off^2 = sigma_VT^2 + (sigma_beta / (gm/Id))^2 -- the V_T term
    dominates for realistic bias points, which is why A_VT alone sets
    the mismatch limit in Fig. 6.
    """
    svt = sigma_delta_vth(node, width, length)
    if not include_beta:
        return svt
    sbeta = sigma_delta_beta(node, width, length)
    return math.sqrt(svt ** 2 + (sbeta / gm_over_id) ** 2)
