"""Random dopant fluctuation (RDF): Figs. 2 and 3 of the paper.

The channel of a nanometre MOSFET contains only a handful of dopant
atoms.  Their *number* fluctuates with sigma = sqrt(N) (Poisson), which
directly perturbs V_T (Fig. 2); their random *placement* -- in
particular of the source/drain dopants -- perturbs the effective
channel length (Fig. 3).  Both effects grow as the dopant count falls
with L^2 scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.constants import (ELECTRON_CHARGE, EPSILON_0, EPSILON_SI)
from ..robust.validate import check_count, validated
from ..technology.node import TechnologyNode
from ..robust.rng import resolve_rng


@validated(_result_finite=True, width="positive", length="positive")
def channel_dopant_count(node: TechnologyNode,
                         width: Optional[float] = None,
                         length: Optional[float] = None) -> float:
    """Mean number of dopant atoms in the channel depletion region.

    N = N_A * W * L * x_dep with x_dep the maximum depletion depth.
    This is the quantity Fig. 2 plots against channel length: it falls
    roughly with L^2 (W tracks L, x_dep shrinks slowly) and drops below
    ~100 atoms in the deep-nanometre regime.
    """
    length = length if length is not None else node.feature_size
    width = width if width is not None else 2.0 * length
    return node.channel_doping * width * length * node.depletion_depth


@validated(_result_finite=True, mean_count="non-negative")
def dopant_count_sigma(mean_count: float) -> float:
    """Poisson statistics: sigma_N = sqrt(N) (section 2.4)."""
    return math.sqrt(mean_count)


@validated(_result_finite=True, width="positive", length="positive")
def vth_sigma_from_rdf(node: TechnologyNode,
                       width: Optional[float] = None,
                       length: Optional[float] = None) -> float:
    """Analytic sigma_VT [V] from random dopant fluctuation.

    Uses the standard depletion-charge argument: V_T depends on the
    depletion charge Q_dep = q*N/(W*L); a sqrt(N) fluctuation of N
    gives sigma_VT = (q / (C_ox*W*L)) * sqrt(N) * (x_dep sharing
    factor ~0.5 for the half of the depletion charge that images on
    the gate).
    """
    length = length if length is not None else node.feature_size
    width = width if width is not None else 2.0 * length
    n_mean = channel_dopant_count(node, width, length)
    cox_total = node.cox * width * length
    return 0.5 * ELECTRON_CHARGE * math.sqrt(n_mean) / cox_total


def dopant_count_vs_length(node: TechnologyNode,
                           lengths: Sequence[float],
                           aspect_ratio: float = 2.0
                           ) -> List[Dict[str, float]]:
    """Tabulate Fig. 2: dopant count (and its sigma) vs channel length.

    ``aspect_ratio`` sets W = aspect_ratio * L so both dimensions scale
    together, as in the figure.
    """
    rows = []
    for length in lengths:
        mean_count = channel_dopant_count(
            node, width=aspect_ratio * length, length=length)
        rows.append({
            "length_nm": length * 1e9,
            "dopant_count": mean_count,
            "sigma_count": dopant_count_sigma(mean_count),
            "relative_sigma": (dopant_count_sigma(mean_count) / mean_count
                               if mean_count > 0 else float("inf")),
        })
    return rows


@dataclass(frozen=True)
class PlacedDopants:
    """Monte Carlo sample of discrete dopant positions (Fig. 3).

    Positions are in metres within the channel box
    [0, length] x [0, width]; ``source_edge``/``drain_edge`` are the
    per-device encroachment of S/D dopants into the channel.
    """

    x: np.ndarray           # along the channel (source -> drain)
    y: np.ndarray           # along the width
    length: float
    width: float
    source_encroachment: float
    drain_encroachment: float

    @property
    def count(self) -> int:
        """Number of dopants actually placed."""
        return int(self.x.size)

    @property
    def effective_length(self) -> float:
        """Channel length after S/D dopant encroachment [m]."""
        return max(self.length - self.source_encroachment
                   - self.drain_encroachment, 0.0)


class DopantPlacementModel:
    """Monte Carlo model of discrete dopant placement (Fig. 3).

    Channel dopants are thrown uniformly (Poisson count); source/drain
    dopants diffuse a random distance into the channel, modelled as the
    maximum of an exponential tail per edge.  The resulting effective-
    length spread feeds the paper's claim that random S/D placement
    adds an L_eff uncertainty on top of the V_T uncertainty.
    """

    #: Default lateral implant straggle [m].  Like line-edge roughness
    #: this is set by process physics, not by the drawn length -- the
    #: reason the paper says the effect "is also enforced as the
    #: number of dopants goes down": the same absolute straggle eats a
    #: growing fraction of a shrinking channel.
    DEFAULT_STRAGGLE = 3e-9

    def __init__(self, node: TechnologyNode,
                 lateral_straggle: Optional[float] = None,
                 seed: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        self.node = node
        self.lateral_straggle = (lateral_straggle if lateral_straggle
                                 is not None else self.DEFAULT_STRAGGLE)
        self.rng = resolve_rng(rng, seed=seed)

    def sample(self, width: Optional[float] = None,
               length: Optional[float] = None) -> PlacedDopants:
        """Draw one device's dopant configuration."""
        length = length if length is not None else self.node.feature_size
        width = width if width is not None else 2.0 * length
        mean_count = channel_dopant_count(self.node, width, length)
        count = int(self.rng.poisson(mean_count))
        x = self.rng.uniform(0.0, length, size=count)
        y = self.rng.uniform(0.0, width, size=count)
        # Edge encroachment: deepest of ~W/pitch independent S/D dopant
        # columns, each exponentially distributed.
        columns = max(int(width / self.node.wire_pitch * 4), 1)
        source = float(np.max(self.rng.exponential(
            self.lateral_straggle, size=columns)))
        drain = float(np.max(self.rng.exponential(
            self.lateral_straggle, size=columns)))
        return PlacedDopants(x=x, y=y, length=length, width=width,
                             source_encroachment=source,
                             drain_encroachment=drain)

    def sample_batch(self, n_devices: int,
                     width: Optional[float] = None,
                     length: Optional[float] = None
                     ) -> Dict[str, np.ndarray]:
        """Batched draw of ``n_devices`` devices' count and L_eff.

        Vectorized twin of repeated :meth:`sample` calls for the
        statistics that do not need individual dopant *positions*:
        returns ``count`` (Poisson per device), ``source``/``drain``
        encroachments (max of the per-column exponential tails) and
        ``effective_length``, each of shape ``(n_devices,)``.  The
        per-dopant (x, y) clouds are skipped, which is what makes the
        batch 10-100x faster than the scalar loop; the distributions
        of the returned quantities are identical.
        """
        n_devices = check_count("n_devices", n_devices)
        length = length if length is not None else self.node.feature_size
        width = width if width is not None else 2.0 * length
        mean_count = channel_dopant_count(self.node, width, length)
        counts = self.rng.poisson(mean_count, size=n_devices)
        columns = max(int(width / self.node.wire_pitch * 4), 1)
        tails = self.rng.exponential(
            self.lateral_straggle, size=(n_devices, 2, columns))
        encroachment = tails.max(axis=2)
        effective = np.maximum(
            length - encroachment[:, 0] - encroachment[:, 1], 0.0)
        return {
            "count": counts.astype(float),
            "source_encroachment": encroachment[:, 0],
            "drain_encroachment": encroachment[:, 1],
            "effective_length": effective,
        }

    def effective_length_statistics(self, n_devices: int,
                                    width: Optional[float] = None,
                                    length: Optional[float] = None
                                    ) -> Dict[str, float]:
        """MC statistics of L_eff across ``n_devices`` devices."""
        n_devices = check_count("n_devices", n_devices, minimum=2)
        samples = self.sample_batch(n_devices, width,
                                    length)["effective_length"]
        nominal = length if length is not None else self.node.feature_size
        return {
            "n_devices": float(n_devices),
            "nominal_length_nm": nominal * 1e9,
            "mean_leff_nm": float(samples.mean()) * 1e9,
            "sigma_leff_nm": float(samples.std(ddof=1)) * 1e9,
            "relative_sigma": float(samples.std(ddof=1) / samples.mean()),
        }

    def count_statistics(self, n_devices: int,
                         width: Optional[float] = None,
                         length: Optional[float] = None) -> Dict[str, float]:
        """MC statistics of the dopant count; checks sqrt(N) scaling."""
        counts = self.sample_batch(n_devices, width, length)["count"]
        return {
            "mean_count": float(counts.mean()),
            "sigma_count": float(counts.std(ddof=1)),
            "poisson_prediction": math.sqrt(max(counts.mean(), 0.0)),
        }
