"""Line-edge roughness (LER) -- second variability example of section 2.4.

Lithographic edges are rough with a roughly constant absolute amplitude
(~a few nm, set by resist chemistry, not by the node).  As the drawn
gate length shrinks, the same roughness becomes *relatively* larger,
widening the L_eff distribution and hence the drive-current spread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..robust.validate import check_count, check_positive, validated
from ..technology.node import TechnologyNode
from ..robust.rng import resolve_rng


@dataclass(frozen=True)
class LerParameters:
    """Gaussian-correlated edge-roughness description.

    Parameters
    ----------
    sigma:
        RMS edge deviation [m].  Historically ~1.5 nm (3-sigma ~5 nm)
        and nearly node-independent -- the crux of the paper's point.
    correlation_length:
        Autocorrelation length along the edge [m].
    """

    sigma: float = 1.5e-9
    correlation_length: float = 25e-9

    def __post_init__(self) -> None:
        check_positive("sigma", self.sigma)
        check_positive("correlation_length", self.correlation_length)


def generate_edge(params: LerParameters, width: float, n_points: int = 256,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Generate one rough edge profile along a gate of ``width`` [m].

    Returns the edge deviation [m] at ``n_points`` positions, with a
    Gaussian autocorrelation imposed by filtering white noise.
    """
    check_positive("width", width)
    n_points = check_count("n_points", n_points, minimum=8)
    rng = resolve_rng(rng)
    positions = np.linspace(0.0, width, n_points)
    spacing = positions[1] - positions[0]
    white = rng.standard_normal(n_points)
    # Gaussian smoothing kernel with the requested correlation length.
    # Capped at n_points: beyond the gate width the kernel is flat, and
    # an uncapped extreme correlation length would allocate an
    # astronomically large kernel array.
    kernel_half = min(max(int(3 * params.correlation_length / spacing), 1),
                      n_points)
    offsets = np.arange(-kernel_half, kernel_half + 1) * spacing
    kernel = np.exp(-0.5 * (offsets / params.correlation_length) ** 2)
    kernel /= math.sqrt(np.sum(kernel ** 2))
    smooth = np.convolve(white, kernel, mode="same")
    return params.sigma * smooth


def effective_length_profile(params: LerParameters, length: float,
                             width: float, n_points: int = 256,
                             rng: Optional[np.random.Generator] = None
                             ) -> np.ndarray:
    """Local channel length along the width: two independent rough edges."""
    rng = resolve_rng(rng)
    left = generate_edge(params, width, n_points, rng)
    right = generate_edge(params, width, n_points, rng)
    return length + right - left


@validated(_result_finite=True, width="positive")
def current_spread_from_ler(node: TechnologyNode,
                            params: LerParameters = LerParameters(),
                            n_devices: int = 200,
                            width: Optional[float] = None,
                            n_points: int = 128,
                            seed: Optional[int] = None) -> Dict[str, float]:
    """MC estimate of the drive-current spread caused by LER.

    The device is treated as parallel slices, each carrying a current
    inversely proportional to its local length (linear-region limit),
    giving I ~ mean(1/L_local).
    """
    n_devices = check_count("n_devices", n_devices, minimum=2)
    rng = resolve_rng(seed=seed)
    width = width if width is not None else 2.0 * node.feature_size
    length = node.feature_size
    currents = np.empty(n_devices)
    for i in range(n_devices):
        profile = effective_length_profile(params, length, width,
                                           n_points, rng)
        profile = np.maximum(profile, 0.2 * length)  # avoid pinch-through
        currents[i] = np.mean(1.0 / profile)
    currents /= np.mean(1.0 / length)
    return {
        "mean_current_rel": float(currents.mean()),
        "sigma_current_rel": float(currents.std(ddof=1)),
        "length_nm": length * 1e9,
        "ler_sigma_nm": params.sigma * 1e9,
    }


def relative_ler_trend(nodes: Sequence[TechnologyNode],
                       params: LerParameters = LerParameters()
                       ) -> List[Dict[str, float]]:
    """Tabulate sigma_LER / L per node -- the paper's 'relatively more
    important' claim in one column."""
    return [{
        "node": node.name,
        "length_nm": node.feature_size * 1e9,
        "ler_sigma_nm": params.sigma * 1e9,
        "relative_sigma": params.sigma / node.feature_size,
    } for node in nodes]
