"""Statistical design framework: inter-die + intra-die Monte Carlo.

Section 2.4 of the paper splits process variability into *inter-die*
(common to all devices on a die) and *intra-die* (device mismatch) and
notes that circuit-level countermeasures differ for each.  This module
provides the sampling machinery both digital (Fig. 4, worst-case
sizing) and analog (mismatch budgets) analyses use, plus simple yield
estimators in the spirit of the statistical-design reference [8].

Two sampling paths share one seeded RNG contract:

* the **scalar** path (:meth:`MonteCarloSampler.sample_die` /
  :meth:`SampledDie.sample_device`) -- one die object per draw, used
  by code that inspects individual dies;
* the **batched** path (:meth:`MonteCarloSampler.sample_dies_batch`)
  -- every inter-die shift and per-device draw as one numpy array,
  10-100x more samples per second.

Both consume the *same* random variates under a fixed seed: inter-die
shifts come from the sampler's own generator in (vth, length, tox)
order per die, and each die's device draws come from a generator
spawned off the sampler (one child per die, in die order), so the
batched arrays are bit-for-bit equal to the scalar objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..perf.profile import timed
from ..robust.errors import ModelDomainError
from ..robust.validate import (check_count, check_finite,
                               check_non_negative, check_positive)
from ..technology.node import TechnologyNode
from ..robust.rng import resolve_rng
from ..robust.validate import validated

ArrayLike = Union[float, np.ndarray]

ShardRange = Tuple[int, int]


def check_shard(shard: Optional[ShardRange],
                n_total: int) -> Optional[ShardRange]:
    """Validate a ``(start, stop)`` shard range against ``n_total``.

    Shard ranges are half-open die index intervals of the *full*
    batch; ``None`` means the whole batch.  Raises
    :class:`ModelDomainError` on anything else, so a transposed or
    out-of-range shard fails loudly instead of silently mis-slicing a
    Monte Carlo population.
    """
    if shard is None:
        return None
    try:
        start, stop = shard
    except (TypeError, ValueError):
        raise ModelDomainError(
            f"shard must be a (start, stop) pair, got {shard!r}")
    for name, value in (("start", start), ("stop", stop)):
        if isinstance(value, bool) or \
                not isinstance(value, (int, np.integer)):
            raise ModelDomainError(
                f"shard {name} must be an integer, got {value!r}")
    start, stop = int(start), int(stop)
    if not 0 <= start < stop <= n_total:
        raise ModelDomainError(
            f"shard range [{start}, {stop}) must satisfy "
            f"0 <= start < stop <= {n_total}")
    return start, stop


@dataclass(frozen=True)
class VariationSpec:
    """One-sigma magnitudes of the modelled process variations.

    ``vth_inter``/``vth_intra`` are absolute [V]; the geometric terms
    are relative fractions.  ``vth_intra`` is the sigma of a
    *minimum-size* device; larger devices are de-rated by
    sqrt(area_min/area) per Pelgrom.
    """

    vth_inter: float = 0.015
    vth_intra: float = 0.0          # 0 -> derive from node A_VT
    length_inter_rel: float = 0.04
    length_intra_rel: float = 0.02
    tox_inter_rel: float = 0.02

    def __post_init__(self) -> None:
        for name in ("vth_inter", "vth_intra", "length_inter_rel",
                     "length_intra_rel", "tox_inter_rel"):
            check_non_negative(name, getattr(self, name))

    def intra_sigma_vth(self, node: TechnologyNode, width: ArrayLike,
                        length: ArrayLike) -> ArrayLike:
        """Intra-die sigma_VT for a W x L device [V].

        Accepts scalars or (broadcastable) arrays of widths/lengths;
        the Pelgrom de-rating is applied elementwise.
        """
        check_positive("width", width)
        check_positive("length", length)
        width = np.asarray(width, dtype=float)
        length = np.asarray(length, dtype=float)
        area = width * length
        if self.vth_intra > 0:
            min_area = node.feature_size ** 2 * 2.0
            out = self.vth_intra * np.sqrt(min_area / area)
        else:
            out = node.avt / np.sqrt(area)
        return out if out.ndim else float(out)


@dataclass
class SampledDevice:
    """Per-device sampled deviations (additive/relative)."""

    vth_offset: float
    length_factor: float


@dataclass
class SampledDie:
    """One die: global shifts plus per-device draws on demand.

    ``rng`` drives the intra-die (device) draws.  The factory
    (:meth:`MonteCarloSampler.sample_die`) always injects a child
    generator spawned off the sampler, so each die's device stream is
    independent of every other die's and of the inter-die stream; the
    field is ``Optional`` only for hand-built instances, which must
    supply a generator before calling :meth:`sample_device`.
    """

    node: TechnologyNode
    spec: VariationSpec
    vth_global: float
    length_factor_global: float
    tox_factor_global: float
    rng: Optional[np.random.Generator] = field(repr=False, default=None)

    def sample_device(self, width: float,
                      length: Optional[float] = None) -> SampledDevice:
        """Draw one device's total (inter + intra) deviation."""
        if self.rng is None:
            raise ModelDomainError(
                "SampledDie.rng is unset; use MonteCarloSampler."
                "sample_die() or provide a generator explicitly")
        length = length if length is not None else self.node.feature_size
        sigma_intra = self.spec.intra_sigma_vth(self.node, width, length)
        return SampledDevice(
            vth_offset=self.vth_global
            + sigma_intra * self.rng.standard_normal(),
            length_factor=self.length_factor_global
            * (1.0 + self.spec.length_intra_rel
               * self.rng.standard_normal()),
        )

    def effective_node(self) -> TechnologyNode:
        """Node shifted by this die's global variations only."""
        return self.node.with_overrides(
            name=f"{self.node.name}@die",
            vth=self.node.vth + self.vth_global,
            feature_size=self.node.feature_size * self.length_factor_global,
            tox=self.node.tox * self.tox_factor_global,
        )


@dataclass
class DieBatch:
    """A batch of sampled dies as plain numpy arrays.

    The array-of-structs twin of a list of :class:`SampledDie`:
    inter-die shifts are 1-D arrays over dies, and (when devices were
    requested) the per-device totals are 2-D ``(n_dies, n_devices)``
    arrays with the inter-die shift already folded in -- the same
    quantities :meth:`SampledDie.sample_device` returns, just batched.
    """

    node: TechnologyNode
    spec: VariationSpec
    vth_global: np.ndarray            # (n_dies,) [V]
    length_factor_global: np.ndarray  # (n_dies,) relative
    tox_factor_global: np.ndarray     # (n_dies,) relative
    #: Per-device total V_T offsets [V], (n_dies, n_devices); None
    #: when the batch was drawn without devices.
    device_vth_offset: Optional[np.ndarray] = field(
        repr=False, default=None)
    #: Per-device total length factors, (n_dies, n_devices).
    device_length_factor: Optional[np.ndarray] = field(
        repr=False, default=None)

    @property
    def n_dies(self) -> int:
        """Number of dies in the batch."""
        return int(self.vth_global.size)

    @property
    def n_devices(self) -> int:
        """Devices sampled per die (0 when inter-die only)."""
        if self.device_vth_offset is None:
            return 0
        return int(self.device_vth_offset.shape[1])

    def die(self, index: int) -> SampledDie:
        """Scalar view of die ``index`` (without a device generator)."""
        return SampledDie(
            node=self.node,
            spec=self.spec,
            vth_global=float(self.vth_global[index]),
            length_factor_global=float(self.length_factor_global[index]),
            tox_factor_global=float(self.tox_factor_global[index]),
        )


class MonteCarloSampler:
    """Two-level (die, device) Monte Carlo process sampler.

    The sampler's own generator produces the inter-die stream; device
    streams are spawned children (one per die), which makes the
    scalar and batched paths draw identical variates under the same
    seed regardless of how callers interleave device sampling.
    """

    def __init__(self, node: TechnologyNode,
                 spec: VariationSpec = VariationSpec(),
                 seed: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        self.node = node
        self.spec = spec
        self.rng = resolve_rng(rng, seed=seed)

    def sample_die(self) -> SampledDie:
        """Draw one die's global (inter-die) shifts."""
        child = self.rng.spawn(1)[0]
        return SampledDie(
            node=self.node,
            spec=self.spec,
            vth_global=self.spec.vth_inter * self.rng.standard_normal(),
            length_factor_global=1.0 + self.spec.length_inter_rel
            * self.rng.standard_normal(),
            tox_factor_global=1.0 + self.spec.tox_inter_rel
            * self.rng.standard_normal(),
            rng=child,
        )

    def sample_dies(self, count: int) -> List[SampledDie]:
        """Draw ``count`` dies."""
        count = check_count("count", count)
        return [self.sample_die() for _ in range(count)]

    @timed("variability.sample_dies_batch")
    def sample_dies_batch(self, n_dies: int, n_devices: int = 0,
                          width: Optional[ArrayLike] = None,
                          length: Optional[ArrayLike] = None,
                          shard: Optional[ShardRange] = None) -> DieBatch:
        """Draw ``n_dies`` dies (and optionally devices) as arrays.

        With ``n_devices > 0``, each die also gets that many device
        draws of a ``width`` x ``length`` device (``length`` defaults
        to the node feature size; ``width``/``length`` may be scalars
        or per-device arrays of shape ``(n_devices,)`` for
        heterogeneous device lists, Pelgrom de-rating applied
        elementwise).

        Stream contract: die ``d`` of the batch carries exactly the
        variates die ``d`` of :meth:`sample_dies` would -- the
        inter-die draws come from this sampler's generator in
        (vth, length, tox) per-die order, and device draws come from
        the per-die spawned child in (vth, length) per-device order.

        A ``shard=(start, stop)`` range returns only dies
        ``start..stop-1`` of the *same* ``n_dies`` population: the
        full inter-die stream is drawn (so the sampler's generator
        advances identically to the unsharded call) and then sliced,
        and only the sharded dies' spawned children are consumed for
        device draws.  Die ``start + k`` of a sharded batch is
        bit-for-bit die ``start + k`` of the full batch, which is
        what makes :mod:`repro.exec` shard merges exact.
        """
        n_dies = check_count("n_dies", n_dies)
        n_devices = check_count("n_devices", n_devices, minimum=0)
        shard = check_shard(shard, n_dies)
        start, stop = shard if shard is not None else (0, n_dies)
        if n_devices > 0 and width is None:
            raise ModelDomainError(
                "width is required when sampling devices")
        # One spawn per die, exactly as sample_die() would.  Spawning
        # advances only the SeedSequence child counter, never the
        # parent bit stream, so when no devices are requested it is
        # skipped entirely (it is by far the dominant per-die cost)
        # without changing any inter-die draw.
        children = self.rng.spawn(n_dies) if n_devices > 0 else ()
        draws = self.rng.standard_normal((n_dies, 3))[start:stop]
        batch = DieBatch(
            node=self.node,
            spec=self.spec,
            vth_global=self.spec.vth_inter * draws[:, 0],
            length_factor_global=1.0
            + self.spec.length_inter_rel * draws[:, 1],
            tox_factor_global=1.0
            + self.spec.tox_inter_rel * draws[:, 2],
        )
        if n_devices == 0:
            return batch
        length = length if length is not None else self.node.feature_size
        sigma_intra = np.broadcast_to(
            np.asarray(self.spec.intra_sigma_vth(
                self.node, width, length), dtype=float), (n_devices,))
        n_sharded = stop - start
        vth_offset = np.empty((n_sharded, n_devices))
        length_factor = np.empty((n_sharded, n_devices))
        for d, child in enumerate(children[start:stop]):
            z = child.standard_normal((n_devices, 2))
            vth_offset[d] = batch.vth_global[d] + sigma_intra * z[:, 0]
            length_factor[d] = batch.length_factor_global[d] * (
                1.0 + self.spec.length_intra_rel * z[:, 1])
        batch.device_vth_offset = vth_offset
        batch.device_length_factor = length_factor
        return batch


@dataclass(frozen=True)
class YieldResult:
    """Outcome of a Monte Carlo yield run.

    ``passed`` is the per-die pass vector when the run produced one
    (the batched path always does); the scalar loop leaves it ``None``.
    It is the merge currency of :mod:`repro.exec`: concatenating shard
    pass vectors in shard order reproduces the single-process vector
    bit for bit, so counts, fractions and sigma levels merge exactly.
    """

    n_samples: int
    n_pass: int
    # compare=False: equality stays (n_samples, n_pass) -- comparing
    # ndarray fields with == is ambiguous, and two runs with the same
    # counts are the same yield outcome.
    passed: Optional[np.ndarray] = field(repr=False, compare=False,
                                         default=None)

    @property
    def yield_fraction(self) -> float:
        """Fraction of samples meeting spec."""
        return self.n_pass / self.n_samples

    @property
    def sigma_level(self) -> float:
        """Equivalent one-sided Gaussian sigma of the yield."""
        from scipy.stats import norm
        frac = min(max(self.yield_fraction, 1e-12), 1 - 1e-12)
        return float(norm.ppf(frac))


def monte_carlo_yield(sampler: MonteCarloSampler,
                      metric: Callable[[SampledDie], float],
                      limit: float,
                      n_dies: int = 500,
                      upper_is_fail: bool = True) -> YieldResult:
    """Estimate parametric yield of ``metric`` against ``limit``.

    ``metric`` maps a sampled die to a scalar performance (e.g. a
    critical-path delay); a die passes when the metric is on the good
    side of ``limit``.
    """
    n_dies = check_count("n_dies", n_dies)
    check_finite("limit", limit)
    n_pass = 0
    for _ in range(n_dies):
        value = metric(sampler.sample_die())
        ok = value <= limit if upper_is_fail else value >= limit
        n_pass += int(ok)
    return YieldResult(n_samples=n_dies, n_pass=n_pass)


@timed("variability.monte_carlo_yield_batch")
def monte_carlo_yield_batch(sampler: MonteCarloSampler,
                            metric: Callable[[DieBatch], np.ndarray],
                            limit: float,
                            n_dies: int = 500,
                            upper_is_fail: bool = True,
                            shard: Optional[ShardRange] = None
                            ) -> YieldResult:
    """Batched twin of :func:`monte_carlo_yield`.

    ``metric`` maps a :class:`DieBatch` to a ``(n_dies,)`` array of
    performances, evaluated in one vectorized shot.  Under the same
    seed the sampled shifts are bit-for-bit those of the scalar path,
    so a vectorized metric gives the identical pass/fail vector.

    With ``shard=(start, stop)`` only that slice of the ``n_dies``
    population is sampled and evaluated (the metric sees the
    sub-batch and must stay elementwise per die); the returned
    ``passed`` vector is the exact slice of the full run's vector, so
    shard results merge bit-for-bit (see :mod:`repro.exec`).
    """
    n_dies = check_count("n_dies", n_dies)
    check_finite("limit", limit)
    shard = check_shard(shard, n_dies)
    start, stop = shard if shard is not None else (0, n_dies)
    batch = sampler.sample_dies_batch(n_dies, shard=shard)
    values = np.asarray(metric(batch), dtype=float)
    if values.shape != (stop - start,):
        raise ModelDomainError(
            f"metric must return shape ({stop - start},), "
            f"got {values.shape}")
    ok = values <= limit if upper_is_fail else values >= limit
    return YieldResult(n_samples=stop - start,
                       n_pass=int(np.count_nonzero(ok)),
                       passed=np.asarray(ok, dtype=bool))


@validated(nominal="finite", sigma="non-negative", n_sigma="non-negative")
def worst_case_value(nominal: float, sigma: float, n_sigma: float = 3.0,
                     upper: bool = True) -> float:
    """Classic worst-case corner value: nominal +/- n_sigma * sigma."""
    return nominal + (n_sigma if upper else -n_sigma) * sigma


@validated(absolute_sigma_vth="positive")
def relative_variability_trend(nodes: Sequence[TechnologyNode],
                               absolute_sigma_vth: float = 0.015
                               ) -> List[Dict[str, float]]:
    """The paper's central variability claim, quantified per node:

    the same absolute sigma_VT consumes a growing fraction of both V_T
    itself and of the gate overdrive V_DD - V_T.
    """
    rows = []
    for node in nodes:
        rows.append({
            "node": node.name,
            "vth_V": node.vth,
            "overdrive_V": node.overdrive,
            "sigma_over_vth": absolute_sigma_vth / node.vth,
            "sigma_over_overdrive": absolute_sigma_vth / node.overdrive,
        })
    return rows
