"""Statistical design framework: inter-die + intra-die Monte Carlo.

Section 2.4 of the paper splits process variability into *inter-die*
(common to all devices on a die) and *intra-die* (device mismatch) and
notes that circuit-level countermeasures differ for each.  This module
provides the sampling machinery both digital (Fig. 4, worst-case
sizing) and analog (mismatch budgets) analyses use, plus simple yield
estimators in the spirit of the statistical-design reference [8].
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..technology.node import TechnologyNode


@dataclass(frozen=True)
class VariationSpec:
    """One-sigma magnitudes of the modelled process variations.

    ``vth_inter``/``vth_intra`` are absolute [V]; the geometric terms
    are relative fractions.  ``vth_intra`` is the sigma of a
    *minimum-size* device; larger devices are de-rated by
    sqrt(area_min/area) per Pelgrom.
    """

    vth_inter: float = 0.015
    vth_intra: float = 0.0          # 0 -> derive from node A_VT
    length_inter_rel: float = 0.04
    length_intra_rel: float = 0.02
    tox_inter_rel: float = 0.02

    def intra_sigma_vth(self, node: TechnologyNode, width: float,
                        length: float) -> float:
        """Intra-die sigma_VT for a W x L device [V]."""
        if self.vth_intra > 0:
            min_area = node.feature_size ** 2 * 2.0
            return self.vth_intra * math.sqrt(min_area / (width * length))
        return node.avt / math.sqrt(width * length)


@dataclass
class SampledDevice:
    """Per-device sampled deviations (additive/relative)."""

    vth_offset: float
    length_factor: float


@dataclass
class SampledDie:
    """One die: global shifts plus per-device draws on demand."""

    node: TechnologyNode
    spec: VariationSpec
    vth_global: float
    length_factor_global: float
    tox_factor_global: float
    rng: np.random.Generator = field(repr=False, default=None)

    def sample_device(self, width: float,
                      length: Optional[float] = None) -> SampledDevice:
        """Draw one device's total (inter + intra) deviation."""
        length = length if length is not None else self.node.feature_size
        sigma_intra = self.spec.intra_sigma_vth(self.node, width, length)
        return SampledDevice(
            vth_offset=self.vth_global
            + sigma_intra * self.rng.standard_normal(),
            length_factor=self.length_factor_global
            * (1.0 + self.spec.length_intra_rel
               * self.rng.standard_normal()),
        )

    def effective_node(self) -> TechnologyNode:
        """Node shifted by this die's global variations only."""
        return self.node.with_overrides(
            name=f"{self.node.name}@die",
            vth=self.node.vth + self.vth_global,
            feature_size=self.node.feature_size * self.length_factor_global,
            tox=self.node.tox * self.tox_factor_global,
        )


class MonteCarloSampler:
    """Two-level (die, device) Monte Carlo process sampler."""

    def __init__(self, node: TechnologyNode,
                 spec: VariationSpec = VariationSpec(),
                 seed: Optional[int] = None):
        self.node = node
        self.spec = spec
        self.rng = np.random.default_rng(seed)

    def sample_die(self) -> SampledDie:
        """Draw one die's global (inter-die) shifts."""
        return SampledDie(
            node=self.node,
            spec=self.spec,
            vth_global=self.spec.vth_inter * self.rng.standard_normal(),
            length_factor_global=1.0 + self.spec.length_inter_rel
            * self.rng.standard_normal(),
            tox_factor_global=1.0 + self.spec.tox_inter_rel
            * self.rng.standard_normal(),
            rng=self.rng,
        )

    def sample_dies(self, count: int) -> List[SampledDie]:
        """Draw ``count`` dies."""
        if count < 1:
            raise ValueError("count must be positive")
        return [self.sample_die() for _ in range(count)]


@dataclass(frozen=True)
class YieldResult:
    """Outcome of a Monte Carlo yield run."""

    n_samples: int
    n_pass: int

    @property
    def yield_fraction(self) -> float:
        """Fraction of samples meeting spec."""
        return self.n_pass / self.n_samples

    @property
    def sigma_level(self) -> float:
        """Equivalent one-sided Gaussian sigma of the yield."""
        from scipy.stats import norm
        frac = min(max(self.yield_fraction, 1e-12), 1 - 1e-12)
        return float(norm.ppf(frac))


def monte_carlo_yield(sampler: MonteCarloSampler,
                      metric: Callable[[SampledDie], float],
                      limit: float,
                      n_dies: int = 500,
                      upper_is_fail: bool = True) -> YieldResult:
    """Estimate parametric yield of ``metric`` against ``limit``.

    ``metric`` maps a sampled die to a scalar performance (e.g. a
    critical-path delay); a die passes when the metric is on the good
    side of ``limit``.
    """
    if n_dies < 1:
        raise ValueError("n_dies must be positive")
    n_pass = 0
    for _ in range(n_dies):
        value = metric(sampler.sample_die())
        ok = value <= limit if upper_is_fail else value >= limit
        n_pass += int(ok)
    return YieldResult(n_samples=n_dies, n_pass=n_pass)


def worst_case_value(nominal: float, sigma: float, n_sigma: float = 3.0,
                     upper: bool = True) -> float:
    """Classic worst-case corner value: nominal +/- n_sigma * sigma."""
    return nominal + (n_sigma if upper else -n_sigma) * sigma


def relative_variability_trend(nodes: Sequence[TechnologyNode],
                               absolute_sigma_vth: float = 0.015
                               ) -> List[Dict[str, float]]:
    """The paper's central variability claim, quantified per node:

    the same absolute sigma_VT consumes a growing fraction of both V_T
    itself and of the gate overdrive V_DD - V_T.
    """
    rows = []
    for node in nodes:
        rows.append({
            "node": node.name,
            "vth_V": node.vth,
            "overdrive_V": node.overdrive,
            "sigma_over_vth": absolute_sigma_vth / node.vth,
            "sigma_over_overdrive": absolute_sigma_vth / node.overdrive,
        })
    return rows
