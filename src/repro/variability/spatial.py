"""Spatially correlated intra-die variation.

Pelgrom's distance term (used in :mod:`repro.variability.pelgrom`) is
the two-point shadow of a richer structure: across-die parameter
*gradients* (lens aberrations, anneal non-uniformity) plus a
spatially *correlated* random field (with a mm-class correlation
length) plus white per-device noise.  This module generates such V_T
maps and quantifies their circuit consequences: nearby devices match
better than far ones, common-centroid layouts cancel gradients, and
correlated timing variation averages *less* than independent-mismatch
SSTA predicts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..technology.node import TechnologyNode
from ..robust.rng import resolve_rng
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class SpatialSpec:
    """Decomposition of intra-die V_T variation.

    Parameters
    ----------
    gradient_sigma:
        Sigma of the across-die linear gradient magnitude [V/m].
    correlated_sigma:
        Sigma of the correlated random field [V].
    correlation_length:
        Correlation length of that field [m] (~1-3 mm historically).
    white_sigma:
        Per-device independent sigma [V] (the Pelgrom area term for
        the device size of interest).
    """

    gradient_sigma: float = 5.0       # V/m, ~5 mV/mm
    correlated_sigma: float = 0.008   # V
    correlation_length: float = 2e-3  # m
    white_sigma: float = 0.01         # V

    def __post_init__(self) -> None:
        if min(self.gradient_sigma, self.correlated_sigma,
               self.correlation_length, self.white_sigma) < 0:
            raise ModelDomainError("spec values must be non-negative")
        if self.correlation_length == 0:
            raise ModelDomainError("correlation_length must be positive")


class VtMap:
    """A sampled V_T-offset field over a die.

    Query with :meth:`at` (arbitrary positions, bilinear) or sample
    device pairs/arrays for matching studies.
    """

    def __init__(self, die: float, offsets: np.ndarray,
                 white_sigma: float,
                 rng: np.random.Generator):
        self.die = die
        self._grid = offsets
        self._n = offsets.shape[0]
        self._white_sigma = white_sigma
        self._rng = rng

    def at(self, x, y, include_white: bool = True):
        """V_T offset [V] at position(s) (x, y).

        Scalars in, float out; arrays in, elementwise array out
        (bilinear interpolation vectorized over all query points, one
        white-noise draw per point).
        """
        x_arr = np.asarray(x, dtype=float)
        y_arr = np.asarray(y, dtype=float)
        scalar = x_arr.ndim == 0 and y_arr.ndim == 0
        if (np.any(x_arr < 0) or np.any(x_arr > self.die)
                or np.any(y_arr < 0) or np.any(y_arr > self.die)):
            raise ModelDomainError("position outside the die")
        u = np.minimum(x_arr / self.die * (self._n - 1),
                       self._n - 1 - 1e-9)
        v = np.minimum(y_arr / self.die * (self._n - 1),
                       self._n - 1 - 1e-9)
        i = u.astype(int)
        j = v.astype(int)
        fu, fv = u - i, v - j
        smooth = ((1 - fu) * (1 - fv) * self._grid[j, i]
                  + fu * (1 - fv) * self._grid[j, i + 1]
                  + (1 - fu) * fv * self._grid[j + 1, i]
                  + fu * fv * self._grid[j + 1, i + 1])
        if include_white:
            smooth = smooth + self._white_sigma \
                * self._rng.standard_normal(smooth.shape)
        return float(smooth) if scalar else smooth

    def pair_difference(self, xy_a: Tuple[float, float],
                        xy_b: Tuple[float, float]) -> float:
        """delta V_T of a device pair at the two positions [V]."""
        return self.at(*xy_a) - self.at(*xy_b)


def sample_vt_map(node: TechnologyNode, die: float = 5e-3,
                  spec: SpatialSpec = SpatialSpec(),
                  resolution: int = 48,
                  seed: Optional[int] = None,
                  rng: Optional[np.random.Generator] = None) -> VtMap:
    """Draw one die's smooth V_T-offset field.

    Gradient: random direction and magnitude.  Correlated field:
    white noise smoothed by a Gaussian kernel of the correlation
    length, renormalized to the requested sigma.
    """
    if die <= 0 or resolution < 8:
        raise ModelDomainError("die must be positive, resolution >= 8")
    rng = resolve_rng(rng, seed=seed)
    axis = np.linspace(0.0, die, resolution)
    xx, yy = np.meshgrid(axis, axis)
    # Linear gradient with random orientation.
    direction = rng.uniform(0.0, 2.0 * math.pi)
    magnitude = abs(rng.normal(0.0, spec.gradient_sigma))
    gradient = magnitude * ((xx - die / 2) * math.cos(direction)
                            + (yy - die / 2) * math.sin(direction))
    # Correlated field: smoothed white noise.
    white = rng.standard_normal((resolution, resolution))
    spacing = die / (resolution - 1)
    # Kernel must stay shorter than the grid for mode="same".
    kernel_half = min(max(int(2 * spec.correlation_length / spacing), 1),
                      (resolution - 1) // 2)
    offsets1d = np.arange(-kernel_half, kernel_half + 1) * spacing
    kernel = np.exp(-0.5 * (offsets1d / spec.correlation_length) ** 2)
    kernel /= kernel.sum()
    # Separable smoothing, vectorized over rows/columns (equivalent to
    # np.convolve(..., mode="same") per line for the odd kernel).
    from scipy.ndimage import convolve1d
    smoothed = convolve1d(white, kernel, axis=1, mode="constant")
    smoothed = convolve1d(smoothed, kernel, axis=0, mode="constant")
    std = smoothed.std()
    if std > 0:
        smoothed *= spec.correlated_sigma / std
    return VtMap(die, gradient + smoothed, spec.white_sigma, rng)


def matching_vs_distance(node: TechnologyNode,
                         distances: Sequence[float],
                         die: float = 5e-3,
                         spec: SpatialSpec = SpatialSpec(),
                         n_dies: int = 60,
                         seed: int = 0) -> List[Dict[str, float]]:
    """Measured sigma(delta V_T) vs device separation.

    Reproduces the Pelgrom distance law from the spatial model: flat
    (white-dominated) at short range, growing with distance as the
    gradient and field decorrelate the pair.
    """
    rows = []
    base = resolve_rng(seed=seed)
    maps = [sample_vt_map(node, die, spec,
                          seed=int(base.integers(2 ** 31)))
            for _ in range(n_dies)]
    n_pairs = 8   # pairs per die, placed at random positions
    for distance in distances:
        if distance >= die / 2:
            raise ModelDomainError("distance must fit on the die")
        diffs = []
        for vt_map in maps:
            x0 = base.uniform(0.1 * die, 0.9 * die - distance,
                              size=n_pairs)
            y0 = base.uniform(0.1 * die, 0.9 * die, size=n_pairs)
            diffs.append(vt_map.at(x0, y0)
                         - vt_map.at(x0 + distance, y0))
        rows.append({
            "distance_mm": distance * 1e3,
            "sigma_delta_vt_mV": float(np.std(np.concatenate(diffs)))
            * 1e3,
        })
    return rows


def common_centroid_benefit(node: TechnologyNode,
                            separation: float = 0.2e-3,
                            die: float = 5e-3,
                            spec: SpatialSpec = None,
                            n_dies: int = 80,
                            seed: int = 0) -> Dict[str, float]:
    """Gradient cancellation by common-centroid layout, measured.

    An A-B pair at ``separation`` vs an A-B-B-A common-centroid
    arrangement of the same span: the centroid layout cancels the
    linear gradient exactly, leaving only the field + white terms --
    the reason LAYLA draws matched pairs that way.
    """
    spec = spec or SpatialSpec(white_sigma=0.001)
    base = resolve_rng(seed=seed)
    plain, centroid = [], []
    for _ in range(n_dies):
        vt_map = sample_vt_map(node, die, spec,
                               seed=int(base.integers(2 ** 31)))
        y = die / 2
        x0 = die / 2 - separation * 1.5
        positions = x0 + separation * np.arange(4)
        values = vt_map.at(positions, np.full(4, y),
                           include_white=False)
        values = values + spec.white_sigma * base.standard_normal(4)
        # Plain pair: device A at 0, device B at 1.
        plain.append(values[0] - values[1])
        # Common centroid: A = (0 + 3)/2, B = (1 + 2)/2.
        centroid.append((values[0] + values[3]) / 2.0
                        - (values[1] + values[2]) / 2.0)
    sigma_plain = float(np.std(plain))
    sigma_centroid = float(np.std(centroid))
    return {
        "sigma_plain_mV": sigma_plain * 1e3,
        "sigma_centroid_mV": sigma_centroid * 1e3,
        "improvement": sigma_plain / max(sigma_centroid, 1e-12),
    }
