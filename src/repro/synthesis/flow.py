"""End-to-end analog synthesis flow: AMGIE sizing + LAYLA layout.

Reproduces Fig. 8: "a particle/radiation detector frontend generated
with the AMGIE/LAYLA analog synthesis tools".  The flow is

    spec --(differential-evolution sizing)--> device values
         --(procedural device generation)--> layout cells
         --(simulated-annealing placement)--> placed block
         --(maze routing)--> routed layout + report
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..technology.node import TechnologyNode
from ..analog.circuits import FrontendPerformance
from .devices_gen import (capacitor_cell, guard_ring_cell,
                          matched_pair_cell, mosfet_cell, resistor_cell)
from .layout import DesignRules, Layout
from .placement import PlacementProblem, place_cells
from .router import RouteResult, route_layout
from .sizing import (Specification, SynthesisResult,
                     default_frontend_spec, frontend_synthesizer)


@dataclass
class FrontendFlowReport:
    """Everything the Fig. 8 flow produces."""

    sizing: SynthesisResult
    layout: Layout
    routing: RouteResult

    @property
    def performance(self) -> FrontendPerformance:
        """The synthesized circuit performance."""
        return self.sizing.performance

    @property
    def area_mm2(self) -> float:
        """Routed block area [mm^2]."""
        return self.layout.area() * 1e6

    def summary(self) -> Dict[str, float]:
        """Headline numbers for reports."""
        perf = self.performance
        return {
            "feasible": float(self.sizing.feasible),
            "enc_electrons": perf.enc_electrons,
            "power_mW": perf.power * 1e3,
            "peaking_time_us": perf.peaking_time * 1e6,
            "area_mm2": self.area_mm2,
            "n_evaluations": float(self.sizing.n_evaluations),
            "route_completion": self.routing.completion,
            "wirelength_mm": self.routing.total_wirelength * 1e3,
        }


def synthesize_detector_frontend(node: TechnologyNode,
                                 spec: Optional[Specification] = None,
                                 detector_capacitance: float = 5e-12,
                                 seed: int = 0,
                                 sizing_maxiter: int = 40,
                                 placement_iterations: int = 2000,
                                 backend: Optional[str] = None
                                 ) -> FrontendFlowReport:
    """Run the full AMGIE/LAYLA flow for the detector front-end.

    Returns the sized, placed and routed block.  Deterministic for a
    given ``seed``; ``backend`` selects the sizing evaluation path
    (``"oracle"``/``"vectorized"``, see :mod:`repro.backends`) and
    does not change the resulting design.
    """
    spec = spec or default_frontend_spec()

    # 1. AMGIE: optimization-based sizing.
    synthesizer = frontend_synthesizer(
        node, spec, detector_capacitance=detector_capacitance)
    sizing = synthesizer.run(seed=seed, maxiter=sizing_maxiter,
                             backend=backend)
    values = sizing.values

    # 2. Procedural device generation.
    rules = DesignRules.for_node(node)
    input_pair = matched_pair_cell(
        node, "input_pair", values["input_width"],
        values["input_length"])
    cascode = mosfet_cell(node, "cascode",
                          max(values["input_width"] / 4.0,
                              2 * node.feature_size))
    feedback_cap = capacitor_cell(node, "cfb",
                                  values["feedback_capacitance"])
    # CR-RC shaper: R = tau / C with a convenient shaper capacitance.
    shaper_cap_value = 1e-12
    shaper_res_value = values["shaper_time_constant"] / shaper_cap_value
    shaper_cap = capacitor_cell(node, "csh", shaper_cap_value)
    shaper_res = resistor_cell(node, "rsh",
                               min(shaper_res_value, 2e6))
    bias_mirror = matched_pair_cell(
        node, "bias_mirror", max(values["input_width"] / 8.0,
                                 4 * node.feature_size))
    output_buffer = mosfet_cell(node, "buffer",
                                max(values["input_width"] / 2.0,
                                    2 * node.feature_size))

    cells = {
        "input_pair": input_pair,
        "cascode": cascode,
        "cfb": feedback_cap,
        "csh": shaper_cap,
        "rsh": shaper_res,
        "bias_mirror": bias_mirror,
        "buffer": output_buffer,
    }

    # 3. Connectivity (schematic netlist of the front-end).
    nets = {
        "in": [("input_pair", "GA"), ("cfb", "BOT")],
        "casc": [("input_pair", "DA"), ("cascode", "S")],
        "csa_out": [("cascode", "D"), ("cfb", "TOP"),
                    ("rsh", "P"), ("buffer", "G")],
        "shaped": [("rsh", "N"), ("csh", "TOP")],
        "bias": [("bias_mirror", "DA"), ("input_pair", "SA"),
                 ("input_pair", "SB")],
        "out": [("buffer", "D"), ("csh", "BOT")],
        "vref": [("input_pair", "GB"), ("bias_mirror", "GA"),
                 ("bias_mirror", "GB")],
    }

    problem = PlacementProblem(
        cells=cells,
        nets=nets,
        symmetry=[("cfb", "csh")],
        proximity=[["input_pair", "cascode"],
                   ["bias_mirror", "buffer"]],
    )

    # 4. LAYLA: placement + routing.
    layout = place_cells(problem, rules,
                         n_iterations=placement_iterations,
                         seed=seed, name=f"frontend_{node.name}")
    routing = route_layout(layout)

    return FrontendFlowReport(sizing=sizing, layout=layout,
                              routing=routing)


def manual_design_baseline(node: TechnologyNode,
                           detector_capacitance: float = 5e-12
                           ) -> Dict[str, float]:
    """A 'hand-crafted' reference sizing for comparison.

    Uses the classic manual recipes (capacitive matching C_g =
    C_det/3, tau at the series/parallel noise optimum) so the
    benchmark can show the synthesis engine matching or beating
    manual quality -- the paper's productivity claim.
    """
    from ..analog.circuits import (DetectorFrontend,
                                   DetectorFrontendDesign)
    engine = DetectorFrontend(node, detector_capacitance)
    length = 2.0 * node.feature_size
    c_gate_target = detector_capacitance / 3.0
    width = c_gate_target / (node.cox * length)
    design = DetectorFrontendDesign(
        input_width=width,
        input_length=length,
        feedback_capacitance=0.3e-12,
        shaper_time_constant=1e-6,
        drain_current=500e-6,
    )
    perf = engine.evaluate(design)
    return {
        "enc_electrons": perf.enc_electrons,
        "power_mW": perf.power * 1e3,
        "peaking_time_us": perf.peaking_time * 1e6,
        "input_width_um": width * 1e6,
    }
