"""Parameterized procedural device generators (LAYLA's pcells).

The paper notes that even manual analog design relies on "an
interactive layout environment (with parameterized procedural device
generators)".  These functions generate DRC-clean-by-construction
multi-finger MOSFETs, MIM capacitors, poly resistors and guard rings
as :class:`~repro.synthesis.layout.LayoutCell` objects.
"""

from __future__ import annotations

import math
from typing import Optional

from ..technology.node import TechnologyNode
from .layout import DesignRules, LayoutCell, Pin, Rect
from ..robust.errors import ModelDomainError


def _finger_count(width: float, length: float,
                  max_finger_width: float) -> int:
    """Number of fingers keeping each finger below the aspect cap."""
    return max(int(math.ceil(width / max_finger_width)), 1)


def mosfet_cell(node: TechnologyNode, name: str, width: float,
                length: Optional[float] = None,
                pmos: bool = False,
                max_finger_width: float = 10e-6) -> LayoutCell:
    """Multi-finger MOSFET pcell.

    The device is drawn with vertical poly fingers over a horizontal
    active strip; source/drain contacts alternate between fingers.
    Pins: ``G`` (gate, poly), ``S``/``D`` (metal1), ``B`` (bulk).
    """
    rules = DesignRules.for_node(node)
    length = length if length is not None else node.feature_size
    if width < node.feature_size or length < node.feature_size:
        raise ModelDomainError("device dimensions below feature size")
    n_fingers = _finger_count(width, length, max_finger_width)
    finger_width = width / n_fingers

    contact = rules.contact_size
    pitch = length + 2.0 * contact + 2.0 * rules.poly_width
    active_height = finger_width
    active_width = n_fingers * pitch + contact

    cell = LayoutCell(name=name)
    margin = rules.cell_margin
    if pmos:
        cell.rects.append(Rect("nwell", 0.0, 0.0,
                               active_width + 2.0 * margin,
                               active_height + 2.0 * margin))
    cell.rects.append(Rect("active", margin, margin,
                           active_width, active_height))
    y_mid = margin + active_height / 2.0

    for finger in range(n_fingers):
        x_gate = margin + contact + rules.poly_width \
            + finger * pitch
        # Poly finger extends past active top and bottom.
        cell.rects.append(Rect(
            "poly", x_gate, margin - 2.0 * rules.poly_width,
            length, active_height + 4.0 * rules.poly_width))
        # Source/drain contact column left of this finger.
        x_cut = x_gate - rules.poly_width - contact
        cell.rects.append(Rect("contact", x_cut, y_mid - contact / 2.0,
                               contact, contact))
        cell.rects.append(Rect("metal1", x_cut - contact / 4.0,
                               margin, 1.5 * contact, active_height))
    # Last contact column on the right.
    x_cut = margin + contact + n_fingers * pitch - contact
    cell.rects.append(Rect("contact", x_cut, y_mid - contact / 2.0,
                           contact, contact))
    cell.rects.append(Rect("metal1", x_cut - contact / 4.0, margin,
                           1.5 * contact, active_height))

    # Pins: gate at the first finger top, S at first column, D at last.
    first_gate_x = margin + contact + rules.poly_width
    cell.pins.append(Pin("G", "poly",
                         first_gate_x + length / 2.0,
                         margin + active_height
                         + 2.0 * rules.poly_width))
    cell.pins.append(Pin("S", "metal1", margin + contact / 2.0, y_mid))
    cell.pins.append(Pin("D", "metal1", x_cut + contact / 2.0, y_mid))
    cell.pins.append(Pin("B", "metal1", margin / 2.0, margin / 2.0))
    return cell


def matched_pair_cell(node: TechnologyNode, name: str, width: float,
                      length: Optional[float] = None,
                      pmos: bool = False) -> LayoutCell:
    """Common-centroid matched pair (A-B-B-A interdigitation).

    The matching-critical layout style LAYLA applies to differential
    pairs and current mirrors: both halves see the same gradients.
    Pins: ``GA``, ``GB``, ``SA``, ``SB``, ``DA``, ``DB``.
    """
    half = mosfet_cell(node, f"{name}_half", width / 2.0, length, pmos)
    rules = DesignRules.for_node(node)
    cell = LayoutCell(name=name)
    step = half.width + rules.cell_margin
    # A B B A along x.
    order = ["A", "B", "B", "A"]
    for index, tag in enumerate(order):
        dx = index * step
        for rect in half.rects:
            cell.rects.append(rect.translated(dx, 0.0))
    # Expose pins of the leftmost A and the second (B) device.
    for pin in half.pins:
        if pin.name in ("G", "S", "D"):
            cell.pins.append(Pin(pin.name + "A", pin.layer,
                                 pin.x, pin.y))
            cell.pins.append(Pin(pin.name + "B", pin.layer,
                                 pin.x + step, pin.y))
    return cell


def capacitor_cell(node: TechnologyNode, name: str,
                   capacitance: float,
                   cap_per_area: float = 1e-3) -> LayoutCell:
    """Square MIM capacitor (metal1 bottom plate, metal2 top plate).

    ``cap_per_area`` defaults to 1 fF/um^2.
    """
    if capacitance <= 0:
        raise ModelDomainError("capacitance must be positive")
    rules = DesignRules.for_node(node)
    side = math.sqrt(capacitance / cap_per_area)
    margin = rules.cell_margin
    cell = LayoutCell(name=name)
    cell.rects.append(Rect("metal1", margin, margin, side, side))
    inset = rules.metal_width
    cell.rects.append(Rect("metal2", margin + inset, margin + inset,
                           max(side - 2 * inset, inset),
                           max(side - 2 * inset, inset)))
    cell.rects.append(Rect("via1", margin + side / 2.0,
                           margin + side / 2.0,
                           rules.contact_size, rules.contact_size))
    cell.pins.append(Pin("BOT", "metal1", margin + side / 2.0, margin))
    cell.pins.append(Pin("TOP", "metal2", margin + side / 2.0,
                         margin + side))
    return cell


def resistor_cell(node: TechnologyNode, name: str, resistance: float,
                  sheet_resistance: float = 200.0) -> LayoutCell:
    """Serpentine poly resistor.

    ``sheet_resistance`` in ohm/square; the serpentine folds every 20
    squares.
    """
    if resistance <= 0:
        raise ModelDomainError("resistance must be positive")
    rules = DesignRules.for_node(node)
    squares = resistance / sheet_resistance
    strip_width = 2.0 * rules.poly_width
    squares_per_leg = 20.0
    n_legs = max(int(math.ceil(squares / squares_per_leg)), 1)
    leg_length = (squares / n_legs) * strip_width
    margin = rules.cell_margin
    cell = LayoutCell(name=name)
    leg_pitch = strip_width * 3.0
    for leg in range(n_legs):
        x = margin + leg * leg_pitch
        cell.rects.append(Rect("poly", x, margin, strip_width,
                               leg_length))
        if leg < n_legs - 1:
            y = margin + (leg_length if leg % 2 == 0 else 0.0)
            cell.rects.append(Rect(
                "poly", x, y - (strip_width if leg % 2 else 0.0),
                leg_pitch + strip_width, strip_width))
    cell.pins.append(Pin("P", "poly", margin + strip_width / 2.0,
                         margin))
    x_last = margin + (n_legs - 1) * leg_pitch + strip_width / 2.0
    y_last = margin + (leg_length if n_legs % 2 == 1 else 0.0)
    cell.pins.append(Pin("N", "poly", x_last, y_last))
    return cell


def guard_ring_cell(node: TechnologyNode, name: str,
                    inner_width: float, inner_height: float
                    ) -> LayoutCell:
    """Substrate-contact guard ring around an inner area.

    The classic mixed-signal isolation structure (section 4.3 of the
    paper): a ring of substrate contacts that collects injected
    majority-carrier noise before it reaches the sensitive device.
    """
    if inner_width <= 0 or inner_height <= 0:
        raise ModelDomainError("inner dimensions must be positive")
    rules = DesignRules.for_node(node)
    ring = 2.0 * rules.contact_size
    cell = LayoutCell(name=name)
    w = inner_width + 2.0 * ring
    h = inner_height + 2.0 * ring
    # Four sides on active + metal1.
    for layer in ("active", "metal1"):
        cell.rects.append(Rect(layer, 0.0, 0.0, w, ring))
        cell.rects.append(Rect(layer, 0.0, h - ring, w, ring))
        cell.rects.append(Rect(layer, 0.0, ring, ring, h - 2 * ring))
        cell.rects.append(Rect(layer, w - ring, ring, ring,
                               h - 2 * ring))
    cell.pins.append(Pin("RING", "metal1", w / 2.0, ring / 2.0))
    return cell
