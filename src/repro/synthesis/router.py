"""Grid-based Manhattan router for placed analog blocks.

Routes each net as a rectilinear spanning tree over a coarse routing
grid using BFS maze search (Lee's algorithm) with obstacle avoidance:
metal1 runs horizontal, metal2 vertical, vias where they meet.  Not a
production router -- but enough to close the AMGIE/LAYLA loop and
measure routed wirelength for Fig. 8.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..robust.guards import SimulationBudget
from ..robust.validate import check_count, check_non_negative, check_positive
from .layout import DesignRules, Layout, Rect


@dataclass(frozen=True)
class RouteResult:
    """Routing statistics for one layout."""

    n_nets: int
    n_routed: int
    total_wirelength: float     # m
    n_vias: int
    #: True when the router stopped early because its search budget
    #: ran out; the counts above still describe the nets it finished.
    budget_exhausted: bool = False

    @property
    def completion(self) -> float:
        """Fraction of nets fully routed."""
        return self.n_routed / self.n_nets if self.n_nets else 1.0


class MazeRouter:
    """Two-layer maze router over a uniform grid."""

    def __init__(self, layout: Layout, grid_pitch: Optional[float] = None,
                 halo: float = 0.0,
                 search_budget: Optional[int] = None):
        if grid_pitch is not None:
            check_positive("grid_pitch", grid_pitch)
        check_non_negative("halo", halo)
        if search_budget is not None:
            search_budget = check_count("search_budget", search_budget)
        self.search_budget = search_budget
        self._budget: Optional[SimulationBudget] = None
        self.layout = layout
        rules = layout.rules
        self.pitch = (grid_pitch if grid_pitch is not None
                      else rules.metal_width + rules.metal_spacing)
        x1, y1, x2, y2 = layout.bbox()
        margin = 8.0 * self.pitch
        self.x0 = x1 - margin
        self.y0 = y1 - margin
        self.nx = max(int((x2 - x1 + 2 * margin) / self.pitch), 4)
        self.ny = max(int((y2 - y1 + 2 * margin) / self.pitch), 4)
        self.halo = halo
        # Blocked cells per layer: cells covered by instance geometry.
        self.blocked: Dict[str, Set[Tuple[int, int]]] = {
            "metal1": set(), "metal2": set()}
        for placement in layout.placements.values():
            bx1, by1, bx2, by2 = placement.bbox()
            self._block_box(bx1 - halo, by1 - halo,
                            bx2 + halo, by2 + halo, "metal1")
        # Pins must be reachable: carve an access window around every
        # net terminal so routes can enter the blocked instance area.
        for terminals in layout.nets.values():
            for inst, pin in terminals:
                if inst not in layout.placements:
                    continue
                px, py = layout.placements[inst].pin_position(pin)
                i, j = self._to_grid(px, py)
                for di in (-1, 0, 1):
                    for dj in (-1, 0, 1):
                        self.blocked["metal1"].discard((i + di, j + dj))

    def _block_box(self, x1: float, y1: float, x2: float, y2: float,
                   layer: str) -> None:
        i1 = max(int((x1 - self.x0) / self.pitch), 0)
        i2 = min(int((x2 - self.x0) / self.pitch) + 1, self.nx)
        j1 = max(int((y1 - self.y0) / self.pitch), 0)
        j2 = min(int((y2 - self.y0) / self.pitch) + 1, self.ny)
        for i in range(i1, i2):
            for j in range(j1, j2):
                self.blocked[layer].add((i, j))

    def _to_grid(self, x: float, y: float) -> Tuple[int, int]:
        return (min(max(int(round((x - self.x0) / self.pitch)), 0),
                    self.nx - 1),
                min(max(int(round((y - self.y0) / self.pitch)), 0),
                    self.ny - 1))

    def _to_chip(self, i: int, j: int) -> Tuple[float, float]:
        return (self.x0 + i * self.pitch, self.y0 + j * self.pitch)

    #: Cost multiplier for grid cells covered by instance geometry.
    #: Routing over cells is legal but discouraged (it models using a
    #: higher layer over the device area).
    BLOCKED_COST = 8

    def _bfs(self, start: Tuple[int, int], targets: Set[Tuple[int, int]]
             ) -> Optional[List[Tuple[int, int]]]:
        """Cheapest grid path from start to any target.

        Weighted search: free cells cost 1, cells covered by instances
        cost :data:`BLOCKED_COST` -- routes prefer open channels but
        can always escape over a cell, so completion does not depend
        on placement luck.
        """
        import heapq
        if start in targets:
            return [start]
        blocked = self.blocked["metal1"]
        best: Dict[Tuple[int, int], float] = {start: 0.0}
        parent: Dict[Tuple[int, int], Tuple[int, int]] = {start: start}
        counter = 0
        queue = [(0.0, counter, start)]
        budget = self._budget
        while queue:
            if budget is not None and not budget.spend():
                return None  # search budget exhausted: give up this net
            cost, _, current = heapq.heappop(queue)
            if current in targets:
                path = [current]
                while path[-1] != start:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            if cost > best.get(current, float("inf")):
                continue
            ci, cj = current
            for ni, nj in ((ci + 1, cj), (ci - 1, cj),
                           (ci, cj + 1), (ci, cj - 1)):
                nxt = (ni, nj)
                if not (0 <= ni < self.nx and 0 <= nj < self.ny):
                    continue
                step = self.BLOCKED_COST if nxt in blocked else 1.0
                new_cost = cost + step
                if new_cost < best.get(nxt, float("inf")):
                    best[nxt] = new_cost
                    parent[nxt] = current
                    counter += 1
                    heapq.heappush(queue, (new_cost, counter, nxt))
        return None

    def route_net(self, terminals: Sequence[Tuple[float, float]]
                  ) -> Optional[List[List[Tuple[int, int]]]]:
        """Route one net as incremental paths to the growing tree."""
        if len(terminals) < 2:
            return []
        grid_points = [self._to_grid(x, y) for x, y in terminals]
        tree: Set[Tuple[int, int]] = {grid_points[0]}
        paths = []
        for point in grid_points[1:]:
            path = self._bfs(point, tree)
            if path is None:
                return None
            paths.append(path)
            tree.update(path)
        return paths

    def route(self) -> RouteResult:
        """Route every net in the layout; adds wire rects to it.

        With a ``search_budget`` the router stops expanding once the
        total number of heap pops across all nets exceeds it; nets
        routed before exhaustion are kept and the result is flagged
        ``budget_exhausted`` -- a partial answer, never a hang.
        """
        rules = self.layout.rules
        self._budget = (SimulationBudget(
            self.search_budget, name="router search budget",
            raise_on_exhaust=False)
            if self.search_budget is not None else None)
        n_routed = 0
        wirelength = 0.0
        n_vias = 0
        n_nets = 0
        for net, terminals in self.layout.nets.items():
            if self._budget is not None and self._budget.exhausted:
                break
            points = [self.layout.placements[inst].pin_position(pin)
                      for inst, pin in terminals
                      if inst in self.layout.placements]
            if len(points) < 2:
                continue
            n_nets += 1
            paths = self.route_net(points)
            if paths is None:
                continue
            n_routed += 1
            for path in paths:
                wirelength += (len(path) - 1) * self.pitch
                for (i1, j1), (i2, j2) in zip(path, path[1:]):
                    x1, y1 = self._to_chip(i1, j1)
                    x2, y2 = self._to_chip(i2, j2)
                    horizontal = j1 == j2
                    layer = "metal1" if horizontal else "metal2"
                    lx = min(x1, x2)
                    ly = min(y1, y2)
                    w = abs(x2 - x1) + rules.metal_width
                    h = abs(y2 - y1) + rules.metal_width
                    self.layout.routes.append(Rect(layer, lx, ly, w, h))
                # Vias at direction changes.
                for k in range(1, len(path) - 1):
                    (ia, ja), (ib, jb), (ic, jc) = \
                        path[k - 1], path[k], path[k + 1]
                    turned = (ia == ib) != (ib == ic)
                    if turned:
                        vx, vy = self._to_chip(ib, jb)
                        self.layout.routes.append(Rect(
                            "via1", vx, vy, rules.contact_size,
                            rules.contact_size))
                        n_vias += 1
                # Mark routed cells as (softly) used.
                for cell in path:
                    self.blocked["metal1"].add(cell)
        return RouteResult(
            n_nets=n_nets,
            n_routed=n_routed,
            total_wirelength=wirelength,
            n_vias=n_vias,
            budget_exhausted=(self._budget is not None
                              and self._budget.exhausted),
        )


def route_layout(layout: Layout, grid_pitch: Optional[float] = None,
                 search_budget: Optional[int] = None) -> RouteResult:
    """One-call routing of a placed layout."""
    return MazeRouter(layout, grid_pitch=grid_pitch,
                      search_budget=search_budget).route()
