"""AMGIE/LAYLA-style analog synthesis: sizing, placement, routing."""

from .layout import (
    LAYERS,
    DesignRules,
    Layout,
    LayoutCell,
    Pin,
    Placement,
    Rect,
)
from .devices_gen import (
    capacitor_cell,
    guard_ring_cell,
    matched_pair_cell,
    mosfet_cell,
    resistor_cell,
)
from .placement import (
    PlacementProblem,
    SimulatedAnnealingPlacer,
    place_cells,
)
from .router import MazeRouter, RouteResult, route_layout
from .sizing import (
    CircuitSynthesizer,
    Specification,
    SynthesisResult,
    Variable,
    default_frontend_spec,
    default_ota_spec,
    frontend_synthesizer,
    ota_synthesizer,
)
from .centering import (
    CenteringComparison,
    GuardBandedOta,
    centered_ota_synthesizer,
    compare_centering,
)
from .flow import (
    FrontendFlowReport,
    manual_design_baseline,
    synthesize_detector_frontend,
)

__all__ = [
    "LAYERS", "DesignRules", "Layout", "LayoutCell", "Pin", "Placement",
    "Rect",
    "capacitor_cell", "guard_ring_cell", "matched_pair_cell",
    "mosfet_cell", "resistor_cell",
    "PlacementProblem", "SimulatedAnnealingPlacer", "place_cells",
    "MazeRouter", "RouteResult", "route_layout",
    "CircuitSynthesizer", "Specification", "SynthesisResult", "Variable",
    "default_frontend_spec", "default_ota_spec", "frontend_synthesizer",
    "ota_synthesizer",
    "CenteringComparison", "GuardBandedOta",
    "centered_ota_synthesizer", "compare_centering",
    "FrontendFlowReport", "manual_design_baseline",
    "synthesize_detector_frontend",
]
