"""Yield-aware sizing: design centering.

Combines the AMGIE optimization loop with the statistical-design
methodology of the paper's reference [8] (Director et al., "Statistical
integrated circuit design"): instead of optimizing the *nominal*
performance, optimize the performance at a guard-banded (k-sigma)
corner, pushing the design to the centre of the feasible region so
process spread no longer clips the yield.

The spread model reuses the analytic sensitivities of the evaluation
engines: offset spreads with Pelgrom mismatch, bias-dependent metrics
(GBW, slew, power) with the inter-die V_T shift.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..robust.validate import check_positive
from ..technology.node import TechnologyNode
from ..analog.circuits import OtaDesign, OtaPerformance, SingleStageOta
from ..analog.yield_analysis import OtaYieldAnalyzer
from ..variability.statistical import VariationSpec
from .sizing import (CircuitSynthesizer, Specification, SynthesisResult,
                     Variable)


class GuardBandedOta:
    """Evaluation engine wrapper returning k-sigma worst-case numbers.

    Each metric is evaluated at the inter-die V_T corner that hurts it
    most (+k sigma for drive-dependent metrics, either corner for
    power), and the offset constraint is checked at k times the
    mismatch sigma.
    """

    def __init__(self, node: TechnologyNode, load_capacitance: float,
                 n_sigma: float = 3.0,
                 variation: VariationSpec = VariationSpec()):
        check_positive("n_sigma", n_sigma)
        self.node = node
        self.load_capacitance = load_capacitance
        self.n_sigma = n_sigma
        self.variation = variation

    def _engine_at(self, vth_shift: float) -> SingleStageOta:
        shifted = self.node.with_overrides(
            vth=min(self.node.vth + vth_shift, 0.9 * self.node.vdd))
        return SingleStageOta(shifted, self.load_capacitance)

    def evaluate(self, design: OtaDesign) -> OtaPerformance:
        """Worst-case-corner performance of one sizing."""
        shift = self.n_sigma * self.variation.vth_inter
        slow = self._engine_at(+shift).evaluate(design)
        fast = self._engine_at(-shift).evaluate(design)
        nominal = self._engine_at(0.0).evaluate(design)
        return OtaPerformance(
            gain_db=min(slow.gain_db, fast.gain_db),
            gbw_hz=min(slow.gbw_hz, fast.gbw_hz),
            phase_margin_deg=min(slow.phase_margin_deg,
                                 fast.phase_margin_deg),
            slew_rate=min(slow.slew_rate, fast.slew_rate),
            input_noise_rms=max(slow.input_noise_rms,
                                fast.input_noise_rms),
            offset_sigma=self.n_sigma * nominal.offset_sigma,
            power=max(slow.power, fast.power),
            area=nominal.area,
            swing=min(slow.swing, fast.swing),
        )


def centered_ota_synthesizer(node: TechnologyNode,
                             load_capacitance: float,
                             spec: Specification,
                             n_sigma: float = 3.0,
                             variation: VariationSpec = VariationSpec()
                             ) -> CircuitSynthesizer:
    """AMGIE sizing against the k-sigma corner instead of nominal."""
    engine = GuardBandedOta(node, load_capacitance, n_sigma, variation)
    f = node.feature_size

    def evaluate(values: Dict[str, float]) -> OtaPerformance:
        design = OtaDesign(
            input_width=values["input_width"],
            input_length=values["input_length"],
            load_width=values["load_width"],
            load_length=values["load_length"],
            tail_current=values["tail_current"],
        )
        return engine.evaluate(design)

    variables = [
        Variable("input_width", 2 * f, 2000 * f),
        Variable("input_length", f, 20 * f),
        Variable("load_width", 2 * f, 1000 * f),
        Variable("load_length", f, 40 * f),
        Variable("tail_current", 1e-6, 5e-3),
    ]
    return CircuitSynthesizer(variables, evaluate, spec)


@dataclass(frozen=True)
class CenteringComparison:
    """Nominal-optimized vs centered design, judged by MC yield."""

    nominal: SynthesisResult
    centered: SynthesisResult
    nominal_yield: float
    centered_yield: float
    power_cost: float       # centered power / nominal power


def compare_centering(node: TechnologyNode, load_capacitance: float,
                      spec: Specification,
                      n_sigma: float = 3.0,
                      seed: int = 0,
                      maxiter: int = 30,
                      n_mc: int = 200,
                      variation: VariationSpec = VariationSpec()
                      ) -> CenteringComparison:
    """The headline experiment of statistical design.

    Optimize once against nominal performance and once against the
    k-sigma corner; score both with the same Monte Carlo yield
    analyzer.  Centering should buy yield at a modest power premium.
    """
    from .sizing import ota_synthesizer

    nominal_result = ota_synthesizer(
        node, load_capacitance, spec).run(seed=seed, maxiter=maxiter)
    centered_result = centered_ota_synthesizer(
        node, load_capacitance, spec, n_sigma, variation).run(
            seed=seed, maxiter=maxiter)

    mc_spec = {attr: bound
               for attr, (direction, bound) in spec.constraints.items()}

    def mc_yield(result: SynthesisResult) -> float:
        design = OtaDesign(
            input_width=result.values["input_width"],
            input_length=result.values["input_length"],
            load_width=result.values["load_width"],
            load_length=result.values["load_length"],
            tail_current=result.values["tail_current"],
        )
        analyzer = OtaYieldAnalyzer(node, design, load_capacitance,
                                    variation, seed=seed)
        return analyzer.run(mc_spec, n_samples=n_mc).overall_yield

    nominal_perf = nominal_result.performance
    centered_perf = centered_result.performance
    return CenteringComparison(
        nominal=nominal_result,
        centered=centered_result,
        nominal_yield=mc_yield(nominal_result),
        centered_yield=mc_yield(centered_result),
        power_cost=centered_perf.power / max(nominal_perf.power, 1e-15),
    )
