"""Optimization-based circuit sizing (the AMGIE engine).

"Most of the basic techniques in both circuit and layout synthesis
today rely on powerful numerical optimization engines coupled to
evaluation engines" (section 4.2).  This module is the optimization
half: a differential-evolution global search over the design
variables, scoring candidates with the analytic evaluation engines of
:mod:`repro.analog.circuits` through a penalty-based cost function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import differential_evolution

from ..robust.errors import ModelDomainError, ReproError
from ..robust.guards import ConvergenceReport
from ..robust.validate import check_count
from ..technology.node import TechnologyNode
from ..analog.circuits import (DetectorFrontend, DetectorFrontendDesign,
                               FrontendPerformance, OtaDesign,
                               OtaPerformance, SingleStageOta)


@dataclass(frozen=True)
class Variable:
    """One design variable with log-uniform search bounds."""

    name: str
    low: float
    high: float
    log_scale: bool = True

    def __post_init__(self) -> None:
        if not (math.isfinite(self.low) and math.isfinite(self.high)) \
                or self.low <= 0 or self.high <= self.low:
            raise ModelDomainError(
                f"bad bounds for {self.name}: ({self.low}, {self.high})")

    def decode(self, unit: float) -> float:
        """Map a [0, 1] optimizer coordinate to a physical value."""
        unit = min(max(unit, 0.0), 1.0)
        if self.log_scale:
            return self.low * (self.high / self.low) ** unit
        return self.low + (self.high - self.low) * unit


@dataclass(frozen=True)
class SynthesisResult:
    """Outcome of one synthesis run."""

    values: Dict[str, float]
    performance: object
    cost: float
    n_evaluations: int
    feasible: bool
    #: Optimizer convergence diagnostics (None for hand-built results).
    report: Optional[ConvergenceReport] = None


@dataclass
class Specification:
    """Performance spec: constraints plus an objective to minimize.

    ``constraints`` maps a performance attribute to ("min"/"max",
    bound); ``objective`` names the attribute to minimize once
    feasible (typically ``power`` or ``area``).
    """

    constraints: Dict[str, Tuple[str, float]]
    objective: str = "power"

    def penalty(self, performance: object) -> float:
        """Sum of normalized constraint violations (0 when feasible)."""
        total = 0.0
        for attr, (direction, bound) in self.constraints.items():
            value = getattr(performance, attr)
            if direction == "min":
                if value < bound:
                    total += (bound - value) / max(abs(bound), 1e-30)
            elif direction == "max":
                if value > bound:
                    total += (value - bound) / max(abs(bound), 1e-30)
            else:
                raise ModelDomainError(f"bad direction {direction!r}")
        return total

    def is_feasible(self, performance: object) -> bool:
        """True when all constraints hold."""
        return self.penalty(performance) == 0.0


class CircuitSynthesizer:
    """Generic AMGIE-style sizing loop.

    Parameters
    ----------
    variables:
        The free design variables and their ranges.
    evaluate:
        Callable mapping a {name: value} dict to a performance object
        (one of the evaluation engines).  May raise ValueError for
        infeasible geometry; those candidates are heavily penalized.
    spec:
        Constraints + objective.
    """

    PENALTY_WEIGHT = 1e3

    def __init__(self, variables: Sequence[Variable],
                 evaluate: Callable[[Dict[str, float]], object],
                 spec: Specification):
        if not variables:
            raise ModelDomainError("need at least one design variable")
        self.variables = list(variables)
        self.evaluate = evaluate
        self.spec = spec
        self._n_evaluations = 0

    def _decode(self, x: np.ndarray) -> Dict[str, float]:
        return {var.name: var.decode(float(u))
                for var, u in zip(self.variables, x)}

    def _cost(self, x: np.ndarray) -> float:
        self._n_evaluations += 1
        values = self._decode(x)
        try:
            performance = self.evaluate(values)
        except (ReproError, ValueError):
            return 1e12
        penalty = self.spec.penalty(performance)
        objective = getattr(performance, self.spec.objective)
        cost = objective + self.PENALTY_WEIGHT * penalty \
            * (abs(objective) + 1e-12)
        # A NaN/inf cost would poison differential evolution's ranking;
        # treat the candidate like an infeasible geometry instead.
        if not math.isfinite(cost):
            return 1e12
        # Normalize the objective so penalties always dominate.
        return cost

    def run(self, seed: Optional[int] = None, maxiter: int = 60,
            popsize: int = 20) -> SynthesisResult:
        """Run differential evolution; returns the best design."""
        maxiter = check_count("maxiter", maxiter)
        popsize = check_count("popsize", popsize, minimum=4)
        self._n_evaluations = 0
        bounds = [(0.0, 1.0)] * len(self.variables)
        result = differential_evolution(
            self._cost, bounds, seed=seed, maxiter=maxiter,
            popsize=popsize, tol=1e-8, polish=False, init="sobol")
        values = self._decode(result.x)
        performance = self.evaluate(values)
        report = ConvergenceReport(
            name="differential evolution",
            converged=bool(result.success),
            n_iterations=int(getattr(result, "nit", 0)),
            max_iterations=maxiter,
            residual=float(result.fun),
            message=str(getattr(result, "message", "")),
        )
        return SynthesisResult(
            values=values,
            performance=performance,
            cost=float(result.fun),
            n_evaluations=self._n_evaluations,
            feasible=self.spec.is_feasible(performance),
            report=report,
        )


# --- ready-made synthesis setups ------------------------------------------

def ota_synthesizer(node: TechnologyNode, load_capacitance: float,
                    spec: Specification) -> CircuitSynthesizer:
    """Sizing setup for the single-stage OTA."""
    engine = SingleStageOta(node, load_capacitance)
    f = node.feature_size

    def evaluate(values: Dict[str, float]) -> OtaPerformance:
        design = OtaDesign(
            input_width=values["input_width"],
            input_length=values["input_length"],
            load_width=values["load_width"],
            load_length=values["load_length"],
            tail_current=values["tail_current"],
        )
        return engine.evaluate(design)

    variables = [
        Variable("input_width", 2 * f, 2000 * f),
        Variable("input_length", f, 20 * f),
        Variable("load_width", 2 * f, 1000 * f),
        Variable("load_length", f, 40 * f),
        Variable("tail_current", 1e-6, 5e-3),
    ]
    return CircuitSynthesizer(variables, evaluate, spec)


def frontend_synthesizer(node: TechnologyNode,
                         spec: Specification,
                         detector_capacitance: float = 5e-12,
                         detector_leakage: float = 1e-9
                         ) -> CircuitSynthesizer:
    """Sizing setup for the detector front-end of Fig. 8."""
    engine = DetectorFrontend(node, detector_capacitance,
                              detector_leakage)
    f = node.feature_size

    def evaluate(values: Dict[str, float]) -> FrontendPerformance:
        design = DetectorFrontendDesign(
            input_width=values["input_width"],
            input_length=values["input_length"],
            feedback_capacitance=values["feedback_capacitance"],
            shaper_time_constant=values["shaper_time_constant"],
            drain_current=values["drain_current"],
        )
        return engine.evaluate(design)

    variables = [
        Variable("input_width", 10 * f, 20000 * f),
        Variable("input_length", f, 10 * f),
        Variable("feedback_capacitance", 20e-15, 5e-12),
        Variable("shaper_time_constant", 50e-9, 20e-6),
        Variable("drain_current", 10e-6, 5e-3),
    ]
    return CircuitSynthesizer(variables, evaluate, spec)


def default_ota_spec() -> Specification:
    """A representative OTA spec (gain/GBW/PM/offset, minimize power)."""
    return Specification(constraints={
        "gain_db": ("min", 36.0),
        "gbw_hz": ("min", 50e6),
        "phase_margin_deg": ("min", 60.0),
        "offset_sigma": ("max", 3e-3),
        "swing": ("min", 0.2),
    }, objective="power")


def default_frontend_spec() -> Specification:
    """A detector-front-end spec in the AMGIE paper's style."""
    return Specification(constraints={
        "enc_electrons": ("max", 1000.0),
        "peaking_time": ("max", 3e-6),
        "charge_gain": ("min", 1e12),     # 1 mV/fC
    }, objective="power")
