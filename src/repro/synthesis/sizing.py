"""Optimization-based circuit sizing (the AMGIE engine).

"Most of the basic techniques in both circuit and layout synthesis
today rely on powerful numerical optimization engines coupled to
evaluation engines" (section 4.2).  This module is the optimization
half: a differential-evolution global search over the design
variables, scoring candidates with the analytic evaluation engines of
:mod:`repro.analog.circuits` through a penalty-based cost function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import differential_evolution

from ..robust.errors import ModelDomainError, ReproError
from ..robust.guards import ConvergenceReport
from ..robust.validate import check_count
from ..technology.node import TechnologyNode
from ..analog.circuits import (DetectorFrontend, DetectorFrontendDesign,
                               FrontendPerformance, OtaDesign,
                               OtaPerformance, SingleStageOta)
from ..backends.protocol import BACKEND_NAMES, register_backend
from ..backends.contracts import register_contract


@dataclass(frozen=True)
class Variable:
    """One design variable with log-uniform search bounds."""

    name: str
    low: float
    high: float
    log_scale: bool = True

    def __post_init__(self) -> None:
        if not (math.isfinite(self.low) and math.isfinite(self.high)) \
                or self.low <= 0 or self.high <= self.low:
            raise ModelDomainError(
                f"bad bounds for {self.name}: ({self.low}, {self.high})")

    def decode(self, unit: float) -> float:
        """Map a [0, 1] optimizer coordinate to a physical value."""
        unit = min(max(unit, 0.0), 1.0)
        if self.log_scale:
            return self.low * (self.high / self.low) ** unit
        return self.low + (self.high - self.low) * unit


@dataclass(frozen=True)
class SynthesisResult:
    """Outcome of one synthesis run."""

    values: Dict[str, float]
    performance: object
    cost: float
    n_evaluations: int
    feasible: bool
    #: Optimizer convergence diagnostics (None for hand-built results).
    report: Optional[ConvergenceReport] = None
    #: Which evaluation backend scored the population ("oracle" or
    #: "vectorized"); hand-built results default to the oracle.
    backend: str = "oracle"


@dataclass
class Specification:
    """Performance spec: constraints plus an objective to minimize.

    ``constraints`` maps a performance attribute to ("min"/"max",
    bound); ``objective`` names the attribute to minimize once
    feasible (typically ``power`` or ``area``).
    """

    constraints: Dict[str, Tuple[str, float]]
    objective: str = "power"

    def __post_init__(self) -> None:
        """Typed validation of the spec targets (bugfix: a NaN bound
        used to silently make every candidate 'feasible').

        Directions are still checked lazily in :meth:`penalty` so a
        mutated-after-construction spec fails the same way it always
        did.
        """
        for attr, entry in self.constraints.items():
            try:
                _direction, bound = entry
            except (TypeError, ValueError):
                raise ModelDomainError(
                    f"constraint {attr!r} must be a (direction, bound) "
                    f"pair, got {entry!r}") from None
            if not isinstance(bound, (int, float)) \
                    or isinstance(bound, bool) \
                    or not math.isfinite(bound):
                raise ModelDomainError(
                    f"constraint {attr!r} bound must be a finite "
                    f"number, got {bound!r}")

    def penalty(self, performance: object):
        """Sum of normalized constraint violations (0 when feasible).

        Accepts scalar performance objects (returns a float, the
        oracle path) and array-valued ones from the batched
        evaluators (returns the elementwise ndarray of penalties).
        Array handling adds violation terms in the same constraint
        order with explicit ``np.where`` masks, so each element is
        bit-for-bit the scalar result -- no implicit broadcasting
        surprises.
        """
        values = {attr: getattr(performance, attr)
                  for attr in self.constraints}
        if all(np.ndim(v) == 0 for v in values.values()):
            total = 0.0
            for attr, (direction, bound) in self.constraints.items():
                value = values[attr]
                if direction == "min":
                    if value < bound:
                        total += (bound - value) / max(abs(bound), 1e-30)
                elif direction == "max":
                    if value > bound:
                        total += (value - bound) / max(abs(bound), 1e-30)
                else:
                    raise ModelDomainError(f"bad direction {direction!r}")
            return total
        arrays = np.broadcast_arrays(
            *[np.asarray(v, dtype=float) for v in values.values()])
        total = np.zeros(arrays[0].shape)
        for (attr, (direction, bound)), value in \
                zip(self.constraints.items(), arrays):
            scale = max(abs(bound), 1e-30)
            if direction == "min":
                term = np.where(value < bound, (bound - value) / scale,
                                0.0)
            elif direction == "max":
                term = np.where(value > bound, (value - bound) / scale,
                                0.0)
            else:
                raise ModelDomainError(f"bad direction {direction!r}")
            total = total + term
        return total

    def is_feasible(self, performance: object):
        """True when all constraints hold (elementwise for arrays)."""
        penalty = self.penalty(performance)
        if np.ndim(penalty) == 0:
            return bool(penalty == 0.0)
        return penalty == 0.0


class CircuitSynthesizer:
    """Generic AMGIE-style sizing loop.

    Parameters
    ----------
    variables:
        The free design variables and their ranges.
    evaluate:
        Callable mapping a {name: value} dict to a performance object
        (one of the evaluation engines).  May raise ValueError for
        infeasible geometry; those candidates are heavily penalized.
    spec:
        Constraints + objective.
    evaluate_batch:
        Optional vectorized twin: maps a {name: ndarray} dict of
        per-candidate columns to a performance object with array
        fields (NaN for infeasible candidates).  When provided, the
        ``"vectorized"`` backend scores a whole DE generation in one
        call; when omitted, only the ``"oracle"`` backend is
        available.
    engine:
        Optional engine name in the :mod:`repro.backends` registry,
        for discoverability (set by the ready-made factories).
    """

    PENALTY_WEIGHT = 1e3

    def __init__(self, variables: Sequence[Variable],
                 evaluate: Callable[[Dict[str, float]], object],
                 spec: Specification,
                 evaluate_batch: Optional[
                     Callable[[Dict[str, np.ndarray]], object]] = None,
                 engine: Optional[str] = None):
        if not variables:
            raise ModelDomainError("need at least one design variable")
        self.variables = list(variables)
        self.evaluate = evaluate
        self.evaluate_batch = evaluate_batch
        self.spec = spec
        self.engine = engine
        self._n_evaluations = 0

    def _decode(self, x: np.ndarray) -> Dict[str, float]:
        return {var.name: var.decode(float(u))
                for var, u in zip(self.variables, x)}

    def _cost(self, x: np.ndarray) -> float:
        self._n_evaluations += 1
        values = self._decode(x)
        try:
            performance = self.evaluate(values)
        except (ReproError, ValueError):
            return 1e12
        penalty = self.spec.penalty(performance)
        objective = getattr(performance, self.spec.objective)
        cost = objective + self.PENALTY_WEIGHT * penalty \
            * (abs(objective) + 1e-12)
        # A NaN/inf cost would poison differential evolution's ranking;
        # treat the candidate like an infeasible geometry instead.
        if not math.isfinite(cost):
            return 1e12
        # Normalize the objective so penalties always dominate.
        return cost

    def _decode_batch(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        """Decode an (n_vars, S) population; per-element ``decode``
        calls keep the mapping bit-for-bit equal to the oracle."""
        return {var.name: np.array([var.decode(float(u)) for u in row],
                                   dtype=float)
                for var, row in zip(self.variables, x)}

    def _cost_batch(self, x: np.ndarray) -> np.ndarray:
        """Vectorized cost: scores all S candidates in one pass.

        scipy's ``vectorized=True`` sends ``x`` with shape
        ``(n_vars, S)`` and expects ``(S,)`` back.  Candidates the
        oracle would reject (typed evaluator errors) come back as
        NaN from the batched evaluator and land on the same 1e12
        sentinel, so the cost surface is element-for-element the
        oracle's.
        """
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        if single:
            x = x[:, np.newaxis]
        self._n_evaluations += x.shape[1]
        performance = self.evaluate_batch(self._decode_batch(x))
        penalty = np.asarray(self.spec.penalty(performance), dtype=float)
        objective = np.asarray(getattr(performance, self.spec.objective),
                               dtype=float)
        cost = objective + self.PENALTY_WEIGHT * penalty \
            * (np.abs(objective) + 1e-12)
        cost = np.where(np.isfinite(cost), cost, 1e12)
        return cost[0] if single else cost

    def run(self, seed: Optional[int] = None, maxiter: int = 60,
            popsize: int = 20,
            backend: Optional[str] = None) -> SynthesisResult:
        """Run differential evolution; returns the best design.

        ``backend`` selects the evaluation path: ``"oracle"`` scores
        candidates one by one through the scalar evaluator,
        ``"vectorized"`` scores each generation in a single batched
        call, and ``None`` picks vectorized when a batched evaluator
        is available.  Both paths use deferred updating, so a fixed
        seed yields the *identical* optimization trajectory -- and
        best design -- on either backend.
        """
        maxiter = check_count("maxiter", maxiter)
        popsize = check_count("popsize", popsize, minimum=4)
        if backend is None:
            backend = ("vectorized" if self.evaluate_batch is not None
                       else "oracle")
        if backend not in BACKEND_NAMES:
            raise ModelDomainError(
                f"backend must be one of {BACKEND_NAMES}, got {backend!r}")
        if backend == "vectorized" and self.evaluate_batch is None:
            raise ModelDomainError(
                "vectorized backend requested but this synthesizer has "
                "no batched evaluator; pass evaluate_batch= or use "
                "backend='oracle'")
        self._n_evaluations = 0
        bounds = [(0.0, 1.0)] * len(self.variables)
        common = dict(seed=seed, maxiter=maxiter, popsize=popsize,
                      tol=1e-8, polish=False, init="sobol",
                      updating="deferred")
        if backend == "vectorized":
            result = differential_evolution(
                self._cost_batch, bounds, vectorized=True, **common)
        else:
            result = differential_evolution(self._cost, bounds, **common)
        values = self._decode(result.x)
        performance = self.evaluate(values)
        report = ConvergenceReport(
            name="differential evolution",
            converged=bool(result.success),
            n_iterations=int(getattr(result, "nit", 0)),
            max_iterations=maxiter,
            residual=float(result.fun),
            message=str(getattr(result, "message", "")),
        )
        return SynthesisResult(
            values=values,
            performance=performance,
            cost=float(result.fun),
            n_evaluations=self._n_evaluations,
            feasible=self.spec.is_feasible(performance),
            report=report,
            backend=backend,
        )


# --- ready-made synthesis setups ------------------------------------------

def ota_synthesizer(node: TechnologyNode, load_capacitance: float,
                    spec: Specification) -> CircuitSynthesizer:
    """Sizing setup for the single-stage OTA."""
    engine = SingleStageOta(node, load_capacitance)
    f = node.feature_size

    def evaluate(values: Dict[str, float]) -> OtaPerformance:
        design = OtaDesign(
            input_width=values["input_width"],
            input_length=values["input_length"],
            load_width=values["load_width"],
            load_length=values["load_length"],
            tail_current=values["tail_current"],
        )
        return engine.evaluate(design)

    def evaluate_batch(values: Dict[str, np.ndarray]) -> OtaPerformance:
        return engine.evaluate_batch(
            values["input_width"], values["input_length"],
            values["load_width"], values["load_length"],
            values["tail_current"], invalid="nan")

    variables = [
        Variable("input_width", 2 * f, 2000 * f),
        Variable("input_length", f, 20 * f),
        Variable("load_width", 2 * f, 1000 * f),
        Variable("load_length", f, 40 * f),
        Variable("tail_current", 1e-6, 5e-3),
    ]
    return CircuitSynthesizer(variables, evaluate, spec,
                              evaluate_batch=evaluate_batch,
                              engine="synthesis.ota")


def frontend_synthesizer(node: TechnologyNode,
                         spec: Specification,
                         detector_capacitance: float = 5e-12,
                         detector_leakage: float = 1e-9
                         ) -> CircuitSynthesizer:
    """Sizing setup for the detector front-end of Fig. 8."""
    engine = DetectorFrontend(node, detector_capacitance,
                              detector_leakage)
    f = node.feature_size

    def evaluate(values: Dict[str, float]) -> FrontendPerformance:
        design = DetectorFrontendDesign(
            input_width=values["input_width"],
            input_length=values["input_length"],
            feedback_capacitance=values["feedback_capacitance"],
            shaper_time_constant=values["shaper_time_constant"],
            drain_current=values["drain_current"],
        )
        return engine.evaluate(design)

    def evaluate_batch(values: Dict[str, np.ndarray]
                       ) -> FrontendPerformance:
        return engine.evaluate_batch(
            values["input_width"], values["input_length"],
            values["feedback_capacitance"],
            values["shaper_time_constant"],
            values["drain_current"], invalid="nan")

    variables = [
        Variable("input_width", 10 * f, 20000 * f),
        Variable("input_length", f, 10 * f),
        Variable("feedback_capacitance", 20e-15, 5e-12),
        Variable("shaper_time_constant", 50e-9, 20e-6),
        Variable("drain_current", 10e-6, 5e-3),
    ]
    return CircuitSynthesizer(variables, evaluate, spec,
                              evaluate_batch=evaluate_batch,
                              engine="synthesis.frontend")


def default_ota_spec() -> Specification:
    """A representative OTA spec (gain/GBW/PM/offset, minimize power)."""
    return Specification(constraints={
        "gain_db": ("min", 36.0),
        "gbw_hz": ("min", 50e6),
        "phase_margin_deg": ("min", 60.0),
        "offset_sigma": ("max", 3e-3),
        "swing": ("min", 0.2),
    }, objective="power")


def default_frontend_spec() -> Specification:
    """A detector-front-end spec in the AMGIE paper's style."""
    return Specification(constraints={
        "enc_electrons": ("max", 1000.0),
        "peaking_time": ("max", 3e-6),
        "charge_gain": ("min", 1e12),     # 1 mV/fC
    }, objective="power")


# --- backend registry wiring ----------------------------------------------
# Literal engine/backend strings: the R007 backend-conformance lint rule
# verifies statically that every registered engine exposes both paths.

register_backend("synthesis.ota", "oracle", SingleStageOta.evaluate,
                 "scalar 5T-OTA analytic evaluation, one sizing per call")
register_backend("synthesis.ota", "vectorized",
                 SingleStageOta.evaluate_batch,
                 "population-batched 5T-OTA evaluation (ndarray fields)")
register_backend("synthesis.frontend", "oracle", DetectorFrontend.evaluate,
                 "scalar CSA + CR-RC shaper evaluation, one sizing per call")
register_backend("synthesis.frontend", "vectorized",
                 DetectorFrontend.evaluate_batch,
                 "population-batched detector front-end evaluation")
register_contract("synthesis.ota", 0.0,
                  "closed-form evaluator: vectorized twin is bit-for-bit",
                  entry_points=("repro.synthesis.sizing.ota_synthesizer",))
register_contract("synthesis.frontend", 0.0,
                  "closed-form evaluator: vectorized twin is bit-for-bit",
                  entry_points=(
                      "repro.synthesis.sizing.frontend_synthesizer",))
