"""Layout data model: rectangles, cells, pins and design-rule checks.

The LAYLA-style layout generator (placement + routing) produces
instances of these classes.  Geometry is Manhattan-only (axis-aligned
rectangles on named layers), which is all a CMOS analog block needs.
Design rules are lambda-style, derived from the technology node's
feature size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..technology.node import TechnologyNode
from ..robust.errors import ModelDomainError, RoadmapDataError


#: Drawing layers in stack order.
LAYERS = ("nwell", "active", "poly", "contact", "metal1", "via1", "metal2")


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle on one layer (units: metres)."""

    layer: str
    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.layer not in LAYERS:
            raise ModelDomainError(
                f"unknown layer {self.layer!r}; expected one of {LAYERS}")
        if self.width <= 0 or self.height <= 0:
            raise ModelDomainError("rectangle dimensions must be positive")

    @property
    def x2(self) -> float:
        """Right edge."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top edge."""
        return self.y + self.height

    @property
    def area(self) -> float:
        """Rectangle area [m^2]."""
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        """Centre point."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def translated(self, dx: float, dy: float) -> "Rect":
        """A copy moved by (dx, dy)."""
        return Rect(self.layer, self.x + dx, self.y + dy,
                    self.width, self.height)

    def mirrored_x(self, axis: float) -> "Rect":
        """A copy mirrored about the vertical line x = axis."""
        return Rect(self.layer, 2.0 * axis - self.x2, self.y,
                    self.width, self.height)

    def overlaps(self, other: "Rect") -> bool:
        """True when both rectangles share area on the same layer."""
        if self.layer != other.layer:
            return False
        return (self.x < other.x2 and other.x < self.x2
                and self.y < other.y2 and other.y < self.y2)

    def spacing_to(self, other: "Rect") -> float:
        """Euclidean gap between rectangles (0 if touching/overlap)."""
        dx = max(other.x - self.x2, self.x - other.x2, 0.0)
        dy = max(other.y - self.y2, self.y - other.y2, 0.0)
        return math.hypot(dx, dy)


@dataclass(frozen=True)
class Pin:
    """A named connection point of a cell."""

    name: str
    layer: str
    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Pin":
        """A copy moved by (dx, dy)."""
        return Pin(self.name, self.layer, self.x + dx, self.y + dy)


@dataclass
class LayoutCell:
    """A leaf cell: rectangles plus pins, origin at (0, 0)."""

    name: str
    rects: List[Rect] = field(default_factory=list)
    pins: List[Pin] = field(default_factory=list)

    def bbox(self) -> Tuple[float, float, float, float]:
        """(x1, y1, x2, y2) bounding box."""
        if not self.rects:
            return (0.0, 0.0, 0.0, 0.0)
        return (min(r.x for r in self.rects),
                min(r.y for r in self.rects),
                max(r.x2 for r in self.rects),
                max(r.y2 for r in self.rects))

    @property
    def width(self) -> float:
        """Bounding-box width."""
        x1, _, x2, _ = self.bbox()
        return x2 - x1

    @property
    def height(self) -> float:
        """Bounding-box height."""
        _, y1, _, y2 = self.bbox()
        return y2 - y1

    def pin(self, name: str) -> Pin:
        """Look up a pin by name."""
        for pin in self.pins:
            if pin.name == name:
                return pin
        raise RoadmapDataError(f"cell {self.name!r} has no pin {name!r}")


@dataclass
class Placement:
    """A cell instance at a position (optionally x-mirrored)."""

    cell: LayoutCell
    x: float
    y: float
    mirror: bool = False

    def rects(self) -> List[Rect]:
        """The instance geometry in chip coordinates."""
        x1, _, x2, _ = self.cell.bbox()
        axis = (x1 + x2) / 2.0
        out = []
        for rect in self.cell.rects:
            r = rect.mirrored_x(axis) if self.mirror else rect
            out.append(r.translated(self.x, self.y))
        return out

    def pin_position(self, name: str) -> Tuple[float, float]:
        """Chip coordinates of a pin."""
        pin = self.cell.pin(name)
        x = pin.x
        if self.mirror:
            x1, _, x2, _ = self.cell.bbox()
            x = (x1 + x2) - pin.x
        return (x + self.x, pin.y + self.y)

    def bbox(self) -> Tuple[float, float, float, float]:
        """Instance bounding box in chip coordinates."""
        x1, y1, x2, y2 = self.cell.bbox()
        return (x1 + self.x, y1 + self.y, x2 + self.x, y2 + self.y)


@dataclass(frozen=True)
class DesignRules:
    """Lambda-style rules derived from the node feature size."""

    feature: float

    @classmethod
    def for_node(cls, node: TechnologyNode) -> "DesignRules":
        """Rules for ``node``."""
        return cls(feature=node.feature_size)

    @property
    def poly_width(self) -> float:
        """Minimum poly (gate) width = drawn L."""
        return self.feature

    @property
    def contact_size(self) -> float:
        """Contact cut size."""
        return 2.0 * self.feature

    @property
    def metal_width(self) -> float:
        """Minimum metal width."""
        return 3.0 * self.feature

    @property
    def metal_spacing(self) -> float:
        """Minimum same-layer metal spacing."""
        return 3.0 * self.feature

    @property
    def cell_margin(self) -> float:
        """Keep-out margin around placed cells."""
        return 6.0 * self.feature


class Layout:
    """A placed-and-routed block: instances plus routing rectangles."""

    def __init__(self, name: str, rules: DesignRules):
        self.name = name
        self.rules = rules
        self.placements: Dict[str, Placement] = {}
        self.routes: List[Rect] = []
        self.nets: Dict[str, List[Tuple[str, str]]] = {}

    def add_instance(self, name: str, placement: Placement) -> None:
        """Place a cell instance."""
        if name in self.placements:
            raise ModelDomainError(f"instance {name!r} already placed")
        self.placements[name] = placement

    def connect(self, net: str, terminals: Iterable[Tuple[str, str]]
                ) -> None:
        """Declare a net as (instance, pin) terminal pairs."""
        self.nets.setdefault(net, []).extend(terminals)

    def all_rects(self) -> List[Rect]:
        """Every rectangle in chip coordinates."""
        rects = list(self.routes)
        for placement in self.placements.values():
            rects.extend(placement.rects())
        return rects

    def bbox(self) -> Tuple[float, float, float, float]:
        """Block bounding box."""
        rects = self.all_rects()
        if not rects:
            return (0.0, 0.0, 0.0, 0.0)
        return (min(r.x for r in rects), min(r.y for r in rects),
                max(r.x2 for r in rects), max(r.y2 for r in rects))

    def area(self) -> float:
        """Bounding-box area [m^2]."""
        x1, y1, x2, y2 = self.bbox()
        return (x2 - x1) * (y2 - y1)

    def check_overlaps(self) -> List[Tuple[str, str]]:
        """Instance-pair bounding-box overlaps (placement DRC)."""
        names = list(self.placements)
        failures = []
        for i, a in enumerate(names):
            ax1, ay1, ax2, ay2 = self.placements[a].bbox()
            for b in names[i + 1:]:
                bx1, by1, bx2, by2 = self.placements[b].bbox()
                if ax1 < bx2 and bx1 < ax2 and ay1 < by2 and by1 < ay2:
                    failures.append((a, b))
        return failures

    def wirelength(self) -> float:
        """Total half-perimeter wirelength over all nets [m]."""
        total = 0.0
        for terminals in self.nets.values():
            points = [self.placements[inst].pin_position(pin)
                      for inst, pin in terminals
                      if inst in self.placements]
            if len(points) < 2:
                continue
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    def to_text(self) -> str:
        """Human-readable layout dump (a GDS stand-in)."""
        lines = [f"LAYOUT {self.name}"]
        x1, y1, x2, y2 = self.bbox()
        lines.append(f"  BBOX {x1*1e6:.2f} {y1*1e6:.2f} "
                     f"{x2*1e6:.2f} {y2*1e6:.2f} um")
        for name, placement in sorted(self.placements.items()):
            lines.append(
                f"  INST {name} cell={placement.cell.name} "
                f"x={placement.x*1e6:.2f}um y={placement.y*1e6:.2f}um"
                f"{' mirrored' if placement.mirror else ''}")
        lines.append(f"  ROUTES {len(self.routes)} rects")
        lines.append(f"  NETS {len(self.nets)}")
        return "\n".join(lines)

    def to_svg(self, scale: float = 1e8) -> str:
        """Minimal SVG rendering (for eyeballing the Fig. 8 result)."""
        colors = {"nwell": "#ddddaa", "active": "#88cc88",
                  "poly": "#cc4444", "contact": "#222222",
                  "metal1": "#4466cc", "via1": "#111111",
                  "metal2": "#9944cc"}
        x1, y1, x2, y2 = self.bbox()
        width = (x2 - x1) * scale
        height = (y2 - y1) * scale
        parts = [f'<svg xmlns="http://www.w3.org/2000/svg" '
                 f'width="{width:.0f}" height="{height:.0f}">']
        for rect in self.all_rects():
            parts.append(
                f'<rect x="{(rect.x - x1) * scale:.1f}" '
                f'y="{(y2 - rect.y2) * scale:.1f}" '
                f'width="{rect.width * scale:.1f}" '
                f'height="{rect.height * scale:.1f}" '
                f'fill="{colors.get(rect.layer, "#999")}" '
                f'fill-opacity="0.6"/>')
        parts.append("</svg>")
        return "\n".join(parts)
