"""Simulated-annealing analog placement (the LAYLA placer).

Minimizes half-perimeter wirelength plus area, under the analog
constraints LAYLA is known for:

* **no overlap** (hard, enforced by construction on a slot grid),
* **symmetry pairs** -- two cells mirrored about a common vertical
  axis (differential signal paths),
* **proximity groups** -- matched devices kept adjacent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .layout import DesignRules, Layout, LayoutCell, Placement
from ..robust.rng import resolve_rng
from ..robust.errors import ModelDomainError


@dataclass
class PlacementProblem:
    """Input to the placer.

    ``nets`` maps net name -> list of (instance, pin); ``symmetry``
    lists instance pairs to mirror about a shared axis; ``proximity``
    lists instance groups to keep together.
    """

    cells: Dict[str, LayoutCell]
    nets: Dict[str, List[Tuple[str, str]]]
    symmetry: List[Tuple[str, str]] = field(default_factory=list)
    proximity: List[List[str]] = field(default_factory=list)

    def validate(self) -> None:
        """Check that constraints reference known instances."""
        for a, b in self.symmetry:
            if a not in self.cells or b not in self.cells:
                raise ModelDomainError(f"symmetry pair ({a}, {b}) not placed")
        for group in self.proximity:
            for name in group:
                if name not in self.cells:
                    raise ModelDomainError(f"proximity member {name} unknown")


@dataclass
class _State:
    """Annealer state: instance -> (column, row) slot assignment."""

    slots: Dict[str, Tuple[int, int]]


class SimulatedAnnealingPlacer:
    """Slot-grid annealer.

    Instances live on a regular grid whose cell size is the largest
    instance footprint plus the design-rule margin, so any slot
    assignment is overlap-free; the annealer permutes slot assignments
    with swap/relocate moves.
    """

    def __init__(self, problem: PlacementProblem, rules: DesignRules,
                 seed: Optional[int] = None,
                 n_columns: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        problem.validate()
        self.problem = problem
        self.rules = rules
        self.rng = resolve_rng(rng, seed=seed)
        n_cells = len(problem.cells)
        self.n_columns = (n_columns if n_columns is not None
                          else max(int(math.ceil(math.sqrt(n_cells))), 1))
        self.n_rows = int(math.ceil(n_cells / self.n_columns)) + 1
        self.slot_w = max(cell.width for cell in problem.cells.values()) \
            + rules.cell_margin
        self.slot_h = max(cell.height for cell in problem.cells.values()) \
            + rules.cell_margin

    # --- geometry ----------------------------------------------------------

    def _position(self, slot: Tuple[int, int]) -> Tuple[float, float]:
        col, row = slot
        return (col * self.slot_w, row * self.slot_h)

    def _pin_position(self, state: _State, instance: str, pin: str
                      ) -> Tuple[float, float]:
        cell = self.problem.cells[instance]
        x, y = self._position(state.slots[instance])
        p = cell.pin(pin)
        return (x + p.x, y + p.y)

    # --- cost ---------------------------------------------------------------

    def cost(self, state: _State) -> float:
        """Wirelength + symmetry and proximity penalties (in metres)."""
        total = 0.0
        for terminals in self.problem.nets.values():
            points = [self._pin_position(state, inst, pin)
                      for inst, pin in terminals
                      if inst in state.slots]
            if len(points) < 2:
                continue
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        # Symmetry: same row, equidistant from the mean axis.
        for a, b in self.problem.symmetry:
            (ca, ra), (cb, rb) = state.slots[a], state.slots[b]
            total += abs(ra - rb) * self.slot_h * 4.0
            total += abs((ca + cb) / 2.0
                         - self.n_columns / 2.0) * self.slot_w * 0.5
        # Proximity: Manhattan spread of the group.
        for group in self.problem.proximity:
            cols = [state.slots[n][0] for n in group]
            rows = [state.slots[n][1] for n in group]
            spread = (max(cols) - min(cols)) + (max(rows) - min(rows))
            total += max(spread - len(group) + 1, 0) \
                * (self.slot_w + self.slot_h)
        return total

    # --- annealing -------------------------------------------------------------

    def _initial_state(self) -> _State:
        names = list(self.problem.cells)
        slots = {}
        for index, name in enumerate(names):
            slots[name] = (index % self.n_columns,
                           index // self.n_columns)
        return _State(slots=slots)

    def _random_move(self, state: _State) -> _State:
        names = list(state.slots)
        slots = dict(state.slots)
        if self.rng.random() < 0.5 and len(names) >= 2:
            a, b = self.rng.choice(len(names), size=2, replace=False)
            na, nb = names[int(a)], names[int(b)]
            slots[na], slots[nb] = slots[nb], slots[na]
        else:
            name = names[int(self.rng.integers(len(names)))]
            target = (int(self.rng.integers(self.n_columns)),
                      int(self.rng.integers(self.n_rows)))
            occupant = next((n for n, s in slots.items()
                             if s == target), None)
            if occupant is not None:
                slots[occupant] = slots[name]
            slots[name] = target
        return _State(slots=slots)

    def place(self, n_iterations: int = 3000,
              initial_temperature: Optional[float] = None,
              cooling: float = 0.995) -> Tuple[_State, List[float]]:
        """Run the annealer; returns (best state, cost history)."""
        if n_iterations < 1:
            raise ModelDomainError("n_iterations must be positive")
        state = self._initial_state()
        cost = self.cost(state)
        best_state, best_cost = state, cost
        temperature = (initial_temperature if initial_temperature
                       is not None else cost * 0.5 + 1e-9)
        history = [cost]
        for _ in range(n_iterations):
            candidate = self._random_move(state)
            c_cost = self.cost(candidate)
            delta = c_cost - cost
            if delta <= 0 or self.rng.random() < math.exp(
                    -delta / max(temperature, 1e-30)):
                state, cost = candidate, c_cost
                if cost < best_cost:
                    best_state, best_cost = state, cost
            temperature *= cooling
            history.append(cost)
        return best_state, history

    def to_layout(self, state: _State, name: str = "placed") -> Layout:
        """Materialize a state as a :class:`Layout`."""
        layout = Layout(name, self.rules)
        for inst, slot in state.slots.items():
            x, y = self._position(slot)
            layout.add_instance(inst, Placement(
                cell=self.problem.cells[inst], x=x, y=y))
        for net, terminals in self.problem.nets.items():
            layout.connect(net, terminals)
        return layout


def place_cells(problem: PlacementProblem, rules: DesignRules,
                n_iterations: int = 3000,
                seed: Optional[int] = None,
                name: str = "placed") -> Layout:
    """One-call placement: anneal and return the layout."""
    placer = SimulatedAnnealingPlacer(problem, rules, seed=seed)
    state, _ = placer.place(n_iterations=n_iterations)
    return placer.to_layout(state, name=name)
