"""Built-in library of CMOS technology nodes, 350 nm through 32 nm.

The numbers follow the ITRS-2003 trend lines the paper references
([1] in the paper): V_DD and t_ox scale sub-linearly below 130 nm, V_T
scaling slows to preserve leakage, DIBL and the subthreshold ideality
worsen, the body factor shrinks (limiting VTCMOS, section 3.2), and the
Pelgrom A_VT coefficient improves roughly with t_ox.

These are trend-faithful synthetic values, not foundry data -- see
DESIGN.md ("Substitutions").  Every figure in the paper depends on the
*ratios* between nodes, which these tables preserve.
"""

from __future__ import annotations

from typing import Dict, List

from ..perf.cache import memoized
from ..robust.errors import RoadmapDataError
from .node import TechnologyNode
from ..robust.validate import validated

# Each tuple: (feature nm, VDD V, VT V, tox nm, M1 pitch nm, N_A 1/m^3,
#              n, DIBL V/V, body factor, AVT mV*um, alpha, metal layers,
#              dielectric k, I0 A/m, mobility_n m^2/Vs)
_NODE_TABLE = [
    ("350nm", 350, 3.30, 0.60, 7.6, 880, 4.0e23, 1.35, 0.010, 0.50, 9.0, 2.0, 4, 3.9, 5.0e-3, 0.05),
    ("250nm", 250, 2.50, 0.50, 5.6, 640, 7.0e23, 1.36, 0.015, 0.45, 7.0, 1.9, 5, 3.9, 1.5e-2, 0.048),
    ("180nm", 180, 1.80, 0.45, 4.1, 460, 1.2e24, 1.38, 0.022, 0.40, 5.5, 1.8, 6, 3.7, 4.0e-2, 0.045),
    ("130nm", 130, 1.30, 0.35, 2.7, 340, 2.0e24, 1.40, 0.035, 0.33, 4.0, 1.55, 7, 3.5, 1.2e-1, 0.04),
    ("100nm", 100, 1.20, 0.30, 2.2, 280, 3.0e24, 1.42, 0.050, 0.28, 3.2, 1.5, 8, 3.2, 3.0e-1, 0.035),
    ("90nm",   90, 1.10, 0.28, 2.0, 240, 3.5e24, 1.43, 0.060, 0.26, 2.9, 1.45, 8, 3.1, 4.5e-1, 0.033),
    ("65nm",   65, 1.00, 0.22, 1.6, 180, 5.0e24, 1.45, 0.080, 0.22, 2.4, 1.40, 9, 2.9, 1.0e+0, 0.028),
    ("45nm",   45, 0.90, 0.18, 1.2, 130, 8.0e24, 1.48, 0.110, 0.18, 1.9, 1.30, 10, 2.7, 2.2e+0, 0.024),
    ("32nm",   32, 0.80, 0.15, 1.0, 100, 1.2e25, 1.52, 0.150, 0.15, 1.6, 1.25, 11, 2.5, 4.0e+0, 0.02),
]

# Gate-leakage fit factors (eq. 2): tunnelling turns on sharply below
# t_ox ~ 3 nm.  K is per unit gate area; alpha controls the exponential
# thickness dependence and is calibrated so the current density is
# negligible (< 1 A/m^2) at 130 nm and ~1e6 A/m^2 at the 65 nm node --
# where gate leakage becomes a first-order share of static power.
# Below 65 nm the effective alpha *rises*: nitrided oxides (45 nm) and
# high-k stacks (32 nm) raise the tunnelling barrier, exactly the
# section-2.2 mitigation the paper describes.  Above 100 nm the alpha
# also rises: thick oxides leak by Fowler-Nordheim rather than direct
# tunnelling, which the single-exponential eq. 2 fit can only absorb
# through a per-node coefficient -- there, gate leakage is truly zero.
_GATE_LEAK_K = 1.8e9         # A/V^2 per m^2 of gate, before exponential
_GATE_LEAK_ALPHA = {         # V/m, per node
    "default": 3.0e10,       # direct tunnelling, 100-65 nm
    "350nm": 6.5e10,         # Fowler-Nordheim regime
    "250nm": 6.0e10,
    "180nm": 5.0e10,
    "130nm": 4.0e10,
    "45nm": 3.6e10,          # SiON
    "32nm": 3.8e10,          # high-k (HfO2-class)
}


def _build(entry: tuple) -> TechnologyNode:
    (name, feat, vdd, vth, tox, pitch, doping, n_factor, dibl, body,
     avt_mvum, alpha, metals, k_ild, i0, mobility_n) = entry
    return TechnologyNode(
        name=name,
        feature_size=feat * 1e-9,
        vdd=vdd,
        vth=vth,
        tox=tox * 1e-9,
        wire_pitch=pitch * 1e-9,
        channel_doping=doping,
        subthreshold_n=n_factor,
        dibl=dibl,
        body_factor=body,
        avt=avt_mvum * 1e-3 * 1e-6,   # mV*um -> V*m
        abeta=0.01 * 1e-6,            # 1 %*um for every node
        alpha_power=alpha,
        gate_leak_k=_GATE_LEAK_K,
        gate_leak_alpha=_GATE_LEAK_ALPHA.get(name,
                                             _GATE_LEAK_ALPHA["default"]),
        i0_per_width=i0,
        mobility_n=mobility_n,
        mobility_p=0.4 * mobility_n,
        metal_layers=metals,
        dielectric_k=k_ild,
        conductor_resistivity=2.65e-8 if feat >= 250 else 1.68e-8,
    )


_LIBRARY: Dict[str, TechnologyNode] = {
    entry[0]: _build(entry) for entry in _NODE_TABLE
}


def available_nodes() -> List[str]:
    """Return the names of the built-in nodes, largest feature first."""
    return list(_LIBRARY)


@memoized("technology.get_node")
def get_node(name: str) -> TechnologyNode:
    """Look up a built-in node by name (e.g. ``"65nm"``).

    Accepts ``"65nm"``, ``"65"`` and ``65`` interchangeably.  Lookups
    run through a registered :func:`~repro.perf.cache.memoized` cache
    so sweep code shares one frozen instance per spelling and the
    cache registry exposes the lookup traffic.
    """
    key = str(name)
    if not key.endswith("nm"):
        key = f"{key}nm"
    try:
        return _LIBRARY[key]
    except KeyError:
        raise RoadmapDataError(
            f"unknown technology node {name!r}; "
            f"available: {', '.join(_LIBRARY)}") from None


def all_nodes() -> List[TechnologyNode]:
    """Return every built-in node, largest feature size first."""
    return list(_LIBRARY.values())


@validated(feature_size_nm="positive")
def nodes_below(feature_size_nm: float) -> List[TechnologyNode]:
    """Return built-in nodes with feature size <= ``feature_size_nm``."""
    return [node for node in _LIBRARY.values()
            if node.feature_size <= feature_size_nm * 1e-9]
