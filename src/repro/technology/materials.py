"""Material models: gate dielectrics, gate electrodes and interconnect.

Section 2.2 of the paper notes that high-k gate dielectrics and metal
gates reduce gate leakage (a physically thicker film gives the same
capacitance), and section 2.3 that low-k inter-metal dielectrics and
copper reduce interconnect delay and power.  This module provides the
material database and the equivalent-oxide-thickness algebra those
claims rest on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..core.constants import EPSILON_SIO2
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class GateDielectric:
    """A gate-dielectric material.

    Parameters
    ----------
    name:
        Material name.
    k:
        Relative permittivity.
    barrier_height:
        Tunnelling barrier height for electrons [eV]; a higher barrier
        exponentially suppresses gate leakage.
    """

    name: str
    k: float
    barrier_height: float

    def physical_thickness_for_eot(self, eot: float) -> float:
        """Physical film thickness [m] giving equivalent oxide thickness
        ``eot`` [m] (same areal capacitance as SiO2 of thickness eot)."""
        if eot <= 0:
            raise ModelDomainError(f"eot must be positive, got {eot}")
        return eot * self.k / EPSILON_SIO2

    def leakage_suppression_vs_sio2(self, eot: float,
                                    alpha_sio2: float = 6.5e10) -> float:
        """Gate-leakage reduction factor relative to SiO2 at the same EOT.

        Uses the exponential thickness dependence of eq. 2: leakage
        ~ exp(-alpha * t_phys), with alpha scaled by sqrt(barrier
        height) relative to the SiO2 barrier (3.1 eV, WKB approximation).
        Returns a factor >= 1 (how many times less leaky).
        """
        t_sio2 = eot
        t_phys = self.physical_thickness_for_eot(eot)
        alpha_mat = alpha_sio2 * math.sqrt(self.barrier_height / 3.1)
        exponent = alpha_mat * t_phys - alpha_sio2 * t_sio2
        return math.exp(exponent)


@dataclass(frozen=True)
class Conductor:
    """An interconnect metal."""

    name: str
    resistivity: float  # ohm*m

    def resistance_per_length(self, width: float, thickness: float) -> float:
        """Wire resistance per unit length [ohm/m]."""
        if width <= 0 or thickness <= 0:
            raise ModelDomainError("wire cross-section dimensions must be positive")
        return self.resistivity / (width * thickness)


@dataclass(frozen=True)
class InterMetalDielectric:
    """An inter-metal (back-end) dielectric."""

    name: str
    k: float


GATE_DIELECTRICS: Dict[str, GateDielectric] = {
    "SiO2": GateDielectric("SiO2", k=3.9, barrier_height=3.1),
    "SiON": GateDielectric("SiON", k=5.0, barrier_height=2.8),
    "Al2O3": GateDielectric("Al2O3", k=9.0, barrier_height=2.8),
    "HfO2": GateDielectric("HfO2", k=22.0, barrier_height=1.5),
    "ZrO2": GateDielectric("ZrO2", k=23.0, barrier_height=1.4),
}

CONDUCTORS: Dict[str, Conductor] = {
    "Al": Conductor("Al", resistivity=2.65e-8),
    "Cu": Conductor("Cu", resistivity=1.68e-8),
    "W": Conductor("W", resistivity=5.60e-8),
}

INTER_METAL_DIELECTRICS: Dict[str, InterMetalDielectric] = {
    "SiO2": InterMetalDielectric("SiO2", k=3.9),
    "FSG": InterMetalDielectric("FSG", k=3.5),
    "SiOC": InterMetalDielectric("SiOC", k=2.9),
    "porous-low-k": InterMetalDielectric("porous-low-k", k=2.2),
    "air-gap": InterMetalDielectric("air-gap", k=1.2),
}


def rc_improvement(old_conductor: str, new_conductor: str,
                   old_dielectric: str, new_dielectric: str) -> float:
    """Return the RC-delay reduction factor from a material change.

    Wire delay is proportional to rho*k (eq. 3 with fixed geometry), so
    the improvement factor is (rho_old*k_old)/(rho_new*k_new).
    """
    rho_old = CONDUCTORS[old_conductor].resistivity
    rho_new = CONDUCTORS[new_conductor].resistivity
    k_old = INTER_METAL_DIELECTRICS[old_dielectric].k
    k_new = INTER_METAL_DIELECTRICS[new_dielectric].k
    return (rho_old * k_old) / (rho_new * k_new)
