"""CMOS technology substrate: node parameters and material models."""

from .node import TechnologyNode
from .library import all_nodes, available_nodes, get_node, nodes_below
from .materials import (
    CONDUCTORS,
    GATE_DIELECTRICS,
    INTER_METAL_DIELECTRICS,
    Conductor,
    GateDielectric,
    InterMetalDielectric,
    rc_improvement,
)

__all__ = [
    "TechnologyNode",
    "all_nodes",
    "available_nodes",
    "get_node",
    "nodes_below",
    "CONDUCTORS",
    "GATE_DIELECTRICS",
    "INTER_METAL_DIELECTRICS",
    "Conductor",
    "GateDielectric",
    "InterMetalDielectric",
    "rc_improvement",
]
