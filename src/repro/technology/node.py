"""Parameterized description of a CMOS technology node.

The paper's analyses (equations 1-5 and every figure) consume only a
small set of per-node scalar parameters: supply voltage, threshold
voltage, oxide thickness, wire pitch, doping, matching coefficients and
a few device fit factors.  :class:`TechnologyNode` collects those
parameters; the built-in node library in :mod:`repro.technology.library`
provides ITRS-2003-style values for the 350 nm through 32 nm nodes.

We do not have access to the foundry PDK data the paper's figures were
drawn from.  The values shipped here follow published constant-field
scaling trends with the historical deviations the paper itself discusses
(V_T scaling slower than V_DD, t_ox saturating near 1 nm).  All results
in this library are therefore *trend-faithful*, not foundry-calibrated
-- exactly the level the paper argues at.
"""

from __future__ import annotations

import dataclasses
import math
import warnings
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Optional

from ..robust.errors import ModelDomainError, ModelDomainWarning
from ..robust.validate import check_finite, check_positive
from ..core.constants import (
    EPSILON_0,
    EPSILON_SI,
    EPSILON_SIO2,
    ELECTRON_CHARGE,
    N_INTRINSIC_SI,
    ROOM_TEMPERATURE,
    thermal_voltage,
)


@dataclass(frozen=True)
class TechnologyNode:
    """Scalar parameter set for one CMOS technology node.

    All quantities are in SI units.  Instances are immutable; use
    :meth:`scaled` or :meth:`with_overrides` to derive variants.

    Parameters
    ----------
    name:
        Human-readable node label, e.g. ``"65nm"``.
    feature_size:
        Drawn minimum channel length L [m].
    vdd:
        Nominal supply voltage [V].
    vth:
        Nominal NMOS threshold voltage at V_BS = 0 [V].
    tox:
        Equivalent gate-oxide thickness [m].
    wire_pitch:
        Minimum metal-1 wire pitch (width + spacing) [m].
    channel_doping:
        Effective channel doping N_A [1/m^3].
    subthreshold_n:
        Subthreshold slope ideality factor n (eq. 1).
    dibl:
        Drain-induced barrier lowering coefficient [V/V]: the
        equivalent V_T decrease per volt of V_DS.
    body_factor:
        Bulk (body-effect) factor dV_T/dV_SB around V_SB = 0 [V/V].
        Decreases with scaling, which is what limits VTCMOS (section
        3.2 of the paper).
    avt:
        Pelgrom threshold-matching coefficient A_VT [V*m]
        (sigma_VT = A_VT / sqrt(W*L)).
    abeta:
        Pelgrom current-factor matching coefficient [m] (dimensionless
        fraction times sqrt(m^2)).
    mobility_n / mobility_p:
        Low-field electron / hole mobility [m^2/(V*s)].
    vsat:
        Carrier saturation velocity [m/s].
    alpha_power:
        Velocity-saturation exponent of the alpha-power law (2 = long
        channel square law, tends to ~1.2 at nanometre nodes).
    gate_leak_k / gate_leak_alpha:
        Fit factors K [A/V^2] and alpha [V/m] of the gate-tunneling
        model (eq. 2 of the paper).
    i0_per_width:
        Subthreshold pre-factor I_0 per unit width at the reference
        channel length [A/m] (eq. 1 of the paper).
    metal_layers:
        Number of interconnect metal layers.
    dielectric_k:
        Relative permittivity of the inter-metal dielectric.
    conductor_resistivity:
        Resistivity of the interconnect metal [ohm*m].
    junction_depth:
        Source/drain junction depth [m]; sets the dopant-counting
        volume together with the depletion depth.
    """

    name: str
    feature_size: float
    vdd: float
    vth: float
    tox: float
    wire_pitch: float
    channel_doping: float
    subthreshold_n: float = 1.4
    dibl: float = 0.05
    body_factor: float = 0.2
    avt: float = 4e-9           # V*m  (= 4 mV*um)
    abeta: float = 1.0e-8       # m    (= 1 %*um)
    mobility_n: float = 0.040
    mobility_p: float = 0.016
    vsat: float = 1.0e5
    alpha_power: float = 1.3
    gate_leak_k: float = 3e-7
    gate_leak_alpha: float = 6.0e10
    i0_per_width: float = 1.0e-1
    metal_layers: int = 6
    dielectric_k: float = 3.9
    conductor_resistivity: float = 1.68e-8
    junction_depth: float = field(default=0.0)
    temperature: float = ROOM_TEMPERATURE
    #: dV_T/dT [V/K]; V_T drops as the die heats, compounding leakage.
    vth_temp_coefficient: float = -1.0e-3

    #: Junction temperatures [K] the trend tables are calibrated for;
    #: :meth:`at_temperature` warns (ModelDomainWarning) outside it.
    CALIBRATED_TEMPERATURE_RANGE = (150.0, 600.0)

    #: Numeric fields that must be strictly positive and finite.
    _POSITIVE_FIELDS = ("feature_size", "vdd", "vth", "tox", "wire_pitch",
                        "channel_doping", "subthreshold_n", "avt", "abeta",
                        "mobility_n", "mobility_p", "vsat", "alpha_power",
                        "dielectric_k", "conductor_resistivity",
                        "temperature")
    #: Numeric fields that only need to be finite.
    _FINITE_FIELDS = ("dibl", "body_factor", "gate_leak_k",
                      "gate_leak_alpha", "i0_per_width", "junction_depth",
                      "vth_temp_coefficient")

    def __post_init__(self) -> None:
        for attr in self._POSITIVE_FIELDS:
            value = getattr(self, attr)
            if not isinstance(value, (int, float)) \
                    or not math.isfinite(value) or value <= 0:
                raise ModelDomainError(
                    f"{attr} must be a positive finite number, "
                    f"got {value!r}")
        for attr in self._FINITE_FIELDS:
            value = getattr(self, attr)
            if not isinstance(value, (int, float)) \
                    or not math.isfinite(value):
                raise ModelDomainError(
                    f"{attr} must be finite, got {value!r}")
        if self.vth >= self.vdd:
            raise ModelDomainError(
                f"vth ({self.vth} V) must be below vdd ({self.vdd} V)")
        if self.junction_depth == 0.0:
            # Junction depth historically tracks ~L/3.
            object.__setattr__(self, "junction_depth", self.feature_size / 3.0)

    # --- derived electrical quantities ------------------------------------
    # The scalar derivations below sit inside Monte Carlo inner loops
    # (dopant counting touches depletion_depth/cox per device), so the
    # pure-function ones are ``cached_property``: computed once per
    # (immutable) instance, stored on ``__dict__`` which a frozen
    # dataclass still allows.  Field identity/equality are unaffected.

    @cached_property
    def cox(self) -> float:
        """Gate-oxide capacitance per unit area [F/m^2]."""
        return EPSILON_0 * EPSILON_SIO2 / self.tox

    @property
    def gate_capacitance_min(self) -> float:
        """Gate capacitance of a minimum square device (W = L) [F]."""
        return self.cox * self.feature_size ** 2

    @property
    def overdrive(self) -> float:
        """Nominal gate overdrive V_DD - V_T [V]."""
        return self.vdd - self.vth

    @cached_property
    def fermi_potential(self) -> float:
        """Bulk Fermi potential phi_F [V] for the channel doping."""
        phi_t = thermal_voltage(self.temperature)
        return phi_t * math.log(self.channel_doping / N_INTRINSIC_SI)

    @cached_property
    def depletion_depth(self) -> float:
        """Maximum channel depletion depth [m] (at 2*phi_F band bending)."""
        eps_si = EPSILON_0 * EPSILON_SI
        return math.sqrt(
            4.0 * eps_si * self.fermi_potential
            / (ELECTRON_CHARGE * self.channel_doping))

    @property
    def sigma_vt_min_device(self) -> float:
        """Matching sigma_VT [V] of a minimum-size (W = L) device."""
        return self.avt / self.feature_size

    def sigma_vt(self, width: float, length: Optional[float] = None) -> float:
        """Pelgrom mismatch sigma_VT [V] for a W x L device.

        ``length`` defaults to the node feature size.
        """
        if length is None:
            length = self.feature_size
        check_positive("width", width)
        check_positive("length", length)
        return self.avt / math.sqrt(width * length)

    # --- derivation helpers ------------------------------------------------

    def with_overrides(self, **overrides: float) -> "TechnologyNode":
        """Return a copy with some fields replaced (e.g. a V_T variant)."""
        return dataclasses.replace(self, **overrides)

    def at_temperature(self, temperature: float) -> "TechnologyNode":
        """Return this node at a different junction temperature [K].

        V_T shifts by ``vth_temp_coefficient`` per kelvin and carrier
        mobility degrades as (T/T0)^-1.5 -- together these make hot
        silicon leak exponentially more while driving slightly less,
        which is where the paper's leakage-power problem actually
        bites (section 2.1 at operating temperature).
        """
        check_positive("temperature", temperature)
        if not self.CALIBRATED_TEMPERATURE_RANGE[0] <= temperature \
                <= self.CALIBRATED_TEMPERATURE_RANGE[1]:
            lo, hi = self.CALIBRATED_TEMPERATURE_RANGE
            warnings.warn(
                f"temperature {temperature:g} K is outside the "
                f"calibrated range [{lo:g}, {hi:g}] K; the V_T and "
                f"mobility extrapolations are unvalidated there",
                ModelDomainWarning, stacklevel=2)
        delta_t = temperature - self.temperature
        mobility_factor = (temperature / self.temperature) ** -1.5
        # The linear dV_T/dT flattens near zero threshold; clamp so a
        # (runaway-hot) device degenerates to always-on rather than to
        # an unphysical negative V_T.
        hot_vth = max(self.vth + self.vth_temp_coefficient * delta_t,
                      0.02)
        return dataclasses.replace(
            self,
            name=f"{self.name}@{temperature:.0f}K",
            temperature=temperature,
            vth=hot_vth,
            mobility_n=self.mobility_n * mobility_factor,
            mobility_p=self.mobility_p * mobility_factor,
        )

    def scaled(self, s: float, name: Optional[str] = None,
               full_scaling: bool = True) -> "TechnologyNode":
        """Return an ideally scaled node (scale factor ``s`` > 1 shrinks).

        With ``full_scaling`` (the paper's section 1 scenario) every
        geometry *and* voltage parameter divides by ``s`` and doping
        multiplies by ``s``.  With ``full_scaling=False`` the voltages
        are kept (constant-voltage scaling).
        """
        check_positive("s", s)
        voltage_div = s if full_scaling else 1.0
        return dataclasses.replace(
            self,
            name=name or f"{self.name}/s={s:g}",
            feature_size=self.feature_size / s,
            vdd=self.vdd / voltage_div,
            vth=self.vth / voltage_div,
            tox=self.tox / s,
            wire_pitch=self.wire_pitch / s,
            channel_doping=self.channel_doping * s,
            avt=self.avt / s,
            junction_depth=self.junction_depth / s,
        )

    def to_dict(self) -> Dict[str, float]:
        """All constructor fields as a plain dictionary.

        Round-trips through :meth:`from_dict`; the JSON-friendly
        interchange format for custom (user-measured) node data.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "TechnologyNode":
        """Construct a node from :meth:`to_dict` output (or hand-
        written JSON); unknown keys are rejected loudly."""
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - field_names
        if unknown:
            raise ModelDomainError(
                f"unknown node parameters: {sorted(unknown)}")
        return cls(**data)

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        import json
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TechnologyNode":
        """Deserialize from :meth:`to_json` output."""
        import json
        return cls.from_dict(json.loads(text))

    def summary(self) -> Dict[str, float]:
        """Return the headline parameters as a plain dictionary."""
        return {
            "feature_size_nm": self.feature_size * 1e9,
            "vdd_V": self.vdd,
            "vth_V": self.vth,
            "tox_nm": self.tox * 1e9,
            "wire_pitch_nm": self.wire_pitch * 1e9,
            "overdrive_V": self.overdrive,
            "cox_fF_per_um2": self.cox * 1e15 / 1e12,
            "sigma_vt_min_mV": self.sigma_vt_min_device * 1e3,
            "dibl_mV_per_V": self.dibl * 1e3,
            "body_factor": self.body_factor,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TechnologyNode({self.name}: L={self.feature_size*1e9:.0f}nm"
                f" VDD={self.vdd:.2f}V VT={self.vth:.2f}V"
                f" tox={self.tox*1e9:.2f}nm)")
