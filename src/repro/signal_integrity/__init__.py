"""Mixed-signal signal integrity: crosstalk, supply bounce, VCO spurs."""

from .vco import (
    Spectrum,
    SpurReport,
    VcoModel,
    spectrum_of,
    synthetic_clock_noise,
    vco_spur_experiment,
)
from .coupling import (
    SupplyRail,
    capacitive_crosstalk_ratio,
    crosstalk_trend,
    inductive_coupling_voltage,
    simultaneous_switching_noise,
    supply_bounce,
)
from .emissions import (
    CELLULAR_MASK,
    WLAN_MASK,
    ComplianceReport,
    EmissionMask,
    check_spurs,
    compliance_sweep,
    max_tolerable_noise,
    required_isolation_db,
)
from .phase_noise import (
    LeesonParameters,
    leeson_phase_noise,
    phase_noise_profile,
    rms_jitter,
    substrate_noise_psd_from_waveform,
    substrate_phase_noise,
    total_phase_noise,
)
from .metrics import (
    comparison_report,
    correlation,
    peak_to_peak,
    pointwise_nrmse,
    relative_p2p_error,
    relative_rms_error,
    rms,
)

__all__ = [
    "Spectrum", "SpurReport", "VcoModel", "spectrum_of",
    "synthetic_clock_noise", "vco_spur_experiment",
    "SupplyRail", "capacitive_crosstalk_ratio", "crosstalk_trend",
    "inductive_coupling_voltage", "simultaneous_switching_noise",
    "supply_bounce",
    "CELLULAR_MASK", "WLAN_MASK", "ComplianceReport", "EmissionMask",
    "check_spurs", "compliance_sweep", "max_tolerable_noise",
    "required_isolation_db",
    "LeesonParameters", "leeson_phase_noise", "phase_noise_profile",
    "rms_jitter", "substrate_noise_psd_from_waveform",
    "substrate_phase_noise", "total_phase_noise",
    "comparison_report", "correlation", "peak_to_peak",
    "pointwise_nrmse", "relative_p2p_error", "relative_rms_error", "rms",
]
