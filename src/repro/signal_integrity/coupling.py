"""Crosstalk and supply-coupling models (section 4.3's inventory).

The paper lists the mixed-signal interaction channels: "capacitive or
(at higher frequencies) inductive crosstalk, supply line or substrate
couplings, thermal interactions, coupling through the package".
Substrate coupling lives in :mod:`repro.substrate`; this module covers
the wire-to-wire and supply-rail channels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..technology.node import TechnologyNode
from ..interconnect.wire import WireGeometry, capacitance_per_length
from ..core.constants import EPSILON_0
from ..robust.errors import ModelDomainError


def capacitive_crosstalk_ratio(geom: WireGeometry,
                               victim_ground_cap: float = 0.0,
                               length: float = 1e-3) -> float:
    """Peak victim glitch as a fraction of the aggressor swing.

    Charge-sharing between the coupling capacitance C_c and the
    victim's total grounded capacitance: V_victim/V_aggressor =
    C_c / (C_c + C_gnd).
    """
    eps = geom.dielectric_k * EPSILON_0
    c_couple = eps * geom.thickness / geom.spacing * length
    c_ground = (2.0 * eps * geom.width / geom.pitch + eps) * length \
        + victim_ground_cap
    return c_couple / (c_couple + c_ground)


def crosstalk_trend(nodes: Sequence[TechnologyNode],
                    length: float = 1e-3) -> List[Dict[str, float]]:
    """Crosstalk ratio per node at minimum pitch.

    Grows with scaling as the aspect ratio rises (taller, closer
    wires) -- a digital noise-margin threat and an analog-on-SoC one.
    """
    rows = []
    for node in nodes:
        geom = WireGeometry.for_node(node, 1)
        rows.append({
            "node": node.name,
            "pitch_nm": geom.pitch * 1e9,
            "crosstalk_ratio": capacitive_crosstalk_ratio(geom,
                                                          length=length),
        })
    return rows


def inductive_coupling_voltage(di_dt: float,
                               mutual_inductance: float = 1e-9) -> float:
    """Induced victim voltage [V] = M * di/dt.

    ``mutual_inductance`` defaults to 1 nH (adjacent package bond
    wires); relevant "at higher frequencies" per the paper.
    """
    if mutual_inductance < 0:
        raise ModelDomainError("mutual_inductance must be non-negative")
    return mutual_inductance * di_dt


@dataclass(frozen=True)
class SupplyRail:
    """Power-delivery parasitics of one supply domain."""

    resistance: float = 0.5        # ohm (rail + package)
    inductance: float = 2e-9       # H (bond wire + lead)
    decoupling: float = 1e-9       # F (on-chip decap)


def supply_bounce(rail: SupplyRail, peak_current: float,
                  rise_time: float) -> Dict[str, float]:
    """Ground/supply bounce of a switching event [V].

    L*di/dt plus IR drop, with the on-chip decap limiting the bounce
    to the charge-sharing value when it is large enough.
    """
    if peak_current < 0 or rise_time <= 0:
        raise ModelDomainError("bad event parameters")
    ldidt = rail.inductance * peak_current / rise_time
    ir = rail.resistance * peak_current
    # Decap limit: the charge drawn during the edge comes off the
    # decap, sagging it by Q/C.
    charge = 0.5 * peak_current * rise_time
    decap_limit = charge / rail.decoupling if rail.decoupling > 0 \
        else float("inf")
    bounce = min(ldidt + ir, decap_limit + ir)
    return {
        "l_didt_V": ldidt,
        "ir_drop_V": ir,
        "decap_limited_V": decap_limit,
        "bounce_V": bounce,
    }


def simultaneous_switching_noise(node: TechnologyNode, n_drivers: int,
                                 rail: SupplyRail = SupplyRail(),
                                 load_per_driver: float = 50e-15
                                 ) -> Dict[str, float]:
    """SSN of ``n_drivers`` switching together in ``node``.

    The classic output-buffer analysis: peak current per driver
    ~ C*V/t_r with t_r ~ 4 FO4.
    """
    if n_drivers < 1:
        raise ModelDomainError("n_drivers must be >= 1")
    from ..digital.delay import fo4_delay_model
    rise_time = 4.0 * fo4_delay_model(node).delay()
    peak_per_driver = load_per_driver * node.vdd / rise_time
    result = supply_bounce(rail, n_drivers * peak_per_driver, rise_time)
    result["peak_current_A"] = n_drivers * peak_per_driver
    result["bounce_fraction_of_vdd"] = result["bounce_V"] / node.vdd
    return result
