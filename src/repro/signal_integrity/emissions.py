"""Out-of-band emission analysis (the paper's Fig. 9 consequence).

The paper's worry is regulatory: substrate-induced VCO spurs "may
cause conflicts with out-of-band emission requirements".  This module
closes that loop: emission masks, spur-versus-mask verdicts, and the
maximum tolerable substrate noise / required isolation for a given
mask -- the design-facing numbers a mixed-signal integrator needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .vco import SpurReport, VcoModel
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class EmissionMask:
    """A transmit emission mask: limits vs frequency offset.

    ``segments`` maps (offset_low, offset_high) [Hz] to the allowed
    level [dBc] in that band.  Offsets are absolute values.
    """

    name: str
    segments: Tuple[Tuple[float, float, float], ...]

    def limit_at(self, offset: float) -> float:
        """Allowed spur level [dBc] at ``offset`` [Hz] from carrier."""
        offset = abs(offset)
        for low, high, level in self.segments:
            if low <= offset < high:
                return level
        return -math.inf   # outside all bands: nothing allowed

    def margin(self, offset: float, spur_dbc: float) -> float:
        """Mask margin [dB]: positive = compliant."""
        return self.limit_at(offset) - spur_dbc


#: A WLAN-era 2.4 GHz transmit-mask-like profile (simplified).
WLAN_MASK = EmissionMask(
    name="wlan-2.4GHz-like",
    segments=(
        (0.0, 11e6, 0.0),          # in-band
        (11e6, 20e6, -30.0),
        (20e6, 30e6, -40.0),
        (30e6, 1e12, -50.0),
    ),
)

#: A stricter cellular-like mask.
CELLULAR_MASK = EmissionMask(
    name="cellular-like",
    segments=(
        (0.0, 2.5e6, 0.0),
        (2.5e6, 10e6, -45.0),
        (10e6, 1e12, -60.0),
    ),
)


@dataclass(frozen=True)
class ComplianceReport:
    """Spur-vs-mask verdict for one VCO/noise combination."""

    mask_name: str
    spur_offset: float
    spur_dbc: float
    limit_dbc: float

    @property
    def margin_db(self) -> float:
        """Positive = compliant."""
        return self.limit_dbc - self.spur_dbc

    @property
    def compliant(self) -> bool:
        """True when the spur fits under the mask."""
        return self.margin_db >= 0.0


def check_spurs(report: SpurReport,
                mask: EmissionMask = WLAN_MASK) -> ComplianceReport:
    """Check a Fig. 9 spur report against an emission mask."""
    worst = report.worst_spur_dbc
    return ComplianceReport(
        mask_name=mask.name,
        spur_offset=report.clock_frequency,
        spur_dbc=worst,
        limit_dbc=mask.limit_at(report.clock_frequency),
    )


def max_tolerable_noise(vco: VcoModel, offset: float,
                        mask: EmissionMask = WLAN_MASK,
                        margin_db: float = 6.0) -> float:
    """Max sinusoidal substrate amplitude [V] keeping the spur under
    the mask with ``margin_db`` to spare.

    Inverts the narrowband-FM spur formula: spur = 20*log10(K*A/(2f)).
    """
    if offset <= 0:
        raise ModelDomainError("offset must be positive")
    allowed = mask.limit_at(offset) - margin_db
    if math.isinf(allowed):
        return 0.0
    beta_over_2 = 10.0 ** (allowed / 20.0)
    return 2.0 * beta_over_2 * offset / vco.substrate_sensitivity


def required_isolation_db(actual_noise: float, vco: VcoModel,
                          offset: float,
                          mask: EmissionMask = WLAN_MASK,
                          margin_db: float = 6.0) -> float:
    """Extra substrate isolation [dB] needed for mask compliance.

    0 when the design already complies; the number a floorplanner
    must find through guard rings, separate grounds, or distance.
    """
    if actual_noise < 0:
        raise ModelDomainError("actual_noise must be non-negative")
    tolerable = max_tolerable_noise(vco, offset, mask, margin_db)
    if tolerable <= 0:
        return math.inf
    if actual_noise <= tolerable:
        return 0.0
    return 20.0 * math.log10(actual_noise / tolerable)


def compliance_sweep(vco: VcoModel, noise_amplitudes: Sequence[float],
                     offset: float,
                     mask: EmissionMask = WLAN_MASK
                     ) -> List[Dict[str, float]]:
    """Spur level and mask margin vs substrate noise amplitude."""
    rows = []
    for amplitude in noise_amplitudes:
        spur = vco.analytic_spur_level(amplitude, offset)
        rows.append({
            "noise_mV": amplitude * 1e3,
            "spur_dbc": spur,
            "limit_dbc": mask.limit_at(offset),
            "margin_db": mask.limit_at(offset) - spur,
        })
    return rows
