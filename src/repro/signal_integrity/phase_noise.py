"""Oscillator phase noise and substrate-induced jitter.

Completes the Fig. 9 picture: beyond discrete spurs, substrate noise
raises the VCO's phase-noise floor and closes timing budgets.  Leeson's
model provides the intrinsic phase noise; the substrate contribution
converts the noise PSD at the tuning/substrate port through K_sub into
phase fluctuations; jitter integrates the sum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.constants import BOLTZMANN, kt_energy
from .vco import VcoModel
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class LeesonParameters:
    """Leeson-model description of an LC oscillator.

    Parameters
    ----------
    loaded_q:
        Loaded tank quality factor.
    signal_power:
        Carrier power at the tank [W].
    noise_factor:
        Amplifier excess-noise factor F.
    corner_frequency:
        1/f^3 corner [Hz] (flicker upconversion).
    """

    loaded_q: float = 10.0
    signal_power: float = 1e-3
    noise_factor: float = 4.0
    corner_frequency: float = 100e3

    def __post_init__(self) -> None:
        if min(self.loaded_q, self.signal_power,
               self.noise_factor) <= 0:
            raise ModelDomainError("Leeson parameters must be positive")


def leeson_phase_noise(params: LeesonParameters, carrier: float,
                       offset: float,
                       temperature: float = 300.0) -> float:
    """Leeson phase noise L(f_m) [dBc/Hz] at ``offset`` from carrier.

    L(f) = 10 log10( (2FkT/P) * (1 + (f0/(2Q f))^2) * (1 + fc/f) / 2 ).
    """
    if carrier <= 0 or offset <= 0:
        raise ModelDomainError("carrier and offset must be positive")
    thermal = (2.0 * params.noise_factor * kt_energy(temperature)
               / params.signal_power)
    resonator = 1.0 + (carrier / (2.0 * params.loaded_q * offset)) ** 2
    flicker = 1.0 + params.corner_frequency / offset
    return 10.0 * math.log10(thermal * resonator * flicker / 2.0)


def substrate_phase_noise(vco: VcoModel, noise_psd: float,
                          offset: float) -> float:
    """Phase noise [dBc/Hz] from substrate noise with PSD
    ``noise_psd`` [V^2/Hz] at ``offset``.

    Narrowband FM: L(f) = 10 log10( (K_sub^2 * S_v(f)) / (2 f^2) ).
    """
    if noise_psd < 0 or offset <= 0:
        raise ModelDomainError("bad substrate-noise parameters")
    if noise_psd == 0:
        return -math.inf
    return 10.0 * math.log10(
        vco.substrate_sensitivity ** 2 * noise_psd
        / (2.0 * offset ** 2))


def total_phase_noise(params: LeesonParameters, vco: VcoModel,
                      noise_psd: float, offset: float,
                      temperature: float = 300.0) -> float:
    """Power sum of intrinsic and substrate phase noise [dBc/Hz]."""
    intrinsic = leeson_phase_noise(params, vco.center_frequency,
                                   offset, temperature)
    substrate = substrate_phase_noise(vco, noise_psd, offset)
    linear = 10.0 ** (intrinsic / 10.0)
    if not math.isinf(substrate):
        linear += 10.0 ** (substrate / 10.0)
    return 10.0 * math.log10(linear)


def phase_noise_profile(params: LeesonParameters, vco: VcoModel,
                        noise_psd: float,
                        offsets: Sequence[float],
                        temperature: float = 300.0
                        ) -> List[Dict[str, float]]:
    """Phase-noise table across offsets, split by contributor."""
    rows = []
    for offset in offsets:
        rows.append({
            "offset_Hz": offset,
            "intrinsic_dbc_hz": leeson_phase_noise(
                params, vco.center_frequency, offset, temperature),
            "substrate_dbc_hz": substrate_phase_noise(
                vco, noise_psd, offset),
            "total_dbc_hz": total_phase_noise(
                params, vco, noise_psd, offset, temperature),
        })
    return rows


def rms_jitter(params: LeesonParameters, vco: VcoModel,
               noise_psd: float,
               band: tuple = (10e3, 40e6),
               temperature: float = 300.0,
               n_points: int = 200) -> float:
    """Integrated RMS jitter [s] over the offset ``band``.

    sigma_t = sqrt(2 * integral L(f) df) / (2 pi f0).
    """
    lo, hi = band
    if lo <= 0 or hi <= lo:
        raise ModelDomainError("band must satisfy 0 < lo < hi")
    offsets = np.geomspace(lo, hi, n_points)
    linear = np.array([
        10.0 ** (total_phase_noise(params, vco, noise_psd,
                                   float(f), temperature) / 10.0)
        for f in offsets])
    integral = float(np.trapezoid(linear, offsets))
    phase_rms = math.sqrt(2.0 * integral)
    return phase_rms / (2.0 * math.pi * vco.center_frequency)


def substrate_noise_psd_from_waveform(voltage: np.ndarray,
                                      dt: float,
                                      offset: float) -> float:
    """Estimate the substrate noise PSD [V^2/Hz] at ``offset``.

    Periodogram of the SWAN waveform, averaged in a one-decade band
    around the requested offset.
    """
    if dt <= 0 or offset <= 0:
        raise ModelDomainError("dt and offset must be positive")
    voltage = np.asarray(voltage, dtype=float)
    if voltage.size < 16:
        raise ModelDomainError("waveform too short for a PSD estimate")
    window = np.hanning(voltage.size)
    spectrum = np.fft.rfft((voltage - voltage.mean()) * window)
    # One-sided PSD with window power compensation.
    psd = (2.0 * dt * np.abs(spectrum) ** 2
           / np.sum(window ** 2))
    freqs = np.fft.rfftfreq(voltage.size, dt)
    mask = (freqs > offset / 3.0) & (freqs < offset * 3.0)
    if not mask.any():
        raise ModelDomainError(
            f"offset {offset:g} Hz outside the waveform bandwidth")
    return float(psd[mask].mean())
