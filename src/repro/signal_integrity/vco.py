"""VCO spur analysis: Fig. 9 of the paper.

The paper's example: a 2.3 GHz VCO integrated with a 250 kgate digital
block clocked at 13 MHz; substrate noise frequency-modulates the VCO
and "the digital clock is visible as FM modulation around the VCO
frequency", threatening out-of-band emission masks.

A behavioural VCO integrates its phase over a substrate-noise
waveform; the spectrum is estimated by FFT, and the narrowband-FM
spur level is cross-checked against the analytic prediction

    spur [dBc] = 20*log10(K_vco * A_m / (2 * f_m))

for a sinusoidal disturbance of amplitude A_m at offset f_m.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..substrate.swan import NoiseWaveform
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class VcoModel:
    """Behavioural VCO with substrate sensitivity.

    Parameters
    ----------
    center_frequency:
        Free-running frequency [Hz] (2.3 GHz in the paper).
    substrate_sensitivity:
        Frequency pushing K_sub [Hz/V]: how far substrate-node voltage
        pulls the oscillation frequency.  Tens of MHz/V is typical for
        an unshielded LC tank.
    amplitude:
        Output amplitude [V].
    """

    center_frequency: float = 2.3e9
    substrate_sensitivity: float = 20e6
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        if self.center_frequency <= 0:
            raise ModelDomainError("center_frequency must be positive")

    def waveform(self, noise: NoiseWaveform,
                 sample_rate: Optional[float] = None
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """VCO output [V] over the noise waveform's time span.

        Phase is the cumulative integral of f0 + K_sub * v_noise(t).
        ``sample_rate`` defaults to 16 samples per carrier cycle.
        """
        if sample_rate is None:
            sample_rate = 16.0 * self.center_frequency
        duration = float(noise.time[-1] - noise.time[0])
        n_samples = int(duration * sample_rate)
        time = noise.time[0] + np.arange(n_samples) / sample_rate
        v_noise = np.interp(time, noise.time, noise.voltage)
        instantaneous = (self.center_frequency
                         + self.substrate_sensitivity * v_noise)
        phase = 2.0 * math.pi * np.cumsum(instantaneous) / sample_rate
        return time, self.amplitude * np.cos(phase)

    def analytic_spur_level(self, disturbance_amplitude: float,
                            offset_frequency: float) -> float:
        """Narrowband-FM spur level [dBc] for a sinusoidal disturbance.

        beta = K_sub*A_m/f_m; spur = 20*log10(beta/2) for beta << 1.
        """
        if offset_frequency <= 0:
            raise ModelDomainError("offset_frequency must be positive")
        beta = (self.substrate_sensitivity * disturbance_amplitude
                / offset_frequency)
        return 20.0 * math.log10(max(beta / 2.0, 1e-30))


@dataclass
class Spectrum:
    """One-sided power spectrum in dBc (carrier-referred)."""

    frequency: np.ndarray   # Hz
    power_dbc: np.ndarray

    def level_at(self, frequency: float,
                 tolerance: Optional[float] = None) -> float:
        """Peak level [dBc] within ``tolerance`` of ``frequency``."""
        if tolerance is None:
            tolerance = 2.0 * (self.frequency[1] - self.frequency[0])
        mask = np.abs(self.frequency - frequency) <= tolerance
        if not mask.any():
            raise ModelDomainError(
                f"no spectrum bins within {tolerance} of {frequency}")
        return float(self.power_dbc[mask].max())

    def carrier_frequency(self) -> float:
        """Frequency of the strongest bin."""
        return float(self.frequency[int(np.argmax(self.power_dbc))])


def spectrum_of(time: np.ndarray, signal: np.ndarray) -> Spectrum:
    """Windowed FFT power spectrum, normalized to the carrier."""
    if time.size != signal.size or time.size < 16:
        raise ModelDomainError("need matching time/signal arrays, >= 16 points")
    dt = float(time[1] - time[0])
    window = np.hanning(signal.size)
    spectrum = np.fft.rfft(signal * window)
    power = np.abs(spectrum) ** 2
    power /= power.max()
    frequency = np.fft.rfftfreq(signal.size, dt)
    return Spectrum(frequency=frequency,
                    power_dbc=10.0 * np.log10(np.maximum(power, 1e-30)))


@dataclass(frozen=True)
class SpurReport:
    """Fig. 9 result: carrier and clock-offset spur levels."""

    carrier_frequency: float
    clock_frequency: float
    upper_spur_dbc: float
    lower_spur_dbc: float
    analytic_spur_dbc: float

    @property
    def worst_spur_dbc(self) -> float:
        """The higher of the two sideband spurs."""
        return max(self.upper_spur_dbc, self.lower_spur_dbc)


def vco_spur_experiment(vco: VcoModel, noise: NoiseWaveform,
                        clock_frequency: float) -> SpurReport:
    """Run the Fig. 9 experiment: spurs at +/- f_clk around the VCO.

    ``noise`` should contain the periodic substrate disturbance at
    ``clock_frequency`` (e.g. a SWAN waveform of the digital block).
    """
    if clock_frequency <= 0:
        raise ModelDomainError("clock_frequency must be positive")
    time, signal = vco.waveform(noise)
    spectrum = spectrum_of(time, signal)
    carrier = spectrum.carrier_frequency()
    # Fundamental of the periodic noise drives the first FM sideband.
    fundamental = _fundamental_amplitude(noise, clock_frequency)
    return SpurReport(
        carrier_frequency=carrier,
        clock_frequency=clock_frequency,
        upper_spur_dbc=spectrum.level_at(carrier + clock_frequency),
        lower_spur_dbc=spectrum.level_at(carrier - clock_frequency),
        analytic_spur_dbc=vco.analytic_spur_level(
            fundamental, clock_frequency),
    )


def _fundamental_amplitude(noise: NoiseWaveform,
                           frequency: float) -> float:
    """Amplitude [V] of the noise's component at ``frequency``."""
    duration = float(noise.time[-1] - noise.time[0])
    n_periods = max(int(duration * frequency), 1)
    # Trim to an integer number of periods for a clean projection.
    t_end = noise.time[0] + n_periods / frequency
    mask = noise.time <= t_end
    t = noise.time[mask]
    v = noise.voltage[mask]
    omega = 2.0 * math.pi * frequency
    span = float(t[-1] - t[0])
    cos_part = 2.0 * float(
        np.trapezoid(v * np.cos(omega * t), t)) / span
    sin_part = 2.0 * float(
        np.trapezoid(v * np.sin(omega * t), t)) / span
    return float(math.hypot(cos_part, sin_part))


def synthetic_clock_noise(clock_frequency: float, duration: float,
                          amplitude: float = 1e-3,
                          pulse_width: Optional[float] = None,
                          dt: Optional[float] = None) -> NoiseWaveform:
    """Synthetic periodic substrate noise: one spike per clock edge.

    A convenient stand-in for a full SWAN run when only the Fig. 9
    modulation mechanism is being studied.
    """
    if clock_frequency <= 0 or duration <= 0:
        raise ModelDomainError("clock_frequency and duration must be positive")
    if dt is None:
        dt = 1.0 / (clock_frequency * 200.0)
    if pulse_width is None:
        pulse_width = 10.0 * dt
    time = np.arange(0.0, duration, dt)
    phase = np.mod(time, 1.0 / clock_frequency)
    voltage = amplitude * np.exp(-phase / pulse_width)
    return NoiseWaveform(time=time, voltage=voltage)
