"""Waveform-comparison metrics used by the SWAN and VCO experiments."""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from ..substrate.swan import NoiseWaveform
from ..robust.errors import ModelDomainError


def rms(waveform: NoiseWaveform) -> float:
    """RMS value [V]."""
    return waveform.rms


def peak_to_peak(waveform: NoiseWaveform) -> float:
    """Peak-to-peak value [V]."""
    return waveform.peak_to_peak


def relative_rms_error(test: NoiseWaveform,
                       reference: NoiseWaveform) -> float:
    """|RMS_test - RMS_ref| / RMS_ref (the Fig. 10 RMS metric)."""
    ref = reference.rms
    if ref <= 0:
        raise ModelDomainError("reference waveform has zero RMS")
    return abs(test.rms - ref) / ref


def relative_p2p_error(test: NoiseWaveform,
                       reference: NoiseWaveform) -> float:
    """|P2P_test - P2P_ref| / P2P_ref (the Fig. 10 p2p metric)."""
    ref = reference.peak_to_peak
    if ref <= 0:
        raise ModelDomainError("reference waveform has zero peak-to-peak")
    return abs(test.peak_to_peak - ref) / ref


def pointwise_nrmse(test: NoiseWaveform,
                    reference: NoiseWaveform) -> float:
    """Point-by-point normalized RMS difference.

    Stricter than the Fig. 10 aggregate metrics: sensitive to shape
    and timing, not just energy.
    """
    resampled = test.resampled(reference.time)
    diff = resampled.voltage - reference.voltage
    ref_rms = reference.rms
    if ref_rms <= 0:
        raise ModelDomainError("reference waveform has zero RMS")
    return float(np.sqrt(np.mean(diff ** 2)) / ref_rms)


def correlation(test: NoiseWaveform, reference: NoiseWaveform) -> float:
    """Pearson correlation of the two waveforms."""
    resampled = test.resampled(reference.time)
    a = resampled.voltage - resampled.voltage.mean()
    b = reference.voltage - reference.voltage.mean()
    denom = math.sqrt(float(np.sum(a ** 2)) * float(np.sum(b ** 2)))
    if denom == 0:
        return 0.0
    return float(np.sum(a * b) / denom)


def comparison_report(test: NoiseWaveform,
                      reference: NoiseWaveform) -> Dict[str, float]:
    """All metrics in one dictionary."""
    return {
        "test_rms_mV": test.rms * 1e3,
        "reference_rms_mV": reference.rms * 1e3,
        "test_p2p_mV": test.peak_to_peak * 1e3,
        "reference_p2p_mV": reference.peak_to_peak * 1e3,
        "rms_error": relative_rms_error(test, reference),
        "p2p_error": relative_p2p_error(test, reference),
        "pointwise_nrmse": pointwise_nrmse(test, reference),
        "correlation": correlation(test, reference),
    }
