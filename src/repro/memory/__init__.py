"""Embedded memory models: 6T SRAM cell and array analysis."""

from .sram import (
    SramCell,
    SramCellDesign,
    cell_failure_probability,
    snm_trend,
    snm_under_mismatch,
)
from .array import ArraySpec, SramArray, array_trend
from .sense_amp import (
    SenseAmp,
    offset_compensation_benefit,
    read_access_with_offset,
    sense_margin_trend,
)
from .lowpower import (
    RetentionResult,
    body_bias_retention,
    drowsy_mode,
    minimum_retention_voltage,
    power_gate_array,
    retention_techniques_trend,
)

__all__ = [
    "SramCell", "SramCellDesign", "cell_failure_probability",
    "snm_trend", "snm_under_mismatch",
    "ArraySpec", "SramArray", "array_trend",
    "SenseAmp", "offset_compensation_benefit",
    "read_access_with_offset", "sense_margin_trend",
    "RetentionResult", "body_bias_retention", "drowsy_mode",
    "minimum_retention_voltage", "power_gate_array",
    "retention_techniques_trend",
]
