"""Sense-amplifier offset: where SRAM speed meets variability.

The read path's other mismatch victim: a latch-type sense amplifier
fires correctly only when the bitline differential exceeds its random
offset.  As sigma_VT grows with scaling, the required bitline swing
(k-sigma of the offset) grows, the cell must discharge the bitline
longer, and read access time inherits the variability tax -- the
memory-speed face of section 2.4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..technology.node import TechnologyNode
from ..variability.pelgrom import sigma_delta_vth
from .array import ArraySpec, SramArray
from .sram import SramCellDesign
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class SenseAmp:
    """A latch-type sense amplifier with Pelgrom-sized offset.

    Parameters
    ----------
    node:
        Technology node.
    input_width / input_length:
        Input-pair device dimensions [m]; the offset knob.
    """

    node: TechnologyNode
    input_width: float
    input_length: float

    def __post_init__(self) -> None:
        if self.input_width < self.node.feature_size \
                or self.input_length < self.node.feature_size:
            raise ModelDomainError("input pair below feature size")

    @property
    def offset_sigma(self) -> float:
        """Input-referred offset sigma [V]."""
        return sigma_delta_vth(self.node, self.input_width,
                               self.input_length)

    def required_swing(self, sigma_level: float = 5.0) -> float:
        """Bitline differential [V] for a ``sigma_level`` sense yield.

        Memory arrays have millions of sense events: 5-6 sigma is the
        working confidence level.
        """
        if sigma_level <= 0:
            raise ModelDomainError("sigma_level must be positive")
        return sigma_level * self.offset_sigma

    def sense_yield(self, swing: float) -> float:
        """Probability one sense fires correctly at ``swing`` [V]."""
        from scipy.stats import norm
        if swing < 0:
            raise ModelDomainError("swing must be non-negative")
        return float(norm.cdf(swing / self.offset_sigma))

    @classmethod
    def sized_for(cls, node: TechnologyNode,
                  area_factor: float = 8.0) -> "SenseAmp":
        """A typical sense amp: input pair ``area_factor`` x minimum."""
        scale = math.sqrt(area_factor)
        return cls(node=node,
                   input_width=2.0 * node.feature_size * scale,
                   input_length=node.feature_size * scale)


def read_access_with_offset(node: TechnologyNode,
                            spec: ArraySpec = ArraySpec(),
                            design: SramCellDesign = SramCellDesign(),
                            sense: Optional[SenseAmp] = None,
                            sigma_level: float = 5.0
                            ) -> Dict[str, float]:
    """Read access time with the offset-driven swing requirement.

    The bitline must develop ``sigma_level`` sigmas of sense-amp
    offset instead of a fixed 100 mV; everything else follows the
    array model.
    """
    array = SramArray(node, spec, design)
    sense = sense or SenseAmp.sized_for(node)
    swing = sense.required_swing(sigma_level)
    swing_time = array.bitline_swing_time(swing=max(swing, 1e-3))
    access = (array.wordline_delay() + swing_time
              + 0.2 * swing_time)
    return {
        "offset_sigma_mV": sense.offset_sigma * 1e3,
        "required_swing_mV": swing * 1e3,
        "swing_time_ns": swing_time * 1e9,
        "access_time_ns": access * 1e9,
    }


def sense_margin_trend(nodes: Sequence[TechnologyNode],
                       sigma_level: float = 5.0
                       ) -> List[Dict[str, float]]:
    """Required swing as a fraction of V_DD per node.

    Both jaws of the vise close together: sigma grows while V_DD
    (hence the maximum available differential) shrinks.
    """
    rows = []
    for node in nodes:
        sense = SenseAmp.sized_for(node)
        swing = sense.required_swing(sigma_level)
        rows.append({
            "node": node.name,
            "offset_sigma_mV": sense.offset_sigma * 1e3,
            "required_swing_mV": swing * 1e3,
            "swing_over_vdd": swing / node.vdd,
        })
    return rows


def offset_compensation_benefit(node: TechnologyNode,
                                area_factors: Sequence[float] =
                                (1, 4, 16),
                                sigma_level: float = 5.0
                                ) -> List[Dict[str, float]]:
    """Upsizing vs offset-cancellation for the sense amplifier.

    Offset cancellation (auto-zeroing) divides the effective offset by
    ~10 at the cost of an extra clock phase -- usually cheaper than
    the 100x area that buys the same 10x sigma reduction.
    """
    rows = []
    for factor in area_factors:
        sense = SenseAmp.sized_for(node, area_factor=factor)
        rows.append({
            "technique": f"area x{factor:g}",
            "required_swing_mV":
                sense.required_swing(sigma_level) * 1e3,
        })
    cancelled = SenseAmp.sized_for(node, area_factor=1.0)
    rows.append({
        "technique": "auto-zeroed (10x offset cut)",
        "required_swing_mV":
            cancelled.required_swing(sigma_level) / 10.0 * 1e3,
    })
    return rows
