"""6T SRAM cell model: stability, leakage and variability.

The paper's abstract singles out "the leakage power and process
variability and their implications for digital circuits *and
memories*".  SRAM is where both bite first: the cell uses near-minimum
devices (maximum mismatch), there are millions of them (worst-case
statistics), and the array leaks constantly (it is never clock-gated).

The model computes the butterfly-curve static noise margin (SNM) from
the compact MOSFET model, read/write margins, per-cell leakage, and
the cell-failure probability under V_T mismatch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import brentq

from ..technology.node import TechnologyNode
from ..devices.mosfet import DeviceType, Mosfet
from ..devices.leakage import device_leakage
from ..robust.rng import resolve_rng
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class SramCellDesign:
    """Transistor sizing of a 6T cell (widths in multiples of L).

    The classic ratios: pull-down strongest (cell ratio ~1.5-2 for
    read stability), access in between, pull-up weakest (pull-up
    ratio < 1 for writability).
    """

    pull_down_ratio: float = 2.0   # driver W/L
    access_ratio: float = 1.2      # pass-gate W/L
    pull_up_ratio: float = 0.8     # PMOS load W/L

    def __post_init__(self) -> None:
        for name in ("pull_down_ratio", "access_ratio", "pull_up_ratio"):
            if getattr(self, name) <= 0:
                raise ModelDomainError(f"{name} must be positive")

    @property
    def cell_ratio(self) -> float:
        """Driver/access strength ratio (read stability knob)."""
        return self.pull_down_ratio / self.access_ratio

    @property
    def pullup_ratio(self) -> float:
        """Pull-up/access strength ratio (writability knob)."""
        return self.pull_up_ratio / self.access_ratio


class SramCell:
    """A 6T SRAM cell in a technology node.

    Parameters
    ----------
    node:
        Technology node.
    design:
        Transistor ratios.
    vth_offsets:
        Optional per-device V_T shifts [V], keys among
        ``pd_l, pd_r, pu_l, pu_r, ax_l, ax_r`` (mismatch injection).
    """

    _DEVICES = ("pd_l", "pd_r", "pu_l", "pu_r", "ax_l", "ax_r")

    def __init__(self, node: TechnologyNode,
                 design: SramCellDesign = SramCellDesign(),
                 vth_offsets: Optional[Dict[str, float]] = None):
        self.node = node
        self.design = design
        self.vth_offsets = dict(vth_offsets or {})
        unknown = set(self.vth_offsets) - set(self._DEVICES)
        if unknown:
            raise ModelDomainError(f"unknown devices in vth_offsets: {unknown}")
        length = node.feature_size

        def offset(key: str) -> float:
            return self.vth_offsets.get(key, 0.0)

        self.pd_l = Mosfet(node, design.pull_down_ratio * length,
                           vth_offset=offset("pd_l"))
        self.pd_r = Mosfet(node, design.pull_down_ratio * length,
                           vth_offset=offset("pd_r"))
        self.pu_l = Mosfet(node, design.pull_up_ratio * length,
                           device_type=DeviceType.PMOS,
                           vth_offset=offset("pu_l"))
        self.pu_r = Mosfet(node, design.pull_up_ratio * length,
                           device_type=DeviceType.PMOS,
                           vth_offset=offset("pu_r"))
        self.ax_l = Mosfet(node, design.access_ratio * length,
                           vth_offset=offset("ax_l"))
        self.ax_r = Mosfet(node, design.access_ratio * length,
                           vth_offset=offset("ax_r"))

    # --- inverter transfer curves ------------------------------------------

    def _inverter_vout(self, vin: float, pull_down: Mosfet,
                       pull_up: Mosfet, access: Optional[Mosfet] = None
                       ) -> float:
        """Output of one cell inverter at input ``vin``.

        With ``access`` given, the pass gate pulls the output toward
        the (precharged-high) bitline -- the read-disturb condition
        that erodes read SNM.
        """
        vdd = self.node.vdd

        def net_current(vout: float) -> float:
            i_down = pull_down.ids(vin, vout)
            i_up = pull_up.ids(vdd - vin, vdd - vout)
            i_ax = access.ids(vdd - vout, vdd - vout) if access else 0.0
            return i_up + i_ax - i_down

        lo, hi = 0.0, vdd
        if net_current(lo) <= 0:
            return 0.0
        if net_current(hi) >= 0:
            return vdd
        return brentq(net_current, lo, hi, xtol=1e-9)

    def _inverter_vout_many(self, vin: np.ndarray, pull_down: Mosfet,
                            pull_up: Mosfet,
                            access: Optional[Mosfet] = None,
                            n_iter: int = 48) -> np.ndarray:
        """Vectorized :meth:`_inverter_vout` over a whole V_in grid.

        Solves every grid point's current balance at once by bisection
        on arrays (the compact model is numpy-vectorized), replacing
        one ``brentq`` call per point.  ``n_iter`` halvings of [0,
        V_DD] reach ~V_DD * 2^-48, well inside the scalar path's
        tolerance.
        """
        vdd = self.node.vdd
        vin = np.asarray(vin, dtype=float)

        def net_current(vout: np.ndarray) -> np.ndarray:
            i_down = pull_down.ids(vin, vout)
            i_up = pull_up.ids(vdd - vin, vdd - vout)
            i_ax = (access.ids(vdd - vout, vdd - vout)
                    if access else 0.0)
            return i_up + i_ax - i_down

        lo = np.zeros_like(vin)
        hi = np.full_like(vin, vdd)
        pinned_low = net_current(lo) <= 0     # output stuck at 0
        pinned_high = net_current(hi) >= 0    # output stuck at VDD
        for _ in range(n_iter):
            mid = 0.5 * (lo + hi)
            pull_up_wins = net_current(mid) > 0
            lo = np.where(pull_up_wins, mid, lo)
            hi = np.where(pull_up_wins, hi, mid)
        out = 0.5 * (lo + hi)
        out = np.where(pinned_low, 0.0, out)
        return np.where(pinned_high, vdd, out)

    def butterfly_curves(self, n_points: int = 101,
                         read_condition: bool = False,
                         vectorized: bool = True
                         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(vin, vtc_left, vtc_right): the two cross-coupled VTCs.

        ``vectorized=False`` falls back to the per-point ``brentq``
        solve -- kept as the numerical oracle for the fast path.
        """
        vdd = self.node.vdd
        vin = np.linspace(0.0, vdd, n_points)
        if vectorized:
            left = self._inverter_vout_many(
                vin, self.pd_l, self.pu_l,
                self.ax_l if read_condition else None)
            right = self._inverter_vout_many(
                vin, self.pd_r, self.pu_r,
                self.ax_r if read_condition else None)
            return vin, left, right
        left = np.array([self._inverter_vout(
            v, self.pd_l, self.pu_l,
            self.ax_l if read_condition else None) for v in vin])
        right = np.array([self._inverter_vout(
            v, self.pd_r, self.pu_r,
            self.ax_r if read_condition else None) for v in vin])
        return vin, left, right

    def static_noise_margin(self, read_condition: bool = False,
                            n_points: int = 101) -> float:
        """Static noise margin [V] of the cross-coupled pair.

        Uses the series-noise-source definition (equivalent to the
        largest butterfly square): with worst-case DC noise VN in
        series with both inverter inputs, the loop map

            g(v) = f2(f1(v + VN) + VN)

        must keep three fixed points (bistability).  The SNM is the
        largest VN for which it does, found by bisection.
        """
        vin, left, right = self.butterfly_curves(n_points, read_condition)
        vdd = self.node.vdd

        def f1(v: np.ndarray) -> np.ndarray:
            return np.interp(np.clip(v, 0.0, vdd), vin, left)

        def f2(v: np.ndarray) -> np.ndarray:
            return np.interp(np.clip(v, 0.0, vdd), vin, right)

        grid = np.linspace(0.0, vdd, 8 * n_points)

        def bistable(noise: float) -> bool:
            loop = f2(f1(grid + noise) + noise) - grid
            signs = np.sign(loop)
            crossings = int(np.count_nonzero(np.diff(signs) != 0))
            return crossings >= 3

        if not bistable(0.0):
            return 0.0
        lo, hi = 0.0, vdd / 2.0
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            if bistable(mid):
                lo = mid
            else:
                hi = mid
        return lo

    # --- margins and leakage ---------------------------------------------------

    def read_snm(self) -> float:
        """SNM with the wordline on (read disturb) [V]."""
        return self.static_noise_margin(read_condition=True)

    def hold_snm(self) -> float:
        """SNM with the cell isolated [V]."""
        return self.static_noise_margin(read_condition=False)

    def write_margin(self) -> float:
        """Write margin [V]: how far below V_DD the internal '1' node
        is dragged with the bitline at 0 -- positive when the cell
        flips (writable)."""
        vdd = self.node.vdd
        # '1' node held by pull-up, attacked through the access device
        # to a grounded bitline.
        def net_current(v_node: float) -> float:
            # Positive = the pull-up wins and the node rises.
            i_up = self.pu_l.ids(vdd, vdd - v_node)      # holds high
            i_ax = self.ax_l.ids(vdd, v_node)            # pulls to BL=0
            return i_up - i_ax

        if net_current(0.0) <= 0:
            v_final = 0.0             # access overwhelms the pull-up
        elif net_current(vdd) >= 0:
            v_final = vdd             # pull-up never loses: unwritable
        else:
            v_final = brentq(net_current, 0.0, vdd, xtol=1e-9)
        # Writable when the node is dragged below the trip point
        # (~VDD/2); the margin is the distance below it.
        return vdd / 2.0 - v_final

    def leakage_current(self) -> float:
        """Static leakage of the cell [A] (both sides, worst state)."""
        length = self.node.feature_size
        off_devices = [
            device_leakage(self.node, self.design.pull_down_ratio * length),
            device_leakage(self.node, self.design.pull_up_ratio * length),
            device_leakage(self.node, self.design.access_ratio * length),
        ]
        return sum(budget.total for budget in off_devices)

    def area(self) -> float:
        """Cell footprint [m^2]; ~120 F^2, the historical 6T density."""
        f = self.node.feature_size
        return 120.0 * f ** 2


def snm_under_mismatch(node: TechnologyNode,
                       design: SramCellDesign = SramCellDesign(),
                       n_samples: int = 200,
                       read_condition: bool = True,
                       seed: Optional[int] = None) -> np.ndarray:
    """MC distribution of (read) SNM under Pelgrom V_T mismatch [V]."""
    rng = resolve_rng(seed=seed)
    length = node.feature_size
    widths = {
        "pd_l": design.pull_down_ratio * length,
        "pd_r": design.pull_down_ratio * length,
        "pu_l": design.pull_up_ratio * length,
        "pu_r": design.pull_up_ratio * length,
        "ax_l": design.access_ratio * length,
        "ax_r": design.access_ratio * length,
    }
    names = list(widths)
    sigmas = np.array([node.avt / math.sqrt(w * length)
                       for w in widths.values()])
    # One batched draw for all samples x devices; row-major fill makes
    # this bit-for-bit the per-sample, per-device scalar loop.
    offsets_batch = rng.normal(0.0, sigmas, size=(n_samples, len(names)))
    samples = np.empty(n_samples)
    for i in range(n_samples):
        offsets = dict(zip(names, offsets_batch[i]))
        cell = SramCell(node, design, offsets)
        samples[i] = cell.static_noise_margin(
            read_condition=read_condition, n_points=41)
    return samples


def cell_failure_probability(node: TechnologyNode,
                             design: SramCellDesign = SramCellDesign(),
                             snm_floor: Optional[float] = None,
                             n_samples: int = 200,
                             seed: Optional[int] = None
                             ) -> Dict[str, float]:
    """Probability that a cell's read SNM falls below ``snm_floor``.

    Fits a Gaussian to the MC SNM sample (the standard extrapolation,
    since direct MC cannot reach the 10^-9 failure rates arrays need)
    and reports the implied sigma-level.  ``snm_floor`` defaults to
    5 % of V_DD (sense-margin requirement).
    """
    from scipy.stats import norm
    snm_floor = snm_floor if snm_floor is not None else 0.05 * node.vdd
    samples = snm_under_mismatch(node, design, n_samples,
                                 read_condition=True, seed=seed)
    mu, sigma = float(samples.mean()), float(samples.std(ddof=1))
    if sigma <= 0:
        return {"mean_snm_V": mu, "sigma_snm_V": 0.0,
                "fail_probability": 0.0, "sigma_level": float("inf")}
    level = (mu - snm_floor) / sigma
    return {
        "mean_snm_V": mu,
        "sigma_snm_V": sigma,
        "fail_probability": float(norm.cdf(-level)),
        "sigma_level": level,
    }


def snm_trend(nodes: Sequence[TechnologyNode],
              design: SramCellDesign = SramCellDesign()
              ) -> List[Dict[str, float]]:
    """Nominal hold/read SNM and cell leakage per node.

    The paper's memory claim in table form: margins shrink with V_DD
    while mismatch grows, and leakage per cell explodes.
    """
    rows = []
    for node in nodes:
        cell = SramCell(node, design)
        rows.append({
            "node": node.name,
            "vdd_V": node.vdd,
            "hold_snm_mV": cell.hold_snm() * 1e3,
            "read_snm_mV": cell.read_snm() * 1e3,
            "cell_leakage_pA": cell.leakage_current() * 1e12,
            "sigma_vt_access_mV": node.sigma_vt(
                design.access_ratio * node.feature_size) * 1e3,
        })
    return rows
