"""SRAM array model: access time, leakage and yield at the macro level."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..technology.node import TechnologyNode
from ..interconnect.wire import WireGeometry, capacitance_per_length, \
    resistance_per_length
from .sram import SramCell, SramCellDesign, cell_failure_probability
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class ArraySpec:
    """Organization of one SRAM macro."""

    n_rows: int = 256
    n_cols: int = 128
    column_mux: int = 4

    def __post_init__(self) -> None:
        if self.n_rows < 1 or self.n_cols < 1 or self.column_mux < 1:
            raise ModelDomainError("array dimensions must be positive")
        if self.n_cols % self.column_mux:
            raise ModelDomainError("n_cols must be divisible by column_mux")

    @property
    def capacity_bits(self) -> int:
        """Total storage [bits]."""
        return self.n_rows * self.n_cols

    @property
    def word_bits(self) -> int:
        """Bits per accessed word."""
        return self.n_cols // self.column_mux


class SramArray:
    """An SRAM macro: cells plus bitline/wordline electrical models."""

    def __init__(self, node: TechnologyNode,
                 spec: ArraySpec = ArraySpec(),
                 design: SramCellDesign = SramCellDesign()):
        self.node = node
        self.spec = spec
        self.design = design
        self.cell = SramCell(node, design)

    @property
    def cell_height(self) -> float:
        """Cell pitch along the bitline [m]."""
        return math.sqrt(self.cell.area() / 2.0)

    @property
    def cell_width(self) -> float:
        """Cell pitch along the wordline [m]."""
        return 2.0 * self.cell_height

    def bitline_capacitance(self) -> float:
        """One bitline's capacitance [F]: wire + access-drain junctions."""
        geom = WireGeometry.for_node(self.node, layer=2)
        length = self.spec.n_rows * self.cell_height
        wire = capacitance_per_length(geom) * length
        from ..devices.capacitance import junction_capacitance
        junctions = self.spec.n_rows * junction_capacitance(
            self.node, self.design.access_ratio * self.node.feature_size)
        return wire + junctions

    def wordline_delay(self) -> float:
        """Wordline RC delay across the row [s]."""
        geom = WireGeometry.for_node(self.node, layer=1)
        length = self.spec.n_cols * self.cell_width
        r = resistance_per_length(geom)
        c = capacitance_per_length(geom)
        from ..devices.capacitance import device_capacitances
        gate_load = self.spec.n_cols * device_capacitances(
            self.node,
            self.design.access_ratio * self.node.feature_size
        ).input_capacitance
        return 0.5 * r * length * (c * length + 2.0 * gate_load)

    def bitline_swing_time(self, swing: float = 0.1) -> float:
        """Time for the cell to pull ``swing`` volts of bitline [s].

        t = C_BL * dV / I_cell with the read current through the
        access + pull-down stack (conservatively the weaker access
        device's saturation current).
        """
        if swing <= 0:
            raise ModelDomainError("swing must be positive")
        read_current = self.cell.ax_l.ids(self.node.vdd, self.node.vdd / 2)
        if read_current <= 0:
            return float("inf")
        return self.bitline_capacitance() * swing / read_current

    def access_time(self) -> float:
        """Total read access estimate [s]: decode + WL + BL + sense."""
        decode = 4.0 * self.wordline_delay() / self.spec.n_cols * 16
        sense = 0.2 * self.bitline_swing_time()
        return decode + self.wordline_delay() \
            + self.bitline_swing_time() + sense

    def total_leakage(self) -> float:
        """Array standby leakage [W]."""
        return (self.spec.capacity_bits * self.cell.leakage_current()
                * self.node.vdd)

    def area(self) -> float:
        """Macro area [m^2] with 30 % periphery overhead."""
        return 1.3 * self.spec.capacity_bits * self.cell.area()

    def yield_estimate(self, n_samples: int = 200,
                       seed: Optional[int] = None) -> Dict[str, float]:
        """Array yield from the per-cell SNM failure probability.

        Y = (1 - p_cell)^bits: the million-fold multiplication that
        makes memory the canary of process variability.
        """
        stats = cell_failure_probability(
            self.node, self.design, n_samples=n_samples, seed=seed)
        p = stats["fail_probability"]
        bits = self.spec.capacity_bits
        log_yield = bits * math.log(max(1.0 - p, 1e-300))
        return {
            "cell_fail_probability": p,
            "cell_sigma_level": stats["sigma_level"],
            "array_yield": math.exp(log_yield),
            "capacity_bits": float(bits),
        }


def array_trend(nodes: Sequence[TechnologyNode],
                spec: ArraySpec = ArraySpec()) -> List[Dict[str, float]]:
    """Access time, leakage and density per node for one macro spec."""
    rows = []
    for node in nodes:
        array = SramArray(node, spec)
        rows.append({
            "node": node.name,
            "access_time_ns": array.access_time() * 1e9,
            "leakage_uW": array.total_leakage() * 1e6,
            "area_mm2": array.area() * 1e6,
            "bits_per_mm2": spec.capacity_bits / (array.area() * 1e6),
        })
    return rows
