"""SRAM leakage-reduction techniques: drowsy retention and gating.

The memory face of section 3.2: arrays leak constantly, so the same
technique classes apply -- lowering the retention supply (drowsy
mode), reverse body bias (VTCMOS) and power gating (with data loss).
Each trades leakage against retention safety margin, and each loses
steam with scaling for the same reasons the logic techniques do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.constants import thermal_voltage
from ..technology.node import TechnologyNode
from ..devices.body_bias import vth_with_body_bias
from .sram import SramCell, SramCellDesign
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class RetentionResult:
    """Leakage/stability outcome of one retention technique."""

    technique: str
    node_name: str
    leakage_active: float        # W per cell at nominal VDD
    leakage_retention: float     # W per cell in the low-power state
    hold_snm_retention: float    # V at the retention point
    data_retained: bool

    @property
    def reduction(self) -> float:
        """Active / retention leakage ratio."""
        if self.leakage_retention <= 0:
            return math.inf
        return self.leakage_active / self.leakage_retention


def minimum_retention_voltage(node: TechnologyNode,
                              design: SramCellDesign = SramCellDesign(),
                              snm_floor_fraction: float = 0.1,
                              resolution: float = 0.05) -> float:
    """Lowest V_DD [V] at which the cell still holds its state.

    Sweeps the supply down until the hold SNM falls below
    ``snm_floor_fraction`` of the *nominal* V_DD; the classic data
    retention voltage (DRV) plus margin.
    """
    floor = snm_floor_fraction * node.vdd
    vdd = node.vdd
    while vdd > node.vth + 2.0 * thermal_voltage(node.temperature):
        candidate = node.with_overrides(vdd=vdd,
                                        vth=min(node.vth, 0.8 * vdd))
        cell = SramCell(candidate, design)
        if cell.static_noise_margin(n_points=41) < floor:
            return min(vdd + resolution, node.vdd)
        vdd -= resolution
    return min(vdd + resolution, node.vdd)


def drowsy_mode(node: TechnologyNode,
                design: SramCellDesign = SramCellDesign(),
                retention_vdd: Optional[float] = None
                ) -> RetentionResult:
    """Drowsy retention: drop the array supply to near the DRV.

    Leakage falls through three levers at once: V_DS (DIBL), the
    supply across the leaking device, and gate leakage's steep V
    dependence.
    """
    if retention_vdd is None:
        retention_vdd = 1.1 * minimum_retention_voltage(node, design)
    retention_vdd = min(retention_vdd, node.vdd)
    active_cell = SramCell(node, design)
    drowsy_node = node.with_overrides(
        vdd=retention_vdd, vth=min(node.vth, 0.8 * retention_vdd))
    drowsy_cell = SramCell(drowsy_node, design)
    return RetentionResult(
        technique="drowsy",
        node_name=node.name,
        leakage_active=active_cell.leakage_current() * node.vdd,
        leakage_retention=drowsy_cell.leakage_current() * retention_vdd,
        hold_snm_retention=drowsy_cell.hold_snm(),
        data_retained=drowsy_cell.hold_snm() > 0.05 * node.vdd,
    )


def body_bias_retention(node: TechnologyNode,
                        design: SramCellDesign = SramCellDesign(),
                        vsb: float = 0.5) -> RetentionResult:
    """VTCMOS retention: reverse body bias the whole array.

    Stability is untouched (full V_DD retained) but the reduction is
    capped twice over: by the shrinking body factor (section 3.2),
    and -- at nodes where gate tunnelling rivals subthreshold leakage
    (the 65 nm marker) -- by the gate-leakage floor that body bias
    cannot touch at all.
    """
    active_cell = SramCell(node, design)
    delta = vth_with_body_bias(node, vsb) - node.vth
    biased_node = node.with_overrides(
        vth=min(node.vth + delta, 0.9 * node.vdd))
    biased_cell = SramCell(biased_node, design)
    return RetentionResult(
        technique="body-bias",
        node_name=node.name,
        leakage_active=active_cell.leakage_current() * node.vdd,
        leakage_retention=biased_cell.leakage_current() * node.vdd,
        hold_snm_retention=biased_cell.hold_snm(),
        data_retained=True,
    )


def power_gate_array(node: TechnologyNode,
                     design: SramCellDesign = SramCellDesign(),
                     switch_leakage_fraction: float = 0.002
                     ) -> RetentionResult:
    """Power gating: cut the array supply entirely.

    Maximum savings, but the data is lost -- only usable for
    flushable arrays (caches with clean lines).
    """
    if not 0 < switch_leakage_fraction < 1:
        raise ModelDomainError("switch_leakage_fraction must be in (0, 1)")
    active_cell = SramCell(node, design)
    active = active_cell.leakage_current() * node.vdd
    return RetentionResult(
        technique="power-gate",
        node_name=node.name,
        leakage_active=active,
        leakage_retention=active * switch_leakage_fraction,
        hold_snm_retention=0.0,
        data_retained=False,
    )


def retention_techniques_trend(nodes: Sequence[TechnologyNode],
                               design: SramCellDesign = SramCellDesign()
                               ) -> List[Dict[str, float]]:
    """All three techniques per node: the section-3.2 story on SRAM.

    Drowsy stays effective (its levers are voltages, not the body
    factor); VTCMOS fades with the bulk factor *and* hits the
    gate-leakage floor where tunnelling peaks (65 nm); gating always
    wins on leakage but loses the data.
    """
    rows = []
    for node in nodes:
        retention_vdd = 1.1 * minimum_retention_voltage(node, design)
        drowsy = drowsy_mode(node, design, retention_vdd=retention_vdd)
        body = body_bias_retention(node, design)
        gated = power_gate_array(node, design)
        rows.append({
            "node": node.name,
            "drowsy_reduction": drowsy.reduction,
            "drowsy_vdd_V": min(retention_vdd, node.vdd),
            "body_bias_reduction": body.reduction,
            "power_gate_reduction": gated.reduction,
        })
    return rows
