"""MOS capacitance models used by delay, energy and noise analyses.

All formulas are elementwise, so ``width`` may be a scalar or a numpy
array (one entry per device); the batched timing engine relies on
this to evaluate a whole netlist's parasitics in one call.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.constants import EPSILON_0, EPSILON_SI, ELECTRON_CHARGE
import math

import numpy as np

from ..technology.node import TechnologyNode
from ..robust.errors import ModelDomainError
from ..robust.validate import validated


@dataclass(frozen=True)
class DeviceCapacitances:
    """Lumped capacitances of one MOS device [F]."""

    gate: float        # intrinsic gate (channel) capacitance
    overlap: float     # gate-source + gate-drain overlap
    junction: float    # source/drain junction (depletion) capacitance

    @property
    def input_capacitance(self) -> float:
        """Capacitance seen by a driver at the gate terminal [F]."""
        return self.gate + self.overlap

    @property
    def drain_capacitance(self) -> float:
        """Parasitic load contributed at the drain [F]."""
        return 0.5 * self.overlap + self.junction


def overlap_capacitance(node: TechnologyNode, width: float,
                        overlap_fraction: float = 0.15) -> float:
    """Gate-drain + gate-source overlap capacitance [F].

    The overlap length is taken as ``overlap_fraction`` of the channel
    length on each side.
    """
    if not 0 < overlap_fraction < 1:
        raise ModelDomainError("overlap_fraction must be in (0, 1)")
    overlap_length = overlap_fraction * node.feature_size
    return 2.0 * node.cox * width * overlap_length


@validated(width="positive", drain_extension="positive", bias="finite")
def junction_capacitance(node: TechnologyNode, width: float,
                         drain_extension: float = None,
                         bias: float = 0.0) -> float:
    """Source/drain junction depletion capacitance [F].

    Uses the one-sided abrupt-junction formula with the node doping;
    reverse ``bias`` [V] widens the depletion region and lowers C.
    """
    if drain_extension is None:
        drain_extension = 3.0 * node.feature_size
    eps_si = EPSILON_0 * EPSILON_SI
    built_in = 2.0 * node.fermi_potential
    depletion = math.sqrt(
        2.0 * eps_si * (built_in + max(bias, 0.0))
        / (ELECTRON_CHARGE * node.channel_doping))
    cj_area = eps_si / depletion
    area = width * drain_extension
    perimeter = 2.0 * (width + drain_extension)
    # Sidewall contribution approximated with the junction depth.
    return cj_area * area + cj_area * node.junction_depth * perimeter


def device_capacitances(node: TechnologyNode, width: float,
                        length: float = None) -> DeviceCapacitances:
    """All lumped capacitances of a W x L device (scalar or array W)."""
    if length is None:
        length = node.feature_size
    if np.any(np.asarray(width) <= 0) or np.any(np.asarray(length) <= 0):
        raise ModelDomainError("device dimensions must be positive")
    return DeviceCapacitances(
        gate=node.cox * width * length,
        overlap=overlap_capacitance(node, width),
        junction=junction_capacitance(node, width),
    )


def inverter_input_capacitance(node: TechnologyNode, nmos_width: float,
                               pmos_ratio: float = 2.0) -> float:
    """Input capacitance of an inverter with the given NMOS width [F]."""
    nmos = device_capacitances(node, nmos_width)
    pmos = device_capacitances(node, pmos_ratio * nmos_width)
    return nmos.input_capacitance + pmos.input_capacitance


def inverter_self_load(node: TechnologyNode, nmos_width: float,
                       pmos_ratio: float = 2.0) -> float:
    """Self-load (drain parasitics) of an inverter output [F]."""
    nmos = device_capacitances(node, nmos_width)
    pmos = device_capacitances(node, pmos_ratio * nmos_width)
    return nmos.drain_capacitance + pmos.drain_capacitance
