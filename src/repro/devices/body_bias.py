"""Body-bias (VTCMOS) modelling -- section 3.2 of the paper.

VTCMOS tunes V_T through the body terminal: reverse body bias raises
V_T (cutting subthreshold leakage in standby), forward bias lowers it
(restoring speed when active).  The paper's key observation is that
**the bulk factor shrinks with scaling**, so the technique loses
effectiveness at nanometre nodes.  :func:`body_bias_effectiveness`
quantifies exactly that claim (benchmark ``test_tab_body_bias``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.constants import (EPSILON_0, EPSILON_SI, ELECTRON_CHARGE,
                              thermal_voltage)
from ..technology.node import TechnologyNode
from .leakage import device_leakage
from ..robust.errors import ModelDomainError


def body_effect_gamma(node: TechnologyNode) -> float:
    """Physical body-effect coefficient gamma [sqrt(V)].

    gamma = sqrt(2*q*eps_si*N_A) / C_ox.  Together with the
    square-root law V_T(V_SB) = V_T0 + gamma*(sqrt(2phi_F+V_SB) -
    sqrt(2phi_F)) this gives the *large-signal* body effect; the node's
    ``body_factor`` is its small-signal linearization at V_SB = 0.
    """
    eps_si = EPSILON_0 * EPSILON_SI
    return math.sqrt(2.0 * ELECTRON_CHARGE * eps_si * node.channel_doping) \
        / node.cox


def vth_with_body_bias(node: TechnologyNode, vsb: float,
                       use_physical: bool = False) -> float:
    """Threshold voltage [V] under source-body voltage ``vsb``.

    Positive ``vsb`` = reverse bias for NMOS (raises V_T).  With
    ``use_physical`` the square-root gamma law is used; otherwise the
    node's linear ``body_factor`` (the paper's framing).
    """
    if use_physical:
        gamma = body_effect_gamma(node)
        phi = 2.0 * node.fermi_potential
        if phi + vsb < 0:
            raise ModelDomainError(
                f"forward bias beyond junction turn-on: vsb={vsb}")
        return node.vth + gamma * (math.sqrt(phi + vsb) - math.sqrt(phi))
    return node.vth + node.body_factor * vsb


@dataclass(frozen=True)
class BodyBiasResult:
    """Effect of one reverse-body-bias setting on one node."""

    node_name: str
    feature_size_nm: float
    body_factor: float
    vsb: float
    delta_vth: float
    leakage_off: float          # A, no body bias
    leakage_biased: float       # A, with reverse bias
    leakage_reduction: float    # ratio >= 1


def body_bias_effectiveness(nodes: Sequence[TechnologyNode],
                            vsb: float = 0.5,
                            width: float = None) -> List[BodyBiasResult]:
    """Quantify VTCMOS standby-leakage savings per node.

    Returns one row per node.  The paper's claim: ``delta_vth`` (and
    hence the leakage-reduction ratio) shrinks monotonically as the
    nodes scale, limiting VTCMOS below ~90 nm.
    """
    if vsb < 0:
        raise ModelDomainError("vsb must be >= 0 (reverse bias)")
    results = []
    for node in nodes:
        w = width if width is not None else 2.0 * node.feature_size
        delta_vth = node.body_factor * vsb
        base = device_leakage(node, w).subthreshold
        biased = device_leakage(node, w, vth_offset=delta_vth).subthreshold
        results.append(BodyBiasResult(
            node_name=node.name,
            feature_size_nm=node.feature_size * 1e9,
            body_factor=node.body_factor,
            vsb=vsb,
            delta_vth=delta_vth,
            leakage_off=base,
            leakage_biased=biased,
            leakage_reduction=base / biased if biased > 0 else math.inf,
        ))
    return results


def required_vsb_for_reduction(node: TechnologyNode,
                               reduction: float) -> float:
    """Reverse body bias [V] needed for a given leakage-reduction ratio.

    Inverts eq. 1: delta_VT = n*phi_t*ln(reduction), then
    V_SB = delta_VT / body_factor.  Diverges as the body factor
    vanishes -- the quantitative form of the paper's warning.
    """
    if reduction <= 1.0:
        raise ModelDomainError("reduction must exceed 1")
    phi_t = thermal_voltage(node.temperature)
    delta_vth = node.subthreshold_n * phi_t * math.log(reduction)
    return delta_vth / node.body_factor
