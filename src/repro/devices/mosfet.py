"""Compact MOSFET model: alpha-power law with subthreshold conduction.

The model combines

* the Sakurai-Newton *alpha-power law* for strong inversion (the
  velocity-saturation exponent ``alpha`` comes from the technology
  node and falls from ~2 at 350 nm towards ~1.25 at 32 nm),
* the exponential subthreshold model of the paper's eq. 1, including
  the V_DS-dependent equivalent V_T decrease (DIBL) that Fig. 1
  illustrates,
* body effect through the node's bulk factor (the paper's section 3.2
  VTCMOS discussion), and
* gate tunnelling leakage through :mod:`repro.devices.leakage`.

Everything is vectorized over numpy arrays where it matters for the
benchmarks (Fig. 1 sweeps, Monte Carlo loops).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from ..core.constants import thermal_voltage
from ..robust.errors import ModelDomainError
from ..technology.node import TechnologyNode

ArrayLike = Union[float, np.ndarray]


class DeviceType(enum.Enum):
    """Channel polarity."""

    NMOS = "nmos"
    PMOS = "pmos"


class Region(enum.Enum):
    """Operating region of the transistor."""

    CUTOFF = "cutoff"          # subthreshold conduction only
    LINEAR = "linear"
    SATURATION = "saturation"


@dataclass
class Mosfet:
    """A single MOS transistor in a given technology.

    Voltages follow the NMOS convention internally; for PMOS devices
    pass terminal voltages with their natural signs and the model
    mirrors them.

    Parameters
    ----------
    node:
        Technology node supplying all process parameters.
    width / length:
        Drawn dimensions [m].  ``length`` defaults to the node feature
        size.
    device_type:
        NMOS or PMOS.
    vth_offset:
        Additive V_T shift [V] -- used for mismatch sampling, multi-V_T
        libraries (MTCMOS) and corner modelling.
    """

    node: TechnologyNode
    width: float
    length: float = 0.0
    device_type: DeviceType = DeviceType.NMOS
    vth_offset: float = 0.0
    temperature: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.length == 0.0:
            self.length = self.node.feature_size
        if not (math.isfinite(self.width) and math.isfinite(self.length)
                and self.width > 0 and self.length > 0):
            raise ModelDomainError(
                f"device dimensions must be positive finite, got "
                f"W={self.width!r} L={self.length!r}")
        if not math.isfinite(self.vth_offset):
            raise ModelDomainError(
                f"vth_offset must be finite, got {self.vth_offset!r}")
        if self.temperature == 0.0:
            self.temperature = self.node.temperature
        if not (math.isfinite(self.temperature) and self.temperature > 0):
            raise ModelDomainError(
                f"temperature must be positive finite, got "
                f"{self.temperature!r}")

    # --- threshold -------------------------------------------------------

    def vth(self, vds: ArrayLike = 0.0, vbs: ArrayLike = 0.0) -> ArrayLike:
        """Effective threshold voltage [V] including DIBL and body effect.

        DIBL is modelled as the paper describes: an equivalent,
        V_DS-dependent V_T decrease.  Reverse body bias (vbs < 0 for
        NMOS) raises V_T by ``body_factor`` volts per volt.
        """
        vds = np.asarray(vds, dtype=float)
        vbs = np.asarray(vbs, dtype=float)
        vth0 = self.node.vth + self.vth_offset
        value = vth0 - self.node.dibl * np.abs(vds) \
            - self.node.body_factor * vbs
        return value if value.ndim else float(value)

    # --- currents --------------------------------------------------------

    @property
    def _mobility(self) -> float:
        if self.device_type is DeviceType.NMOS:
            return self.node.mobility_n
        return self.node.mobility_p

    @property
    def beta(self) -> float:
        """Current factor mu*Cox*W/L [A/V^2]."""
        return self._mobility * self.node.cox * self.width / self.length

    def _subthreshold_current(self, vgs: np.ndarray, vds: np.ndarray,
                              vbs: np.ndarray) -> np.ndarray:
        """Eq. 1 of the paper with the DIBL-corrected V_T.

        I_sub = I_0 * (W/L_ref) * exp((V_GS - V_T) / (n kT/q))
                    * (1 - exp(-V_DS / (kT/q)))
        with I_0 inversely proportional to L as the paper notes.
        """
        phi_t = thermal_voltage(self.temperature)
        n = self.node.subthreshold_n
        vth = np.asarray(self.vth(vds=vds, vbs=vbs), dtype=float)
        i0 = (self.node.i0_per_width * self.width
              * self.node.feature_size / self.length)
        drain_factor = 1.0 - np.exp(-np.maximum(vds, 0.0) / phi_t)
        return i0 * np.exp((vgs - vth) / (n * phi_t)) * drain_factor

    def _strong_inversion_current(self, vgs: np.ndarray, vds: np.ndarray,
                                  vbs: np.ndarray) -> np.ndarray:
        """Alpha-power-law drain current for V_GS > V_T."""
        alpha = self.node.alpha_power
        vth = np.asarray(self.vth(vds=vds, vbs=vbs), dtype=float)
        overdrive = np.maximum(vgs - vth, 0.0)
        # Saturation voltage scales with overdrive^(alpha/2) (Sakurai).
        vdsat = np.maximum(overdrive ** (alpha / 2.0)
                           * self.node.vdd ** (1.0 - alpha / 2.0), 1e-12)
        idsat = 0.5 * self.beta * self.node.vdd ** (2.0 - alpha) \
            * overdrive ** alpha
        linear = idsat * (2.0 - vds / vdsat) * (vds / vdsat)
        return np.where(vds >= vdsat, idsat, np.maximum(linear, 0.0))

    def ids(self, vgs: ArrayLike, vds: ArrayLike,
            vbs: ArrayLike = 0.0) -> ArrayLike:
        """Drain current [A] for the given terminal voltages.

        For PMOS devices pass the magnitudes of V_SG / V_SD (the model
        is symmetric).  Below V_T the current is the subthreshold
        exponential of eq. 1; above V_T it is the alpha-power-law
        current plus the subthreshold current frozen at its V_T value,
        which makes the two branches continuous at V_GS = V_T.
        """
        vgs, vds, vbs = np.broadcast_arrays(
            np.asarray(vgs, dtype=float),
            np.asarray(vds, dtype=float),
            np.asarray(vbs, dtype=float))
        if not (np.all(np.isfinite(vgs)) and np.all(np.isfinite(vds))
                and np.all(np.isfinite(vbs))):
            raise ModelDomainError(
                "terminal voltages must be finite (got NaN/inf in "
                "vgs, vds or vbs)")
        weak = self._subthreshold_current(vgs, vds, vbs)
        strong = self._strong_inversion_current(vgs, vds, vbs)
        vth = np.asarray(self.vth(vds=vds, vbs=vbs), dtype=float)
        weak_at_vth = self._subthreshold_current(vth, vds, vbs)
        out = np.where(vgs >= vth, strong + weak_at_vth, weak)
        if not np.all(np.isfinite(out)):
            raise ModelDomainError(
                "Mosfet.ids produced a non-finite current: the bias "
                "point lies outside the model's validity domain")
        return out if out.ndim else float(out)

    def off_current(self, vds: Optional[float] = None,
                    vbs: float = 0.0) -> float:
        """Leakage drain current at V_GS = 0 [A] (the paper's I_off).

        ``vds`` defaults to the full supply, the worst case for DIBL.
        """
        if vds is None:
            vds = self.node.vdd
        return float(self.ids(0.0, vds, vbs))

    def on_current(self, vbs: float = 0.0) -> float:
        """Drive current at V_GS = V_DS = V_DD [A]."""
        return float(self.ids(self.node.vdd, self.node.vdd, vbs))

    def region(self, vgs: float, vds: float, vbs: float = 0.0) -> Region:
        """Classify the operating region."""
        vth = float(self.vth(vds=vds, vbs=vbs))
        if vgs < vth:
            return Region.CUTOFF
        alpha = self.node.alpha_power
        overdrive = vgs - vth
        vdsat = overdrive ** (alpha / 2.0) * self.node.vdd ** (1 - alpha / 2.0)
        return Region.SATURATION if vds >= vdsat else Region.LINEAR

    # --- small-signal ------------------------------------------------------

    def gm(self, vgs: float, vds: float, vbs: float = 0.0,
           delta: float = 1e-4) -> float:
        """Transconductance dI_D/dV_GS [S] by central difference."""
        hi = float(self.ids(vgs + delta, vds, vbs))
        lo = float(self.ids(vgs - delta, vds, vbs))
        return (hi - lo) / (2.0 * delta)

    def gds(self, vgs: float, vds: float, vbs: float = 0.0,
            delta: float = 1e-4) -> float:
        """Output conductance dI_D/dV_DS [S] by central difference."""
        hi = float(self.ids(vgs, vds + delta, vbs))
        lo = float(self.ids(vgs, max(vds - delta, 0.0), vbs))
        return (hi - lo) / (vds + delta - max(vds - delta, 0.0))

    def subthreshold_swing(self) -> float:
        """Subthreshold swing [V/decade]: S = n * kT/q * ln(10).

        ~60 mV/decade is the ideal (n = 1); real nodes sit at 80-95.
        """
        return (self.node.subthreshold_n
                * thermal_voltage(self.temperature) * math.log(10.0))

    # --- capacitances -------------------------------------------------------

    @property
    def gate_capacitance(self) -> float:
        """Total gate capacitance Cox*W*L [F] (intrinsic only)."""
        return self.node.cox * self.width * self.length

    @property
    def gate_area(self) -> float:
        """Gate area W*L [m^2]."""
        return self.width * self.length

    def sigma_vth_mismatch(self) -> float:
        """Pelgrom mismatch sigma of this device's V_T [V]."""
        return self.node.avt / math.sqrt(self.gate_area)
