"""Leakage-current models: eqs. 1 and 2 of the paper.

Two static leakage mechanisms dominate at nanometre nodes:

* **Subthreshold leakage** (eq. 1) -- conduction at V_GS = 0, growing
  exponentially as V_T scales down, made worse by DIBL.  Present when
  the transistor is *off*.
* **Gate tunnelling leakage** (eq. 2) -- DC current through few-nm
  oxides.  Present when there is voltage across the gate, i.e. when
  the transistor is *on*.

Both are provided as standalone functions (direct transcriptions of
the paper's equations) and as per-device/per-gate aggregates used by
:mod:`repro.digital.energy` for the leakage-fraction analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..core.constants import thermal_voltage
from ..robust.validate import validated
from ..technology.node import TechnologyNode

ArrayLike = Union[float, np.ndarray]


@validated(_result_finite=True, i0="non-negative", vth="finite",
           n="positive", temperature="positive", vgs="finite")
def subthreshold_current(i0: ArrayLike, vth: ArrayLike,
                         n: float = 1.4,
                         temperature: float = 300.0,
                         vgs: ArrayLike = 0.0) -> ArrayLike:
    """Eq. 1: I_sub = I_0 * exp((V_GS - V_T) / (n*kT/q)).

    The paper writes the V_GS = 0 case, I_0*exp(-V_T/(n kT/q)); the
    optional ``vgs`` generalizes it for sweep plots (Fig. 1).

    Parameters
    ----------
    i0:
        Pre-exponential current [A] (proportional to W/L).
    vth:
        Threshold voltage [V], possibly already DIBL-reduced.
    n:
        Subthreshold ideality factor.
    temperature:
        Junction temperature [K].
    vgs:
        Gate-source voltage [V], default 0 (the off state).
    """
    phi_t = thermal_voltage(temperature)
    i0 = np.asarray(i0, dtype=float)
    result = i0 * np.exp((np.asarray(vgs, float) - np.asarray(vth, float))
                         / (n * phi_t))
    return result if result.ndim else float(result)


@validated(_result_finite=True, vth0="finite", dibl="finite",
           vds="finite")
def dibl_effective_vth(vth0: ArrayLike, dibl: float,
                       vds: ArrayLike) -> ArrayLike:
    """Equivalent V_DS-dependent V_T decrease (section 2.1, Fig. 1).

    V_T,eff = V_T0 - eta * V_DS with eta the DIBL coefficient.
    """
    result = np.asarray(vth0, float) - dibl * np.asarray(vds, float)
    return result if np.ndim(result) else float(result)


@validated(_result_finite=True, width="non-negative", vgb="finite",
           tox="positive", k_fit="non-negative",
           alpha_fit="non-negative", length="positive")
def gate_leakage_current(width: ArrayLike, vgb: ArrayLike, tox: float,
                         k_fit: float, alpha_fit: float,
                         length: ArrayLike = None) -> ArrayLike:
    """Eq. 2: I_gate = K * W * (V_gb / t_ox)^2 * exp(-alpha * t_ox / V_gb).

    Parameters
    ----------
    width:
        Gate width [m].  If ``length`` is given, K is interpreted per
        unit area and the current scales with W*L instead of W alone
        (the per-area form used by the built-in node library).
    vgb:
        Gate-to-bulk voltage [V].
    tox:
        Oxide thickness [m].
    k_fit / alpha_fit:
        The paper's fit factors K and alpha.
    """
    width = np.asarray(width, dtype=float)
    vgb = np.asarray(vgb, dtype=float)
    geometry = width if length is None else width * np.asarray(length, float)
    safe_vgb = np.maximum(np.abs(vgb), 1e-12)
    result = (k_fit * geometry * (safe_vgb / tox) ** 2
              * np.exp(-alpha_fit * tox / safe_vgb))
    result = np.where(np.abs(vgb) < 1e-12, 0.0, result)
    return result if result.ndim else float(result)


@dataclass(frozen=True)
class LeakageBudget:
    """Static leakage of one device or gate, split by mechanism [A]."""

    subthreshold: float
    gate: float

    @property
    def total(self) -> float:
        """Total static leakage current [A]."""
        return self.subthreshold + self.gate

    def power(self, vdd: float) -> float:
        """Static power [W] at supply ``vdd``."""
        return self.total * vdd


@validated(_result_finite=True, width="positive", length="positive",
           vds="finite", vbs="finite", vth_offset="finite")
def device_leakage(node: TechnologyNode, width: float,
                   length: float = None,
                   vds: float = None,
                   vbs: float = 0.0,
                   vth_offset: float = 0.0) -> LeakageBudget:
    """Leakage budget of a single transistor in the off (subthreshold)
    and on (gate tunnelling) states.

    Notes
    -----
    The two mechanisms never coexist in the same device state (the
    paper's section 2.2 remark): subthreshold leaks when off, the gate
    leaks when on.  For a static CMOS gate roughly half the devices
    are in each state, which is how :func:`gate_leakage_per_gate`
    combines them.
    """
    if length is None:
        length = node.feature_size
    if vds is None:
        vds = node.vdd
    phi_t = thermal_voltage(node.temperature)
    vth_eff = dibl_effective_vth(
        node.vth + vth_offset - node.body_factor * vbs, node.dibl, vds)
    i0 = node.i0_per_width * width * node.feature_size / length
    isub = float(subthreshold_current(
        i0, vth_eff, n=node.subthreshold_n, temperature=node.temperature))
    igate = float(gate_leakage_current(
        width, node.vdd, node.tox, node.gate_leak_k, node.gate_leak_alpha,
        length=length))
    return LeakageBudget(subthreshold=isub, gate=igate)


@validated(_result_finite=True, nmos_width="positive",
           pmos_width="positive", fanin="count")
def gate_leakage_per_gate(node: TechnologyNode,
                          nmos_width: float = None,
                          pmos_width: float = None,
                          fanin: int = 1) -> LeakageBudget:
    """Average static leakage of a static CMOS gate.

    Assumes half the input states leave each stack off (subthreshold
    leaking) and the complementary devices on (gate leaking); series
    stacks leak less (the stack effect), approximated as 1/fanin.
    """
    if nmos_width is None:
        nmos_width = 2.0 * node.feature_size
    if pmos_width is None:
        pmos_width = 2.0 * nmos_width
    budgets = [device_leakage(node, width) for width in
               [nmos_width] * fanin + [pmos_width] * fanin]
    isub = 0.5 * sum(b.subthreshold for b in budgets) / fanin
    igate = 0.5 * sum(b.gate for b in budgets)
    return LeakageBudget(subthreshold=isub, gate=igate)


@validated(_result_finite=True, gates_per_mm2="positive")
def leakage_power_density(node: TechnologyNode,
                          gates_per_mm2: float = None) -> float:
    """Static power density [W/m^2] of random logic in ``node``.

    ``gates_per_mm2`` defaults to the density implied by a 2-input
    NAND footprint of (8 pitch) x (12 pitch).
    """
    if gates_per_mm2 is None:
        gate_area = (8 * node.wire_pitch) * (12 * node.wire_pitch)
        gates_per_m2 = 1.0 / gate_area
    else:
        gates_per_m2 = gates_per_mm2 * 1e6
    per_gate = gate_leakage_per_gate(node).power(node.vdd)
    return per_gate * gates_per_m2


@validated(_result_finite=True, vth_values="finite", width="positive")
def ioff_vs_vth_sweep(node: TechnologyNode, vth_values: np.ndarray,
                      width: float = None) -> np.ndarray:
    """Off-current sweep over candidate V_T values [A].

    Used by the MTCMOS analysis: how much leakage does a high-V_T
    variant save?
    """
    if width is None:
        width = 2.0 * node.feature_size
    i0 = node.i0_per_width * width
    vth_eff = dibl_effective_vth(vth_values, node.dibl, node.vdd)
    return np.asarray(subthreshold_current(
        i0, vth_eff, n=node.subthreshold_n, temperature=node.temperature))
