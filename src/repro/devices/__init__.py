"""Device-level models: MOSFET I-V, leakage, capacitance, body bias."""

from .mosfet import DeviceType, Mosfet, Region
from .leakage import (
    LeakageBudget,
    device_leakage,
    dibl_effective_vth,
    gate_leakage_current,
    gate_leakage_per_gate,
    ioff_vs_vth_sweep,
    leakage_power_density,
    subthreshold_current,
)
from .capacitance import (
    DeviceCapacitances,
    device_capacitances,
    inverter_input_capacitance,
    inverter_self_load,
    junction_capacitance,
    overlap_capacitance,
)
from .body_bias import (
    BodyBiasResult,
    body_bias_effectiveness,
    body_effect_gamma,
    required_vsb_for_reduction,
    vth_with_body_bias,
)
from .corners import (
    Corner,
    CornerSpec,
    InterDieSigmas,
    apply_corner,
    corner_spread_summary,
    corner_vth_pair,
    iter_corners,
    worst_case_vth,
)

__all__ = [
    "DeviceType", "Mosfet", "Region",
    "LeakageBudget", "device_leakage", "dibl_effective_vth",
    "gate_leakage_current", "gate_leakage_per_gate", "ioff_vs_vth_sweep",
    "leakage_power_density", "subthreshold_current",
    "DeviceCapacitances", "device_capacitances",
    "inverter_input_capacitance", "inverter_self_load",
    "junction_capacitance", "overlap_capacitance",
    "BodyBiasResult", "body_bias_effectiveness", "body_effect_gamma",
    "required_vsb_for_reduction", "vth_with_body_bias",
    "Corner", "CornerSpec", "InterDieSigmas", "apply_corner",
    "corner_spread_summary", "corner_vth_pair", "iter_corners",
    "worst_case_vth",
]
