"""Process corners: inter-die variation as correlated parameter shifts.

Section 2.4 of the paper splits variability into *inter-die* (all
devices on a die shift together -- handled with corners) and *intra-die*
(device-to-device mismatch -- handled statistically, see
:mod:`repro.variability`).  This module provides the classic five-corner
model plus arbitrary sigma-parameterized corners.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List

from ..technology.node import TechnologyNode
from ..robust.validate import validated


class Corner(enum.Enum):
    """The classic five process corners (NMOS/PMOS speed)."""

    TT = "typical-typical"
    FF = "fast-fast"
    SS = "slow-slow"
    FS = "fast-nmos-slow-pmos"
    SF = "slow-nmos-fast-pmos"


@dataclass(frozen=True)
class CornerSpec:
    """Inter-die shifts defining a corner, in units of sigma.

    Positive ``vth_sigma`` means *higher* V_T (slower); positive
    ``length_sigma`` means *longer* channel (slower); positive
    ``tox_sigma`` means thicker oxide (slower, less gate leakage).
    """

    vth_sigma_n: float
    vth_sigma_p: float
    length_sigma: float = 0.0
    tox_sigma: float = 0.0


_CORNER_SPECS: Dict[Corner, CornerSpec] = {
    Corner.TT: CornerSpec(0.0, 0.0, 0.0, 0.0),
    Corner.FF: CornerSpec(-3.0, -3.0, -3.0, -3.0),
    Corner.SS: CornerSpec(+3.0, +3.0, +3.0, +3.0),
    Corner.FS: CornerSpec(-3.0, +3.0, 0.0, 0.0),
    Corner.SF: CornerSpec(+3.0, -3.0, 0.0, 0.0),
}


@dataclass(frozen=True)
class InterDieSigmas:
    """One-sigma inter-die spreads of the global parameters.

    Defaults follow the paper's premise that the same *absolute*
    tolerance hurts more as nominals shrink: sigma_VT is an absolute
    voltage, sigma_L and sigma_tox are relative fractions.
    """

    vth: float = 0.015      # V
    length_rel: float = 0.04
    tox_rel: float = 0.02


def apply_corner(node: TechnologyNode, corner: Corner,
                 sigmas: InterDieSigmas = InterDieSigmas()
                 ) -> TechnologyNode:
    """Return the node shifted to ``corner``.

    Only the NMOS-relevant shift is applied to the shared ``vth``
    field; use :func:`corner_vth_pair` when the P/N split matters
    (e.g. FS/SF noise-margin analysis).
    """
    spec = _CORNER_SPECS[corner]
    return node.with_overrides(
        name=f"{node.name}@{corner.name}",
        vth=node.vth + spec.vth_sigma_n * sigmas.vth,
        feature_size=node.feature_size * (1 + spec.length_sigma
                                          * sigmas.length_rel),
        tox=node.tox * (1 + spec.tox_sigma * sigmas.tox_rel),
    )


def corner_vth_pair(node: TechnologyNode, corner: Corner,
                    sigmas: InterDieSigmas = InterDieSigmas()
                    ) -> Dict[str, float]:
    """Return the {nmos, pmos} V_T at ``corner`` [V]."""
    spec = _CORNER_SPECS[corner]
    return {
        "nmos": node.vth + spec.vth_sigma_n * sigmas.vth,
        "pmos": node.vth + spec.vth_sigma_p * sigmas.vth,
    }


def iter_corners(node: TechnologyNode,
                 sigmas: InterDieSigmas = InterDieSigmas()
                 ) -> Iterator[TechnologyNode]:
    """Yield the node at all five corners (TT first)."""
    for corner in Corner:
        yield apply_corner(node, corner, sigmas)


@validated(n_sigma="non-negative")
def worst_case_vth(node: TechnologyNode,
                   sigmas: InterDieSigmas = InterDieSigmas(),
                   n_sigma: float = 3.0) -> float:
    """The slow-corner V_T [V] that worst-case design must assume.

    Feeds the section-3.1 energy-penalty analysis: circuits are sized
    for this V_T even though typical dies do not need it.
    """
    return node.vth + n_sigma * sigmas.vth


def corner_spread_summary(node: TechnologyNode,
                          sigmas: InterDieSigmas = InterDieSigmas()
                          ) -> List[Dict[str, float]]:
    """Summarize drive-current spread across corners (for reports)."""
    from .mosfet import Mosfet  # local import avoids a cycle
    rows = []
    for corner in Corner:
        shifted = apply_corner(node, corner, sigmas)
        device = Mosfet(shifted, width=2.0 * shifted.feature_size)
        rows.append({
            "corner": corner.name,
            "vth_V": shifted.vth,
            "ion_uA": device.on_current() * 1e6,
            "ioff_nA": device.off_current() * 1e9,
        })
    return rows
