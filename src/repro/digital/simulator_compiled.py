"""Compiled streaming event engine for SoC-scale activity extraction.

:class:`~repro.digital.simulator.EventDrivenSimulator` walks one
Python object per event through a ``heapq``; fine for toy netlists,
hopeless for the paper's Fig. 10 workload (the switching activity of
a ~220 kgate WLAN SoC feeding the SWAN substrate-noise flow).  This
module lowers a :class:`~repro.digital.netlist.Netlist` **once** to
flat numpy arrays -- gate-type codes with an 8-entry truth table per
cell, padded fanin pin tables, per-gate loaded delays and a
combinational net->loads CSR index -- and then runs cycles with a
vectorized event wheel: pending events live in struct-of-arrays
buffers ``(time, net, value, source)``, each *wavefront* (all events
sharing the earliest timestamp) is applied and its fanout gates are
re-evaluated in one batched truth-table lookup, and the budget /
oscillation guards operate on per-net toggle counters.

Equivalence contract with the scalar oracle
-------------------------------------------
The scalar simulator stays as the reference; for identical stimulus
the compiled engine reproduces its event stream **bit for bit** --
same event times (the per-gate delays are computed through the exact
same :meth:`Cell.delay` calls), same ordering on ties, same recorded
values and instance attribution, and the same final net values:

* the scalar heap pops in ``(time, push counter)`` order; the
  compiled pending buffer is append-ordered, so selecting the
  earliest-time events in buffer order reproduces the counter
  tie-breaking exactly;
* within one wavefront the scalar applies events one at a time, so a
  gate whose inputs switch together is re-evaluated after *each*
  input event.  The compiled engine splits a wavefront into
  conflict-free groups (no duplicated nets, no shared fanout gate, no
  event net colliding with a fanout gate's output) and batches each
  group -- within such a group the one-at-a-time and all-at-once
  schedules are provably identical;
* late events (at or past the cycle horizon) are applied silently in
  ``(time, order)`` sequence, as the scalar loop does;
* the event budget and the per-net-per-cycle oscillation guard raise
  the same typed :class:`SimulationBudgetError` at the same event.

Output is an :class:`EventTrace` -- the struct-of-arrays twin of
:class:`~repro.digital.simulator.SimulationResult` -- which the SWAN
flow (:mod:`repro.substrate.swan`) consumes directly in chunked numpy
calls, without ever materializing per-event Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..robust.errors import ModelDomainError, SimulationBudgetError
from ..robust.guards import SimulationBudget
from ..robust.validate import check_count, check_positive
from .gates import CELL_TYPES
from .netlist import Netlist
from .simulator import SimulationResult, SwitchingEvent

__all__ = ["CompiledEventEngine", "EventTrace"]

#: Source index marking a primary-input (driverless) event.
_SRC_INPUT = -1


@dataclass
class EventTrace:
    """A switching-event stream in struct-of-arrays form.

    The columnar twin of :class:`SimulationResult`: four parallel
    arrays (event ``k`` is ``times[k]``, ``net_indices[k]``,
    ``values[k]``, ``source_indices[k]``) plus the name tables that
    decode the integer columns.  ``source_indices`` holds the driving
    gate's position in netlist insertion order, or ``-1`` for a
    primary-input event.

    Accessors mirror the scalar result; :meth:`to_events` /
    :meth:`to_result` materialize the object form for legacy
    consumers, and :meth:`chunks` yields bounded slices for streaming
    the trace through the substrate solver.
    """

    times: np.ndarray            # (n_events,) [s]
    net_indices: np.ndarray      # (n_events,) index into net_names
    values: np.ndarray           # (n_events,) bool, post-event level
    source_indices: np.ndarray   # (n_events,) gate index or -1
    net_names: Tuple[str, ...]
    instance_names: Tuple[str, ...]
    final_values: Dict[str, bool]
    duration: float
    _by_instance: Optional[Dict[str, np.ndarray]] = field(
        default=None, repr=False, compare=False)

    @property
    def n_events(self) -> int:
        """Number of recorded switching events."""
        return int(self.times.shape[0])

    def toggle_count(self, net: Optional[str] = None) -> int:
        """Number of transitions (on one net, or total)."""
        if net is None:
            return self.n_events
        try:
            index = self.net_names.index(net)
        except ValueError:
            return 0
        return int(np.count_nonzero(self.net_indices == index))

    def activity_factor(self, n_cycles: int) -> float:
        """Average toggles per switching net per cycle."""
        n_cycles = check_count("n_cycles", n_cycles)
        if self.n_events == 0:
            return 0.0
        n_nets = np.unique(self.net_indices).size
        return self.n_events / (n_nets * n_cycles)

    def events_by_instance(self) -> Dict[str, np.ndarray]:
        """Event indices per driving gate instance (memoized)."""
        if self._by_instance is None:
            grouped: Dict[str, np.ndarray] = {}
            placed = np.flatnonzero(self.source_indices >= 0)
            if placed.size:
                order = np.argsort(self.source_indices[placed],
                                   kind="stable")
                ordered = placed[order]
                sources = self.source_indices[ordered]
                cuts = np.flatnonzero(sources[1:] != sources[:-1]) + 1
                for block in np.split(ordered, cuts):
                    name = self.instance_names[
                        int(self.source_indices[block[0]])]
                    grouped[name] = block
            self._by_instance = grouped
        return self._by_instance

    def to_events(self) -> List[SwitchingEvent]:
        """Materialize the stream as scalar :class:`SwitchingEvent`\\ s.

        Bit-for-bit identical (times, order, values, attribution) to
        the scalar oracle's event list under the same stimulus.
        """
        names = self.net_names
        instances = self.instance_names
        return [SwitchingEvent(
            time=float(t), net=names[int(n)], value=bool(v),
            instance=instances[int(s)] if s >= 0 else None)
            for t, n, v, s in zip(self.times, self.net_indices,
                                  self.values, self.source_indices)]

    def to_result(self) -> SimulationResult:
        """Convert to a scalar :class:`SimulationResult`."""
        return SimulationResult(events=self.to_events(),
                                final_values=dict(self.final_values),
                                duration=self.duration)

    def chunks(self, chunk_events: int) -> Iterator["EventTrace"]:
        """Yield consecutive slices of at most ``chunk_events`` events.

        Slices share the name tables, final values and duration of the
        full trace (they are metadata of the run, not of a chunk) and
        view the underlying arrays without copying.
        """
        chunk_events = check_count("chunk_events", chunk_events)
        for start in range(0, max(self.n_events, 1), chunk_events):
            stop = start + chunk_events
            yield EventTrace(
                times=self.times[start:stop],
                net_indices=self.net_indices[start:stop],
                values=self.values[start:stop],
                source_indices=self.source_indices[start:stop],
                net_names=self.net_names,
                instance_names=self.instance_names,
                final_values=self.final_values,
                duration=self.duration)


def _first_conflict(nets: np.ndarray, load_gates: np.ndarray,
                    load_event: np.ndarray,
                    load_outputs: np.ndarray) -> int:
    """Length of the longest conflict-free prefix of a wavefront slice.

    Events ``i < j`` conflict when they touch the same net, share a
    fanout gate, or one's net is the output of the other's fanout
    gate -- exactly the cases where the scalar one-at-a-time schedule
    and the batched schedule could diverge.  Returns the position the
    next group must start at (>= 1, so progress is guaranteed).
    """
    m = nets.size
    boundary = m
    order = np.argsort(nets, kind="stable")
    sorted_nets = nets[order]
    dup = sorted_nets[1:] == sorted_nets[:-1]
    if dup.any():
        boundary = min(boundary, int(order[1:][dup].min()))
    if load_gates.size:
        gate_order = np.argsort(load_gates, kind="stable")
        sorted_gates = load_gates[gate_order]
        dup_gate = sorted_gates[1:] == sorted_gates[:-1]
        if dup_gate.any():
            boundary = min(boundary, int(
                load_event[gate_order[1:][dup_gate]].min()))
        # An event net colliding with another event's fanout output:
        # the conflict activates when the later of the pair joins.
        slot = np.searchsorted(sorted_nets, load_outputs)
        slot = np.minimum(slot, m - 1)
        hit = sorted_nets[slot] == load_outputs
        if hit.any():
            net_pos = order[slot[hit]]
            boundary = min(boundary, int(
                np.maximum(net_pos, load_event[hit]).min()))
    return max(boundary, 1)


class _EventBuffer:
    """Append-only struct-of-arrays overflow for newly scheduled events.

    Append order *is* the scalar heap's push-counter order.  The run
    loop keeps a time-sorted queue with a head pointer and merges this
    overflow into it only when its earliest entry (``tmin``, tracked
    incrementally) could precede the queue head -- so neither popping
    a wavefront nor appending ever scans the whole pending set.
    """

    def __init__(self, capacity: int = 1024):
        self.time = np.empty(capacity)
        self.net = np.empty(capacity, dtype=np.int64)
        self.value = np.empty(capacity, dtype=bool)
        self.source = np.empty(capacity, dtype=np.int64)
        self.n = 0
        self.tmin = np.inf

    def reset(self) -> None:
        self.n = 0
        self.tmin = np.inf

    def append(self, times: np.ndarray, nets: np.ndarray,
               values: np.ndarray, sources: np.ndarray) -> None:
        count = times.size
        if count == 0:
            return
        needed = self.n + count
        if needed > self.time.size:
            capacity = max(needed, 2 * self.time.size)
            for name in ("time", "net", "value", "source"):
                old = getattr(self, name)
                grown = np.empty(capacity, dtype=old.dtype)
                grown[:self.n] = old[:self.n]
                setattr(self, name, grown)
        self.time[self.n:needed] = times
        self.net[self.n:needed] = nets
        self.value[self.n:needed] = values
        self.source[self.n:needed] = sources
        self.n = needed
        self.tmin = min(self.tmin, times.min())


class CompiledEventEngine:
    """A :class:`Netlist` lowered to flat arrays for batched simulation.

    Drop-in compiled counterpart of :class:`EventDrivenSimulator`:
    same constructor parameters, same :meth:`run` contract, same
    guards -- but :meth:`run` returns an :class:`EventTrace` and the
    hot loop is pure array work per wavefront instead of per event.

    Compilation is one pass over the netlist (gate delays are computed
    through the very same :meth:`Cell.delay` calls the scalar
    simulator makes, memoized by ``(cell, drive, load)``, so event
    times agree bit for bit).  Mutating the netlist afterwards does
    not update the compiled arrays -- recompile.
    """

    DEFAULT_EVENT_BUDGET = 1_000_000
    DEFAULT_OSCILLATION_LIMIT = 512
    #: Bound on the conflict-signature partition cache; clocked designs
    #: replay a handful of wavefront shapes every cycle, so in practice
    #: the cache stays tiny.  On overflow it is cleared, never stale.
    PARTITION_CACHE_MAX = 4096

    def __init__(self, netlist: Netlist, clock_period: float = 1e-9,
                 wire_cap_per_fanout: float = 0.5e-15,
                 event_budget: Optional[int] = DEFAULT_EVENT_BUDGET,
                 oscillation_limit: Optional[int] =
                 DEFAULT_OSCILLATION_LIMIT):
        check_positive("clock_period", clock_period)
        check_positive("wire_cap_per_fanout", wire_cap_per_fanout)
        if event_budget is not None:
            event_budget = check_count("event_budget", event_budget)
        if oscillation_limit is not None:
            oscillation_limit = check_count("oscillation_limit",
                                            oscillation_limit)
        self.netlist = netlist
        self.clock_period = clock_period
        self.wire_cap_per_fanout = wire_cap_per_fanout
        self.event_budget = event_budget
        self.oscillation_limit = oscillation_limit
        self._compile()

    # --- lowering --------------------------------------------------------

    def _compile(self) -> None:
        netlist = self.netlist
        net_names = list(netlist.nets)
        self._net_names: Tuple[str, ...] = tuple(net_names)
        net_of = {name: k for k, name in enumerate(net_names)}
        self._net_of = net_of
        n_nets = len(net_names)
        instances = list(netlist.instances.values())
        self._instance_names: Tuple[str, ...] = tuple(
            inst.name for inst in instances)
        gate_of = {name: g for g, name in
                   enumerate(netlist.instances)}
        n_gates = len(instances)
        self.n_gates = n_gates

        # 8-entry truth table per cell type: 3 inputs max in the
        # library, padded pins read the always-False dummy net.
        type_names = list(CELL_TYPES)
        type_code = {name: k for k, name in enumerate(type_names)}
        truth = np.zeros((len(type_names), 8), dtype=bool)
        for code, name in enumerate(type_names):
            cell_type = CELL_TYPES[name]
            if cell_type.is_sequential:
                continue
            for packed in range(8):
                bits = tuple(bool((packed >> b) & 1)
                             for b in range(cell_type.n_inputs))
                truth[code, packed] = cell_type.function(bits)
        self._truth_flat = truth.ravel()

        dummy = n_nets            # always-False padding slot
        self._dummy = dummy
        fanin = np.full((n_gates, 3), dummy, dtype=np.int64)
        out_net = np.zeros(n_gates, dtype=np.int64)
        tcode8 = np.zeros(n_gates, dtype=np.int64)
        is_seq = np.zeros(n_gates, dtype=bool)
        delays = np.zeros(n_gates, dtype=float)

        # Delay / pin-cap memoization: identical (cell, drive, load)
        # triples produce identical floats through the shared
        # Cell.delay path, so repetitive SoCs compile in O(unique).
        cap_cache: Dict[Tuple[str, float], float] = {}
        delay_cache: Dict[Tuple[str, float, float], float] = {}

        def pin_cap(inst) -> float:
            key = (inst.cell.cell_type.name, inst.cell.drive)
            cap = cap_cache.get(key)
            if cap is None:
                cap = inst.cell.input_capacitance
                cap_cache[key] = cap
            return cap

        wire_cap = self.wire_cap_per_fanout
        for g, inst in enumerate(instances):
            out_net[g] = net_of[inst.output]
            tcode8[g] = type_code[inst.cell.cell_type.name] * 8
            is_seq[g] = inst.is_sequential
            for pin, net in enumerate(inst.inputs):
                fanin[g, pin] = net_of[net]
            # Same accumulation order and start value as
            # Netlist.fanout_capacitance, so the sum is bit-identical.
            loads = netlist.loads_of(inst.output)
            load_cap = sum(pin_cap(load) * load.inputs.count(inst.output)
                           for load in loads) \
                + wire_cap * max(len(loads), 1)
            key = (inst.cell.cell_type.name, inst.cell.drive, load_cap)
            delay = delay_cache.get(key)
            if delay is None:
                delay = inst.cell.delay(load_cap)
                delay_cache[key] = delay
            delays[g] = delay

        self._fanin = fanin
        self._out_net = out_net
        self._tcode8 = tcode8
        self._delays = delays

        # Combinational net -> loads CSR (sequential cells sample only
        # at the clock edge, exactly as the scalar loop skips them).
        counts = np.zeros(n_nets, dtype=np.int64)
        flat: List[int] = []
        for k, net in enumerate(net_names):
            comb = [gate_of[load.name] for load in netlist.loads_of(net)
                    if not load.is_sequential]
            counts[k] = len(comb)
            flat.extend(comb)
        self._csr_count = counts
        self._csr_start = np.concatenate(
            [[0], np.cumsum(counts)[:-1]]).astype(np.int64) \
            if n_nets else np.zeros(0, dtype=np.int64)
        self._csr_gates = np.array(flat, dtype=np.int64)

        # Sequential cells in netlist insertion order (the scalar
        # simulator's sampling order).
        seq_idx = np.flatnonzero(is_seq)
        self._seq_gates = seq_idx
        self._seq_data = np.array(
            [net_of[instances[g].inputs[-1]] for g in seq_idx],
            dtype=np.int64)
        self._seq_out = out_net[seq_idx]
        self._seq_delay = delays[seq_idx]

        # Levelized combinational schedule for the initial settle
        # (validates acyclicity exactly like the scalar settle does).
        order = netlist.topological_order()
        level_of: Dict[str, int] = {}
        max_level = -1
        for inst in order:
            if inst.is_sequential:
                continue
            level = 0
            for net in inst.inputs:
                driver = netlist.driver_of(net)
                if driver is not None and not driver.is_sequential:
                    level = max(level, level_of[driver.name] + 1)
            level_of[inst.name] = level
            max_level = max(max_level, level)
        self._levels: List[np.ndarray] = [
            np.array([gate_of[name] for name, lv in level_of.items()
                      if lv == level], dtype=np.int64)
            for level in range(max_level + 1)]

        # Nets that are neither driven nor primary inputs read as
        # False during the settle even if an initial state set them.
        self._primary_inputs = list(netlist.primary_inputs)
        pi_set = set(self._primary_inputs)
        self._floating = np.array(
            [net_of[name] for name in net_names
             if name not in pi_set and netlist.driver_of(name) is None],
            dtype=np.int64)

        # Wavefront conflict-signature cache: partition boundaries are
        # a pure function of the event net-index sequence (the loads
        # CSR is fixed at compile time and run-only extra nets never
        # have loads), so identical wavefronts -- the common case in a
        # clocked design, cycle after cycle -- skip the conflict scan.
        self._partition_cache: Dict[bytes, Tuple[int, ...]] = {}

    # --- evaluation helpers ----------------------------------------------

    def _evaluate(self, gates: np.ndarray,
                  values: np.ndarray) -> np.ndarray:
        """Batched truth-table lookup of ``gates`` against ``values``."""
        bits = values[self._fanin[gates]]
        packed = bits[:, 0] + 2 * bits[:, 1] + 4 * bits[:, 2]
        return self._truth_flat[self._tcode8[gates] + packed]

    def _settle(self, values: np.ndarray) -> None:
        """Levelized combinational settle from the initial state."""
        floating = self._floating
        saved = values[floating].copy() if floating.size else None
        if floating.size:
            values[floating] = False
        for gates in self._levels:
            values[self._out_net[gates]] = self._evaluate(gates, values)
        if floating.size:
            values[floating] = saved

    def _wave_partition(self, wave_net: np.ndarray,
                        csr_count: np.ndarray,
                        csr_start: np.ndarray) -> Tuple[int, ...]:
        """Conflict-free group boundaries of one wavefront (memoized).

        Returns the exclusive end position of each group, in order.
        The result depends only on the net-index sequence and the
        compile-time loads CSR, so it is cached by the raw bytes of
        ``wave_net``; a cache hit replays the exact boundaries the
        conflict scan would recompute, keeping the event stream
        bit-for-bit unchanged.
        """
        m = wave_net.size
        if m == 1:
            return (1,)
        signature = wave_net.tobytes()
        bounds = self._partition_cache.get(signature)
        if bounds is not None:
            return bounds
        csr_gates = self._csr_gates
        out_net = self._out_net
        ends: List[int] = []
        start = 0
        while start < m:
            nets_s = wave_net[start:]
            if nets_s.size == 1:
                start += 1
                ends.append(start)
                continue
            counts = csr_count[nets_s]
            total = int(counts.sum())
            if total:
                offsets = np.cumsum(counts) - counts
                ramp = (np.arange(total, dtype=np.int64)
                        - np.repeat(offsets, counts))
                load_gates = csr_gates[
                    np.repeat(csr_start[nets_s], counts) + ramp]
                load_event = np.repeat(
                    np.arange(nets_s.size, dtype=np.int64), counts)
                load_outputs = out_net[load_gates]
            else:
                load_gates = np.zeros(0, dtype=np.int64)
                load_event = load_gates
                load_outputs = load_gates
            start += _first_conflict(nets_s, load_gates, load_event,
                                     load_outputs)
            ends.append(start)
        if len(self._partition_cache) >= self.PARTITION_CACHE_MAX:
            self._partition_cache.clear()
        bounds = tuple(ends)
        self._partition_cache[signature] = bounds
        return bounds

    # --- simulation ------------------------------------------------------

    def run(self, stimulus: Dict[str, Sequence[bool]], n_cycles: int,
            initial_state: Optional[Dict[str, bool]] = None
            ) -> EventTrace:
        """Simulate ``n_cycles`` clock cycles; see the scalar oracle.

        Same contract as :meth:`EventDrivenSimulator.run` -- stimulus
        patterns repeat cyclically, flip-flops sample at the rising
        edge, inputs change just after it -- but the returned
        :class:`EventTrace` keeps the stream columnar.
        """
        n_cycles = check_count("n_cycles", n_cycles)
        # Same diagnostic bookkeeping as the scalar oracle's guard:
        # supplies the pinned exhaustion message (count + wall-clock).
        run_budget = SimulationBudget(self.event_budget,
                                      name="event budget",
                                      raise_on_exhaust=False)
        missing = [net for net in self._primary_inputs
                   if net not in stimulus]
        if missing:
            raise ModelDomainError(
                f"missing stimulus for inputs {missing}")
        for net, pattern in stimulus.items():
            if len(pattern) == 0:
                raise ModelDomainError(
                    f"empty stimulus pattern for net {net!r}")

        # Value-array layout: netlist nets, the always-False dummy
        # padding slot, then any run-only nets named by the stimulus
        # or initial state but absent from the netlist.
        n_base = len(self._net_names)
        extra_names: List[str] = []
        seen = set(self._net_of)
        for name in list(stimulus) + list(initial_state or {}):
            if name not in seen:
                extra_names.append(name)
                seen.add(name)
        extra_of = {name: n_base + 1 + k
                    for k, name in enumerate(extra_names)}
        value_names = (list(self._net_names) + ["<pad>"] + extra_names)
        n_values = n_base + 1 + len(extra_names)

        def slot(name: str) -> int:
            index = self._net_of.get(name)
            return extra_of[name] if index is None else index

        values = np.zeros(n_values, dtype=bool)
        if initial_state:
            for net, val in initial_state.items():
                values[slot(net)] = bool(val)
        self._settle(values)

        # Extend the loads CSR with empty rows for pad + extra nets.
        csr_count = np.zeros(n_values, dtype=np.int64)
        csr_count[:n_base] = self._csr_count
        csr_start = np.zeros(n_values, dtype=np.int64)
        csr_start[:n_base] = self._csr_start
        csr_gates = self._csr_gates
        out_net = self._out_net
        delays = self._delays
        initial_keys = {slot(net) for net in initial_state} \
            if initial_state else set()
        track_extras = bool(extra_names)
        written = np.zeros(n_values, dtype=bool) if track_extras \
            else None

        stim_nets = np.array([slot(net) for net in stimulus],
                             dtype=np.int64)
        patterns = np.empty((len(stimulus), n_cycles), dtype=bool)
        for k, (net, pattern) in enumerate(stimulus.items()):
            length = len(pattern)
            patterns[k] = [bool(pattern[c % length])
                           for c in range(n_cycles)]

        toggles = np.zeros(n_values, dtype=np.int64)
        buffer = _EventBuffer()
        budget_limit = self.event_budget
        osc_limit = self.oscillation_limit
        spent = 0
        time_parts: List[np.ndarray] = []
        net_parts: List[np.ndarray] = []
        value_parts: List[np.ndarray] = []
        source_parts: List[np.ndarray] = []

        empty_f = np.zeros(0)
        empty_i = np.zeros(0, dtype=np.int64)
        empty_b = np.zeros(0, dtype=bool)

        for cycle in range(n_cycles):
            edge_time = cycle * self.clock_period
            horizon = edge_time + self.clock_period
            buffer.reset()
            toggles[:] = 0
            # Time-sorted pending queue consumed from ``head``; newly
            # scheduled events accumulate in ``buffer`` and merge in
            # lazily (a stable time sort of [queue remainder, overflow]
            # preserves push-counter order on ties, because every
            # queued event was pushed before every overflow event).
            q_time, q_net = empty_f, empty_i
            q_val, q_src = empty_b, empty_i
            head = 0

            # Flip-flops sample their data nets at the edge.
            if self._seq_gates.size:
                sampled = values[self._seq_data]
                changed = sampled != values[self._seq_out]
                if changed.any():
                    buffer.append(
                        edge_time + self._seq_delay[changed],
                        self._seq_out[changed], sampled[changed],
                        self._seq_gates[changed])
            # Primary inputs change shortly after the edge.
            if stim_nets.size:
                new_vals = patterns[:, cycle]
                changed = new_vals != values[stim_nets]
                if changed.any():
                    count = int(np.count_nonzero(changed))
                    buffer.append(
                        np.full(count,
                                edge_time + 0.01 * self.clock_period),
                        stim_nets[changed], new_vals[changed],
                        np.full(count, _SRC_INPUT, dtype=np.int64))

            while head < q_time.size or buffer.n:
                if buffer.n and (head == q_time.size
                                 or buffer.tmin <= q_time[head]
                                 or q_time[head] >= horizon):
                    q_time = np.concatenate(
                        [q_time[head:], buffer.time[:buffer.n]])
                    q_net = np.concatenate(
                        [q_net[head:], buffer.net[:buffer.n]])
                    q_val = np.concatenate(
                        [q_val[head:], buffer.value[:buffer.n]])
                    q_src = np.concatenate(
                        [q_src[head:], buffer.source[:buffer.n]])
                    order = np.argsort(q_time, kind="stable")
                    q_time = q_time[order]
                    q_net = q_net[order]
                    q_val = q_val[order]
                    q_src = q_src[order]
                    head = 0
                    buffer.reset()
                t = q_time[head]
                if t >= horizon:
                    # Everything left is late: apply silently in
                    # (time, push-order) sequence, last write wins.
                    nets_rev = q_net[head:][::-1]
                    vals_rev = q_val[head:][::-1]
                    uniq, first = np.unique(nets_rev,
                                            return_index=True)
                    values[uniq] = vals_rev[first]
                    if track_extras:
                        written[uniq] = True
                    break
                end = head + int(np.searchsorted(q_time[head:], t,
                                                 side="right"))
                wave_net = q_net[head:end]
                wave_val = q_val[head:end]
                wave_src = q_src[head:end]
                head = end

                bounds = self._wave_partition(wave_net, csr_count,
                                              csr_start)
                start = 0
                for stop in bounds:
                    group_net = wave_net[start:stop]
                    group_val = wave_val[start:stop]
                    group_src = wave_src[start:stop]
                    applied = values[group_net] != group_val
                    n_applied = int(np.count_nonzero(applied))
                    if n_applied:
                        applied_net = group_net[applied]
                        # Guards, with scalar-identical raise order:
                        # the budget check precedes the oscillation
                        # check at each event.
                        new_toggles = toggles[applied_net] + 1
                        toggles[applied_net] = new_toggles
                        budget_pos = (budget_limit - spent
                                      if budget_limit is not None
                                      and spent + n_applied
                                      > budget_limit else n_applied)
                        osc_pos = n_applied
                        if osc_limit is not None:
                            over = np.flatnonzero(
                                new_toggles > osc_limit)
                            if over.size:
                                osc_pos = int(over[0])
                        if budget_pos <= osc_pos \
                                and budget_pos < n_applied:
                            run_budget.spent = budget_limit + 1
                            raise SimulationBudgetError(
                                run_budget.exhaustion_message())
                        if osc_pos < n_applied:
                            net_name = value_names[
                                int(applied_net[osc_pos])]
                            raise SimulationBudgetError(
                                f"net {net_name!r} toggled "
                                f"{int(new_toggles[osc_pos])} times in "
                                f"cycle {cycle} (oscillation_limit="
                                f"{osc_limit}): the design is "
                                f"oscillating or glitch-storming")
                        spent += n_applied
                        time_parts.append(np.full(n_applied, t))
                        net_parts.append(applied_net)
                        value_parts.append(group_val[applied])
                        source_parts.append(group_src[applied])
                    values[group_net] = group_val
                    if track_extras:
                        written[group_net] = True
                    if n_applied:
                        counts = csr_count[group_net]
                        total = int(counts.sum())
                        if total:
                            offsets = np.cumsum(counts) - counts
                            ramp = (np.arange(total, dtype=np.int64)
                                    - np.repeat(offsets, counts))
                            grp_gates = csr_gates[
                                np.repeat(csr_start[group_net], counts)
                                + ramp]
                            grp_event = np.repeat(
                                np.arange(group_net.size,
                                          dtype=np.int64), counts)
                            eval_gates = grp_gates[applied[grp_event]]
                            if eval_gates.size:
                                new_out = self._evaluate(eval_gates,
                                                         values)
                                out_nets = out_net[eval_gates]
                                sched = new_out != values[out_nets]
                                if sched.any():
                                    sched_gates = eval_gates[sched]
                                    buffer.append(
                                        t + delays[sched_gates],
                                        out_nets[sched], new_out[sched],
                                        sched_gates)
                    start = stop

        if time_parts:
            times = np.concatenate(time_parts)
            nets = np.concatenate(net_parts)
            vals = np.concatenate(value_parts)
            sources = np.concatenate(source_parts)
        else:
            times = np.zeros(0)
            nets = np.zeros(0, dtype=np.int64)
            vals = np.zeros(0, dtype=bool)
            sources = np.zeros(0, dtype=np.int64)

        final_values = {name: bool(values[k])
                        for k, name in enumerate(self._net_names)}
        for name in extra_names:
            index = extra_of[name]
            if index in initial_keys or (track_extras
                                         and written[index]):
                final_values[name] = bool(values[index])

        return EventTrace(
            times=times, net_indices=nets, values=vals,
            source_indices=sources,
            net_names=tuple(value_names),
            instance_names=self._instance_names,
            final_values=final_values,
            duration=n_cycles * self.clock_period)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CompiledEventEngine({self.netlist.name!r}, "
                f"{self.n_gates} gates)")
