"""Digital circuit design analysis: delay, energy, timing, leakage."""

from .delay import (
    DelayModel,
    delay_variability_trend,
    energy_delay_product,
    fo4_delay_model,
    fo4_load,
)
from .gates import CELL_TYPES, Cell, CellType, library_report, make_cell
from .netlist import Instance, Netlist
from .generators import (
    array_multiplier,
    clocked_datapath,
    decoder,
    equality_comparator,
    estimate_gates_for_target,
    fir_filter,
    full_adder,
    kogge_stone_adder,
    lfsr,
    random_logic,
    ripple_adder,
    soc_netlist,
)
from .ssta import (
    SstaResult,
    StatisticalTimingAnalyzer,
    corner_vs_statistical_margin,
    depth_averaging_study,
    spatially_correlated_ssta,
)
from .simulator import (
    EventDrivenSimulator,
    SimulationResult,
    SwitchingEvent,
    random_stimulus,
)
from .timing import (
    StaticTimingAnalyzer,
    TimingReport,
    critical_delay,
    delay_under_mismatch,
)
from .timing_compiled import BatchTimingResult, CompiledTimingGraph
from .simulator_compiled import CompiledEventEngine, EventTrace
from .energy import (
    PowerReport,
    analytic_power_estimate,
    leakage_fraction_trend,
    power_report,
    switching_energy_of_run,
)
from .sizing import (
    SizingResult,
    WorstCasePenalty,
    energy_vs_delay_curve,
    size_for_delay,
    stage_delay,
    stage_energy,
    worst_case_energy_trend,
    worst_case_penalty,
)
from .voltage_scaling import (
    EnergyDelayModel,
    OperatingPoint,
    minimum_energy_trend,
)
from .gals import (
    GalsPartition,
    gals_trend,
    partition_die,
    single_domain_max_frequency,
)
from .leakage_mgmt import (
    MtcmosResult,
    PowerGatingResult,
    VtcmosResult,
    apply_vtcmos_standby,
    assign_dual_vth,
    body_bias_trend_on_design,
    insert_power_gating,
    leakage_ratio_for_vth_delta,
)

__all__ = [
    "DelayModel", "delay_variability_trend", "energy_delay_product",
    "fo4_delay_model", "fo4_load",
    "CELL_TYPES", "Cell", "CellType", "library_report", "make_cell",
    "Instance", "Netlist",
    "array_multiplier", "clocked_datapath", "decoder",
    "equality_comparator", "estimate_gates_for_target", "fir_filter",
    "full_adder",
    "kogge_stone_adder", "lfsr", "random_logic", "ripple_adder",
    "soc_netlist",
    "SstaResult", "StatisticalTimingAnalyzer",
    "corner_vs_statistical_margin", "depth_averaging_study",
    "spatially_correlated_ssta",
    "EventDrivenSimulator", "SimulationResult", "SwitchingEvent",
    "random_stimulus",
    "StaticTimingAnalyzer", "TimingReport", "critical_delay",
    "delay_under_mismatch",
    "BatchTimingResult", "CompiledTimingGraph",
    "CompiledEventEngine", "EventTrace",
    "PowerReport", "analytic_power_estimate", "leakage_fraction_trend",
    "power_report", "switching_energy_of_run",
    "SizingResult", "WorstCasePenalty", "energy_vs_delay_curve",
    "size_for_delay", "stage_delay", "stage_energy",
    "worst_case_energy_trend", "worst_case_penalty",
    "EnergyDelayModel", "OperatingPoint", "minimum_energy_trend",
    "GalsPartition", "gals_trend", "partition_die",
    "single_domain_max_frequency",
    "MtcmosResult", "PowerGatingResult", "VtcmosResult",
    "apply_vtcmos_standby", "assign_dual_vth",
    "body_bias_trend_on_design", "insert_power_gating",
    "leakage_ratio_for_vth_delta",
]
