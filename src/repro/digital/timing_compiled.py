"""Compiled timing graph: batched (vectorized) STA over all MC samples.

:class:`~repro.digital.timing.StaticTimingAnalyzer` walks Python
dicts gate by gate; Monte Carlo SSTA repeats that walk per sample, so
sign-off-grade quantiles (q = 0.999 needs thousands of dies) are out
of reach of the per-sample loop.  This module lowers a
:class:`~repro.digital.netlist.Netlist` *once* into flat numpy arrays
-- a levelized topological schedule, per-gate fanin indices, load
capacitances and one array-valued :class:`~repro.digital.delay
.DelayModel` -- and then evaluates **all samples at once** over
``(n_samples, n_gates)`` arrays: levelized arrival propagation,
per-sample argmax predecessor tracking for critical paths, and
criticality counts.

Equivalence contract with the scalar oracle
-------------------------------------------
The scalar :class:`StaticTimingAnalyzer` stays as the reference; for
the same per-gate V_T offsets the batched path reproduces it exactly
(to float64 tolerance), including its tie-breaking:

* the scalar analyzer picks the latest input by ``max`` over
  ``(arrival, net_name)`` tuples, i.e. ties go to the
  lexicographically largest net name -- the compiled graph sorts each
  gate's fanin pins by net name descending so ``argmax`` (first max)
  agrees;
* the scalar endpoint is the first maximum of the instance-arrival
  dict in topological insertion order -- the compiled gate axis *is*
  that topological order, so ``argmax`` over it agrees;
* the delay formula is not duplicated: compilation builds each gate's
  :meth:`Cell.delay_model` and stacks them into a single array-valued
  :class:`DelayModel`, whose (elementwise) :meth:`DelayModel.delay`
  both paths share.

Callers pass V_T offsets as a ``(n_samples, n_gates)`` array with
gate columns in **netlist insertion order** (``list(netlist
.instances)``) -- the order Monte Carlo drivers draw in -- and the
graph permutes internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..robust.errors import ModelDomainError, ModelIndexError
from ..robust.validate import check_finite, check_non_negative
from .delay import DelayModel
from .netlist import Netlist

__all__ = ["CompiledTimingGraph", "BatchTimingResult"]

ArrayLike = Union[float, np.ndarray]

#: Fanin codes below zero: a primary-input / undriven net (arrival 0)
#: and a padding slot (never wins the argmax).
_PIN_INPUT = -1
_PIN_PAD = -2


@dataclass
class BatchTimingResult:
    """All-sample result of one :meth:`CompiledTimingGraph.evaluate`.

    Gate-indexed arrays are in the graph's internal topological
    order; use the name-based accessors (:meth:`critical_path`,
    :meth:`criticality`) rather than indexing them directly.
    """

    critical_delays: np.ndarray          # (n_samples,) [s]
    names_topo: Tuple[str, ...]          # gate axis of the arrays below
    names: Tuple[str, ...]               # netlist insertion order
    gate_arrivals: np.ndarray            # (n_samples, n_gates) [s]
    end_index: np.ndarray                # (n_samples,) topo gate index
    predecessor: np.ndarray              # (n_samples, n_gates) topo idx | -1
    _topo_of: Dict[str, int] = field(default_factory=dict, repr=False)
    _counts: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def n_samples(self) -> int:
        """Number of Monte Carlo samples evaluated."""
        return int(self.critical_delays.shape[0])

    def critical_path(self, sample: int = 0) -> Tuple[str, ...]:
        """Instance names on ``sample``'s critical path, start to end."""
        n = self.n_samples
        if not -n <= sample < n:
            raise ModelIndexError(f"sample {sample} out of range for {n}")
        if not self.names_topo:
            return ()
        path: List[int] = []
        cursor = int(self.end_index[sample])
        while cursor >= 0:
            path.append(cursor)
            cursor = int(self.predecessor[sample, cursor])
        return tuple(self.names_topo[idx] for idx in reversed(path))

    def criticality_counts(self) -> np.ndarray:
        """Per-gate critical-path hit counts (topological order)."""
        if self._counts is None:
            n_gates = len(self.names_topo)
            counts = np.zeros(n_gates, dtype=np.int64)
            if n_gates and self.n_samples:
                sample_idx = np.arange(self.n_samples)
                cursor = self.end_index.astype(np.int64).copy()
                active = np.ones(self.n_samples, dtype=bool)
                while active.any():
                    np.add.at(counts, cursor[active], 1)
                    cursor[active] = self.predecessor[
                        sample_idx[active], cursor[active]]
                    active &= cursor >= 0
            self._counts = counts
        return self._counts

    def criticality(self) -> Dict[str, float]:
        """P(gate on the critical path), instances with p > 0 only.

        Keys follow netlist insertion order, matching the scalar SSTA
        loop's accounting exactly under identical samples.
        """
        counts = self.criticality_counts()
        n = max(self.n_samples, 1)
        return {name: counts[self._topo_of[name]] / n
                for name in self.names
                if counts[self._topo_of[name]]}


class CompiledTimingGraph:
    """A :class:`Netlist` lowered to flat arrays for batched STA.

    Compilation is one topological pass (O(gates + pins)); every
    subsequent :meth:`evaluate` call is pure array work over
    ``(n_samples, n_gates)`` and costs no per-gate Python beyond the
    level loop (depth iterations).

    Parameters
    ----------
    netlist:
        Design to compile.  Mutating the netlist afterwards does not
        update the compiled graph -- recompile.
    wire_cap_per_fanout:
        Wire-load estimate per fanout [F], folded into the per-gate
        load capacitances at compile time.
    """

    def __init__(self, netlist: Netlist,
                 wire_cap_per_fanout: float = 0.5e-15):
        check_non_negative("wire_cap_per_fanout", wire_cap_per_fanout)
        self.netlist = netlist
        self.wire_cap_per_fanout = float(wire_cap_per_fanout)
        self.node = netlist.node

        order = netlist.topological_order()
        self.names_topo: Tuple[str, ...] = tuple(
            inst.name for inst in order)
        self.names: Tuple[str, ...] = tuple(netlist.instances)
        topo_of = {name: k for k, name in enumerate(self.names_topo)}
        self._topo_of = topo_of
        # Column scatter: external (insertion-order) offset columns
        # land at these topological positions.
        scatter = np.array([topo_of[name] for name in self.names],
                           dtype=np.int64)
        self._gather = np.empty_like(scatter)
        self._gather[scatter] = np.arange(len(scatter))
        n_gates = len(order)
        self.n_gates = n_gates

        # One array-valued delay model for the whole netlist, stacked
        # from each gate's own Cell.delay_model so both paths share
        # the exact same formula composition.
        models = [
            inst.cell.delay_model(netlist.fanout_capacitance(
                inst.output, self.wire_cap_per_fanout))
            for inst in order]
        if n_gates:
            self._delay_model: Optional[DelayModel] = DelayModel(
                node=self.node,
                drive_width=np.array(
                    [m.drive_width for m in models]),
                load_capacitance=np.array(
                    [m.load_capacitance for m in models]),
                prefactor=models[0].prefactor,
            )
        else:
            self._delay_model = None

        # Fanin pin table: per gate, (net name, driver topo index).
        # Sequential cells get a single pseudo primary-input pin (the
        # clk-to-q launch); pins are sorted by net name *descending*
        # so argmax tie-breaking matches the scalar analyzer's
        # max-over-(arrival, net) tuples.
        pin_lists: List[List[int]] = []
        levels = np.zeros(n_gates, dtype=np.int64)
        for g, inst in enumerate(order):
            if inst.is_sequential:
                pin_lists.append([_PIN_INPUT])
                levels[g] = 0
                continue
            pins: List[Tuple[str, int]] = []
            for net in inst.inputs:
                driver = netlist.driver_of(net)
                pins.append((net, topo_of[driver.name]
                             if driver is not None else _PIN_INPUT))
            pins.sort(key=lambda pin: pin[0], reverse=True)
            pin_lists.append([code for _, code in pins])
            driver_levels = [levels[code] for _, code in pins
                             if code >= 0]
            levels[g] = 1 + max(driver_levels) if driver_levels else 0

        max_fanin = max((len(p) for p in pin_lists), default=1)
        fanin = np.full((n_gates, max_fanin), _PIN_PAD, dtype=np.int64)
        for g, pins in enumerate(pin_lists):
            fanin[g, :len(pins)] = pins
        self._fanin = fanin
        self._levels: List[np.ndarray] = [
            np.flatnonzero(levels == lv)
            for lv in range(int(levels.max()) + 1 if n_gates else 0)]

    # --- evaluation ------------------------------------------------------

    def _normalize_inputs(self, vth_offsets: Optional[ArrayLike],
                          global_vth_offset: ArrayLike
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Validate and broadcast offsets to ``(n_samples, n_gates)``."""
        glob = np.atleast_1d(np.asarray(global_vth_offset, dtype=float))
        if glob.ndim != 1:
            raise ModelDomainError(
                "global_vth_offset must be a scalar or a 1-D "
                f"(n_samples,) array, got shape {glob.shape}")
        check_finite("global_vth_offset", glob)
        if vth_offsets is None:
            offsets = np.zeros((glob.shape[0], self.n_gates))
        else:
            offsets = np.asarray(vth_offsets, dtype=float)
            if offsets.ndim == 1:
                offsets = offsets[np.newaxis, :]
            if offsets.ndim != 2 or offsets.shape[1] != self.n_gates:
                raise ModelDomainError(
                    f"vth_offsets must have shape (n_samples, "
                    f"{self.n_gates}), got {np.shape(vth_offsets)}")
            check_finite("vth_offsets", offsets)
        if glob.shape[0] == 1 and offsets.shape[0] > 1:
            glob = np.broadcast_to(glob, (offsets.shape[0],))
        if glob.shape[0] != offsets.shape[0]:
            raise ModelDomainError(
                f"global_vth_offset has {glob.shape[0]} samples but "
                f"vth_offsets has {offsets.shape[0]}")
        return offsets, glob

    def evaluate(self, vth_offsets: Optional[ArrayLike] = None,
                 global_vth_offset: ArrayLike = 0.0
                 ) -> BatchTimingResult:
        """Batched STA over every sample at once.

        Parameters
        ----------
        vth_offsets:
            ``(n_samples, n_gates)`` per-gate V_T shifts [V], gate
            columns in netlist insertion order; ``None`` for nominal.
        global_vth_offset:
            Inter-die shift [V]: scalar or ``(n_samples,)`` array.

        Returns
        -------
        BatchTimingResult
            Per-sample critical delays, predecessor matrix (critical
            paths) and criticality counts.
        """
        offsets, glob = self._normalize_inputs(
            vth_offsets, global_vth_offset)
        n_samples = offsets.shape[0]
        n_gates = self.n_gates
        if n_gates == 0:
            zeros = np.zeros((n_samples, 0))
            return BatchTimingResult(
                critical_delays=np.zeros(n_samples),
                names_topo=(), names=(), gate_arrivals=zeros,
                end_index=np.full(n_samples, -1, dtype=np.int64),
                predecessor=zeros.astype(np.int64),
                _topo_of=dict(self._topo_of))

        vth_eff = (self.node.vth + glob[:, np.newaxis]
                   + offsets[:, self._gather])
        delays = np.asarray(self._delay_model.delay(vth=vth_eff))

        arrival = np.zeros((n_samples, n_gates))
        pred = np.full((n_samples, n_gates), -1, dtype=np.int64)
        sample_idx = np.arange(n_samples)
        for gate_idx in self._levels:
            fan = self._fanin[gate_idx]                 # (L, F)
            fan_arrival = arrival[:, np.maximum(fan, 0)]  # (S, L, F)
            fan_arrival[:, fan == _PIN_INPUT] = 0.0
            fan_arrival[:, fan == _PIN_PAD] = -np.inf
            win = np.argmax(fan_arrival, axis=2)        # (S, L)
            latest = np.take_along_axis(
                fan_arrival, win[:, :, np.newaxis], axis=2)[:, :, 0]
            arrival[:, gate_idx] = latest + delays[:, gate_idx]
            winner = fan[np.arange(len(gate_idx))[np.newaxis, :], win]
            pred[:, gate_idx] = np.maximum(winner, -1)

        end = np.argmax(arrival, axis=1)
        return BatchTimingResult(
            critical_delays=arrival[sample_idx, end],
            names_topo=self.names_topo, names=self.names,
            gate_arrivals=arrival,
            end_index=end.astype(np.int64),
            predecessor=pred,
            _topo_of=dict(self._topo_of))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CompiledTimingGraph({self.netlist.name!r}, "
                f"{self.n_gates} gates, {len(self._levels)} levels)")
