"""Gate-level netlist representation.

A :class:`Netlist` is a directed graph of sized cells connected by
named nets.  It is consumed by the static timing analyzer
(:mod:`repro.digital.timing`), the event-driven simulator
(:mod:`repro.digital.simulator`) and the SWAN substrate-noise flow
(:mod:`repro.substrate.swan`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..technology.node import TechnologyNode
from .gates import CELL_TYPES, Cell, make_cell
from ..robust.errors import ModelDomainError


@dataclass
class Instance:
    """One placed gate: a cell with named input nets and an output net."""

    name: str
    cell: Cell
    inputs: Tuple[str, ...]
    output: str

    @property
    def is_sequential(self) -> bool:
        """True for flip-flops and latches."""
        return self.cell.cell_type.is_sequential


class Netlist:
    """A combinational / sequential gate-level netlist.

    Nets are plain strings; primary inputs are declared explicitly,
    every instance output defines its net, and any net that is never
    consumed is a primary output unless declared otherwise.

    Examples
    --------
    >>> from repro.technology import get_node
    >>> netlist = Netlist(get_node("65nm"))
    >>> netlist.add_input("a"); netlist.add_input("b")
    >>> _ = netlist.add_gate("NAND2", ["a", "b"], "y")
    >>> netlist.evaluate({"a": True, "b": True})["y"]
    False
    """

    def __init__(self, node: TechnologyNode, name: str = "top"):
        self.node = node
        self.name = name
        self.instances: Dict[str, Instance] = {}
        self.primary_inputs: List[str] = []
        self._declared_outputs: List[str] = []
        self._net_driver: Dict[str, str] = {}
        # net -> instance names loading it, in insertion order (the
        # fanout index that keeps loads_of/fanout_capacitance O(fanout)
        # instead of a scan over every instance).
        self._net_loads: Dict[str, List[str]] = {}
        self._counter = 0
        self._graph_cache: Optional[nx.DiGraph] = None
        self._topo_cache: Optional[List[str]] = None

    def _invalidate_caches(self) -> None:
        """Drop derived structure after a mutation."""
        self._graph_cache = None
        self._topo_cache = None

    # --- construction -----------------------------------------------------

    def add_input(self, net: str) -> str:
        """Declare a primary input net."""
        if net in self._net_driver:
            raise ModelDomainError(f"net {net!r} is already driven")
        if net in self.primary_inputs:
            raise ModelDomainError(f"input {net!r} already declared")
        self.primary_inputs.append(net)
        self._invalidate_caches()
        return net

    def add_inputs(self, nets: Iterable[str]) -> List[str]:
        """Declare several primary inputs."""
        return [self.add_input(net) for net in nets]

    def add_output(self, net: str) -> str:
        """Declare a primary output net."""
        self._declared_outputs.append(net)
        return net

    def add_gate(self, cell_name: str, inputs: Sequence[str],
                 output: Optional[str] = None, drive: float = 1.0,
                 instance_name: Optional[str] = None) -> Instance:
        """Add a gate instance and return it.

        ``output`` defaults to an auto-generated net name.
        """
        if output is None:
            output = f"n{self._counter}"
        if output in self._net_driver or output in self.primary_inputs:
            raise ModelDomainError(f"net {output!r} is already driven")
        if instance_name is None:
            instance_name = f"u{self._counter}"
        if instance_name in self.instances:
            raise ModelDomainError(f"instance {instance_name!r} already exists")
        self._counter += 1
        cell = make_cell(cell_name, self.node, drive)
        if len(inputs) != cell.cell_type.n_inputs:
            raise ModelDomainError(
                f"{cell_name} takes {cell.cell_type.n_inputs} inputs, "
                f"got {len(inputs)}")
        instance = Instance(name=instance_name, cell=cell,
                            inputs=tuple(inputs), output=output)
        self.instances[instance_name] = instance
        self._net_driver[output] = instance_name
        seen = set()
        for net in instance.inputs:
            if net not in seen:
                self._net_loads.setdefault(net, []).append(instance_name)
                seen.add(net)
        self._invalidate_caches()
        return instance

    # --- structure queries --------------------------------------------------

    @property
    def nets(self) -> List[str]:
        """All nets in the design."""
        seen = dict.fromkeys(self.primary_inputs)
        for instance in self.instances.values():
            for net in instance.inputs:
                seen.setdefault(net)
            seen.setdefault(instance.output)
        return list(seen)

    @property
    def primary_outputs(self) -> List[str]:
        """Declared outputs, or nets nothing consumes."""
        if self._declared_outputs:
            return list(self._declared_outputs)
        consumed = {net for inst in self.instances.values()
                    for net in inst.inputs}
        return [inst.output for inst in self.instances.values()
                if inst.output not in consumed]

    def driver_of(self, net: str) -> Optional[Instance]:
        """Instance driving ``net`` (None for primary inputs)."""
        name = self._net_driver.get(net)
        return self.instances[name] if name else None

    def loads_of(self, net: str) -> List[Instance]:
        """Instances with ``net`` as an input (O(fanout) via index)."""
        return [self.instances[name]
                for name in self._net_loads.get(net, ())]

    def fanout_capacitance(self, net: str,
                           wire_cap_per_fanout: float = 0.5e-15) -> float:
        """Capacitive load on ``net`` [F]: pin caps + wire estimate."""
        loads = self.loads_of(net)
        pin_cap = sum(inst.cell.input_capacitance
                      * inst.inputs.count(net) for inst in loads)
        return pin_cap + wire_cap_per_fanout * max(len(loads), 1)

    def gate_count(self) -> int:
        """Number of gate instances."""
        return len(self.instances)

    def to_graph(self) -> nx.DiGraph:
        """Directed graph: instance -> instance edges through nets.

        The graph is rebuilt only after a mutation; callers receive a
        fresh copy each time so they may edit it freely.
        """
        if self._graph_cache is None:
            graph = nx.DiGraph()
            graph.add_nodes_from(self.instances)
            for instance in self.instances.values():
                for net in instance.inputs:
                    driver = self._net_driver.get(net)
                    if driver is not None:
                        graph.add_edge(driver, instance.name, net=net)
            self._graph_cache = graph
        return nx.DiGraph(self._graph_cache)

    def topological_order(self) -> List[Instance]:
        """Instances in topological order (cached until mutation).

        Sequential cells break cycles: edges *out of* flip-flops are
        treated as new timing startpoints, so feedback through DFFs is
        legal.
        """
        if self._topo_cache is None:
            cut = self.to_graph()
            # Remove incoming edges of sequential cells to cut
            # registered loops.
            for name, instance in self.instances.items():
                if instance.is_sequential:
                    cut.remove_edges_from(list(cut.in_edges(name)))
            try:
                self._topo_cache = list(nx.topological_sort(cut))
            except nx.NetworkXUnfeasible:
                raise ModelDomainError(
                    "netlist contains a combinational loop") from None
        return [self.instances[name] for name in self._topo_cache]

    # --- evaluation -----------------------------------------------------------

    def evaluate(self, input_values: Dict[str, bool],
                 state: Optional[Dict[str, bool]] = None
                 ) -> Dict[str, bool]:
        """Evaluate all nets for the given primary-input values.

        ``state`` supplies current flip-flop outputs (by output net);
        missing state bits default to False.  Returns every net value.
        """
        missing = [net for net in self.primary_inputs
                   if net not in input_values]
        if missing:
            raise ModelDomainError(f"missing input values for {missing}")
        values: Dict[str, bool] = {net: bool(v)
                                   for net, v in input_values.items()}
        state = state or {}
        for instance in self.topological_order():
            if instance.is_sequential:
                values[instance.output] = bool(
                    state.get(instance.output, False))
                continue
            ins = tuple(values.get(net, False) for net in instance.inputs)
            values[instance.output] = instance.cell.cell_type.evaluate(ins)
        return values

    def step(self, input_values: Dict[str, bool],
             state: Optional[Dict[str, bool]] = None
             ) -> Tuple[Dict[str, bool], Dict[str, bool]]:
        """One clock cycle: evaluate, then capture DFF inputs.

        Returns (net values, next state).  DFF input pin 1 is the data
        pin (pin 0 is treated as enable and ignored here).
        """
        values = self.evaluate(input_values, state)
        next_state = {}
        for instance in self.instances.values():
            if instance.is_sequential:
                data_net = instance.inputs[-1]
                next_state[instance.output] = values.get(data_net, False)
        return values, next_state

    # --- aggregate electrical views -----------------------------------------

    def total_leakage_power(self) -> float:
        """Sum of cell leakage powers [W]."""
        return sum(inst.cell.leakage_power()
                   for inst in self.instances.values())

    def total_area(self) -> float:
        """Sum of cell footprints [m^2]."""
        return sum(inst.cell.area() for inst in self.instances.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Netlist({self.name!r}, {self.gate_count()} gates, "
                f"{len(self.primary_inputs)} inputs, "
                f"{len(self.primary_outputs)} outputs)")
