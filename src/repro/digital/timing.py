"""Static timing analysis over gate-level netlists.

Computes per-net arrival times, the critical path and slack, with
optional per-die V_T shifts so the Fig. 4 / section 3.1 variability
analyses can run on whole circuits instead of single gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .netlist import Instance, Netlist
from ..robust.rng import resolve_rng
from ..robust.validate import validated


@dataclass(frozen=True)
class TimingReport:
    """Result of one STA run."""

    arrival_times: Dict[str, float]     # net -> latest arrival [s]
    critical_path: Tuple[str, ...]      # instance names, start to end
    critical_delay: float               # [s]

    def max_frequency(self, clock_overhead: float = 0.0) -> float:
        """Highest clock [Hz] the critical path supports."""
        total = self.critical_delay + clock_overhead
        if total <= 0:
            return float("inf")
        return 1.0 / total

    def slack(self, clock_period: float) -> float:
        """Timing slack [s] at ``clock_period``."""
        return clock_period - self.critical_delay


class StaticTimingAnalyzer:
    """Topological-order STA with load-dependent gate delays.

    Parameters
    ----------
    netlist:
        Design to analyze.
    wire_cap_per_fanout:
        Wire-load estimate per fanout [F].
    vth_offsets:
        Optional per-instance V_T shifts [V] (mismatch sampling);
        ``global_vth_offset`` shifts every gate (inter-die).
    """

    def __init__(self, netlist: Netlist,
                 wire_cap_per_fanout: float = 0.5e-15,
                 vth_offsets: Optional[Dict[str, float]] = None,
                 global_vth_offset: float = 0.0):
        self.netlist = netlist
        self.wire_cap_per_fanout = wire_cap_per_fanout
        self.vth_offsets = vth_offsets or {}
        self.global_vth_offset = global_vth_offset

    def gate_delay(self, instance: Instance) -> float:
        """Delay of one instance with its V_T shift applied [s]."""
        load = self.netlist.fanout_capacitance(
            instance.output, self.wire_cap_per_fanout)
        offset = (self.global_vth_offset
                  + self.vth_offsets.get(instance.name, 0.0))
        return instance.cell.delay(load, vth_offset=offset)

    def analyze(self) -> TimingReport:
        """Run STA; sequential cells are timing start/end points."""
        arrival: Dict[str, float] = {
            net: 0.0 for net in self.netlist.primary_inputs}
        best_pred: Dict[str, Optional[str]] = {}
        inst_arrival: Dict[str, float] = {}

        for instance in self.netlist.topological_order():
            if instance.is_sequential:
                # Launch point: clk-to-q only.
                start = self.gate_delay(instance)
                arrival[instance.output] = start
                inst_arrival[instance.name] = start
                best_pred[instance.name] = None
                continue
            input_arrivals = [
                (arrival.get(net, 0.0), net) for net in instance.inputs]
            latest, latest_net = max(input_arrivals)
            out_time = latest + self.gate_delay(instance)
            arrival[instance.output] = max(
                arrival.get(instance.output, 0.0), out_time)
            inst_arrival[instance.name] = out_time
            driver = self.netlist.driver_of(latest_net)
            best_pred[instance.name] = driver.name if driver else None

        if not inst_arrival:
            return TimingReport({}, (), 0.0)

        end_name = max(inst_arrival, key=inst_arrival.get)
        path: List[str] = []
        cursor: Optional[str] = end_name
        while cursor is not None:
            path.append(cursor)
            cursor = best_pred.get(cursor)
        path.reverse()
        return TimingReport(
            arrival_times=arrival,
            critical_path=tuple(path),
            critical_delay=inst_arrival[end_name],
        )


@validated(global_vth_offset="finite")
def critical_delay(netlist: Netlist, global_vth_offset: float = 0.0,
                   vth_offsets: Optional[Dict[str, float]] = None) -> float:
    """Convenience wrapper: critical-path delay [s]."""
    analyzer = StaticTimingAnalyzer(
        netlist, vth_offsets=vth_offsets,
        global_vth_offset=global_vth_offset)
    return analyzer.analyze().critical_delay


def delay_under_mismatch(netlist: Netlist, sigma_vth: float,
                         n_samples: int = 100,
                         seed: Optional[int] = None,
                         vectorized: bool = True) -> List[float]:
    """MC critical delays with independent per-gate V_T mismatch [s].

    The intra-die face of the Fig. 4 analysis: per-gate randomness
    makes the *max over paths* systematically slower than nominal.

    The default path compiles the netlist once
    (:class:`~repro.digital.timing_compiled.CompiledTimingGraph`) and
    evaluates every sample in one batched call; ``vectorized=False``
    keeps the per-sample scalar loop as the equivalence oracle.  Both
    consume identical variates under a fixed seed (one
    ``(n_samples, n_gates)`` normal block vs. per-sample rows of the
    same stream).
    """
    import numpy as np

    from ..robust.validate import check_count, check_non_negative
    check_non_negative("sigma_vth", sigma_vth)
    n_samples = check_count("n_samples", n_samples)
    rng = resolve_rng(seed=seed)
    names = list(netlist.instances)
    if vectorized:
        from .timing_compiled import CompiledTimingGraph
        draws = rng.normal(0.0, sigma_vth,
                           size=(n_samples, len(names)))
        batch = CompiledTimingGraph(netlist).evaluate(draws)
        return [float(value) for value in batch.critical_delays]
    delays = []
    for _ in range(n_samples):
        offsets = dict(zip(names, rng.normal(0.0, sigma_vth,
                                             size=len(names))))
        delays.append(critical_delay(netlist, vth_offsets=offsets))
    return delays
