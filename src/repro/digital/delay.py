"""Gate-delay modelling and its V_T sensitivity (Fig. 4 of the paper).

The alpha-power-law gate delay

    t_d = K * C_L * V_DD / (V_DD - V_T)^alpha

makes the paper's section-3.1 point directly: the *relative* delay
sensitivity to a V_T shift,

    dt_d/t_d = alpha * dV_T / (V_DD - V_T),

grows as the overdrive V_DD - V_T shrinks with scaling.  A 50 mV shift
is a minor nuisance at 350 nm (V_DD - V_T = 2.7 V) and a first-order
effect at 65 nm (0.78 V).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..robust.errors import ModelDomainError
from ..robust.rng import resolve_rng
from ..robust.validate import check_non_negative, check_positive, validated
from ..technology.node import TechnologyNode
from ..devices.capacitance import (inverter_input_capacitance,
                                   inverter_self_load)


@dataclass(frozen=True)
class DelayModel:
    """Alpha-power-law delay model for a gate in one technology.

    Parameters
    ----------
    node:
        Technology node.
    drive_width:
        NMOS width of the driving gate [m].
    load_capacitance:
        Output load [F].  Use :func:`fo4_load` for an FO4 setup.
    prefactor:
        Dimensionless fit constant K (~0.5 for a static CMOS gate,
        absorbing the switching trajectory).
    """

    node: TechnologyNode
    drive_width: float
    load_capacitance: float
    prefactor: float = 0.5

    def __post_init__(self) -> None:
        check_positive("drive_width", self.drive_width)
        check_non_negative("load_capacitance", self.load_capacitance)
        check_positive("prefactor", self.prefactor)

    @validated(_result_finite=True, vth="finite", vdd="positive")
    def delay(self, vth: Optional[float] = None,
              vdd: Optional[float] = None) -> float:
        """Gate delay [s] at the given (or nominal) V_T and V_DD.

        Every term is elementwise, so ``vth``/``vdd`` (and the model's
        own ``drive_width``/``load_capacitance``) may be scalars or
        broadcastable numpy arrays; scalar inputs return a plain
        float.  The batched timing engine
        (:mod:`repro.digital.timing_compiled`) evaluates one such call
        over a ``(n_samples, n_gates)`` V_T grid, so the scalar and
        vectorized paths share this single delay formula.
        """
        vth = vth if vth is not None else self.node.vth
        vdd = vdd if vdd is not None else self.node.vdd
        if np.any(np.asarray(vdd) <= np.asarray(vth)):
            raise ModelDomainError(
                f"vdd ({vdd}) must exceed vth ({vth}) for the gate to switch")
        mu_cox_wl = (self.node.mobility_n * self.node.cox
                     * self.drive_width / self.node.feature_size)
        alpha = self.node.alpha_power
        drive = 0.5 * mu_cox_wl * vdd ** (2.0 - alpha) \
            * (vdd - vth) ** alpha
        total_load = self.load_capacitance + inverter_self_load(
            self.node, self.drive_width)
        return self.prefactor * total_load * vdd / drive

    def delay_sensitivity(self, vth: Optional[float] = None) -> float:
        """Relative delay change per volt of V_T shift [1/V].

        (1/t_d) * dt_d/dV_T = alpha / (V_DD - V_T): the growing curve
        of Fig. 4.
        """
        vth = vth if vth is not None else self.node.vth
        return self.node.alpha_power / (self.node.vdd - vth)

    @validated(_result_finite=True, sigma_vth="non-negative",
               n_sigma="non-negative")
    def delay_spread(self, sigma_vth: float,
                     n_sigma: float = 3.0) -> Dict[str, float]:
        """Delay statistics under a Gaussian V_T spread.

        Evaluates the exact delay at +/- ``n_sigma`` and the linearized
        sigma; returns absolute and relative numbers.
        """
        nominal = self.delay()
        slow = self.delay(vth=self.node.vth + n_sigma * sigma_vth)
        fast = self.delay(vth=self.node.vth - n_sigma * sigma_vth)
        sigma_rel = self.delay_sensitivity() * sigma_vth
        return {
            "nominal_s": nominal,
            "slow_s": slow,
            "fast_s": fast,
            "worst_over_nominal": slow / nominal,
            "sigma_delay_rel": sigma_rel,
            "spread_rel": (slow - fast) / nominal,
        }

    def monte_carlo_delays(self, sigma_vth: float, n_samples: int = 1000,
                           seed: Optional[int] = None) -> np.ndarray:
        """Sample the delay distribution under Gaussian V_T variation."""
        rng = resolve_rng(seed=seed)
        shifts = rng.normal(0.0, sigma_vth, size=n_samples)
        # Clip shifts that would put VT above VDD (non-functional gate).
        max_shift = 0.95 * self.node.overdrive
        shifts = np.clip(shifts, -self.node.vth * 0.9, max_shift)
        return np.asarray(self.delay(vth=self.node.vth + shifts))


@validated(drive_width="positive")
def fo4_load(node: TechnologyNode, drive_width: float) -> float:
    """Fan-out-of-4 load capacitance [F] for a driver of ``drive_width``."""
    return 4.0 * inverter_input_capacitance(node, drive_width)


def fo4_delay_model(node: TechnologyNode,
                    drive_width: Optional[float] = None) -> DelayModel:
    """The canonical FO4 inverter delay model for ``node``."""
    width = drive_width if drive_width is not None \
        else 2.0 * node.feature_size
    return DelayModel(node=node, drive_width=width,
                      load_capacitance=fo4_load(node, width))


def delay_variability_trend(nodes: Sequence[TechnologyNode],
                            delta_vth: float = 0.05,
                            use_node_sigma: bool = False
                            ) -> List[Dict[str, float]]:
    """Regenerate Fig. 4: delay impact of a V_T shift across nodes.

    With ``use_node_sigma`` the shift is each node's own minimum-device
    mismatch sigma instead of a fixed ``delta_vth`` (50 mV default,
    matching the paper's introduction example).
    """
    rows = []
    for node in nodes:
        model = fo4_delay_model(node)
        shift = (node.sigma_vt_min_device if use_node_sigma
                 else delta_vth)
        nominal = model.delay()
        shifted = model.delay(vth=node.vth + shift)
        rows.append({
            "node": node.name,
            "feature_size_nm": node.feature_size * 1e9,
            "overdrive_V": node.overdrive,
            "fo4_delay_ps": nominal * 1e12,
            "delta_vth_mV": shift * 1e3,
            "delay_increase_pct": (shifted / nominal - 1.0) * 100.0,
            "sensitivity_per_V": model.delay_sensitivity(),
        })
    return rows


@validated(_result_finite=True, vdd="positive", vth="finite")
def energy_delay_product(node: TechnologyNode,
                         vdd: Optional[float] = None,
                         vth: Optional[float] = None) -> Dict[str, float]:
    """Energy, delay and their product for an FO4 stage.

    Supports V_DD/V_T co-sweeps (e.g. finding the EDP-optimal supply,
    an ingredient of the section-3 energy-delay trade-off analysis).
    """
    vdd = vdd if vdd is not None else node.vdd
    vth = vth if vth is not None else node.vth
    model = fo4_delay_model(node)
    delay = model.delay(vth=vth, vdd=vdd)
    load = model.load_capacitance + inverter_self_load(
        node, model.drive_width)
    energy = load * vdd ** 2
    return {
        "delay_s": delay,
        "energy_J": energy,
        "edp_Js": energy * delay,
    }
