"""Energy and power accounting: dynamic, short-circuit and leakage.

Supports the paper's two headline digital-power claims:

* the **leakage fraction** of total power grows with scaling until it
  rivals dynamic power near the 65 nm node (sections 2.1-2.2,
  benchmark Tab B), and
* dynamic energy is C*V_DD^2, *independent of V_T* -- the reason
  worst-case oversizing for V_T variation costs real energy
  (section 3.1, see :mod:`repro.digital.sizing`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..technology.node import TechnologyNode
from ..devices.leakage import gate_leakage_per_gate
from .netlist import Netlist
from .simulator import SimulationResult
from ..robust.errors import ModelDomainError
from ..robust.validate import validated


@dataclass(frozen=True)
class PowerReport:
    """Power breakdown of one design at one operating point [W]."""

    dynamic: float
    short_circuit: float
    subthreshold_leakage: float
    gate_leakage: float

    @property
    def leakage(self) -> float:
        """Total static power [W]."""
        return self.subthreshold_leakage + self.gate_leakage

    @property
    def total(self) -> float:
        """Total power [W]."""
        return self.dynamic + self.short_circuit + self.leakage

    @property
    def leakage_fraction(self) -> float:
        """Static share of total power."""
        if self.total <= 0:
            return 0.0
        return self.leakage / self.total


@validated(wire_cap_per_fanout="non-negative")
def switching_energy_of_run(netlist: Netlist,
                            result: SimulationResult,
                            wire_cap_per_fanout: float = 0.5e-15) -> float:
    """Dynamic energy [J] of a simulated event stream.

    Each driver-attributed event charges/discharges that net's load +
    the driver parasitic; C*V^2 is counted per *pair* of transitions,
    i.e. C*V^2/2 per event.
    """
    vdd = netlist.node.vdd
    energy = 0.0
    for event in result.events:
        driver = netlist.driver_of(event.net)
        load = netlist.fanout_capacitance(event.net, wire_cap_per_fanout)
        if driver is not None:
            load += driver.cell.output_parasitic
        energy += 0.5 * load * vdd ** 2
    return energy


def power_report(netlist: Netlist, result: SimulationResult,
                 short_circuit_fraction: float = 0.1,
                 wire_cap_per_fanout: float = 0.5e-15) -> PowerReport:
    """Full power breakdown from a simulation run.

    Short-circuit power is taken as a fixed fraction of dynamic power
    (the classic ~10 % rule for balanced slopes).
    """
    if result.duration <= 0:
        raise ModelDomainError("simulation duration must be positive")
    dynamic = switching_energy_of_run(
        netlist, result, wire_cap_per_fanout) / result.duration
    sub = 0.0
    gate = 0.0
    for instance in netlist.instances.values():
        budget = gate_leakage_per_gate(
            netlist.node,
            nmos_width=instance.cell.nmos_width,
            fanin=max(instance.cell.cell_type.n_inputs, 1))
        sub += budget.subthreshold * netlist.node.vdd
        gate += budget.gate * netlist.node.vdd
    return PowerReport(
        dynamic=dynamic,
        short_circuit=short_circuit_fraction * dynamic,
        subthreshold_leakage=sub,
        gate_leakage=gate,
    )


def analytic_power_estimate(node: TechnologyNode, n_gates: int,
                            frequency: float, activity: float = 0.1,
                            avg_load: Optional[float] = None
                            ) -> PowerReport:
    """Spreadsheet-style power estimate without simulation.

    P_dyn = a * n * C * V^2 * f; leakage from the average library gate.
    This is what the leakage-fraction trend (Tab B) sweeps across
    nodes.
    """
    if n_gates < 1 or frequency <= 0:
        raise ModelDomainError("n_gates and frequency must be positive")
    if not 0 <= activity <= 1:
        raise ModelDomainError("activity must be in [0, 1]")
    from ..devices.capacitance import inverter_input_capacitance
    width = 2.0 * node.feature_size
    if avg_load is None:
        avg_load = 3.0 * inverter_input_capacitance(node, width)
    dynamic = activity * n_gates * avg_load * node.vdd ** 2 * frequency
    budget = gate_leakage_per_gate(node)
    return PowerReport(
        dynamic=dynamic,
        short_circuit=0.1 * dynamic,
        subthreshold_leakage=n_gates * budget.subthreshold * node.vdd,
        gate_leakage=n_gates * budget.gate * node.vdd,
    )


def leakage_fraction_trend(nodes: Sequence[TechnologyNode],
                           n_gates: int = 1_000_000,
                           activity: float = 0.1,
                           frequency: Optional[float] = None
                           ) -> List[Dict[str, float]]:
    """Tab B: leakage fraction of total power per node.

    ``frequency`` defaults to a fixed fraction of each node's
    achievable FO4-based clock (so designs speed up as they scale,
    the realistic scenario).
    """
    from .delay import fo4_delay_model
    rows = []
    for node in nodes:
        if frequency is None:
            fo4 = fo4_delay_model(node).delay()
            f_clk = 1.0 / (30.0 * fo4)  # ~30 FO4 pipelines
        else:
            f_clk = frequency
        report = analytic_power_estimate(node, n_gates, f_clk, activity)
        rows.append({
            "node": node.name,
            "f_clk_GHz": f_clk / 1e9,
            "dynamic_mW": report.dynamic * 1e3,
            "subthreshold_mW": report.subthreshold_leakage * 1e3,
            "gate_leak_mW": report.gate_leakage * 1e3,
            "leakage_fraction": report.leakage_fraction,
        })
    return rows
