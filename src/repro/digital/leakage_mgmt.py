"""Leakage-aware design techniques (section 3.2 of the paper).

Implements the two technique classes the paper describes plus power
gating:

* **MTCMOS** (multi-threshold CMOS): assign a high-V_T cell variant to
  every gate with enough timing slack; leakage drops exponentially on
  those gates while the critical path keeps the fast low V_T.
* **VTCMOS** (variable-threshold CMOS): reverse body bias in standby.
  Its effectiveness is capped by the shrinking body factor -- the
  quantitative "end of the road" for this technique.
* **Power gating** (supply/ground switches): cut leaky blocks off when
  inactive, at an area/IR-drop cost; the paper notes MTCMOS "is
  usually combined with supply and/or ground switches".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..core.constants import thermal_voltage
from ..technology.node import TechnologyNode
from ..devices.body_bias import vth_with_body_bias
from ..devices.leakage import device_leakage
from .netlist import Netlist
from .timing import StaticTimingAnalyzer
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class MtcmosResult:
    """Outcome of a dual-V_T assignment."""

    n_gates: int
    n_high_vt: int
    leakage_before: float        # W
    leakage_after: float         # W
    delay_before: float          # s
    delay_after: float           # s

    @property
    def high_vt_fraction(self) -> float:
        """Fraction of gates moved to high V_T."""
        return self.n_high_vt / self.n_gates if self.n_gates else 0.0

    @property
    def leakage_reduction(self) -> float:
        """Leakage-power ratio before/after (>= 1)."""
        if self.leakage_after <= 0:
            return math.inf
        return self.leakage_before / self.leakage_after


def leakage_ratio_for_vth_delta(node: TechnologyNode,
                                delta_vth: float) -> float:
    """Subthreshold-leakage reduction of a +delta_vth cell (eq. 1)."""
    if delta_vth < 0:
        raise ModelDomainError("delta_vth must be non-negative")
    phi_t = thermal_voltage(node.temperature)
    return math.exp(delta_vth / (node.subthreshold_n * phi_t))


def assign_dual_vth(netlist: Netlist, delta_vth: float = 0.1,
                    slack_fraction: float = 0.05,
                    wire_cap_per_fanout: float = 0.5e-15) -> MtcmosResult:
    """Greedy MTCMOS assignment on ``netlist``.

    Gates are moved to the +``delta_vth`` variant in order of
    increasing criticality as long as the critical delay stays within
    ``(1 + slack_fraction)`` of the all-low-V_T baseline.  Uses arrival
    times as the criticality proxy and a final full STA to verify.

    Leakage accounting: the subthreshold component scales per gate by
    eq. 1; the gate-tunnelling component is V_T-independent and stays
    -- at the 65 nm node that un-scalable floor caps what *any*
    V_T-based technique can deliver.
    """
    analyzer = StaticTimingAnalyzer(
        netlist, wire_cap_per_fanout=wire_cap_per_fanout)
    baseline = analyzer.analyze()
    budget = baseline.critical_delay * (1.0 + slack_fraction)

    node = netlist.node
    per_gate_sub = {}
    gate_floor = 0.0
    for name, inst in netlist.instances.items():
        budget_leak = device_leakage(node, inst.cell.nmos_width)
        per_gate_sub[name] = budget_leak.subthreshold * node.vdd
        gate_floor += budget_leak.gate * node.vdd
    leakage_before = sum(per_gate_sub.values()) + gate_floor
    reduction = leakage_ratio_for_vth_delta(node, delta_vth)

    # Order gates by how late their output settles: the later, the more
    # critical; start flipping from the earliest (most slack).
    order = sorted(
        netlist.instances,
        key=lambda name: baseline.arrival_times.get(
            netlist.instances[name].output, 0.0))

    high_vt: Set[str] = set()
    offsets: Dict[str, float] = {}
    # Greedy with binary back-off: flip in chunks and verify by STA.
    chunk = max(len(order) // 8, 1)
    index = 0
    while index < len(order):
        candidate = order[index:index + chunk]
        for name in candidate:
            offsets[name] = delta_vth
        delay = StaticTimingAnalyzer(
            netlist, wire_cap_per_fanout=wire_cap_per_fanout,
            vth_offsets=offsets).analyze().critical_delay
        if delay <= budget:
            high_vt.update(candidate)
            index += chunk
        elif chunk > 1:
            for name in candidate:
                offsets.pop(name, None)
            chunk = max(chunk // 2, 1)
        else:
            offsets.pop(candidate[0], None)
            index += 1

    final_delay = StaticTimingAnalyzer(
        netlist, wire_cap_per_fanout=wire_cap_per_fanout,
        vth_offsets={name: delta_vth for name in high_vt}
    ).analyze().critical_delay
    leakage_after = gate_floor + sum(
        value / reduction if name in high_vt else value
        for name, value in per_gate_sub.items())
    return MtcmosResult(
        n_gates=netlist.gate_count(),
        n_high_vt=len(high_vt),
        leakage_before=leakage_before,
        leakage_after=leakage_after,
        delay_before=baseline.critical_delay,
        delay_after=final_delay,
    )


@dataclass(frozen=True)
class VtcmosResult:
    """Standby-leakage effect of reverse body bias on one design."""

    node_name: str
    vsb: float
    delta_vth: float
    leakage_active: float       # W (no bias)
    leakage_standby: float      # W (reverse biased)

    @property
    def reduction(self) -> float:
        """Active/standby leakage ratio."""
        if self.leakage_standby <= 0:
            return math.inf
        return self.leakage_active / self.leakage_standby


def apply_vtcmos_standby(netlist: Netlist, vsb: float = 0.5) -> VtcmosResult:
    """Reverse-bias the whole design in standby (VTCMOS).

    The achievable reduction shrinks with the node's body factor --
    run across nodes to reproduce the paper's 'limited effectiveness'
    claim (benchmark Tab D) -- and is additionally capped by the
    V_T-independent gate-tunnelling floor where that peaks (65 nm).
    """
    node = netlist.node
    delta = vth_with_body_bias(node, vsb) - node.vth
    active = sum(
        device_leakage(node, inst.cell.nmos_width).total * node.vdd
        for inst in netlist.instances.values())
    standby = sum(
        device_leakage(node, inst.cell.nmos_width,
                       vth_offset=delta).total * node.vdd
        for inst in netlist.instances.values())
    return VtcmosResult(
        node_name=node.name,
        vsb=vsb,
        delta_vth=delta,
        leakage_active=active,
        leakage_standby=standby,
    )


@dataclass(frozen=True)
class PowerGatingResult:
    """Supply-switch (sleep transistor) insertion outcome."""

    sleep_width: float          # total sleep-transistor width [m]
    area_overhead: float        # relative to the block's cell area
    ir_drop: float              # V across the sleep device when active
    leakage_on: float           # W, block active
    leakage_gated: float        # W, block asleep (switch leakage only)

    @property
    def reduction(self) -> float:
        """Sleep-mode leakage reduction factor."""
        if self.leakage_gated <= 0:
            return math.inf
        return self.leakage_on / self.leakage_gated


def insert_power_gating(netlist: Netlist,
                        max_ir_drop_fraction: float = 0.02,
                        switch_vth_delta: float = 0.15
                        ) -> PowerGatingResult:
    """Size a high-V_T footer switch for the block.

    The switch is sized so the worst-case simultaneous switching
    current drops at most ``max_ir_drop_fraction * V_DD`` across it;
    sleep leakage is the (high-V_T, stacked) switch's own.
    """
    if not 0 < max_ir_drop_fraction < 0.5:
        raise ModelDomainError("max_ir_drop_fraction must be in (0, 0.5)")
    node = netlist.node
    from ..devices.mosfet import Mosfet
    # Worst-case current: 5 % of gates draw their full drive current
    # simultaneously (a pessimistic clock-edge burst).
    peak_current = 0.0
    for inst in netlist.instances.values():
        device = Mosfet(node, width=inst.cell.nmos_width)
        peak_current += 0.05 * device.on_current()
    allowed_drop = max_ir_drop_fraction * node.vdd
    # Switch in its linear region: R ~ 1/(mu Cox (W/L) Vov).
    vov = node.vdd - (node.vth + switch_vth_delta)
    if vov <= 0:
        raise ModelDomainError("switch V_T too high for this supply")
    conductance_needed = peak_current / allowed_drop
    width = conductance_needed * node.feature_size / (
        node.mobility_n * node.cox * vov)
    leakage_on = netlist.total_leakage_power()
    switch_leak = device_leakage(
        node, width, vth_offset=switch_vth_delta).subthreshold * node.vdd
    # Stack effect of the series switch: one more decade of margin.
    switch_leak *= 0.1
    cell_width_total = sum(
        inst.cell.nmos_width * 3.0 for inst in netlist.instances.values())
    return PowerGatingResult(
        sleep_width=width,
        area_overhead=width / cell_width_total,
        ir_drop=allowed_drop,
        leakage_on=leakage_on,
        leakage_gated=switch_leak,
    )


def body_bias_trend_on_design(nodes: Sequence[TechnologyNode],
                              build_netlist, vsb: float = 0.5
                              ) -> List[Dict[str, float]]:
    """Tab D on whole designs: VTCMOS reduction per node.

    ``build_netlist`` is a callable node -> Netlist (same design
    re-targeted per node).
    """
    rows = []
    for node in nodes:
        result = apply_vtcmos_standby(build_netlist(node), vsb)
        rows.append({
            "node": node.name,
            "body_factor": node.body_factor,
            "delta_vth_mV": result.delta_vth * 1e3,
            "leakage_reduction": result.reduction,
        })
    return rows
