"""GALS partitioning: globally asynchronous, locally synchronous.

Section 3.3's architectural conclusion: when the skew-limited
synchronous region shrinks below the die size, the chip must be split
into locally synchronous islands talking through asynchronous
interfaces -- "power and silicon area overhead along with an increased
design complexity".  This module quantifies that: island counts,
interface overheads, and the crossover node where a given die/clock
combination stops fitting in one clock domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..technology.node import TechnologyNode
from ..interconnect.clocktree import max_wire_length_for_skew
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class GalsPartition:
    """A GALS partitioning of one die at one node/frequency."""

    node_name: str
    die_edge: float            # m
    frequency: float           # Hz
    island_edge: float         # m (skew-limited synchronous region)
    islands_per_edge: int
    n_islands: int
    n_interfaces: int          # async boundaries between neighbours
    interface_area_overhead: float   # fraction of die area
    interface_power_overhead: float  # fraction of core dynamic power
    synchronizer_latency: float      # s per crossing

    @property
    def is_single_domain(self) -> bool:
        """True when the whole die fits in one synchronous region."""
        return self.n_islands == 1


def partition_die(node: TechnologyNode, die_edge: float = 10e-3,
                  frequency: float = 1e9,
                  skew_fraction: float = 0.2,
                  interface_depth: int = 4,
                  repeated_clock: bool = False) -> GalsPartition:
    """Partition a die into skew-feasible synchronous islands.

    Each island's edge is the skew-limited wire length of
    :func:`~repro.interconnect.clocktree.max_wire_length_for_skew`;
    neighbouring islands pay an asynchronous FIFO interface whose cost
    is modelled as a strip of ``interface_depth`` flip-flop rows along
    the shared border, plus a 2-cycle synchronizer latency.
    """
    if die_edge <= 0:
        raise ModelDomainError("die_edge must be positive")
    island_edge = max_wire_length_for_skew(
        node, frequency, skew_fraction, repeated=repeated_clock)
    islands_per_edge = max(int(math.ceil(die_edge / island_edge)), 1)
    n_islands = islands_per_edge ** 2
    # Internal borders: 2 * n * (n - 1) for an n x n grid.
    n_interfaces = 2 * islands_per_edge * (islands_per_edge - 1)
    # Interface strip: FF rows of ~12 pitches height along each border.
    strip_width = interface_depth * 12.0 * node.wire_pitch
    border_length = min(island_edge, die_edge)
    interface_area = n_interfaces * strip_width * border_length
    area_overhead = interface_area / die_edge ** 2
    # The interface registers clock every cycle: power overhead scales
    # with their share of the (activity-weighted) flop population.
    power_overhead = min(area_overhead * 3.0, 1.0)
    return GalsPartition(
        node_name=node.name,
        die_edge=die_edge,
        frequency=frequency,
        island_edge=island_edge,
        islands_per_edge=islands_per_edge,
        n_islands=n_islands,
        n_interfaces=n_interfaces,
        interface_area_overhead=area_overhead,
        interface_power_overhead=power_overhead,
        synchronizer_latency=2.0 / frequency,
    )


def gals_trend(nodes: Sequence[TechnologyNode],
               die_edge: float = 10e-3,
               frequency: float = 1e9) -> List[Dict[str, float]]:
    """Island count and overheads per node at fixed die and clock.

    The paper's localization argument in one table: the island count
    grows with scaling and the async overhead follows.
    """
    rows = []
    for node in nodes:
        partition = partition_die(node, die_edge, frequency)
        rows.append({
            "node": node.name,
            "island_edge_mm": partition.island_edge * 1e3,
            "n_islands": float(partition.n_islands),
            "n_interfaces": float(partition.n_interfaces),
            "area_overhead_pct":
                partition.interface_area_overhead * 100.0,
            "power_overhead_pct":
                partition.interface_power_overhead * 100.0,
        })
    return rows


def single_domain_max_frequency(node: TechnologyNode,
                                die_edge: float = 10e-3,
                                skew_fraction: float = 0.2,
                                repeated_clock: bool = False) -> float:
    """Highest clock [Hz] at which the whole die stays one domain.

    Inverts the skew constraint: for an unrepeated clock wire,
    f_max = fraction * 2 / (r*c*die_edge^2).
    """
    if die_edge <= 0:
        raise ModelDomainError("die_edge must be positive")
    lo, hi = 1e6, 1e12
    for _ in range(60):
        mid = math.sqrt(lo * hi)
        reach = max_wire_length_for_skew(node, mid, skew_fraction,
                                         repeated=repeated_clock)
        if reach >= die_edge:
            lo = mid
        else:
            hi = mid
    return lo
