"""Netlist generators: arithmetic blocks, LFSRs and random logic.

These provide the digital workloads the paper's analyses run on --
most importantly the synthetic "220 kgate WLAN modem" stand-in for the
SWAN experiment (Fig. 10) and the "250 kgate block" of the VCO
experiment (Fig. 9), built from repeated arithmetic slices plus random
control logic.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..technology.node import TechnologyNode
from .gates import CELL_TYPES
from .netlist import Netlist
from ..robust.rng import resolve_rng
from ..robust.errors import ModelDomainError
from ..robust.validate import validated


def full_adder(netlist: Netlist, a: str, b: str, cin: str,
               prefix: str) -> tuple:
    """Add a full-adder slice; returns (sum_net, carry_net)."""
    axb = netlist.add_gate("XOR2", [a, b], f"{prefix}_axb").output
    s = netlist.add_gate("XOR2", [axb, cin], f"{prefix}_s").output
    and1 = netlist.add_gate("AND2", [a, b], f"{prefix}_and1").output
    and2 = netlist.add_gate("AND2", [axb, cin], f"{prefix}_and2").output
    cout = netlist.add_gate("OR2", [and1, and2], f"{prefix}_cout").output
    return s, cout


def ripple_adder(node: TechnologyNode, width: int = 8,
                 name: str = "adder") -> Netlist:
    """N-bit ripple-carry adder."""
    if width < 1:
        raise ModelDomainError("width must be >= 1")
    netlist = Netlist(node, name)
    a_bits = netlist.add_inputs(f"a{i}" for i in range(width))
    b_bits = netlist.add_inputs(f"b{i}" for i in range(width))
    carry = netlist.add_input("cin")
    for i in range(width):
        s, carry = full_adder(netlist, a_bits[i], b_bits[i], carry,
                              f"fa{i}")
        netlist.add_output(s)
    netlist.add_output(carry)
    return netlist


def array_multiplier(node: TechnologyNode, width: int = 4,
                     name: str = "mult") -> Netlist:
    """N x N array multiplier (AND partial products + adder array)."""
    if width < 2:
        raise ModelDomainError("width must be >= 2")
    netlist = Netlist(node, name)
    a = netlist.add_inputs(f"a{i}" for i in range(width))
    b = netlist.add_inputs(f"b{i}" for i in range(width))
    zero = netlist.add_input("zero")
    # Partial products.
    pp = [[netlist.add_gate("AND2", [a[i], b[j]],
                            f"pp_{i}_{j}").output
           for i in range(width)] for j in range(width)]
    # Row-by-row carry-save reduction.
    row = list(pp[0]) + [zero]
    for j in range(1, width):
        next_row = [None] * (width + 1)
        carry = zero
        for i in range(width):
            s, carry = full_adder(netlist, row[i + 1], pp[j][i], carry,
                                  f"fa_{j}_{i}")
            next_row[i] = s
        next_row[width] = carry
        netlist.add_output(row[0])
        row = next_row
    for net in row:
        netlist.add_output(net)
    return netlist


def lfsr(node: TechnologyNode, width: int = 8,
         taps: Optional[Sequence[int]] = None,
         name: str = "lfsr") -> Netlist:
    """Fibonacci LFSR with DFF state (drives pseudo-random activity)."""
    if width < 2:
        raise ModelDomainError("width must be >= 2")
    taps = list(taps) if taps is not None else [width - 1, width // 2]
    netlist = Netlist(node, name)
    enable = netlist.add_input("enable")
    # State registers; feedback net is defined after the XOR tree.
    state_nets = [f"q{i}" for i in range(width)]
    feedback = state_nets[taps[0]]
    for tap in taps[1:]:
        feedback = netlist.add_gate(
            "XOR2", [feedback, state_nets[tap]]).output
    netlist.add_gate("DFF", [enable, feedback], state_nets[0],
                     instance_name="ff0")
    for i in range(1, width):
        netlist.add_gate("DFF", [enable, state_nets[i - 1]], state_nets[i],
                         instance_name=f"ff{i}")
    for net in state_nets:
        netlist.add_output(net)
    return netlist


def random_logic(node: TechnologyNode, n_gates: int = 100,
                 n_inputs: int = 8, seed: Optional[int] = None,
                 name: str = "rand",
                 sequential_fraction: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> Netlist:
    """Random combinational (optionally lightly sequential) logic.

    Gates pick uniformly from the combinational library; each input of
    a new gate connects to a uniformly random existing net, keeping
    the netlist acyclic by construction.
    """
    if n_gates < 1 or n_inputs < 1:
        raise ModelDomainError("n_gates and n_inputs must be positive")
    rng = resolve_rng(rng, seed=seed)
    netlist = Netlist(node, name)
    nets = netlist.add_inputs(f"in{i}" for i in range(n_inputs))
    clock_enable = netlist.add_input("en")
    comb_cells = ["INV", "NAND2", "NOR2", "AND2", "OR2", "XOR2",
                  "NAND3", "NOR3", "AOI21", "MUX2"]
    for index in range(n_gates):
        if rng.random() < sequential_fraction:
            source = nets[int(rng.integers(len(nets)))]
            inst = netlist.add_gate("DFF", [clock_enable, source])
        else:
            cell_name = comb_cells[int(rng.integers(len(comb_cells)))]
            n_pins = CELL_TYPES[cell_name].n_inputs
            pins = [nets[int(rng.integers(len(nets)))]
                    for _ in range(n_pins)]
            inst = netlist.add_gate(cell_name, pins)
        nets.append(inst.output)
    return netlist


@validated(adder_width="count", n_slices="count")
def clocked_datapath(node: TechnologyNode, adder_width: int = 8,
                     n_slices: int = 4, seed: Optional[int] = None,
                     name: str = "datapath",
                     rng: Optional[np.random.Generator] = None) -> Netlist:
    """A registered datapath: LFSR sources feeding adder slices.

    This is the workload shape of the SWAN experiments: wide
    synchronous activity bursts at each clock edge.
    """
    rng = resolve_rng(rng, seed=seed)
    netlist = Netlist(node, name)
    enable = netlist.add_input("en")
    # Pseudo-random source registers.
    n_src = adder_width * 2
    src_nets = [f"src{i}" for i in range(n_src)]
    feedback = netlist.add_gate(
        "XNOR2", [src_nets[-1], src_nets[n_src // 2]], "fb").output
    netlist.add_gate("DFF", [enable, feedback], src_nets[0])
    for i in range(1, n_src):
        netlist.add_gate("DFF", [enable, src_nets[i - 1]], src_nets[i])
    zero = netlist.add_input("zero")
    for s in range(n_slices):
        carry = zero
        perm = rng.permutation(n_src)
        for i in range(adder_width):
            a = src_nets[int(perm[i])]
            b = src_nets[int(perm[(i + adder_width) % n_src])]
            total, carry = full_adder(netlist, a, b, carry, f"s{s}_fa{i}")
            netlist.add_gate("DFF", [enable, total], f"s{s}_r{i}")
            netlist.add_output(f"s{s}_r{i}")
    return netlist


@validated(target_gates="count", n_blocks="count", adder_width="count")
def soc_netlist(node: TechnologyNode, target_gates: int = 20_000,
                n_blocks: int = 8, adder_width: int = 8,
                glue_fraction: float = 0.08,
                seed: Optional[int] = None, name: str = "soc",
                rng: Optional[np.random.Generator] = None) -> Netlist:
    """A parameterized SoC-like netlist of ~``target_gates`` gates.

    The Fig. 10 workload shape at tunable size: ``n_blocks``
    clock-gated blocks, each holding a pseudo-random source register
    bank, registered ripple-adder slices, and a sprinkle of random
    glue logic.  Clock gating is structural -- every register's data
    pin goes through ``MUX2(blk_en, q, next)`` recirculation, so
    deasserting a block's enable stimulus really silences its
    switching activity (the mechanism behind the paper's observation
    that substrate noise tracks *aggregate* activity, not clock rate).

    Primary inputs: global ``en`` plus one ``blk{b}_en`` per block.
    Gate count lands within a few percent of ``target_gates``; blocks
    differ in wiring permutation (seeded), so activity is not
    perfectly correlated across blocks.  Source banks are replicated
    every 16 adder slices so no net's fanout grows with
    ``target_gates`` (unbounded fanout would push loaded gate delays
    past a clock period, silently squashing the very activity the
    workload exists to produce).
    """
    if not 0.0 <= glue_fraction < 1.0:
        raise ModelDomainError(
            f"glue_fraction must be in [0, 1), got {glue_fraction}")
    rng = resolve_rng(rng, seed=seed)
    netlist = Netlist(node, name)
    netlist.add_input("en")
    zero = netlist.add_input("zero")
    comb_cells = ["INV", "NAND2", "NOR2", "AND2", "OR2", "XOR2",
                  "NAND3", "AOI21"]
    gates_per_block = max(target_gates // n_blocks, 8 * adder_width)
    n_src = 2 * adder_width
    slices_per_bank = 16
    # Source bank = n_src * (DFF + MUX2) + XNOR; each adder slice =
    # adder_width * (5 FA gates + DFF + MUX2).
    source_cost = 2 * n_src + 1
    slice_cost = 7 * adder_width
    logic_budget = int(gates_per_block * (1.0 - glue_fraction))
    n_slices = max((logic_budget - source_cost) // slice_cost, 1)

    def gated_dff(enable_net: str, data: str, q: str) -> None:
        """Register with MUX2 recirculation clock gating."""
        d = netlist.add_gate("MUX2", [enable_net, q, data],
                             f"{q}_d").output
        netlist.add_gate("DFF", ["en", d], q)

    def source_bank(prefix: str, enable_net: str) -> List[str]:
        """XNOR-feedback shift register (pseudo-random sources)."""
        src = [f"{prefix}_src{i}" for i in range(n_src)]
        feedback = netlist.add_gate(
            "XNOR2", [src[-1], src[n_src // 2]],
            f"{prefix}_fb").output
        gated_dff(enable_net, feedback, src[0])
        for i in range(1, n_src):
            gated_dff(enable_net, src[i - 1], src[i])
        return src

    for b in range(n_blocks):
        blk_en = netlist.add_input(f"blk{b}_en")
        src = source_bank(f"b{b}k0", blk_en)
        used = source_cost
        registered: List[str] = []
        for s in range(n_slices):
            if s and s % slices_per_bank == 0:
                src = source_bank(f"b{b}k{s // slices_per_bank}",
                                  blk_en)
                used += source_cost
            carry = zero
            perm = rng.permutation(n_src)
            for i in range(adder_width):
                a = src[int(perm[i])]
                c = src[int(perm[(i + adder_width) % n_src])]
                total, carry = full_adder(netlist, a, c, carry,
                                          f"b{b}_s{s}_fa{i}")
                gated_dff(blk_en, total, f"b{b}_s{s}_r{i}")
                registered.append(f"b{b}_s{s}_r{i}")
            used += slice_cost
        # Random glue logic on the block's registered nets; each
        # glue output is fair game for later glue inputs, so fanout
        # stays small even for large glue budgets.
        block_nets = registered or src
        n_glue = max(gates_per_block - used, 0)
        for g in range(n_glue):
            cell_name = comb_cells[int(rng.integers(len(comb_cells)))]
            n_pins = CELL_TYPES[cell_name].n_inputs
            pins = [block_nets[int(rng.integers(len(block_nets)))]
                    for _ in range(n_pins)]
            inst = netlist.add_gate(cell_name, pins,
                                    f"b{b}_glue{g}")
            block_nets.append(inst.output)
    return netlist


@validated(target_gates="count", adder_width="count")
def estimate_gates_for_target(target_gates: int, adder_width: int = 8
                              ) -> int:
    """Number of datapath slices giving ~``target_gates`` gates."""
    gates_per_slice = adder_width * 6  # 5 gates/FA + 1 DFF
    return max(int(math.ceil(target_gates / gates_per_slice)), 1)


def kogge_stone_adder(node: TechnologyNode, width: int = 8,
                      name: str = "ksadder") -> Netlist:
    """Kogge-Stone parallel-prefix adder: O(log N) carry depth.

    The fast-adder counterpart to :func:`ripple_adder`; its shallow
    logic depth makes it the right victim for variability studies
    (fewer gates to average mismatch over -- see section 3.1).
    Outputs are named ``s0..s{width-1}`` plus ``cout``.
    """
    if width < 2:
        raise ModelDomainError("width must be >= 2")
    netlist = Netlist(node, name)
    a = netlist.add_inputs(f"a{i}" for i in range(width))
    b = netlist.add_inputs(f"b{i}" for i in range(width))
    # Level-0 generate/propagate.
    g = [netlist.add_gate("AND2", [a[i], b[i]], f"g0_{i}").output
         for i in range(width)]
    p = [netlist.add_gate("XOR2", [a[i], b[i]], f"p0_{i}").output
         for i in range(width)]
    # Prefix tree: (g, p) o (g', p') = (g + p*g', p*p').
    level = 1
    stride = 1
    while stride < width:
        new_g = list(g)
        new_p = list(p)
        for i in range(stride, width):
            j = i - stride
            t = netlist.add_gate("AND2", [p[i], g[j]],
                                 f"t{level}_{i}").output
            new_g[i] = netlist.add_gate(
                "OR2", [g[i], t], f"g{level}_{i}").output
            new_p[i] = netlist.add_gate(
                "AND2", [p[i], p[j]], f"p{level}_{i}").output
        g, p = new_g, new_p
        stride *= 2
        level += 1
    # Sums: s_i = p0_i XOR carry_{i-1}; carry_{i-1} = g[i-1].
    netlist.add_gate("BUF", [f"p0_0"], "s0")
    for i in range(1, width):
        netlist.add_gate("XOR2", [f"p0_{i}", g[i - 1]], f"s{i}")
    netlist.add_gate("BUF", [g[width - 1]], "cout")
    for i in range(width):
        netlist.add_output(f"s{i}")
    netlist.add_output("cout")
    return netlist


def decoder(node: TechnologyNode, n_select: int = 3,
            name: str = "decoder") -> Netlist:
    """N-to-2^N one-hot decoder (the SRAM wordline shape)."""
    if not 1 <= n_select <= 6:
        raise ModelDomainError("n_select must be in 1..6")
    netlist = Netlist(node, name)
    selects = netlist.add_inputs(f"sel{i}" for i in range(n_select))
    inverted = [netlist.add_gate("INV", [s], f"nsel{i}").output
                for i, s in enumerate(selects)]
    for code in range(2 ** n_select):
        terms = [selects[bit] if (code >> bit) & 1 else inverted[bit]
                 for bit in range(n_select)]
        net = terms[0]
        for k, term in enumerate(terms[1:]):
            net = netlist.add_gate("AND2", [net, term],
                                   f"d{code}_{k}").output
        netlist.add_gate("BUF", [net], f"out{code}")
        netlist.add_output(f"out{code}")
    return netlist


def equality_comparator(node: TechnologyNode, width: int = 8,
                        name: str = "cmp") -> Netlist:
    """A == B comparator: XNOR bits reduced through an AND tree."""
    if width < 2:
        raise ModelDomainError("width must be >= 2")
    netlist = Netlist(node, name)
    a = netlist.add_inputs(f"a{i}" for i in range(width))
    b = netlist.add_inputs(f"b{i}" for i in range(width))
    bits = [netlist.add_gate("XNOR2", [a[i], b[i]],
                             f"eq{i}").output for i in range(width)]
    while len(bits) > 1:
        next_bits = []
        for i in range(0, len(bits) - 1, 2):
            next_bits.append(netlist.add_gate(
                "AND2", [bits[i], bits[i + 1]]).output)
        if len(bits) % 2:
            next_bits.append(bits[-1])
        bits = next_bits
    netlist.add_gate("BUF", [bits[0]], "equal")
    netlist.add_output("equal")
    return netlist

def fir_filter(node: TechnologyNode, n_taps: int = 4,
               data_width: int = 4,
               name: str = "fir") -> Netlist:
    """A serial-data FIR-like MAC datapath (the modem workload shape).

    A shift register of ``n_taps`` x ``data_width`` bits feeds an
    adder tree whose inputs are AND-masked by per-tap coefficient
    bits -- a 1-bit-coefficient transposed FIR.  Registered output.
    This is the multiply-accumulate texture of the paper's OFDM-WLAN
    baseband modem, used as a SWAN aggressor with realistic
    datapath-style synchronous activity.
    """
    if n_taps < 2 or data_width < 2:
        raise ModelDomainError("n_taps and data_width must be >= 2")
    netlist = Netlist(node, name)
    enable = netlist.add_input("en")
    zero = netlist.add_input("zero")
    data = netlist.add_inputs(f"d{i}" for i in range(data_width))
    coeffs = netlist.add_inputs(f"c{t}" for t in range(n_taps))
    # Shift register: tap t holds the sample from t cycles ago.
    taps = [[f"x{t}_{i}" for i in range(data_width)]
            for t in range(n_taps)]
    for i in range(data_width):
        netlist.add_gate("DFF", [enable, data[i]], taps[0][i])
    for t in range(1, n_taps):
        for i in range(data_width):
            netlist.add_gate("DFF", [enable, taps[t - 1][i]],
                             taps[t][i])
    # Masked partial products per tap.
    products = [[netlist.add_gate("AND2", [taps[t][i], coeffs[t]],
                                  f"p{t}_{i}").output
                 for i in range(data_width)]
                for t in range(n_taps)]
    # Accumulate tap by tap with ripple adders.
    acc = products[0]
    for t in range(1, n_taps):
        carry = zero
        next_acc = []
        for i in range(data_width):
            total, carry = full_adder(netlist, acc[i],
                                      products[t][i], carry,
                                      f"acc{t}_{i}")
            next_acc.append(total)
        next_acc.append(carry)
        # Keep the accumulator width bounded for the demo datapath.
        acc = next_acc[:data_width]
    for i, net in enumerate(acc):
        netlist.add_gate("DFF", [enable, net], f"y{i}")
        netlist.add_output(f"y{i}")
    return netlist

