"""Worst-case sizing and its energy penalty (section 3.1 of the paper).

The argument reproduced here:

1. Delay requirements must hold at the *worst-case* V_T (nominal +
   n*sigma), so gates are upsized relative to what the typical die
   needs.
2. Dynamic energy C*V_DD^2 does not care about the actual V_T -- the
   extra capacitance of the oversized gates is paid on *every* die.
3. The relative sigma of V_T grows with scaling (Fig. 4), so the
   penalty grows node over node: "the effect of worst-case oversized
   design on the energy consumption of circuits will be significant."

Benchmark Tab C regenerates this trend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from scipy.optimize import brentq

from ..technology.node import TechnologyNode
from ..devices.capacitance import (inverter_input_capacitance,
                                   inverter_self_load)
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class SizingResult:
    """Sizing of one stage for a delay target at a given V_T."""

    width: float           # NMOS width [m]
    delay: float           # achieved delay [s]
    energy: float          # switching energy C*V^2 [J]
    vth_assumed: float     # V_T the sizing was done for [V]


def stage_delay(node: TechnologyNode, width: float,
                external_load: float, vth: Optional[float] = None) -> float:
    """Delay [s] of one inverter stage driving ``external_load``.

    Alpha-power-law drive, self-load included: upsizing helps the
    external-load term but never removes the self-load floor.
    """
    if width <= 0 or external_load < 0:
        raise ModelDomainError("width must be positive, load non-negative")
    vth = vth if vth is not None else node.vth
    vdd = node.vdd
    if vth >= vdd:
        raise ModelDomainError("vth must be below vdd")
    alpha = node.alpha_power
    drive = 0.5 * (node.mobility_n * node.cox * width
                   / node.feature_size) \
        * vdd ** (2.0 - alpha) * (vdd - vth) ** alpha
    self_load = inverter_self_load(node, width)
    return 0.5 * (external_load + self_load) * vdd / drive


def stage_energy(node: TechnologyNode, width: float,
                 external_load: float) -> float:
    """Switching energy [J] of the stage: all capacitance at V_DD^2.

    Includes the stage's own input capacitance -- the part the
    *previous* stage pays for our size, which is exactly how
    oversizing propagates backwards through a path.
    """
    total = (external_load + inverter_self_load(node, width)
             + inverter_input_capacitance(node, width))
    return total * node.vdd ** 2


def size_for_delay(node: TechnologyNode, delay_target: float,
                   external_load: float,
                   vth: Optional[float] = None) -> SizingResult:
    """Find the minimum width meeting ``delay_target`` at ``vth``.

    Raises ValueError when the target is below the self-load-limited
    minimum achievable delay.
    """
    if delay_target <= 0:
        raise ModelDomainError("delay_target must be positive")
    vth = vth if vth is not None else node.vth
    w_min = node.feature_size
    w_max = 1e5 * node.feature_size

    def miss(width: float) -> float:
        return stage_delay(node, width, external_load, vth) - delay_target

    if miss(w_max) > 0:
        raise ModelDomainError(
            f"delay target {delay_target:.3e}s unreachable: self-load "
            f"limit is {stage_delay(node, w_max, external_load, vth):.3e}s")
    if miss(w_min) <= 0:
        width = w_min
    else:
        width = brentq(miss, w_min, w_max, xtol=1e-12)
    return SizingResult(
        width=width,
        delay=stage_delay(node, width, external_load, vth),
        energy=stage_energy(node, width, external_load),
        vth_assumed=vth,
    )


@dataclass(frozen=True)
class WorstCasePenalty:
    """Energy cost of designing for worst-case V_T on one node."""

    node_name: str
    sigma_vth: float
    nominal: SizingResult
    worst_case: SizingResult

    @property
    def width_ratio(self) -> float:
        """Oversizing factor W_wc / W_nominal."""
        return self.worst_case.width / self.nominal.width

    @property
    def energy_penalty(self) -> float:
        """Energy overhead E_wc / E_nominal (>= 1)."""
        return self.worst_case.energy / self.nominal.energy


def worst_case_penalty(node: TechnologyNode,
                       sigma_vth: Optional[float] = None,
                       n_sigma: float = 3.0,
                       delay_margin: float = 1.3,
                       external_load: Optional[float] = None
                       ) -> WorstCasePenalty:
    """Quantify section 3.1 for one node.

    The delay target is ``delay_margin`` x the nominal-V_T delay of a
    reference-sized stage (a realistic spec with some slack); the
    stage is then sized once assuming nominal V_T and once assuming
    V_T + n_sigma*sigma, and the energies compared.

    ``sigma_vth`` defaults to the node's minimum-device mismatch sigma
    -- the intra-die effect the paper calls "hard to deal with".
    """
    if sigma_vth is None:
        sigma_vth = node.sigma_vt_min_device
    ref_width = 4.0 * node.feature_size
    if external_load is None:
        external_load = 8.0 * inverter_input_capacitance(
            node, 2.0 * node.feature_size)
    target = delay_margin * stage_delay(node, ref_width, external_load)
    nominal = size_for_delay(node, target, external_load)
    worst = size_for_delay(node, target, external_load,
                           vth=node.vth + n_sigma * sigma_vth)
    return WorstCasePenalty(
        node_name=node.name,
        sigma_vth=sigma_vth,
        nominal=nominal,
        worst_case=worst,
    )


def worst_case_energy_trend(nodes: Sequence[TechnologyNode],
                            n_sigma: float = 3.0,
                            delay_margin: float = 1.3
                            ) -> List[Dict[str, float]]:
    """Tab C: oversizing factor and energy penalty per node."""
    rows = []
    for node in nodes:
        penalty = worst_case_penalty(node, n_sigma=n_sigma,
                                     delay_margin=delay_margin)
        rows.append({
            "node": node.name,
            "sigma_vth_mV": penalty.sigma_vth * 1e3,
            "sigma_over_overdrive": penalty.sigma_vth / node.overdrive,
            "width_ratio": penalty.width_ratio,
            "energy_penalty_pct": (penalty.energy_penalty - 1.0) * 100.0,
        })
    return rows


def energy_vs_delay_curve(node: TechnologyNode,
                          delay_targets: Sequence[float],
                          external_load: Optional[float] = None,
                          vth: Optional[float] = None
                          ) -> List[Dict[str, float]]:
    """The energy-delay trade-off curve sizing moves along.

    Sharply rising energy at tight targets is why the worst-case
    penalty grows so fast once sigma_VT eats the timing slack.
    """
    if external_load is None:
        external_load = 8.0 * inverter_input_capacitance(
            node, 2.0 * node.feature_size)
    rows = []
    for target in delay_targets:
        try:
            result = size_for_delay(node, target, external_load, vth)
        except ValueError:
            continue
        rows.append({
            "delay_ps": target * 1e12,
            "width_um": result.width * 1e6,
            "energy_fJ": result.energy * 1e15,
        })
    return rows
