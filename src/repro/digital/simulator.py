"""Event-driven gate-level logic simulator.

Produces the *switching-event stream* that both the dynamic-power
estimator and the SWAN substrate-noise flow consume: the paper's SWAN
methodology combines per-cell injection macromodels "depending on the
event information obtained from a VHDL simulation of the system".
This module is that (VHDL-less) event engine.

The simulator is two-level (0/1), unit-capacitance-accurate in time:
each gate contributes its load-dependent propagation delay, events on
the same net collapse (inertial filtering), and flip-flops sample on
the rising edge of the global clock.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..robust.errors import ModelDomainError, SimulationBudgetError
from ..robust.guards import SimulationBudget
from ..robust.validate import check_count, check_positive, validated
from .netlist import Instance, Netlist
from ..robust.rng import resolve_rng


@dataclass(frozen=True, order=True)
class SwitchingEvent:
    """One net transition.

    Ordered by time so event lists merge cheaply.
    """

    time: float
    net: str = field(compare=False)
    value: bool = field(compare=False)
    instance: Optional[str] = field(compare=False, default=None)


@dataclass
class SimulationResult:
    """Output of a simulation run.

    The event list is treated as immutable after construction: the
    per-instance grouping and per-net toggle counts are computed on
    first use and memoized (SWAN and the power estimator query them
    repeatedly over the same result).
    """

    events: List[SwitchingEvent]
    final_values: Dict[str, bool]
    duration: float
    _by_instance: Optional[Dict[str, List[SwitchingEvent]]] = field(
        default=None, repr=False, compare=False)
    _toggles_by_net: Optional[Dict[str, int]] = field(
        default=None, repr=False, compare=False)

    def events_by_instance(self) -> Dict[str, List[SwitchingEvent]]:
        """Group driver-attributed events per gate instance (memoized)."""
        if self._by_instance is None:
            grouped: Dict[str, List[SwitchingEvent]] = {}
            for event in self.events:
                if event.instance is not None:
                    grouped.setdefault(event.instance, []).append(event)
            self._by_instance = grouped
        return self._by_instance

    def toggle_count(self, net: Optional[str] = None) -> int:
        """Number of transitions (on one net, or total; memoized)."""
        if net is None:
            return len(self.events)
        if self._toggles_by_net is None:
            counts: Dict[str, int] = {}
            for e in self.events:
                counts[e.net] = counts.get(e.net, 0) + 1
            self._toggles_by_net = counts
        return self._toggles_by_net.get(net, 0)

    def activity_factor(self, n_cycles: int) -> float:
        """Average toggles per net per cycle."""
        nets = {e.net for e in self.events}
        if not nets or n_cycles < 1:
            return 0.0
        return len(self.events) / (len(nets) * n_cycles)


class EventDrivenSimulator:
    """Event-driven simulator over a :class:`Netlist`.

    Parameters
    ----------
    netlist:
        Design under simulation.
    clock_period:
        Global clock period [s] for sequential cells.
    wire_cap_per_fanout:
        Crude wire-load model passed to the netlist's fanout
        capacitance estimate.
    event_budget:
        Total simulated events allowed per :meth:`run` call (None =
        unlimited).  Exceeding it raises a typed
        :class:`~repro.robust.errors.SimulationBudgetError` instead of
        looping forever on a pathological design.
    oscillation_limit:
        Maximum toggles of any single net within one clock cycle
        before the run is declared oscillatory (glitch storm /
        combinational ringing) and a
        :class:`~repro.robust.errors.SimulationBudgetError` is raised.
    """

    #: Default per-run event budget: generous for real designs, finite
    #: so a glitch storm terminates with a typed error.
    DEFAULT_EVENT_BUDGET = 1_000_000
    #: Default per-net per-cycle toggle limit.
    DEFAULT_OSCILLATION_LIMIT = 512

    def __init__(self, netlist: Netlist, clock_period: float = 1e-9,
                 wire_cap_per_fanout: float = 0.5e-15,
                 event_budget: Optional[int] = DEFAULT_EVENT_BUDGET,
                 oscillation_limit: Optional[int] =
                 DEFAULT_OSCILLATION_LIMIT):
        check_positive("clock_period", clock_period)
        check_positive("wire_cap_per_fanout", wire_cap_per_fanout)
        if event_budget is not None:
            event_budget = check_count("event_budget", event_budget)
        if oscillation_limit is not None:
            oscillation_limit = check_count("oscillation_limit",
                                            oscillation_limit)
        self.netlist = netlist
        self.clock_period = clock_period
        self.wire_cap_per_fanout = wire_cap_per_fanout
        self.event_budget = event_budget
        self.oscillation_limit = oscillation_limit
        self._delay_cache: Dict[str, float] = {}
        self._loads_cache: Dict[str, List[Instance]] = {}

    def _gate_delay(self, instance: Instance) -> float:
        """Load-dependent propagation delay of ``instance`` [s]."""
        delay = self._delay_cache.get(instance.name)
        if delay is None:
            load = self.netlist.fanout_capacitance(
                instance.output, self.wire_cap_per_fanout)
            delay = instance.cell.delay(load)
            self._delay_cache[instance.name] = delay
        return delay

    def _loads(self, net: str) -> List[Instance]:
        loads = self._loads_cache.get(net)
        if loads is None:
            loads = self.netlist.loads_of(net)
            self._loads_cache[net] = loads
        return loads

    def run(self, stimulus: Dict[str, Sequence[bool]], n_cycles: int,
            initial_state: Optional[Dict[str, bool]] = None
            ) -> SimulationResult:
        """Simulate ``n_cycles`` clock cycles.

        ``stimulus`` maps each primary input to a per-cycle value
        sequence (shorter sequences repeat cyclically).

        Returns the time-stamped event stream.  Primary inputs change
        just after each rising clock edge; flip-flops sample the value
        their data nets held at the edge.
        """
        n_cycles = check_count("n_cycles", n_cycles)
        missing = [net for net in self.netlist.primary_inputs
                   if net not in stimulus]
        if missing:
            raise ModelDomainError(
                f"missing stimulus for inputs {missing}")
        budget = SimulationBudget(self.event_budget, name="event budget")

        values: Dict[str, bool] = {net: False for net in self.netlist.nets}
        if initial_state:
            values.update(initial_state)
        # Settle combinational logic from the initial state.
        settled = self.netlist.evaluate(
            {net: values[net] for net in self.netlist.primary_inputs},
            state={inst.output: values[inst.output]
                   for inst in self.netlist.instances.values()
                   if inst.is_sequential})
        values.update(settled)

        events: List[SwitchingEvent] = []
        counter = itertools.count()
        sequential = [inst for inst in self.netlist.instances.values()
                      if inst.is_sequential]

        for cycle in range(n_cycles):
            edge_time = cycle * self.clock_period
            queue: List[Tuple[float, int, str, bool, Optional[str]]] = []
            cycle_toggles: Dict[str, int] = {}

            # Flip-flops sample their data nets at the edge (clk-to-q
            # delay = the cell's loaded delay).
            for inst in sequential:
                sampled = values.get(inst.inputs[-1], False)
                if sampled != values.get(inst.output, False):
                    heapq.heappush(queue, (
                        edge_time + self._gate_delay(inst), next(counter),
                        inst.output, sampled, inst.name))

            # Primary inputs change shortly after the edge.
            for net, pattern in stimulus.items():
                new_value = bool(pattern[cycle % len(pattern)])
                if new_value != values.get(net, False):
                    heapq.heappush(queue, (
                        edge_time + 0.01 * self.clock_period, next(counter),
                        net, new_value, None))

            # Propagate events until the cycle's activity dies out.
            horizon = edge_time + self.clock_period
            while queue:
                time, _, net, value, source = heapq.heappop(queue)
                if values.get(net, False) == value:
                    continue
                if time >= horizon:
                    # Late event: apply silently at the horizon (the
                    # next cycle sees the settled value) but do not
                    # schedule further switching -- models a failing
                    # path without infinite event storms.
                    values[net] = value
                    continue
                values[net] = value
                budget.spend()
                toggles = cycle_toggles.get(net, 0) + 1
                cycle_toggles[net] = toggles
                if self.oscillation_limit is not None \
                        and toggles > self.oscillation_limit:
                    raise SimulationBudgetError(
                        f"net {net!r} toggled {toggles} times in cycle "
                        f"{cycle} (oscillation_limit="
                        f"{self.oscillation_limit}): the design is "
                        f"oscillating or glitch-storming")
                events.append(SwitchingEvent(
                    time=time, net=net, value=value, instance=source))
                for load in self._loads(net):
                    if load.is_sequential:
                        continue  # samples only at the clock edge
                    ins = tuple(values.get(n, False) for n in load.inputs)
                    new_out = load.cell.cell_type.evaluate(ins)
                    if new_out != values.get(load.output, False):
                        heapq.heappush(queue, (
                            time + self._gate_delay(load), next(counter),
                            load.output, new_out, load.name))

        return SimulationResult(
            events=events,
            final_values=dict(values),
            duration=n_cycles * self.clock_period,
        )


@validated(n_cycles="count")
def random_stimulus(netlist: Netlist, n_cycles: int,
                    seed: Optional[int] = None,
                    held_high: Iterable[str] = (),
                    rng: Optional["np.random.Generator"] = None
                    ) -> Dict[str, List[bool]]:
    """Uniform random per-cycle stimulus for every primary input.

    Inputs listed in ``held_high`` stay at 1 (e.g. enables).
    """
    import numpy as np
    rng = resolve_rng(rng, seed=seed)
    held = set(held_high)
    stimulus: Dict[str, List[bool]] = {}
    for net in netlist.primary_inputs:
        if net in held:
            stimulus[net] = [True]
        elif net == "zero":
            stimulus[net] = [False]
        else:
            stimulus[net] = [bool(b) for b in
                             rng.integers(0, 2, size=n_cycles)]
    return stimulus
