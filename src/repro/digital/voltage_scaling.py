"""V_DD / V_T co-optimization: the energy-delay trade-off of section 3.

The paper's section 3.1/3.2 argument in one model: dynamic energy
falls with V_DD^2, but lowering V_DD (or raising V_T) slows the gate,
and slower gates *integrate more leakage per operation* -- so the
energy per operation has a minimum in the (V_DD, V_T) plane, and that
minimum moves as leakage grows with scaling.  This is the quantitative
backdrop of "there is a point where further scaling of the intrinsic
MOS device is not really meaningful anymore".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.constants import thermal_voltage
from ..technology.node import TechnologyNode
from ..devices.capacitance import (inverter_input_capacitance,
                                   inverter_self_load)
from ..devices.leakage import device_leakage
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class OperatingPoint:
    """One (V_DD, V_T) operating point of a logic pipeline."""

    vdd: float
    vth: float
    delay_per_stage: float     # s
    dynamic_energy: float      # J per operation
    leakage_energy: float      # J per operation
    node_name: str = ""

    @property
    def total_energy(self) -> float:
        """Energy per operation [J]."""
        return self.dynamic_energy + self.leakage_energy

    @property
    def leakage_share(self) -> float:
        """Leakage fraction of the per-operation energy."""
        total = self.total_energy
        return self.leakage_energy / total if total > 0 else 0.0


class EnergyDelayModel:
    """Per-operation energy/delay of a logic pipeline vs (V_DD, V_T).

    Parameters
    ----------
    node:
        Technology node (sets capacitances, mobility, leakage I_0).
    logic_depth:
        Gates per pipeline stage (delay and leakage integrate over
        this depth).
    activity:
        Switching activity: fraction of the pipeline's capacitance
        switched per operation.
    width:
        NMOS width of the reference gate [m].
    """

    def __init__(self, node: TechnologyNode, logic_depth: int = 30,
                 activity: float = 0.2, width: Optional[float] = None):
        if logic_depth < 1:
            raise ModelDomainError("logic_depth must be >= 1")
        if not 0 < activity <= 1:
            raise ModelDomainError("activity must be in (0, 1]")
        self.node = node
        self.logic_depth = logic_depth
        self.activity = activity
        self.width = width if width is not None \
            else 2.0 * node.feature_size
        self._load = (4.0 * inverter_input_capacitance(node, self.width)
                      + inverter_self_load(node, self.width))

    def gate_delay(self, vdd: float, vth: float) -> float:
        """Alpha-power gate delay [s] at the operating point."""
        if vdd <= 0:
            raise ModelDomainError("vdd must be positive")
        if vdd <= vth + 0.05:
            return math.inf   # no usable overdrive
        node = self.node
        alpha = node.alpha_power
        drive = 0.5 * (node.mobility_n * node.cox * self.width
                       / node.feature_size) \
            * vdd ** (2.0 - alpha) * (vdd - vth) ** alpha
        return 0.5 * self._load * vdd / drive

    def evaluate(self, vdd: float, vth: float) -> OperatingPoint:
        """Energy and delay of one operation at (V_DD, V_T)."""
        delay = self.gate_delay(vdd, vth)
        stage_delay = self.logic_depth * delay
        dynamic = (self.activity * self.logic_depth
                   * self._load * vdd ** 2)
        if math.isinf(stage_delay):
            leak_energy = math.inf
        else:
            vth_offset = vth - self.node.vth
            leak_current = device_leakage(
                self.node, 3.0 * self.width,
                vds=vdd, vth_offset=vth_offset).subthreshold
            leak_energy = (self.logic_depth * leak_current
                           * vdd * stage_delay)
        return OperatingPoint(
            vdd=vdd, vth=vth,
            delay_per_stage=stage_delay,
            dynamic_energy=dynamic,
            leakage_energy=leak_energy,
            node_name=self.node.name,
        )

    def sweep(self, vdd_values: Sequence[float],
              vth_values: Sequence[float]) -> List[OperatingPoint]:
        """Grid sweep of the (V_DD, V_T) plane."""
        return [self.evaluate(vdd, vth)
                for vdd in vdd_values for vth in vth_values]

    def minimum_energy_point(self,
                             delay_limit: Optional[float] = None,
                             n_grid: int = 40) -> OperatingPoint:
        """The energy-optimal (V_DD, V_T) point.

        ``delay_limit`` [s] constrains the per-stage delay (no limit:
        the unconstrained minimum-energy point, typically deep in
        near-threshold territory).
        """
        node = self.node
        vdds = np.linspace(0.3 * node.vdd, 1.2 * node.vdd, n_grid)
        vths = np.linspace(max(0.5 * node.vth, 0.05),
                           min(2.0 * node.vth, 0.9 * node.vdd), n_grid)
        best: Optional[OperatingPoint] = None
        for vdd in vdds:
            for vth in vths:
                if vth >= vdd - 0.05:
                    continue
                point = self.evaluate(float(vdd), float(vth))
                if delay_limit is not None \
                        and point.delay_per_stage > delay_limit:
                    continue
                if math.isinf(point.total_energy):
                    continue
                if best is None or point.total_energy \
                        < best.total_energy:
                    best = point
        if best is None:
            raise ModelDomainError("no feasible operating point in range "
                             "(delay_limit too tight?)")
        return best

    def dvfs_curve(self, vdd_values: Sequence[float]
                   ) -> List[Dict[str, float]]:
        """Classic DVFS curve: energy and delay vs V_DD at nominal V_T."""
        rows = []
        for vdd in vdd_values:
            point = self.evaluate(vdd, self.node.vth)
            rows.append({
                "vdd_V": vdd,
                "delay_ns": point.delay_per_stage * 1e9,
                "energy_fJ": point.total_energy * 1e15,
                "leakage_share": point.leakage_share,
            })
        return rows


def minimum_energy_trend(nodes: Sequence[TechnologyNode],
                         logic_depth: int = 30,
                         relative_delay_limit: Optional[float] = 3.0
                         ) -> List[Dict[str, float]]:
    """Minimum-energy operating point per node.

    ``relative_delay_limit`` bounds the stage delay to that multiple
    of the nominal-point delay (None = unconstrained).  The paper's
    warning shows up as the leakage share at the optimum growing node
    over node: leakage eats the energy benefit of scaling V_DD down.
    """
    rows = []
    for node in nodes:
        model = EnergyDelayModel(node, logic_depth=logic_depth)
        nominal = model.evaluate(node.vdd, node.vth)
        limit = (relative_delay_limit * nominal.delay_per_stage
                 if relative_delay_limit is not None else None)
        best = model.minimum_energy_point(delay_limit=limit)
        rows.append({
            "node": node.name,
            "nominal_energy_fJ": nominal.total_energy * 1e15,
            "optimal_vdd_V": best.vdd,
            "optimal_vth_V": best.vth,
            "optimal_energy_fJ": best.total_energy * 1e15,
            "energy_saving": 1.0 - best.total_energy
            / nominal.total_energy,
            "leakage_share_at_optimum": best.leakage_share,
        })
    return rows
