"""Statistical static timing analysis (SSTA).

Corner-based worst-case timing (section 3.1's "worst-case design")
over-margins because intra-die mismatch averages out along deep paths
but not across them.  This module quantifies that: Monte Carlo SSTA
over the netlist with per-gate (intra-die) and shared (inter-die)
V_T draws, path-delay statistics, gate criticality, and the
corner-vs-statistical margin comparison that motivates statistical
design.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..robust.validate import check_count
from ..technology.node import TechnologyNode
from ..variability.statistical import VariationSpec
from .netlist import Netlist
from .timing import StaticTimingAnalyzer
from .timing_compiled import CompiledTimingGraph
from ..robust.rng import resolve_rng
from ..robust.errors import ModelDomainError
from ..variability.statistical import check_shard


@dataclass(frozen=True)
class SstaShard:
    """One shard's slice of a Monte Carlo SSTA population.

    ``samples[k]`` is bit-for-bit sample ``start + k`` of the full
    ``n_total``-sample run, and ``counts`` are *integer* critical-path
    hit counts aligned with ``names`` (netlist insertion order).
    Shards therefore merge exactly: concatenate ``samples`` in shard
    order, sum ``counts`` elementwise, and divide by the total sample
    count only at the end -- never average per-shard fractions.
    """

    samples: np.ndarray        # (stop - start,) critical delays [s]
    counts: np.ndarray         # (n_gates,) int64, insertion order
    names: tuple               # gate axis of ``counts``
    nominal_delay: float       # deterministic STA delay [s]
    start: int
    stop: int


def merge_ssta_shards(shards: Sequence[SstaShard]) -> SstaResult:
    """Exactly merge contiguous :class:`SstaShard` slices.

    The shards must tile ``[0, n_total)``; pass them in any order.
    Raises :class:`ModelDomainError` on gaps, overlaps, or mismatched
    gate axes.
    """
    if not shards:
        raise ModelDomainError("cannot merge zero SSTA shards")
    ordered = sorted(shards, key=lambda s: s.start)
    names = ordered[0].names
    cursor = 0
    for shard in ordered:
        if shard.names != names:
            raise ModelDomainError(
                "SSTA shards disagree on the gate axis")
        if shard.start != cursor:
            raise ModelDomainError(
                f"SSTA shards do not tile the population: expected "
                f"start {cursor}, got {shard.start}")
        cursor = shard.stop
    samples = np.concatenate([s.samples for s in ordered])
    counts = np.sum([s.counts for s in ordered], axis=0)
    n_total = len(samples)
    criticality = {name: int(count) / n_total
                   for name, count in zip(names, counts) if count}
    return SstaResult(samples=samples,
                      nominal_delay=ordered[0].nominal_delay,
                      criticality=criticality)


@dataclass(frozen=True)
class SstaResult:
    """Monte Carlo timing distribution of one design."""

    samples: np.ndarray        # critical delays [s]
    nominal_delay: float       # deterministic STA delay [s]
    criticality: Dict[str, float]   # instance -> P(on critical path)

    @property
    def mean(self) -> float:
        """Mean critical delay [s]."""
        return float(self.samples.mean())

    @property
    def sigma(self) -> float:
        """Standard deviation of the critical delay [s]."""
        return float(self.samples.std(ddof=1))

    def quantile(self, q: float) -> float:
        """Delay quantile (e.g. 0.999 for timing sign-off) [s]."""
        if not 0.0 < q < 1.0:
            raise ModelDomainError("q must be in (0, 1)")
        return float(np.quantile(self.samples, q))

    def yield_at(self, clock_period: float) -> float:
        """Fraction of dies meeting ``clock_period``."""
        return float(np.mean(self.samples <= clock_period))

    def most_critical(self, count: int = 5) -> List[str]:
        """Instances most often on the critical path."""
        ranked = sorted(self.criticality.items(),
                        key=lambda item: item[1], reverse=True)
        return [name for name, _ in ranked[:count]]


class StatisticalTimingAnalyzer:
    """Monte Carlo SSTA over a :class:`Netlist`.

    Each sample draws one shared inter-die V_T shift plus independent
    per-gate intra-die offsets (Pelgrom-sized from each gate's device
    area).  The default path compiles the netlist once
    (:class:`~repro.digital.timing_compiled.CompiledTimingGraph`) and
    evaluates all samples as one ``(n_samples, n_gates)`` array; the
    per-sample scalar loop stays available (``vectorized=False``) as
    the equivalence oracle.  Both paths draw per sample one inter-die
    variate followed by ``n_gates`` intra-die variates, so fixed-seed
    samples, critical paths and criticality counts agree.
    """

    def __init__(self, netlist: Netlist,
                 variation: VariationSpec = VariationSpec(),
                 wire_cap_per_fanout: float = 0.5e-15,
                 seed: Optional[int] = None):
        self.netlist = netlist
        self.variation = variation
        self.wire_cap_per_fanout = wire_cap_per_fanout
        self.rng = resolve_rng(seed=seed)

    def _intra_sigmas(self) -> Dict[str, float]:
        node = self.netlist.node
        sigmas = {}
        for name, instance in self.netlist.instances.items():
            width = instance.cell.nmos_width
            sigmas[name] = self.variation.intra_sigma_vth(
                node, width, node.feature_size)
        return sigmas

    def run(self, n_samples: int = 200,
            vectorized: bool = True) -> SstaResult:
        """Draw ``n_samples`` dies and collect delay statistics.

        ``vectorized=False`` selects the retained per-sample scalar
        loop (one full dict-based STA per die) -- the oracle the
        batched path is tested against.
        """
        n_samples = check_count("n_samples", n_samples, minimum=2)
        nominal = StaticTimingAnalyzer(
            self.netlist,
            wire_cap_per_fanout=self.wire_cap_per_fanout).analyze()
        sigmas = self._intra_sigmas()
        names = list(sigmas)
        if vectorized:
            compiled = CompiledTimingGraph(
                self.netlist,
                wire_cap_per_fanout=self.wire_cap_per_fanout)
            # Same stream as the scalar loop: per sample, one
            # inter-die draw then n_gates intra-die draws.
            draws = self.rng.standard_normal(
                (n_samples, 1 + len(names)))
            global_shift = self.variation.vth_inter * draws[:, 0]
            offsets = np.array([sigmas[name] for name in names]) \
                * draws[:, 1:]
            batch = compiled.evaluate(
                offsets, global_vth_offset=global_shift)
            return SstaResult(samples=batch.critical_delays,
                              nominal_delay=nominal.critical_delay,
                              criticality=batch.criticality())
        samples = np.empty(n_samples)
        on_path: Dict[str, int] = {name: 0 for name in names}
        for i in range(n_samples):
            global_shift = (self.variation.vth_inter
                            * self.rng.standard_normal())
            offsets = {
                name: sigmas[name] * self.rng.standard_normal()
                for name in names}
            report = StaticTimingAnalyzer(
                self.netlist,
                wire_cap_per_fanout=self.wire_cap_per_fanout,
                vth_offsets=offsets,
                global_vth_offset=global_shift).analyze()
            samples[i] = report.critical_delay
            for name in report.critical_path:
                on_path[name] = on_path.get(name, 0) + 1
        criticality = {name: count / n_samples
                       for name, count in on_path.items() if count}
        return SstaResult(samples=samples,
                          nominal_delay=nominal.critical_delay,
                          criticality=criticality)

    def run_shard(self, n_samples: int,
                  shard: Optional[tuple] = None) -> SstaShard:
        """Evaluate one ``(start, stop)`` slice of an ``n_samples`` run.

        Draws the full run's variate matrix (the cheap part) and
        evaluates only the slice (the expensive part), so shard ``k``
        of any partition carries bit-for-bit the samples ``run()``
        would have produced at those indices under the same seed.
        Returns integer criticality *counts* -- the mergeable form --
        via :class:`SstaShard`; :func:`merge_ssta_shards` rebuilds the
        exact single-process :class:`SstaResult`.
        """
        n_samples = check_count("n_samples", n_samples, minimum=2)
        shard = check_shard(shard, n_samples)
        start, stop = shard if shard is not None else (0, n_samples)
        nominal = StaticTimingAnalyzer(
            self.netlist,
            wire_cap_per_fanout=self.wire_cap_per_fanout).analyze()
        sigmas = self._intra_sigmas()
        names = list(sigmas)
        compiled = CompiledTimingGraph(
            self.netlist, wire_cap_per_fanout=self.wire_cap_per_fanout)
        draws = self.rng.standard_normal(
            (n_samples, 1 + len(names)))[start:stop]
        global_shift = self.variation.vth_inter * draws[:, 0]
        offsets = np.array([sigmas[name] for name in names]) \
            * draws[:, 1:]
        batch = compiled.evaluate(
            offsets, global_vth_offset=global_shift)
        counts_topo = batch.criticality_counts()
        topo_of = {name: i for i, name in enumerate(batch.names_topo)}
        counts = np.array([counts_topo[topo_of[name]]
                           for name in batch.names], dtype=np.int64)
        return SstaShard(samples=batch.critical_delays,
                         counts=counts, names=tuple(batch.names),
                         nominal_delay=nominal.critical_delay,
                         start=start, stop=stop)


def corner_vs_statistical_margin(netlist: Netlist,
                                 variation: VariationSpec =
                                 VariationSpec(),
                                 n_samples: int = 200,
                                 n_sigma: float = 3.0,
                                 seed: Optional[int] = None
                                 ) -> Dict[str, float]:
    """The pessimism of corner-based sign-off, measured.

    Corner margin: every gate simultaneously at +n_sigma of *both*
    inter- and intra-die V_T (the classic worst case).  Statistical
    margin: the same confidence (Gaussian n-sigma quantile) of the
    MC distribution.  The ratio > 1 is silicon left on the table.
    """
    from scipy.stats import norm
    node = netlist.node
    corner_shift = n_sigma * variation.vth_inter \
        + n_sigma * variation.intra_sigma_vth(
            node, 2.0 * node.feature_size, node.feature_size)
    corner_delay = float(CompiledTimingGraph(netlist).evaluate(
        global_vth_offset=corner_shift).critical_delays[0])
    analyzer = StatisticalTimingAnalyzer(netlist, variation, seed=seed)
    result = analyzer.run(n_samples)
    quantile = float(norm.cdf(n_sigma))
    statistical_delay = result.quantile(quantile)
    return {
        "nominal_ps": result.nominal_delay * 1e12,
        "corner_ps": corner_delay * 1e12,
        "statistical_ps": statistical_delay * 1e12,
        "corner_margin_pct": (corner_delay / result.nominal_delay
                              - 1.0) * 100.0,
        "statistical_margin_pct": (statistical_delay
                                   / result.nominal_delay - 1.0)
        * 100.0,
        "pessimism_ratio": corner_delay / statistical_delay,
    }


def depth_averaging_study(node: TechnologyNode,
                          depths: Sequence[int] = (4, 8, 16, 32),
                          n_samples: int = 200,
                          seed: int = 0) -> List[Dict[str, float]]:
    """Mismatch averaging along path depth.

    Independent per-gate sigma averages as 1/sqrt(depth) along a
    chain -- the statistical argument for why deep pipelines tolerate
    mismatch better than short ones (and why the shallow-logic trend
    of fast clocks collides with variability).
    """
    from .netlist import Netlist as _Netlist
    rows = []
    for depth in depths:
        chain = _Netlist(node, f"chain{depth}")
        chain.add_input("a")
        net = "a"
        for i in range(depth):
            net = chain.add_gate("INV", [net], f"n{i}").output
        analyzer = StatisticalTimingAnalyzer(
            chain, VariationSpec(vth_inter=0.0), seed=seed)
        result = analyzer.run(n_samples)
        rows.append({
            "depth": float(depth),
            "mean_ps": result.mean * 1e12,
            "sigma_ps": result.sigma * 1e12,
            "sigma_over_mean": result.sigma / result.mean,
        })
    return rows


def spatially_correlated_ssta(netlist: Netlist,
                              die: float = 2e-3,
                              spec: Optional["object"] = None,
                              n_samples: int = 120,
                              seed: Optional[int] = None
                              ) -> Dict[str, float]:
    """SSTA with spatially *correlated* intra-die variation.

    Places the instances on the die (row-major grid) and draws each
    sample's V_T offsets from a smooth spatial map
    (:mod:`repro.variability.spatial`) instead of independently per
    gate.  Neighbouring gates then vary together, so path delays
    average less than the independent-mismatch model predicts -- the
    variance the white-noise SSTA underestimates.

    Returns both sigmas for comparison.

    Each sample's V_T map is still drawn die-by-die (the maps are
    independently seeded objects), but every per-gate query is one
    batched :meth:`VtMap.at` call and all timing runs happen in two
    :meth:`CompiledTimingGraph.evaluate` calls over the stacked
    offset matrices -- same variate stream as per-gate scalar
    queries and per-sample STA.
    """
    import numpy as np
    from ..variability.spatial import SpatialSpec, sample_vt_map

    n_samples = check_count("n_samples", n_samples, minimum=2)
    node = netlist.node
    white_sigma = VariationSpec().intra_sigma_vth(
        node, 2.0 * node.feature_size, node.feature_size)
    spatial_spec = spec or SpatialSpec(
        gradient_sigma=white_sigma / die,
        correlated_sigma=0.5 * white_sigma,
        correlation_length=0.3 * die,
        white_sigma=white_sigma)

    names = list(netlist.instances)
    n_gates = len(names)
    n_cols = max(int(math.ceil(math.sqrt(n_gates))), 1)
    xs = np.array([0.05 * die + 0.9 * die * (index % n_cols) / n_cols
                   for index in range(n_gates)])
    ys = np.array([0.05 * die + 0.9 * die * (index // n_cols) / n_cols
                   for index in range(n_gates)])

    rng = resolve_rng(seed=seed)
    correlated_offsets = np.empty((n_samples, n_gates))
    independent_offsets = np.empty((n_samples, n_gates))
    total_sigma = math.sqrt(spatial_spec.white_sigma ** 2
                            + spatial_spec.correlated_sigma ** 2)
    for i in range(n_samples):
        vt_map = sample_vt_map(node, die, spatial_spec,
                               seed=int(rng.integers(2 ** 31)))
        correlated_offsets[i] = vt_map.at(xs, ys)
        independent_offsets[i] = rng.normal(
            0.0, total_sigma, size=n_gates)
    compiled = CompiledTimingGraph(netlist)
    correlated = compiled.evaluate(correlated_offsets).critical_delays
    independent = compiled.evaluate(
        independent_offsets).critical_delays
    return {
        "sigma_correlated_ps": float(correlated.std(ddof=1)) * 1e12,
        "sigma_independent_ps": float(independent.std(ddof=1)) * 1e12,
        "mean_correlated_ps": float(correlated.mean()) * 1e12,
        "mean_independent_ps": float(independent.mean()) * 1e12,
        "underestimation":
            float(correlated.std(ddof=1)
                  / max(independent.std(ddof=1), 1e-30)),
    }

