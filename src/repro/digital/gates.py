"""Standard-cell gate library.

Provides the logic, timing and electrical views of a small static-CMOS
cell library.  The same cells carry the SWAN substrate-injection
macromodels (:mod:`repro.substrate.injection`), so the digital
simulator and the substrate-noise flow share one library -- mirroring
the paper's description of SWAN ("a-priori characterizing every cell in
a digital standard cell library").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..technology.node import TechnologyNode
from ..devices.capacitance import (inverter_input_capacitance,
                                   inverter_self_load)
from ..devices.leakage import gate_leakage_per_gate
from .delay import DelayModel
from ..robust.errors import ModelDomainError, RoadmapDataError


# Logic functions map an input tuple to a bool.
LogicFunction = Callable[[Tuple[bool, ...]], bool]


def _inv(inputs: Tuple[bool, ...]) -> bool:
    return not inputs[0]


def _buf(inputs: Tuple[bool, ...]) -> bool:
    return inputs[0]


def _nand(inputs: Tuple[bool, ...]) -> bool:
    return not all(inputs)


def _nor(inputs: Tuple[bool, ...]) -> bool:
    return not any(inputs)


def _and(inputs: Tuple[bool, ...]) -> bool:
    return all(inputs)


def _or(inputs: Tuple[bool, ...]) -> bool:
    return any(inputs)


def _xor(inputs: Tuple[bool, ...]) -> bool:
    return bool(sum(inputs) % 2)


def _xnor(inputs: Tuple[bool, ...]) -> bool:
    return not bool(sum(inputs) % 2)


def _mux(inputs: Tuple[bool, ...]) -> bool:
    select, a, b = inputs
    return b if select else a


def _aoi21(inputs: Tuple[bool, ...]) -> bool:
    a, b, c = inputs
    return not ((a and b) or c)


@dataclass(frozen=True)
class CellType:
    """One library cell: logic plus electrical characterization inputs.

    ``logical_effort`` follows Sutherland's convention (INV = 1);
    ``internal_nodes`` scales the substrate-injection charge in the
    SWAN macromodel (more internal switching -> more injected charge).
    """

    name: str
    n_inputs: int
    function: LogicFunction
    logical_effort: float = 1.0
    parasitic_effort: float = 1.0
    internal_nodes: int = 1
    is_sequential: bool = False

    def evaluate(self, inputs: Sequence[bool]) -> bool:
        """Evaluate the cell logic."""
        if len(inputs) != self.n_inputs:
            raise ModelDomainError(
                f"{self.name} takes {self.n_inputs} inputs, "
                f"got {len(inputs)}")
        return self.function(tuple(bool(v) for v in inputs))


# The library.  Logical efforts are the standard static-CMOS values.
CELL_TYPES: Dict[str, CellType] = {
    "INV": CellType("INV", 1, _inv, 1.0, 1.0, 1),
    "BUF": CellType("BUF", 1, _buf, 1.0, 2.0, 2),
    "NAND2": CellType("NAND2", 2, _nand, 4.0 / 3.0, 2.0, 2),
    "NAND3": CellType("NAND3", 3, _nand, 5.0 / 3.0, 3.0, 3),
    "NOR2": CellType("NOR2", 2, _nor, 5.0 / 3.0, 2.0, 2),
    "NOR3": CellType("NOR3", 3, _nor, 7.0 / 3.0, 3.0, 3),
    "AND2": CellType("AND2", 2, _and, 4.0 / 3.0, 3.0, 3),
    "OR2": CellType("OR2", 2, _or, 5.0 / 3.0, 3.0, 3),
    "XOR2": CellType("XOR2", 2, _xor, 4.0, 4.0, 4),
    "XNOR2": CellType("XNOR2", 2, _xnor, 4.0, 4.0, 4),
    "MUX2": CellType("MUX2", 3, _mux, 2.0, 4.0, 4),
    "AOI21": CellType("AOI21", 3, _aoi21, 2.0, 3.0, 3),
    "DFF": CellType("DFF", 2, _mux, 2.0, 8.0, 8, is_sequential=True),
}


@dataclass
class Cell:
    """A sized instance of a :class:`CellType` in a technology node."""

    cell_type: CellType
    node: TechnologyNode
    drive: float = 1.0          # drive strength in unit (X1) inverters

    def __post_init__(self) -> None:
        if self.drive <= 0:
            raise ModelDomainError(f"drive must be positive, got {self.drive}")

    @property
    def nmos_width(self) -> float:
        """Equivalent NMOS width of the output stage [m]."""
        return 2.0 * self.node.feature_size * self.drive

    @property
    def input_capacitance(self) -> float:
        """Capacitance of one input pin [F] (logical effort scaled)."""
        return (self.cell_type.logical_effort
                * inverter_input_capacitance(self.node, self.nmos_width))

    @property
    def output_parasitic(self) -> float:
        """Parasitic self-load at the output [F]."""
        return (self.cell_type.parasitic_effort
                * inverter_self_load(self.node, self.nmos_width))

    def delay_model(self, load_capacitance: float) -> DelayModel:
        """The :class:`DelayModel` of this cell driving the given load.

        The effective drive width is de-rated by the logical effort
        and the extra internal parasitics (beyond one inverter's) are
        folded into the load, so one alpha-power-law model covers the
        whole library.  ``load_capacitance`` may be a scalar or an
        array (one entry per gate) -- the batched timing engine builds
        a single array-valued model for a whole netlist this way.
        """
        return DelayModel(
            node=self.node,
            drive_width=self.nmos_width / self.cell_type.logical_effort,
            load_capacitance=load_capacitance
            + (self.cell_type.parasitic_effort - 1.0)
            * inverter_self_load(self.node, self.nmos_width),
        )

    def delay(self, load_capacitance: float,
              vth_offset: float = 0.0) -> float:
        """Propagation delay [s] driving ``load_capacitance``.

        ``vth_offset`` may be a scalar or a numpy array of per-sample
        shifts (elementwise delays come back in the same shape).
        """
        model = self.delay_model(load_capacitance)
        return model.delay(vth=self.node.vth + vth_offset)

    def switching_energy(self, load_capacitance: float) -> float:
        """Dynamic energy per output transition C*V_DD^2 [J]."""
        total = (load_capacitance + self.output_parasitic
                 + 0.5 * self.cell_type.internal_nodes
                 * self.input_capacitance * 0.2)
        return total * self.node.vdd ** 2

    def leakage_current(self) -> float:
        """Average static leakage [A]."""
        budget = gate_leakage_per_gate(
            self.node,
            nmos_width=self.nmos_width,
            fanin=max(self.cell_type.n_inputs, 1))
        return budget.total

    def leakage_power(self) -> float:
        """Average static power [W]."""
        return self.leakage_current() * self.node.vdd

    def area(self) -> float:
        """Footprint estimate [m^2]: height 12 pitches, width scales
        with inputs and drive."""
        pitch = self.node.wire_pitch
        width = (2.0 + 2.0 * self.cell_type.n_inputs) * pitch \
            * math.sqrt(self.drive)
        return width * 12.0 * pitch


def make_cell(name: str, node: TechnologyNode, drive: float = 1.0) -> Cell:
    """Instantiate a library cell by name."""
    try:
        cell_type = CELL_TYPES[name]
    except KeyError:
        raise RoadmapDataError(
            f"unknown cell {name!r}; available: "
            f"{', '.join(CELL_TYPES)}") from None
    return Cell(cell_type=cell_type, node=node, drive=drive)


def library_report(node: TechnologyNode) -> List[Dict[str, float]]:
    """Characterization table of the whole library in ``node``."""
    rows = []
    for name in CELL_TYPES:
        cell = make_cell(name, node)
        load = 4.0 * cell.input_capacitance
        rows.append({
            "cell": name,
            "input_cap_fF": cell.input_capacitance * 1e15,
            "delay_fo4_ps": cell.delay(load) * 1e12,
            "energy_fJ": cell.switching_energy(load) * 1e15,
            "leakage_nW": cell.leakage_power() * 1e9,
            "area_um2": cell.area() * 1e12,
        })
    return rows
