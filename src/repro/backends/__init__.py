"""Pluggable evaluation backends: the oracle/vectorized protocol.

See :mod:`repro.backends.protocol` for the registry and
:mod:`repro.backends.contracts` for the equivalence contracts.
"""

from .protocol import (
    BACKEND_NAMES,
    EvaluationBackend,
    available_backends,
    get_backend,
    load_builtin_engines,
    register_backend,
    registered_engines,
    resolve_backend,
)
from .contracts import (
    EquivalenceContract,
    assert_backends_agree,
    contracted_engines,
    equivalence_contract,
    register_contract,
)

__all__ = [
    "BACKEND_NAMES", "EvaluationBackend", "available_backends",
    "get_backend", "load_builtin_engines", "register_backend",
    "registered_engines", "resolve_backend",
    "EquivalenceContract", "assert_backends_agree",
    "contracted_engines", "equivalence_contract", "register_contract",
]
