"""Oracle-equivalence contracts for registered evaluation engines.

Every engine in :mod:`repro.backends.protocol` promises a specific
agreement between its oracle and vectorized paths under identical
(fixed-seed) inputs:

* ``rtol == 0.0`` -- **bit-for-bit**: the vectorized path evaluates
  the same closed-form expressions in the same order, computing the
  few libm-divergent operations (``log10``, ``atan``, ``exp``,
  ``x ** 2``) per element through Python's ``math`` so every float
  matches the scalar path exactly.  Synthesis evaluators hold this
  contract, which is what makes fixed-seed differential evolution
  return the *identical* best design on either backend.
* ``rtol > 0`` -- **iterative-solver tolerance**: fixed-point loops
  (electrothermal) accumulate one-ulp libm differences per iteration,
  so the contract is a small relative tolerance (<= 1e-9) on every
  numeric leaf plus exact agreement on discrete outcomes (convergence
  flags, iteration counts, report messages).

The contract objects are registered next to the backends and consumed
by the hypothesis equivalence suite (``tests/backends``), so adding
an engine without stating its contract is a test failure, not a
silent gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..robust.errors import BackendEquivalenceError, ModelDomainError
from ..robust.validate import iter_numeric_leaves


@dataclass(frozen=True)
class EquivalenceContract:
    """How closely an engine's oracle and vectorized paths must agree."""

    engine: str
    #: 0.0 means bit-for-bit; > 0 is the relative tolerance for
    #: iterative solvers.
    rtol: float
    description: str = ""
    #: Dotted names of the functions the contract covers beyond the
    #: registered backends themselves (e.g. the public drivers that
    #: dispatch through the engine).  Consumed statically by the
    #: R008 transitive-determinism lint pass, which treats each as a
    #: determinism root.
    entry_points: Tuple[str, ...] = ()

    @property
    def bitwise(self) -> bool:
        """True when the contract is exact float equality."""
        return self.rtol == 0.0


_CONTRACTS: Dict[str, EquivalenceContract] = {}


def register_contract(engine: str, rtol: float,
                      description: str = "",
                      entry_points: Tuple[str, ...] = ()
                      ) -> EquivalenceContract:
    """Declare the equivalence contract of ``engine``.

    ``entry_points`` should be literal dotted names (the lint pass
    reads them statically from the registration call site).
    """
    if not (rtol >= 0.0 and np.isfinite(rtol)):
        raise ModelDomainError(
            f"contract rtol must be finite and >= 0, got {rtol!r}")
    contract = EquivalenceContract(engine=engine, rtol=float(rtol),
                                   description=description,
                                   entry_points=tuple(entry_points))
    _CONTRACTS[engine] = contract
    return contract


def equivalence_contract(engine: str) -> EquivalenceContract:
    """The registered contract of ``engine`` (typed error on miss)."""
    from .protocol import load_builtin_engines
    load_builtin_engines()
    if engine not in _CONTRACTS:
        raise ModelDomainError(
            f"engine {engine!r} has no equivalence contract; declared: "
            f"{', '.join(sorted(_CONTRACTS)) or '(none)'}")
    return _CONTRACTS[engine]


def contracted_engines() -> List[str]:
    """Sorted engines with a declared equivalence contract."""
    from .protocol import load_builtin_engines
    load_builtin_engines()
    return sorted(_CONTRACTS)


def assert_backends_agree(oracle_result: object, vectorized_result: object,
                          contract: EquivalenceContract) -> None:
    """Assert two backend results agree per ``contract``.

    Walks every numeric leaf (dataclasses, mappings, sequences,
    arrays) of both results in parallel; a bitwise contract uses exact
    array equality (NaNs must match positionally), a tolerance
    contract uses ``rtol`` with equal-nan semantics.  Raises
    a typed :class:`BackendEquivalenceError` (an ``AssertionError``
    subclass) naming the engine on divergence, so test
    failures identify the broken engine directly.
    """
    oracle_leaves = [np.asarray(leaf, dtype=float).ravel()
                     for leaf in iter_numeric_leaves(oracle_result)]
    vector_leaves = [np.asarray(leaf, dtype=float).ravel()
                     for leaf in iter_numeric_leaves(vectorized_result)]
    if len(oracle_leaves) != len(vector_leaves):
        raise BackendEquivalenceError(
            f"{contract.engine}: backend results have different shapes "
            f"({len(oracle_leaves)} vs {len(vector_leaves)} numeric "
            f"leaves)")
    for index, (a, b) in enumerate(zip(oracle_leaves, vector_leaves)):
        if contract.bitwise:
            if not np.array_equal(a, b, equal_nan=True):
                raise BackendEquivalenceError(
                    f"{contract.engine}: bit-for-bit contract violated "
                    f"at numeric leaf {index}: {a!r} != {b!r}")
        else:
            if not np.allclose(a, b, rtol=contract.rtol, atol=0.0,
                               equal_nan=True):
                raise BackendEquivalenceError(
                    f"{contract.engine}: rtol={contract.rtol:g} "
                    f"contract violated at numeric leaf {index}: "
                    f"{a!r} vs {b!r}")
