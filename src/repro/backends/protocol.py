"""The evaluation-backend protocol: one engine, two interchangeable paths.

The package's performance architecture (docs/architecture.md) keeps
every batched fast path paired with the scalar implementation it was
lowered from -- the *oracle* -- and pins their agreement in tier-1
tests.  This module makes that pairing a first-class, discoverable
object instead of a per-module convention:

* an **engine** is a named evaluation problem ("synthesis.ota",
  "thermal.electrothermal", ...);
* a **backend** is one implementation path of that engine, either
  ``"oracle"`` (the scalar reference, one candidate per call) or
  ``"vectorized"`` (the numpy twin, a whole population per call);
* the **registry** maps ``engine -> {backend name -> descriptor}`` so
  callers, the CLI (``python -m repro backends``) and the R007 lint
  rule can enumerate which paths exist.

Public entry points take a ``backend=`` kwarg resolved through
:func:`resolve_backend`; ``None`` selects the engine's default
(vectorized when available).  Every engine also carries an
equivalence contract (:mod:`repro.backends.contracts`) stating how
closely the two paths must agree.

Registrations use literal engine/backend strings (e.g.
``register_backend("synthesis.ota", "oracle", ...)``) so the
backend-conformance lint rule can verify statically that every
registered engine exposes both paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..robust.errors import ModelDomainError

#: The two canonical backend names of the oracle/vectorized protocol.
BACKEND_NAMES: Tuple[str, ...] = ("oracle", "vectorized")


@dataclass(frozen=True)
class EvaluationBackend:
    """One implementation path of a registered evaluation engine.

    ``call`` is the canonical callable implementing the path -- the
    scalar entry point for ``"oracle"``, its array-valued twin for
    ``"vectorized"``.  For method-based engines it is the unbound
    method; dispatch then happens inside the owning class, and the
    registry entry documents which callable realizes the path.
    """

    engine: str
    name: str
    call: Callable
    description: str = ""


_REGISTRY: Dict[str, Dict[str, EvaluationBackend]] = {}


def register_backend(engine: str, name: str, call: Callable,
                     description: str = "") -> EvaluationBackend:
    """Register (or re-register) one backend of ``engine``.

    Idempotent by (engine, name): re-importing an engine module simply
    replaces the descriptor, so test reloads stay harmless.
    """
    if name not in BACKEND_NAMES:
        raise ModelDomainError(
            f"backend name must be one of {BACKEND_NAMES}, got {name!r}")
    backend = EvaluationBackend(engine=engine, name=name, call=call,
                                description=description)
    _REGISTRY.setdefault(engine, {})[name] = backend
    return backend


def registered_engines() -> List[str]:
    """Sorted names of every registered engine."""
    load_builtin_engines()
    return sorted(_REGISTRY)


def available_backends(engine: str) -> Tuple[str, ...]:
    """The backend names registered for ``engine`` (oracle first)."""
    load_builtin_engines()
    if engine not in _REGISTRY:
        raise ModelDomainError(
            f"unknown evaluation engine {engine!r}; registered engines: "
            f"{', '.join(sorted(_REGISTRY)) or '(none)'}")
    names = _REGISTRY[engine]
    return tuple(name for name in BACKEND_NAMES if name in names)


def get_backend(engine: str, name: str) -> EvaluationBackend:
    """Look up one backend descriptor, with a typed error on miss."""
    backends = {b: _REGISTRY[engine][b] for b in available_backends(engine)}
    if name not in backends:
        raise ModelDomainError(
            f"engine {engine!r} has no backend {name!r}; available: "
            f"{', '.join(backends)}")
    return backends[name]


def resolve_backend(engine: str, backend: Optional[str],
                    default: str = "vectorized") -> EvaluationBackend:
    """Resolve a public API's ``backend=`` kwarg to a descriptor.

    ``None`` selects ``default`` when that path is registered, falling
    back to the oracle otherwise -- so an engine that has not grown a
    vectorized twin yet still resolves.
    """
    if backend is None:
        names = available_backends(engine)
        backend = default if default in names else "oracle"
    return get_backend(engine, backend)


def load_builtin_engines() -> None:
    """Import the engine-owning modules (registration side effect).

    Mirrors ``repro.lint.rules._load_builtin_rules``: the registry
    fills in as modules import, and this forces the built-in set for
    enumeration (CLI listing, conformance tests) without making
    ``repro.backends`` itself import-heavy at package import time.
    """
    from ..synthesis import sizing  # noqa: F401
    from ..thermal import electrothermal  # noqa: F401
    from ..analog import yield_analysis  # noqa: F401
