"""Command-line interface: quick reports from the terminal.

Usage::

    python -m repro nodes                 # the built-in node library
    python -m repro node 65nm             # one node's full parameter set
    python -m repro scorecard             # the end-of-road table
    python -m repro leakage               # Tab B leakage fractions
    python -m repro figures               # index of figure benchmarks
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import List, Optional


def _print_table(rows, columns=None) -> None:
    if not rows:
        print("(no rows)")
        return
    columns = columns or list(rows[0].keys())
    header = " | ".join(f"{c:>18}" for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            cells.append(f"{value:>18.5g}" if isinstance(value, float)
                         else f"{value!s:>18}")
        print(" | ".join(cells))


def cmd_nodes(_args) -> int:
    from .technology import all_nodes
    rows = []
    for node in all_nodes():
        row = {"node": node.name}
        row.update(node.summary())
        rows.append(row)
    _print_table(rows, columns=["node", "vdd_V", "vth_V", "tox_nm",
                                "wire_pitch_nm", "overdrive_V",
                                "sigma_vt_min_mV", "body_factor"])
    return 0


def cmd_node(args) -> int:
    from .robust import RoadmapDataError
    from .technology import get_node
    try:
        node = get_node(args.name)
    except RoadmapDataError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(node)
    for key, value in node.summary().items():
        print(f"  {key:>22}: {value:.5g}")
    return 0


def cmd_scorecard(args) -> int:
    from .core import end_of_road_table
    from .technology import all_nodes
    rows = end_of_road_table(all_nodes(),
                             operating_temperature=args.temperature)
    _print_table(rows, columns=["node", "fo4_ps", "leakage_fraction",
                                "wc_energy_penalty", "analog_power_rel",
                                "sync_region_mm", "body_bias_mV",
                                "benefit_vs_prev"])
    return 0


def cmd_leakage(args) -> int:
    from .digital import leakage_fraction_trend
    from .technology import all_nodes
    hot = [node.at_temperature(args.temperature)
           for node in all_nodes()]
    rows = leakage_fraction_trend(hot, n_gates=args.gates,
                                  frequency=args.frequency)
    _print_table(rows)
    return 0


def cmd_report(args) -> int:
    from .core.report import generate_report, write_report
    if args.output:
        write_report(args.output,
                     operating_temperature=args.temperature)
        print(f"report written to {args.output}")
    else:
        import sys as _sys
        generate_report(stream=_sys.stdout,
                        operating_temperature=args.temperature)
    return 0


def cmd_chain_yield(args) -> int:
    from .analog import ChainSpec, chain_yield_vs_node
    from .robust import RoadmapDataError
    from .technology import get_node
    nodes = None
    if args.nodes:
        try:
            nodes = [get_node(name) for name in args.nodes.split(",")]
        except RoadmapDataError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    spec = ChainSpec(dnl_limit=args.dnl_limit, inl_limit=args.inl_limit,
                     enob_min=args.enob_min)
    rows = chain_yield_vs_node(nodes=nodes, spec=spec,
                               n_dies=args.dies, seed=args.seed,
                               vectorized=not args.scalar)
    _print_table(rows, columns=["node", "yield_fraction", "enob_mean",
                                "enob_min", "dnl_worst_lsb",
                                "inl_worst_lsb", "n_dies"])
    return 0


def cmd_soc_noise(args) -> int:
    from .digital import random_stimulus, soc_netlist
    from .digital.simulator_compiled import CompiledEventEngine
    from .substrate import SwanSimulator
    from .technology import get_node
    node = get_node(args.node)
    netlist = soc_netlist(node, target_gates=args.gates,
                          n_blocks=args.blocks, seed=args.seed)
    engine = CompiledEventEngine(
        netlist, clock_period=1.0 / args.frequency,
        event_budget=args.event_budget)
    stimulus = random_stimulus(
        netlist, args.cycles, seed=args.seed,
        held_high=["en"] + [f"blk{b}_en" for b in range(args.blocks)])
    trace = engine.run(stimulus, args.cycles)
    swan = SwanSimulator(netlist, clock_frequency=args.frequency,
                         seed=args.seed)
    wave = swan.stream_noise(trace, chunk_events=args.chunk_events)
    _print_table([{
        "gates": len(netlist.instances),
        "events": trace.n_events,
        "activity": trace.activity_factor(args.cycles),
        "rms_uV": wave.rms * 1e6,
        "p2p_uV": wave.peak_to_peak * 1e6,
    }])
    return 0


def cmd_figures(_args) -> int:
    index = [
        ("fig01", "subthreshold I(V_GS, V_DS) with DIBL (eq. 1)"),
        ("fig02", "dopant atoms vs channel length"),
        ("fig03", "MC source/drain dopant placement -> L_eff"),
        ("fig04", "V_T variation vs gate delay"),
        ("fig05", "max wire length for 20% clock skew"),
        ("fig06", "thermal/mismatch limits + ADC survey (eq. 4)"),
        ("fig07", "analog power vs node at fixed spec (eq. 5)"),
        ("fig08", "AMGIE/LAYLA detector front-end synthesis"),
        ("fig09", "VCO FM spurs from substrate noise"),
        ("fig10", "SWAN vs reference substrate noise accuracy"),
        ("tab_scaling_laws", "full-scaling consequences (Tab A)"),
        ("tab_leakage_fraction", "leakage fraction per node (Tab B)"),
        ("tab_worstcase_energy", "worst-case sizing penalty (Tab C)"),
        ("tab_body_bias", "VTCMOS effectiveness (Tab D)"),
        ("abl_*", "ablations: substrate mitigation, leakage shootout,"
                  " materials, GALS/energy optimum, calibration/masks"),
    ]
    print("Figure benchmarks (run: pytest benchmarks/test_<id>*.py "
          "--benchmark-only -s):")
    for name, description in index:
        print(f"  {name:>22}: {description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="65 nm CMOS 'end of the road?' analysis toolkit")
    parser.add_argument(
        "--strict", action="store_true",
        help="treat model-domain warnings (e.g. out-of-calibration "
             "temperatures) as errors")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("nodes", help="list the built-in technology nodes"
                   ).set_defaults(func=cmd_nodes)

    node_parser = sub.add_parser("node", help="show one node in detail")
    node_parser.add_argument("name", help="e.g. 65nm")
    node_parser.set_defaults(func=cmd_node)

    score_parser = sub.add_parser(
        "scorecard", help="the end-of-the-road table")
    score_parser.add_argument("--temperature", type=float,
                              default=358.0, help="junction K")
    score_parser.set_defaults(func=cmd_scorecard)

    leak_parser = sub.add_parser(
        "leakage", help="leakage fraction per node (Tab B)")
    leak_parser.add_argument("--gates", type=int, default=1_000_000)
    leak_parser.add_argument("--frequency", type=float, default=1e9)
    leak_parser.add_argument("--temperature", type=float, default=358.0)
    leak_parser.set_defaults(func=cmd_leakage)

    report_parser = sub.add_parser(
        "report", help="full markdown reproduction report")
    report_parser.add_argument("--output", default=None,
                               help="write to a file instead of stdout")
    report_parser.add_argument("--temperature", type=float,
                               default=358.0)
    report_parser.set_defaults(func=cmd_report)

    chain_parser = sub.add_parser(
        "chain-yield",
        help="DAC -> SC filter -> ADC sign-off yield vs node")
    chain_parser.add_argument("--dies", type=int, default=64,
                              help="Monte Carlo dies per node")
    chain_parser.add_argument("--seed", type=int, default=0)
    chain_parser.add_argument("--nodes", default=None,
                              help="comma-separated, e.g. 130nm,65nm")
    chain_parser.add_argument("--dnl-limit", type=float, default=0.5,
                              help="max |DNL| [LSB]")
    chain_parser.add_argument("--inl-limit", type=float, default=1.0,
                              help="max |INL| [LSB]")
    chain_parser.add_argument("--enob-min", type=float, default=None,
                              help="ENOB floor (default n_bits - 1.5)")
    chain_parser.add_argument("--scalar", action="store_true",
                              help="use the per-die scalar oracle "
                                   "instead of the batched path")
    chain_parser.set_defaults(func=cmd_chain_yield)

    soc_parser = sub.add_parser(
        "soc-noise",
        help="SoC-scale activity -> substrate noise via the compiled "
             "event engine")
    soc_parser.add_argument("--node", default="65nm")
    soc_parser.add_argument("--gates", type=int, default=20_000,
                            help="target gate count")
    soc_parser.add_argument("--blocks", type=int, default=8,
                            help="clock-gated blocks")
    soc_parser.add_argument("--cycles", type=int, default=10)
    soc_parser.add_argument("--frequency", type=float, default=50e6)
    soc_parser.add_argument("--seed", type=int, default=0)
    soc_parser.add_argument("--event-budget", type=int,
                            default=10_000_000)
    soc_parser.add_argument("--chunk-events", type=int,
                            default=100_000,
                            help="events per streamed SWAN chunk")
    soc_parser.set_defaults(func=cmd_soc_noise)

    sub.add_parser("figures", help="index of figure benchmarks"
                   ).set_defaults(func=cmd_figures)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Model-boundary failures (:class:`~repro.robust.ReproError`) exit
    with a one-line ``error:`` message and status 1 -- never a
    traceback.  ``--strict`` additionally promotes
    :class:`~repro.robust.ReproWarning` (out-of-calibration inputs,
    non-converged sweep points) to errors.
    """
    from .robust import ReproError, ReproWarning
    args = build_parser().parse_args(argv)
    with warnings.catch_warnings():
        if args.strict:
            warnings.simplefilter("error", category=ReproWarning)
        try:
            return args.func(args)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        except ReproWarning as warning:
            print(f"error (strict): {warning}", file=sys.stderr)
            return 1


if __name__ == "__main__":
    sys.exit(main())
