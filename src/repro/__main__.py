"""Command-line interface: quick reports from the terminal.

Usage::

    python -m repro nodes                 # the built-in node library
    python -m repro node 65nm             # one node's full parameter set
    python -m repro scorecard             # the end-of-road table
    python -m repro leakage               # Tab B leakage fractions
    python -m repro figures               # index of figure benchmarks
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import List, Optional


def _print_table(rows, columns=None) -> None:
    if not rows:
        print("(no rows)")
        return
    columns = columns or list(rows[0].keys())
    header = " | ".join(f"{c:>18}" for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            cells.append(f"{value:>18.5g}" if isinstance(value, float)
                         else f"{value!s:>18}")
        print(" | ".join(cells))


def cmd_nodes(_args) -> int:
    from .technology import all_nodes
    rows = []
    for node in all_nodes():
        row = {"node": node.name}
        row.update(node.summary())
        rows.append(row)
    _print_table(rows, columns=["node", "vdd_V", "vth_V", "tox_nm",
                                "wire_pitch_nm", "overdrive_V",
                                "sigma_vt_min_mV", "body_factor"])
    return 0


def cmd_node(args) -> int:
    from .robust import RoadmapDataError
    from .technology import get_node
    try:
        node = get_node(args.name)
    except RoadmapDataError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(node)
    for key, value in node.summary().items():
        print(f"  {key:>22}: {value:.5g}")
    return 0


def cmd_scorecard(args) -> int:
    from .core import end_of_road_table
    from .technology import all_nodes
    rows = end_of_road_table(all_nodes(),
                             operating_temperature=args.temperature)
    _print_table(rows, columns=["node", "fo4_ps", "leakage_fraction",
                                "wc_energy_penalty", "analog_power_rel",
                                "sync_region_mm", "body_bias_mV",
                                "benefit_vs_prev"])
    return 0


def cmd_leakage(args) -> int:
    from .digital import leakage_fraction_trend
    from .technology import all_nodes
    hot = [node.at_temperature(args.temperature)
           for node in all_nodes()]
    rows = leakage_fraction_trend(hot, n_gates=args.gates,
                                  frequency=args.frequency)
    _print_table(rows)
    return 0


def cmd_report(args) -> int:
    from .core.report import generate_report, write_report
    if args.output:
        write_report(args.output,
                     operating_temperature=args.temperature)
        print(f"report written to {args.output}")
    else:
        import sys as _sys
        generate_report(stream=_sys.stdout,
                        operating_temperature=args.temperature)
    return 0


def _exec_policy_and_chaos(args):
    """(RetryPolicy, ChaosPlan | None) from the shared exec flags."""
    from .exec import ChaosPlan, ChaosSpec, RetryPolicy
    policy = RetryPolicy(max_retries=args.retries,
                         timeout_s=args.timeout,
                         backoff_initial_s=args.backoff)
    chaos = None
    if args.chaos_seed is not None:
        chaos = ChaosPlan(
            ChaosSpec(seed=args.chaos_seed,
                      crash_rate=args.chaos_crash,
                      hang_rate=args.chaos_hang,
                      poison_rate=args.chaos_poison),
            policy=policy)
    return policy, chaos


def _run_workload(workload, args):
    """Run one workload through the sharded executor (CLI flags)."""
    from .exec import run_sharded
    policy, chaos = _exec_policy_and_chaos(args)
    return run_sharded(workload, n_shards=args.shards,
                       policy=policy, backend=args.backend,
                       checkpoint=args.checkpoint,
                       resume=args.resume, chaos=chaos,
                       strict=args.strict)


def _print_partial(partial) -> None:
    """Degraded-mode output: honest coverage, no fake full rows."""
    print(f"warning: {partial.summary()}", file=sys.stderr)
    row = dict(partial.statistics)
    if partial.yield_bounds:
        wilson = partial.yield_bounds["wilson"]
        exact = partial.yield_bounds["clopper_pearson"]
        row.update({"wilson_low": wilson.lower,
                    "wilson_high": wilson.upper,
                    "exact_low": exact.lower,
                    "exact_high": exact.upper})
    _print_table([row])


def cmd_yield(args) -> int:
    from .exec import (PartialResult, YieldWorkload,
                       clopper_pearson_interval, wilson_interval)
    workload = YieldWorkload(
        node_name=args.node, metric=args.metric, limit=args.limit,
        n_dies=args.dies, seed=args.seed)
    result = _run_workload(workload, args)
    if isinstance(result, PartialResult):
        _print_partial(result)
        return 0
    value = result.value
    wilson = wilson_interval(value.n_pass, value.n_samples)
    exact = clopper_pearson_interval(value.n_pass, value.n_samples)
    _print_table([{
        "node": args.node,
        "metric": args.metric,
        "n_dies": float(value.n_samples),
        "yield_fraction": value.yield_fraction,
        "wilson_low": wilson.lower,
        "wilson_high": wilson.upper,
        "exact_low": exact.lower,
        "exact_high": exact.upper,
    }])
    return 0


def cmd_chain_yield(args) -> int:
    from .analog import ChainSpec, chain_yield_vs_node
    from .robust import RoadmapDataError
    from .technology import get_node
    node_names = args.nodes.split(",") if args.nodes else None
    if node_names:
        try:
            for name in node_names:
                get_node(name)
        except RoadmapDataError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    columns = ["node", "yield_fraction", "enob_mean", "enob_min",
               "dnl_worst_lsb", "inl_worst_lsb", "n_dies"]
    if args.shards is not None:
        from .exec import ChainSignoffWorkload, PartialResult
        from .technology import all_nodes
        names = node_names or [n.name for n in all_nodes()]
        rows = []
        for name in names:
            workload = ChainSignoffWorkload(
                node_name=name, n_dies=args.dies, seed=args.seed,
                dnl_limit=args.dnl_limit, inl_limit=args.inl_limit,
                enob_min=args.enob_min)
            result = _run_workload(workload, args)
            if isinstance(result, PartialResult):
                _print_partial(result)
            else:
                rows.append(result.value)
        if rows:
            _print_table(rows, columns=columns)
        return 0
    nodes = ([get_node(name) for name in node_names]
             if node_names else None)
    spec = ChainSpec(dnl_limit=args.dnl_limit, inl_limit=args.inl_limit,
                     enob_min=args.enob_min)
    rows = chain_yield_vs_node(nodes=nodes, spec=spec,
                               n_dies=args.dies, seed=args.seed,
                               vectorized=not args.scalar)
    _print_table(rows, columns=columns)
    return 0


def cmd_soc_noise(args) -> int:
    if args.shards is not None:
        from .exec import PartialResult, SocNoiseWorkload
        workload = SocNoiseWorkload(
            node_name=args.node, target_gates=args.gates,
            n_blocks=args.blocks, n_cycles=args.cycles,
            frequency=args.frequency, seed=args.seed,
            event_budget=args.event_budget)
        result = _run_workload(workload, args)
        if isinstance(result, PartialResult):
            _print_partial(result)
            return 0
        _print_table([result.value])
        return 0
    from .digital import random_stimulus, soc_netlist
    from .digital.simulator_compiled import CompiledEventEngine
    from .substrate import SwanSimulator
    from .technology import get_node
    node = get_node(args.node)
    netlist = soc_netlist(node, target_gates=args.gates,
                          n_blocks=args.blocks, seed=args.seed)
    engine = CompiledEventEngine(
        netlist, clock_period=1.0 / args.frequency,
        event_budget=args.event_budget)
    stimulus = random_stimulus(
        netlist, args.cycles, seed=args.seed,
        held_high=["en"] + [f"blk{b}_en" for b in range(args.blocks)])
    trace = engine.run(stimulus, args.cycles)
    swan = SwanSimulator(netlist, clock_frequency=args.frequency,
                         seed=args.seed)
    wave = swan.stream_noise(trace, chunk_events=args.chunk_events)
    _print_table([{
        "gates": len(netlist.instances),
        "events": trace.n_events,
        "activity": trace.activity_factor(args.cycles),
        "rms_uV": wave.rms * 1e6,
        "p2p_uV": wave.peak_to_peak * 1e6,
    }])
    return 0


def cmd_backends(_args) -> int:
    from .backends import (available_backends, equivalence_contract,
                           get_backend, registered_engines)
    from .robust import ReproError
    print("Evaluation engines (oracle/vectorized protocol):")
    for engine in registered_engines():
        names = available_backends(engine)
        try:
            contract = equivalence_contract(engine)
            agreement = "bit-for-bit" if contract.bitwise \
                else f"rtol<={contract.rtol:g}"
        except ReproError:
            agreement = "no contract"
        print(f"  {engine}  [{', '.join(names)}]  ({agreement})")
        for name in names:
            backend = get_backend(engine, name)
            print(f"    {name:>10}: {backend.description}")
    return 0


def cmd_electrothermal(args) -> int:
    import numpy as np
    from .robust import RoadmapDataError
    from .technology import all_nodes, get_node
    from .thermal import electrothermal_rth_sweep
    if args.nodes:
        try:
            nodes = [get_node(name)
                     for name in args.nodes.split(",")]
        except RoadmapDataError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    else:
        nodes = all_nodes()
    rth_values = np.geomspace(args.rth_min, args.rth_max,
                              args.rth_points)
    rows = electrothermal_rth_sweep(
        nodes, rth_values, n_gates=args.gates,
        frequency=args.frequency, backend=args.backend)
    _print_table(rows, columns=["node", "rth_K_per_W", "junction_K",
                                "leakage_W", "feedback_amplification",
                                "converged", "runaway", "n_iterations"])
    return 0


def cmd_figures(_args) -> int:
    index = [
        ("fig01", "subthreshold I(V_GS, V_DS) with DIBL (eq. 1)"),
        ("fig02", "dopant atoms vs channel length"),
        ("fig03", "MC source/drain dopant placement -> L_eff"),
        ("fig04", "V_T variation vs gate delay"),
        ("fig05", "max wire length for 20% clock skew"),
        ("fig06", "thermal/mismatch limits + ADC survey (eq. 4)"),
        ("fig07", "analog power vs node at fixed spec (eq. 5)"),
        ("fig08", "AMGIE/LAYLA detector front-end synthesis"),
        ("fig09", "VCO FM spurs from substrate noise"),
        ("fig10", "SWAN vs reference substrate noise accuracy"),
        ("tab_scaling_laws", "full-scaling consequences (Tab A)"),
        ("tab_leakage_fraction", "leakage fraction per node (Tab B)"),
        ("tab_worstcase_energy", "worst-case sizing penalty (Tab C)"),
        ("tab_body_bias", "VTCMOS effectiveness (Tab D)"),
        ("abl_*", "ablations: substrate mitigation, leakage shootout,"
                  " materials, GALS/energy optimum, calibration/masks"),
    ]
    print("Figure benchmarks (run: pytest benchmarks/test_<id>*.py "
          "--benchmark-only -s):")
    for name, description in index:
        print(f"  {name:>22}: {description}")
    return 0


def _add_exec_args(parser, default_shards=None) -> None:
    """The sharded-execution flags shared by MC subcommands."""
    group = parser.add_argument_group("sharded execution")
    group.add_argument("--shards", type=int, default=default_shards,
                       help="split the run into N fault-tolerant "
                            "shards (fixed-seed results are "
                            "bit-identical for any N)")
    group.add_argument("--timeout", type=float, default=None,
                       help="per-shard attempt timeout [s]")
    group.add_argument("--retries", type=int, default=2,
                       help="retries per shard (same stream replays)")
    group.add_argument("--backoff", type=float, default=0.05,
                       help="initial retry back-off [s] (doubles, "
                            "bounded)")
    group.add_argument("--backend", choices=("serial", "process"),
                       default="serial",
                       help="run shards in-process or in worker "
                            "processes")
    group.add_argument("--checkpoint", default=None,
                       help="JSON file recording completed shards")
    group.add_argument("--resume", action="store_true",
                       help="load completed shards from --checkpoint "
                            "instead of re-running them")
    group.add_argument("--chaos-seed", type=int, default=None,
                       help="inject a seeded crash/hang/poison fault "
                            "schedule (testing the fault tolerance)")
    group.add_argument("--chaos-crash", type=float, default=0.2,
                       help="per-attempt injected crash rate")
    group.add_argument("--chaos-hang", type=float, default=0.1,
                       help="per-attempt injected hang rate")
    group.add_argument("--chaos-poison", type=float, default=0.2,
                       help="per-attempt poisoned-payload rate")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="65 nm CMOS 'end of the road?' analysis toolkit")
    parser.add_argument(
        "--strict", action="store_true",
        help="treat model-domain warnings (e.g. out-of-calibration "
             "temperatures) as errors")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("nodes", help="list the built-in technology nodes"
                   ).set_defaults(func=cmd_nodes)

    node_parser = sub.add_parser("node", help="show one node in detail")
    node_parser.add_argument("name", help="e.g. 65nm")
    node_parser.set_defaults(func=cmd_node)

    score_parser = sub.add_parser(
        "scorecard", help="the end-of-the-road table")
    score_parser.add_argument("--temperature", type=float,
                              default=358.0, help="junction K")
    score_parser.set_defaults(func=cmd_scorecard)

    leak_parser = sub.add_parser(
        "leakage", help="leakage fraction per node (Tab B)")
    leak_parser.add_argument("--gates", type=int, default=1_000_000)
    leak_parser.add_argument("--frequency", type=float, default=1e9)
    leak_parser.add_argument("--temperature", type=float, default=358.0)
    leak_parser.set_defaults(func=cmd_leakage)

    report_parser = sub.add_parser(
        "report", help="full markdown reproduction report")
    report_parser.add_argument("--output", default=None,
                               help="write to a file instead of stdout")
    report_parser.add_argument("--temperature", type=float,
                               default=358.0)
    report_parser.set_defaults(func=cmd_report)

    chain_parser = sub.add_parser(
        "chain-yield",
        help="DAC -> SC filter -> ADC sign-off yield vs node")
    chain_parser.add_argument("--dies", type=int, default=64,
                              help="Monte Carlo dies per node")
    chain_parser.add_argument("--seed", type=int, default=0)
    chain_parser.add_argument("--nodes", default=None,
                              help="comma-separated, e.g. 130nm,65nm")
    chain_parser.add_argument("--dnl-limit", type=float, default=0.5,
                              help="max |DNL| [LSB]")
    chain_parser.add_argument("--inl-limit", type=float, default=1.0,
                              help="max |INL| [LSB]")
    chain_parser.add_argument("--enob-min", type=float, default=None,
                              help="ENOB floor (default n_bits - 1.5)")
    chain_parser.add_argument("--scalar", action="store_true",
                              help="use the per-die scalar oracle "
                                   "instead of the batched path")
    _add_exec_args(chain_parser)
    chain_parser.set_defaults(func=cmd_chain_yield)

    yield_parser = sub.add_parser(
        "yield",
        help="sharded Monte Carlo yield of one node with binomial "
             "confidence bounds")
    yield_parser.add_argument("--node", default="65nm")
    yield_parser.add_argument("--metric", default="vth-shift",
                              help="named DieBatch metric (see "
                                   "repro.exec.YIELD_METRICS)")
    yield_parser.add_argument("--limit", type=float, default=0.03,
                              help="pass/fail limit on the metric")
    yield_parser.add_argument("--dies", type=int, default=500)
    yield_parser.add_argument("--seed", type=int, default=0)
    _add_exec_args(yield_parser, default_shards=1)
    yield_parser.set_defaults(func=cmd_yield)

    soc_parser = sub.add_parser(
        "soc-noise",
        help="SoC-scale activity -> substrate noise via the compiled "
             "event engine")
    soc_parser.add_argument("--node", default="65nm")
    soc_parser.add_argument("--gates", type=int, default=20_000,
                            help="target gate count")
    soc_parser.add_argument("--blocks", type=int, default=8,
                            help="clock-gated blocks")
    soc_parser.add_argument("--cycles", type=int, default=10)
    soc_parser.add_argument("--frequency", type=float, default=50e6)
    soc_parser.add_argument("--seed", type=int, default=0)
    soc_parser.add_argument("--event-budget", type=int,
                            default=10_000_000)
    soc_parser.add_argument("--chunk-events", type=int,
                            default=100_000,
                            help="events per streamed SWAN chunk")
    _add_exec_args(soc_parser)
    soc_parser.set_defaults(func=cmd_soc_noise)

    backends_parser = sub.add_parser(
        "backends",
        help="list the registered evaluation engines, their "
             "oracle/vectorized backends and equivalence contracts")
    backends_parser.set_defaults(func=cmd_backends)

    et_parser = sub.add_parser(
        "electrothermal",
        help="junction temperature / runaway across a nodes x Rth "
             "grid (batched electrothermal solver)")
    et_parser.add_argument("--nodes", default=None,
                           help="comma-separated, e.g. 130nm,65nm")
    et_parser.add_argument("--rth-min", type=float, default=1.0,
                           help="smallest package resistance [K/W]")
    et_parser.add_argument("--rth-max", type=float, default=100.0,
                           help="largest package resistance [K/W]")
    et_parser.add_argument("--rth-points", type=int, default=5)
    et_parser.add_argument("--gates", type=int, default=1_000_000)
    et_parser.add_argument("--frequency", type=float, default=1e9)
    et_parser.add_argument("--backend",
                           choices=("oracle", "vectorized"),
                           default=None,
                           help="evaluation path (default: vectorized)")
    et_parser.set_defaults(func=cmd_electrothermal)

    sub.add_parser("figures", help="index of figure benchmarks"
                   ).set_defaults(func=cmd_figures)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Model-boundary failures (:class:`~repro.robust.ReproError`) exit
    with a one-line ``error:`` message and status 1 -- never a
    traceback.  ``--strict`` additionally promotes
    :class:`~repro.robust.ReproWarning` (out-of-calibration inputs,
    non-converged sweep points) to errors.
    """
    from .robust import ReproError, ReproWarning
    args = build_parser().parse_args(argv)
    with warnings.catch_warnings():
        if args.strict:
            warnings.simplefilter("error", category=ReproWarning)
        try:
            return args.func(args)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        except ReproWarning as warning:
            print(f"error (strict): {warning}", file=sys.stderr)
            return 1


if __name__ == "__main__":
    sys.exit(main())
