"""Analog design analysis: eq. 4/5 trade-offs, ADCs, noise, circuits."""

from .tradeoff import (
    TradeoffPoint,
    accuracy_from_bits,
    bits_from_accuracy,
    limit_gap,
    minimum_power,
    mismatch_constant,
    power_trend_fixed_spec,
    thermal_noise_constant,
    tradeoff_plane,
)
from .adc import (
    SURVEY,
    AdcDesign,
    minimum_adc_power,
    resolution_speed_frontier,
    sample_synthetic_survey,
    survey_points,
    survey_vs_limits,
)
from .supply_scaling import (
    analog_power_trend,
    digital_power_trend,
    headroom_trend,
    mismatch_limited_power,
    power_ratio,
)
from .noise import (
    capacitance_for_snr,
    corner_frequency,
    enob_from_snr,
    flicker_noise_density,
    ktc_noise_voltage,
    noise_budget,
    snr_from_enob,
    snr_from_noise,
    thermal_noise_density_mosfet,
)
from .adc_behavioral import (
    AdcTestResult,
    PipelineAdc,
    PipelineStage,
    enob_vs_device_area,
    sine_test,
)
from .switched_capacitor import (
    ScAmplifier,
    design_sc_stage,
    settling_budget_sweep,
    speed_accuracy_power_point,
)
from .yield_analysis import (
    OtaYieldAnalyzer,
    YieldReport,
    area_for_offset_yield,
    offset_yield,
    yield_vs_area,
)
from .circuits import (
    DetectorFrontend,
    DetectorFrontendDesign,
    FrontendPerformance,
    MillerOta,
    OtaDesign,
    OtaPerformance,
    SingleStageOta,
)
from .metrics import (
    LinearityReport,
    SpectralReport,
    histogram_linearity,
    histogram_linearity_batch,
    spectral_metrics,
    spectral_metrics_batch,
    transfer_linearity,
    transfer_linearity_batch,
)
from .chain import (
    ChainDesign,
    ChainSignoff,
    ChainSpec,
    R2rDac,
    SarAdc,
    SignalChain,
    chain_signoff,
    chain_signoff_batch,
    chain_yield_vs_node,
)

__all__ = [
    "TradeoffPoint", "accuracy_from_bits", "bits_from_accuracy",
    "limit_gap", "minimum_power", "mismatch_constant",
    "power_trend_fixed_spec", "thermal_noise_constant", "tradeoff_plane",
    "SURVEY", "AdcDesign", "minimum_adc_power",
    "resolution_speed_frontier", "sample_synthetic_survey",
    "survey_points", "survey_vs_limits",
    "analog_power_trend", "digital_power_trend", "headroom_trend",
    "mismatch_limited_power", "power_ratio",
    "capacitance_for_snr", "corner_frequency", "enob_from_snr",
    "flicker_noise_density", "ktc_noise_voltage", "noise_budget",
    "snr_from_enob", "snr_from_noise", "thermal_noise_density_mosfet",
    "ScAmplifier", "design_sc_stage", "settling_budget_sweep",
    "speed_accuracy_power_point",
    "AdcTestResult", "PipelineAdc", "PipelineStage",
    "enob_vs_device_area", "sine_test",
    "OtaYieldAnalyzer", "YieldReport", "area_for_offset_yield",
    "offset_yield", "yield_vs_area",
    "DetectorFrontend", "DetectorFrontendDesign", "FrontendPerformance",
    "MillerOta", "OtaDesign", "OtaPerformance", "SingleStageOta",
    "LinearityReport", "SpectralReport",
    "histogram_linearity", "histogram_linearity_batch",
    "spectral_metrics", "spectral_metrics_batch",
    "transfer_linearity", "transfer_linearity_batch",
    "ChainDesign", "ChainSignoff", "ChainSpec",
    "R2rDac", "SarAdc", "SignalChain",
    "chain_signoff", "chain_signoff_batch", "chain_yield_vs_node",
]
