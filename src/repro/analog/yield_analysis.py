"""Statistical analog design: parametric yield under process variation.

Section 4.1 closes with: "analog designers have always had to cope
with process tolerances and mismatches, and have been using
statistical methods already a long time ago" (Director's statistical
IC design, [8]).  This module is that methodology on top of the
evaluation engines: Monte Carlo over inter-die shifts and intra-die
mismatch, per-spec yield, and the yield-vs-device-area curve that
justifies why analog transistors stay big.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..technology.node import TechnologyNode
from ..variability.pelgrom import sigma_delta_beta, sigma_delta_vth
from ..variability.statistical import MonteCarloSampler, VariationSpec
from .circuits import OtaDesign, OtaPerformance, SingleStageOta
from ..backends.protocol import resolve_backend, register_backend
from ..backends.contracts import register_contract
from ..robust.rng import resolve_rng
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class YieldReport:
    """Per-spec and overall parametric yield of one sizing."""

    n_samples: int
    overall_yield: float
    per_spec_yield: Dict[str, float]
    mean_offset: float          # V (should be ~0)
    sigma_offset: float         # V (the MC-measured spread)


class OtaYieldAnalyzer:
    """Monte Carlo yield of a single-stage OTA sizing.

    Each sample draws (a) an inter-die V_T shift that moves the bias
    point (gm, GBW, swing), and (b) intra-die pair mismatch that sets
    the random offset, then re-evaluates the analytic engine and
    checks the spec.
    """

    def __init__(self, node: TechnologyNode, design: OtaDesign,
                 load_capacitance: float,
                 variation: VariationSpec = VariationSpec(),
                 seed: Optional[int] = None):
        self.node = node
        self.design = design
        self.engine = SingleStageOta(node, load_capacitance)
        self.variation = variation
        self.rng = resolve_rng(seed=seed)
        self._sampler = MonteCarloSampler(node, variation, seed=seed)

    def _evaluate_shifted(self, vth_global: float,
                          length_factor: float,
                          tox_factor: float) -> OtaPerformance:
        """Re-evaluate the engine on a globally shifted node."""
        shifted_node = self.node.with_overrides(
            name=f"{self.node.name}@die",
            vth=self.node.vth + vth_global,
            feature_size=self.node.feature_size * length_factor,
            tox=self.node.tox * tox_factor,
        )
        engine = SingleStageOta(shifted_node,
                                self.engine.load_capacitance)
        return engine.evaluate(self.design)

    def _offset_sigmas(self) -> tuple:
        sigma_in = sigma_delta_vth(self.node, self.design.input_width,
                                   self.design.input_length)
        sigma_beta = sigma_delta_beta(self.node,
                                      self.design.input_width,
                                      self.design.input_length)
        return sigma_in, sigma_beta

    def sample_performance(self) -> OtaPerformance:
        """One MC draw of the OTA's performance."""
        die = self._sampler.sample_die()
        nominal = self._evaluate_shifted(die.vth_global,
                                         die.length_factor_global,
                                         die.tox_factor_global)
        # Replace the analytic offset sigma by an actual draw.
        sigma_in, sigma_beta = self._offset_sigmas()
        offset = (sigma_in * self.rng.standard_normal()
                  + 0.1 * sigma_beta * self.rng.standard_normal())
        return dataclasses.replace(nominal, offset_sigma=abs(offset))

    def _performance_matrix_oracle(self, batch, offsets: np.ndarray,
                                   keys: List[str]) -> np.ndarray:
        """Scalar oracle: one ``with_overrides`` + evaluate per die."""
        n_samples = len(offsets)
        values = np.empty((n_samples, len(keys)))
        for i in range(n_samples):
            perf = self._evaluate_shifted(
                float(batch.vth_global[i]),
                float(batch.length_factor_global[i]),
                float(batch.tox_factor_global[i]))
            perf = dataclasses.replace(perf,
                                       offset_sigma=float(offsets[i]))
            for k, key in enumerate(keys):
                values[i, k] = getattr(perf, key)
        return values

    def _performance_matrix_batch(self, batch, offsets: np.ndarray,
                                  keys: List[str]) -> np.ndarray:
        """Vectorized twin: all dies in one ``evaluate_batch`` call.

        The per-die node overrides are the same elementwise
        expressions the oracle feeds ``with_overrides``, so every
        column is bit-for-bit the oracle's (dies whose shift pushes
        the node out of its domain come back NaN and count as spec
        failures instead of aborting the whole run).
        """
        design = self.design
        perf = self.engine.evaluate_batch(
            design.input_width, design.input_length,
            design.load_width, design.load_length,
            design.tail_current,
            node_overrides={
                "vth": self.node.vth + batch.vth_global,
                "feature_size": (self.node.feature_size
                                 * batch.length_factor_global),
                "tox": self.node.tox * batch.tox_factor_global,
            },
            invalid="nan")
        n_samples = len(offsets)
        values = np.empty((n_samples, len(keys)))
        for k, key in enumerate(keys):
            if key == "offset_sigma":
                values[:, k] = offsets
            else:
                values[:, k] = np.asarray(getattr(perf, key),
                                          dtype=float)
        return values

    def run(self, spec: Dict[str, float],
            n_samples: int = 300,
            backend: Optional[str] = None) -> YieldReport:
        """MC yield against ``spec``.

        ``spec`` keys: ``gain_db``/``gbw_hz``/``phase_margin_deg``/
        ``slew_rate``/``swing`` are minima; ``power``/``offset_sigma``
        maxima (same convention as :meth:`OtaPerformance.meets`).

        ``backend`` selects the ``"analog.ota_yield"`` evaluation path:
        ``"vectorized"`` (default) evaluates every die in one
        :meth:`SingleStageOta.evaluate_batch` call with per-die node
        overrides; ``"oracle"`` is the original per-die scalar loop.
        Under a fixed seed both return bit-for-bit identical reports.
        """
        if n_samples < 1:
            raise ModelDomainError("n_samples must be positive")
        resolved = resolve_backend("analog.ota_yield", backend)
        minima = ("gain_db", "gbw_hz", "phase_margin_deg",
                  "slew_rate", "swing")
        batch = self._sampler.sample_dies_batch(n_samples)
        sigma_in, sigma_beta = self._offset_sigmas()
        draws = self.rng.standard_normal((n_samples, 2))
        offsets = np.abs(sigma_in * draws[:, 0]
                         + 0.1 * sigma_beta * draws[:, 1])
        keys = list(spec)
        if resolved.name == "vectorized":
            values = self._performance_matrix_batch(batch, offsets, keys)
        else:
            values = self._performance_matrix_oracle(batch, offsets, keys)
        bounds = np.array([spec[key] for key in keys])
        is_min = np.array([key in minima for key in keys])
        ok = np.where(is_min, values >= bounds, values <= bounds)
        all_ok = ok.all(axis=1) if keys else np.ones(n_samples, bool)
        return YieldReport(
            n_samples=n_samples,
            overall_yield=float(np.count_nonzero(all_ok)) / n_samples,
            per_spec_yield={key: float(np.count_nonzero(ok[:, k]))
                            / n_samples
                            for k, key in enumerate(keys)},
            mean_offset=float(offsets.mean()),
            sigma_offset=float(offsets.std(ddof=1)),
        )


def offset_yield(node: TechnologyNode, width: float, length: float,
                 offset_limit: float) -> float:
    """Closed-form offset yield of a differential pair.

    P(|offset| < limit) for offset ~ N(0, A_VT/sqrt(WL)): the
    analytic backbone of the yield-vs-area trade.
    """
    from scipy.stats import norm
    if offset_limit <= 0:
        raise ModelDomainError("offset_limit must be positive")
    sigma = sigma_delta_vth(node, width, length)
    return float(norm.cdf(offset_limit / sigma)
                 - norm.cdf(-offset_limit / sigma))


def yield_vs_area(node: TechnologyNode, offset_limit: float = 3e-3,
                  area_factors: Sequence[float] = (1, 2, 4, 8, 16, 32),
                  base_width: Optional[float] = None,
                  base_length: Optional[float] = None
                  ) -> List[Dict[str, float]]:
    """Offset yield vs input-pair area: why analog devices stay big.

    Doubling W*L improves sigma by sqrt(2); reaching 6-sigma offset
    yield costs orders of magnitude more area than a minimum device --
    the quantitative core of section 4.1's area argument.
    """
    base_width = base_width if base_width is not None \
        else 10.0 * node.feature_size
    base_length = base_length if base_length is not None \
        else 2.0 * node.feature_size
    rows = []
    for factor in area_factors:
        scale = math.sqrt(factor)
        width = base_width * scale
        length = base_length * scale
        sigma = sigma_delta_vth(node, width, length)
        rows.append({
            "area_factor": float(factor),
            "area_um2": width * length * 1e12,
            "sigma_offset_mV": sigma * 1e3,
            "yield": offset_yield(node, width, length, offset_limit),
            "sigma_level": offset_limit / sigma,
        })
    return rows


def area_for_offset_yield(node: TechnologyNode, offset_limit: float,
                          sigma_level: float = 3.0) -> float:
    """Gate area [m^2] for the pair to meet ``offset_limit`` at
    ``sigma_level`` confidence."""
    if offset_limit <= 0 or sigma_level <= 0:
        raise ModelDomainError("offset_limit and sigma_level must be positive")
    sigma_needed = offset_limit / sigma_level
    return (node.avt / sigma_needed) ** 2


register_backend(
    "analog.ota_yield", "oracle",
    OtaYieldAnalyzer._performance_matrix_oracle,
    "per-die scalar loop: with_overrides + SingleStageOta.evaluate")
register_backend(
    "analog.ota_yield", "vectorized",
    OtaYieldAnalyzer._performance_matrix_batch,
    "all dies in one SingleStageOta.evaluate_batch with node overrides")
register_contract(
    "analog.ota_yield", 0.0,
    "Monte Carlo yield reports are bit-for-bit identical: the batched "
    "evaluator shares every closed-form float with the scalar oracle",
    entry_points=(
        "repro.analog.yield_analysis.OtaYieldAnalyzer.run",))
