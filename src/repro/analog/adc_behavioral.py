"""Behavioural pipeline ADC: mismatch becomes missing codes and ENOB.

Eq. 4 argues about power floors; this module closes the loop to the
signal: a 1.5-bit/stage pipeline ADC whose inter-stage gains and
comparator thresholds carry V_T-mismatch errors sized by the Pelgrom
model.  Feeding it a sine and FFT-ing the output measures the SNDR and
effective bits the mismatch actually leaves -- and shows digital
calibration winning them back, the escape hatch the paper's
"untrimmed or uncalibrated" qualifier points at.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..robust.errors import CalibrationError, ModelDomainError
from ..robust.validate import check_count
from ..technology.node import TechnologyNode
from ..variability.pelgrom import sigma_delta_vth
from .metrics import spectral_metrics
from .noise import enob_from_snr
from ..robust.rng import resolve_rng


@dataclass
class PipelineStage:
    """One 1.5-bit pipeline stage with its error terms.

    The multiplying DAC implements V_out = 2*(V_in - d*V_ref/2) with
    d in {-1, 0, +1}; errors perturb the gain, the DAC levels and the
    comparator thresholds.
    """

    gain_error: float = 0.0           # relative MDAC gain error
    dac_offset: float = 0.0           # V, DAC level shift
    threshold_offsets: Tuple[float, float] = (0.0, 0.0)  # V

    def convert(self, v_in: float, v_ref: float) -> Tuple[int, float]:
        """One stage: decision d and residue voltage."""
        t_low = -v_ref / 4.0 + self.threshold_offsets[0]
        t_high = v_ref / 4.0 + self.threshold_offsets[1]
        if v_in < t_low:
            decision = -1
        elif v_in > t_high:
            decision = 1
        else:
            decision = 0
        residue = (2.0 * (1.0 + self.gain_error)
                   * (v_in - decision * (v_ref / 2.0 + self.dac_offset)))
        return decision, residue


class PipelineAdc:
    """An N-stage, 1.5-bit/stage pipeline converter.

    Parameters
    ----------
    node:
        Technology node; mismatch errors are drawn with Pelgrom sigma
        for the given device area.
    n_stages:
        Pipeline depth; resolution ~ n_stages + 1 bits.
    v_ref:
        Reference (full scale is +/- v_ref).
    device_area:
        W*L [m^2] of the matching-critical devices; smaller area =
        more mismatch = fewer clean bits.  None = ideal converter.
    seed:
        Mismatch draw seed.
    """

    def __init__(self, node: TechnologyNode, n_stages: int = 9,
                 v_ref: float = 1.0,
                 device_area: Optional[float] = None,
                 seed: Optional[int] = None):
        if n_stages < 2:
            raise ModelDomainError("n_stages must be >= 2")
        if v_ref <= 0:
            raise ModelDomainError("v_ref must be positive")
        self.node = node
        self.n_stages = n_stages
        self.v_ref = v_ref
        self.stages: List[PipelineStage] = []
        rng = resolve_rng(seed=seed)
        for _ in range(n_stages):
            if device_area is None:
                self.stages.append(PipelineStage())
                continue
            side = math.sqrt(device_area)
            sigma_vt = sigma_delta_vth(node, side, side)
            # V_T errors map to the stage errors through typical
            # circuit sensitivities: gain via the amplifier input
            # pair (normalized to ~0.5 V effective swing), thresholds
            # and DAC levels directly.
            self.stages.append(PipelineStage(
                gain_error=float(rng.normal(0.0, 2.0 * sigma_vt
                                            / 0.5)),
                dac_offset=float(rng.normal(0.0, sigma_vt)),
                threshold_offsets=(
                    float(rng.normal(0.0, 3.0 * sigma_vt)),
                    float(rng.normal(0.0, 3.0 * sigma_vt))),
            ))
        self._calibration: Optional[np.ndarray] = None

    @property
    def n_bits(self) -> int:
        """Nominal resolution [bits]."""
        return self.n_stages + 1

    def convert(self, v_in: float) -> int:
        """One conversion: signed output code."""
        residue = float(np.clip(v_in, -self.v_ref, self.v_ref))
        code = 0
        for stage in self.stages:
            decision, residue = stage.convert(residue, self.v_ref)
            code = 2 * code + decision
            residue = float(np.clip(residue, -self.v_ref, self.v_ref))
        # Final 1-bit flash on the last residue.
        code = 2 * code + (1 if residue > 0 else -1)
        return code

    def convert_array(self, voltages: np.ndarray) -> np.ndarray:
        """Vector conversion (loop; clarity over speed)."""
        return np.array([self.convert(float(v)) for v in voltages],
                        dtype=float)

    # --- calibration ------------------------------------------------------

    def calibrate(self, n_points: int = 4096) -> None:
        """Foreground calibration: learn the code-to-voltage map.

        Sweeps a known ramp and stores the mean input voltage per
        output code; subsequent :meth:`corrected_output` uses it.
        This is the digital correction that moves a converter from
        the mismatch limit to the thermal limit in Fig. 6.
        """
        ramp = np.linspace(-0.95 * self.v_ref, 0.95 * self.v_ref,
                           n_points)
        codes = self.convert_array(ramp)
        table: Dict[float, List[float]] = {}
        for v, c in zip(ramp, codes):
            table.setdefault(float(c), []).append(float(v))
        self._calibration = np.array(
            sorted((c, float(np.mean(vs))) for c, vs in table.items()))

    def corrected_output(self, codes: np.ndarray) -> np.ndarray:
        """Map raw codes through the calibration table [V]."""
        if self._calibration is None:
            raise CalibrationError(
                "no calibration table: call calibrate() before "
                "corrected_output()")
        cal_codes = self._calibration[:, 0]
        cal_volts = self._calibration[:, 1]
        return np.interp(codes, cal_codes, cal_volts)


@dataclass(frozen=True)
class AdcTestResult:
    """Dynamic test outcome (coherent sine + FFT)."""

    sndr_db: float
    enob: float
    n_samples: int


def sine_test(adc: PipelineAdc, n_samples: int = 4096,
              cycles: int = 67,
              amplitude_fraction: float = 0.9,
              calibrated: bool = False) -> AdcTestResult:
    """Coherent sine-wave test: SNDR and ENOB by FFT.

    Coherent sampling is enforced, not assumed: ``cycles`` must be a
    positive *integer* bin count, coprime to ``n_samples`` and below
    Nyquist, so the carrier lands in exactly one FFT bin.  A
    non-integer count would smear carrier power into the noise bins
    (spectral leakage biasing ENOB low), and a count at or past
    ``n_samples // 2`` aliases -- both now raise a typed error before
    any conversion runs.
    """
    if n_samples < 256:
        raise ModelDomainError("n_samples must be >= 256")
    cycles = check_count("cycles", cycles)
    if math.gcd(cycles, n_samples) != 1:
        raise ModelDomainError("cycles must be coprime to n_samples")
    if cycles >= n_samples // 2:
        raise ModelDomainError(
            f"cycles must stay below Nyquist (n_samples // 2 = "
            f"{n_samples // 2}), got {cycles}")
    t = np.arange(n_samples)
    v_in = (amplitude_fraction * adc.v_ref
            * np.sin(2.0 * math.pi * cycles * t / n_samples))
    codes = adc.convert_array(v_in)
    if calibrated:
        if adc._calibration is None:
            adc.calibrate()
        signal = adc.corrected_output(codes)
    else:
        signal = codes
    report = spectral_metrics(np.asarray(signal, dtype=float), cycles)
    return AdcTestResult(sndr_db=report.sndr_db,
                         enob=enob_from_snr(report.sndr_db),
                         n_samples=n_samples)


def enob_vs_device_area(node: TechnologyNode,
                        area_factors: Sequence[float] = (1, 4, 16, 64),
                        n_stages: int = 9,
                        base_area: Optional[float] = None,
                        seed: int = 0,
                        n_samples: int = 2048,
                        cycles: int = 67) -> List[Dict[str, float]]:
    """The mismatch-vs-resolution experiment.

    Small matching devices clip the effective bits well below the
    nominal resolution; quadrupling the area buys back ~1 bit per
    step -- the circuit-level face of eq. 4's mismatch term.  The
    calibrated column shows digital correction recovering the bits
    without the area.
    """
    if base_area is None:
        base_area = (4.0 * node.feature_size) ** 2
    rows = []
    for factor in area_factors:
        adc = PipelineAdc(node, n_stages=n_stages,
                          device_area=base_area * factor, seed=seed)
        raw = sine_test(adc, n_samples=n_samples, cycles=cycles)
        calibrated = sine_test(adc, n_samples=n_samples,
                               cycles=cycles, calibrated=True)
        rows.append({
            "area_factor": float(factor),
            "area_um2": base_area * factor * 1e12,
            "enob_raw": raw.enob,
            "enob_calibrated": calibrated.enob,
            "nominal_bits": float(adc.n_bits),
        })
    return rows
