"""The analog speed-accuracy-power trade-off: eq. 4 and Fig. 6.

Kinget/Steyaert ([7] in the paper): for a circuit limited by kT/C
thermal noise or by device mismatch,

    Speed * Accuracy^2 / Power = technology constant.           (eq. 4)

* Thermal-noise limit: storing a signal with dynamic range DR on a
  capacitor requires C >= kT * DR^2 / V_pp^2; charging it at speed f
  costs P = C * V_pp^2 * f * eff -> P/(f*DR^2) = kT / efficiency --
  temperature only.
* Mismatch limit: an accuracy of DR against V_T offsets requires
  device area ~ (A_VT*DR/V_pp)^2; the gate capacitance of that area
  sets the power at a given speed -> P/(f*DR^2) = A_VT^2*C'_ox /
  efficiency -- a *process* constant, historically ~2 decades above
  the thermal one.  That gap is Fig. 6.

Accuracy here is the voltage dynamic range DR (= 2^N * sqrt(1.5) for
an N-bit converter at SNR = 6.02N + 1.76 dB).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.constants import BOLTZMANN, kt_energy
from ..robust.errors import ModelDomainError
from ..robust.validate import validated
from ..technology.node import TechnologyNode


#: Fraction of supply swing a realistic circuit uses, and the power
#: efficiency of charging the signal capacitance: class-A circuits
#: deliver ~1 % of their supply power as signal charge.
DEFAULT_SWING_FRACTION = 0.6
DEFAULT_EFFICIENCY = 0.01


@validated(_result_finite=True, n_bits="positive")
def accuracy_from_bits(n_bits: float) -> float:
    """Voltage dynamic range equivalent to ``n_bits`` of SNR.

    DR = 2^N * sqrt(1.5): the ratio of RMS full-scale sine to the
    quantization-noise floor.
    """
    try:
        return 2.0 ** n_bits * math.sqrt(1.5)
    except OverflowError:
        raise ModelDomainError(
            f"n_bits={n_bits!r} overflows the dynamic-range "
            f"computation") from None


@validated(_result_finite=True, accuracy="positive")
def bits_from_accuracy(accuracy: float) -> float:
    """Inverse of :func:`accuracy_from_bits`."""
    return math.log2(accuracy / math.sqrt(1.5))


@validated(_result_finite=True, temperature="positive",
           efficiency="fraction")
def thermal_noise_constant(temperature: float = 300.0,
                           efficiency: float = DEFAULT_EFFICIENCY) -> float:
    """Eq. 4's right-hand side for the thermal-noise limit [J].

    P / (Speed * Accuracy^2) = 8*kT / efficiency: depends only on
    temperature (and implementation efficiency), NOT on technology --
    the fundamental floor in Fig. 6.
    """
    return 8.0 * kt_energy(temperature) / efficiency


@validated(_result_finite=True, swing_fraction="fraction",
           efficiency="fraction")
def mismatch_constant(node: TechnologyNode,
                      swing_fraction: float = DEFAULT_SWING_FRACTION,
                      efficiency: float = DEFAULT_EFFICIENCY) -> float:
    """Eq. 4's right-hand side for the mismatch limit [J].

    P / (Speed * Accuracy^2) = 2 * A_VT^2 * C_ox' * (V_DD/V_pp)^2 /
    efficiency: set by the process matching quality A_VT and oxide
    capacitance.  Improves (slowly) with scaling since A_VT ~ t_ox.
    """
    swing_penalty = 1.0 / swing_fraction ** 2
    return 2.0 * node.avt ** 2 * node.cox * swing_penalty / efficiency


@validated(_result_finite=True, speed="positive", accuracy="positive",
           temperature="positive", efficiency="fraction")
def minimum_power(speed: float, accuracy: float,
                  node: Optional[TechnologyNode] = None,
                  temperature: float = 300.0,
                  efficiency: float = DEFAULT_EFFICIENCY) -> Dict[str, float]:
    """Minimum power [W] for a (speed, accuracy) spec under each limit.

    With a ``node`` the mismatch limit is included (it dominates for
    untrimmed circuits, the paper's Fig. 6 observation).
    """
    thermal = speed * accuracy ** 2 * thermal_noise_constant(
        temperature, efficiency)
    result = {"thermal_W": thermal}
    if node is not None:
        mismatch = speed * accuracy ** 2 * mismatch_constant(
            node, efficiency=efficiency)
        result["mismatch_W"] = mismatch
        result["binding_W"] = max(thermal, mismatch)
    return result


@dataclass(frozen=True)
class TradeoffPoint:
    """One design point in the P/(S*A^2) plane of Fig. 6."""

    label: str
    speed: float          # samples or Hz
    n_bits: float
    power: float          # W

    @property
    def accuracy(self) -> float:
        """Voltage dynamic range."""
        return accuracy_from_bits(self.n_bits)

    @property
    def figure_of_merit(self) -> float:
        """P / (Speed * Accuracy^2) [J] -- eq. 4's left side inverted."""
        return self.power / (self.speed * self.accuracy ** 2)


def tradeoff_plane(node: TechnologyNode,
                   speeds: Sequence[float],
                   n_bits: float = 10.0,
                   temperature: float = 300.0) -> List[Dict[str, float]]:
    """Fig. 6 series: minimum power vs speed at fixed resolution.

    Returns the thermal and mismatch limit lines (log-log straight
    lines two decades apart) for overlay with ADC survey points.
    """
    accuracy = accuracy_from_bits(n_bits)
    rows = []
    for speed in speeds:
        limits = minimum_power(speed, accuracy, node, temperature)
        rows.append({
            "speed_Hz": speed,
            "thermal_limit_W": limits["thermal_W"],
            "mismatch_limit_W": limits["mismatch_W"],
        })
    return rows


def limit_gap(node: TechnologyNode, temperature: float = 300.0) -> float:
    """Mismatch-to-thermal constant ratio (the Fig. 6 vertical gap).

    Historically ~100x (2 decades); scaling closes it slowly as A_VT
    improves with t_ox.
    """
    return mismatch_constant(node) / thermal_noise_constant(temperature)


def power_trend_fixed_spec(nodes: Sequence[TechnologyNode],
                           speed: float = 100e6,
                           n_bits: float = 10.0
                           ) -> List[Dict[str, float]]:
    """Mismatch-limited minimum power per node at a fixed spec.

    Shows the 'power decreases with improved matching' half of the
    paper's section-4.1 argument -- before the supply-voltage penalty
    of eq. 5 is applied (see :mod:`repro.analog.supply_scaling`).
    """
    accuracy = accuracy_from_bits(n_bits)
    rows = []
    for node in nodes:
        limits = minimum_power(speed, accuracy, node)
        rows.append({
            "node": node.name,
            "mismatch_limit_mW": limits["mismatch_W"] * 1e3,
            "thermal_limit_mW": limits["thermal_W"] * 1e3,
            "gap": limit_gap(node),
        })
    return rows
