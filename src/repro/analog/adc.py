"""A/D converter survey and figure-of-merit analysis.

Fig. 6 overlays "real A/D converter designs" (the red squares) on the
thermal and mismatch limit lines.  We do not have the paper's survey
database, so this module ships a synthetic survey of published-design-
like points (speed/resolution/power triples spanning flash, pipeline,
SAR and sigma-delta architectures, with the era-typical 2-20x margin
above the mismatch limit) plus the standard FoM machinery to place any
converter on the Fig. 6 plane.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..robust.rng import resolve_rng
from ..technology.node import TechnologyNode
from .tradeoff import (TradeoffPoint, accuracy_from_bits,
                       mismatch_constant, thermal_noise_constant)
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class AdcDesign:
    """One converter design point."""

    name: str
    architecture: str
    sample_rate: float       # S/s
    n_bits: float            # effective resolution (ENOB)
    power: float             # W

    def to_tradeoff_point(self) -> TradeoffPoint:
        """Project onto the Fig. 6 plane."""
        return TradeoffPoint(label=self.name, speed=self.sample_rate,
                             n_bits=self.n_bits, power=self.power)

    @property
    def walden_fom(self) -> float:
        """Walden FoM P/(2^N * f_s) [J/conversion-step]."""
        return self.power / (2.0 ** self.n_bits * self.sample_rate)

    @property
    def schreier_fom(self) -> float:
        """Schreier FoM SNDR + 10log10(f_s/2 / P) [dB]."""
        sndr = 6.02 * self.n_bits + 1.76
        return sndr + 10.0 * math.log10(self.sample_rate / 2.0 / self.power)


# Synthetic survey: era-accurate (late-90s / early-2000s) design
# points.  Powers sit a small factor above each point's mismatch-limit
# minimum, which is exactly how the paper's red squares cluster.
SURVEY: List[AdcDesign] = [
    AdcDesign("flash-6b-1G", "flash", 1.0e9, 5.5, 2.0),
    AdcDesign("flash-8b-400M", "flash", 400e6, 7.4, 0.8),
    AdcDesign("pipeline-10b-40M", "pipeline", 40e6, 9.2, 0.069),
    AdcDesign("pipeline-12b-20M", "pipeline", 20e6, 11.0, 0.25),
    AdcDesign("pipeline-14b-10M", "pipeline", 10e6, 12.5, 0.32),
    AdcDesign("pipeline-10b-100M", "pipeline", 100e6, 9.4, 0.4),
    AdcDesign("sar-8b-1M", "sar", 1e6, 7.7, 0.0008),
    AdcDesign("sar-10b-5M", "sar", 5e6, 9.3, 0.006),
    AdcDesign("sar-12b-1M", "sar", 1e6, 11.2, 0.012),
    AdcDesign("sd-16b-100k", "sigma-delta", 100e3, 15.0, 0.045),
    AdcDesign("sd-18b-40k", "sigma-delta", 40e3, 16.5, 0.15),
    AdcDesign("sd-13b-2M", "sigma-delta", 2e6, 12.6, 0.035),
    AdcDesign("flash-7b-600M", "flash", 600e6, 6.3, 0.9),
    AdcDesign("pipeline-11b-60M", "pipeline", 60e6, 10.3, 0.28),
    AdcDesign("sar-9b-200k", "sar", 200e3, 8.6, 0.0003),
    AdcDesign("pipeline-13b-5M", "pipeline", 5e6, 12.1, 0.085),
    AdcDesign("sd-14b-1M", "sigma-delta", 1e6, 13.3, 0.03),
    AdcDesign("flash-5b-2G", "flash", 2.0e9, 4.6, 1.6),
    AdcDesign("pipeline-9b-200M", "pipeline", 200e6, 8.4, 0.45),
    AdcDesign("sar-11b-500k", "sar", 500e3, 10.4, 0.004),
]


def survey_points() -> List[TradeoffPoint]:
    """The survey projected onto the Fig. 6 plane."""
    return [design.to_tradeoff_point() for design in SURVEY]


def survey_vs_limits(node: TechnologyNode,
                     temperature: float = 300.0
                     ) -> List[Dict[str, float]]:
    """Each survey converter against the two eq. 4 limits.

    ``margin_over_mismatch`` ~ O(1-30) and ``margin_over_thermal`` ~
    O(100-3000) reproduces the Fig. 6 clustering near the mismatch
    line.
    """
    mismatch = mismatch_constant(node)
    thermal = thermal_noise_constant(temperature)
    rows = []
    for design in SURVEY:
        fom = design.to_tradeoff_point().figure_of_merit
        rows.append({
            "name": design.name,
            "architecture": design.architecture,
            "sample_rate_Hz": design.sample_rate,
            "enob": design.n_bits,
            "power_W": design.power,
            "fom_J": fom,
            "margin_over_mismatch": fom / mismatch,
            "margin_over_thermal": fom / thermal,
        })
    return rows


def minimum_adc_power(node: TechnologyNode, sample_rate: float,
                      n_bits: float, calibrated: bool = False,
                      temperature: float = 300.0) -> float:
    """Minimum power [W] of a converter spec in ``node``.

    Uncalibrated converters pay the mismatch limit; ``calibrated``
    (trimmed/digitally corrected) ones only the thermal limit -- the
    paper's "untrimmed or uncalibrated" qualifier.
    """
    accuracy = accuracy_from_bits(n_bits)
    thermal = sample_rate * accuracy ** 2 * thermal_noise_constant(
        temperature)
    if calibrated:
        return thermal
    mismatch = sample_rate * accuracy ** 2 * mismatch_constant(node)
    return max(thermal, mismatch)


def resolution_speed_frontier(node: TechnologyNode,
                              power_budget: float,
                              n_bits_range: Sequence[float],
                              calibrated: bool = False
                              ) -> List[Dict[str, float]]:
    """Max sample rate vs resolution at a fixed power budget."""
    if power_budget <= 0:
        raise ModelDomainError("power_budget must be positive")
    rows = []
    for n_bits in n_bits_range:
        unit = minimum_adc_power(node, 1.0, n_bits, calibrated)
        rows.append({
            "n_bits": n_bits,
            "max_sample_rate_Hz": power_budget / unit,
        })
    return rows


def sample_synthetic_survey(node: TechnologyNode, n_designs: int = 30,
                            seed: Optional[int] = None,
                            margin_range: tuple = (2.0, 30.0)
                            ) -> List[AdcDesign]:
    """Generate additional survey points consistent with ``node``.

    Designs land a log-uniform margin above the mismatch limit --
    useful for populating Fig. 6 more densely in the benchmark.
    """
    rng = resolve_rng(seed=seed)
    mismatch = mismatch_constant(node)
    designs = []
    for index in range(n_designs):
        n_bits = float(rng.uniform(5.0, 16.0))
        speed = float(10.0 ** rng.uniform(5.0, 9.5 - 0.2 * n_bits))
        margin = float(np.exp(rng.uniform(
            math.log(margin_range[0]), math.log(margin_range[1]))))
        accuracy = accuracy_from_bits(n_bits)
        power = margin * mismatch * speed * accuracy ** 2
        designs.append(AdcDesign(
            name=f"synthetic-{index}",
            architecture="synthetic",
            sample_rate=speed,
            n_bits=n_bits,
            power=power,
        ))
    return designs
