"""Switched-capacitor settling: where speed*accuracy^2/power comes from.

Eq. 4 is an abstraction over circuits like this one: an SC amplifier
must settle to within a fraction of an LSB in half a clock period.
Settling combines a slew-limited phase (tail current) and a linear
phase (GBW), so the achievable clock for a given accuracy follows
directly from an OTA's evaluated performance -- connecting the sizing
engines to the system-level trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..technology.node import TechnologyNode
from .circuits import OtaDesign, OtaPerformance, SingleStageOta
from .noise import ktc_noise_voltage
from .tradeoff import accuracy_from_bits
from ..robust.errors import ModelDomainError


@dataclass(frozen=True)
class ScAmplifier:
    """A switched-capacitor gain stage around an OTA.

    Parameters
    ----------
    sampling_capacitance:
        Input sampling capacitor C_s [F].
    gain:
        Closed-loop gain C_s/C_f.
    ota:
        Evaluated OTA performance driving the stage.
    """

    sampling_capacitance: float
    gain: float
    ota: OtaPerformance

    def __post_init__(self) -> None:
        if self.sampling_capacitance <= 0 or self.gain <= 0:
            raise ModelDomainError("capacitance and gain must be positive")

    @property
    def feedback_factor(self) -> float:
        """beta = C_f / (C_f + C_s) = 1 / (1 + gain)."""
        return 1.0 / (1.0 + self.gain)

    @property
    def closed_loop_bandwidth(self) -> float:
        """omega_cl = 2*pi*GBW*beta [rad/s]."""
        return 2.0 * math.pi * self.ota.gbw_hz * self.feedback_factor

    def settling_time(self, step: float, accuracy: float) -> float:
        """Time [s] to settle a ``step`` [V] output to 1/``accuracy``.

        Slewing until the remaining error fits the linear regime,
        then exponential settling at the closed-loop bandwidth.
        """
        if step <= 0 or accuracy <= 1:
            raise ModelDomainError("step must be positive, accuracy > 1")
        omega = self.closed_loop_bandwidth
        slew = self.ota.slew_rate
        if slew <= 0 or omega <= 0:
            return math.inf
        # Linear regime handles amplitudes below SR/omega.
        linear_amplitude = slew / omega
        if step > linear_amplitude:
            t_slew = (step - linear_amplitude) / slew
            remaining = linear_amplitude
        else:
            t_slew = 0.0
            remaining = step
        error_target = step / accuracy
        if remaining <= error_target:
            return t_slew
        n_tau = math.log(remaining / error_target)
        return t_slew + n_tau / omega

    def max_clock(self, step: float, n_bits: float,
                  settle_fraction: float = 0.45) -> float:
        """Highest clock [Hz] settling to 0.5 LSB of ``n_bits``.

        ``settle_fraction`` of the period is available for settling
        (the rest is the sampling phase and non-overlap time).
        """
        accuracy = 2.0 ** (n_bits + 1.0)
        t_settle = self.settling_time(step, accuracy)
        if math.isinf(t_settle) or t_settle <= 0:
            return 0.0
        return settle_fraction / t_settle

    def noise_limited_bits(self, full_scale: float,
                           temperature: float = 300.0) -> float:
        """Resolution where kT/C noise equals the quantization noise."""
        if full_scale <= 0:
            raise ModelDomainError("full_scale must be positive")
        noise = ktc_noise_voltage(self.sampling_capacitance,
                                  temperature)
        # q_rms = LSB/sqrt(12); solve 2^-N * FS / sqrt(12) = v_n.
        return math.log2(full_scale
                         / (noise * math.sqrt(12.0)))


def design_sc_stage(node: TechnologyNode, ota_design: OtaDesign,
                    sampling_capacitance: float = 1e-12,
                    gain: float = 2.0) -> ScAmplifier:
    """Wrap an evaluated OTA sizing into an SC stage.

    The OTA's load is the series/parallel combination seen during the
    amplification phase, approximated as C_s*beta + C_load_ext.
    """
    beta = 1.0 / (1.0 + gain)
    load = sampling_capacitance * beta + 0.5e-12
    performance = SingleStageOta(node, load).evaluate(ota_design)
    return ScAmplifier(sampling_capacitance=sampling_capacitance,
                       gain=gain, ota=performance)


def speed_accuracy_power_point(node: TechnologyNode,
                               ota_design: OtaDesign,
                               n_bits: float = 10.0,
                               step: float = 0.5,
                               sampling_capacitance: float = 1e-12
                               ) -> Dict[str, float]:
    """One concrete (speed, accuracy, power) point for eq. 4.

    Returns the stage's achievable clock at ``n_bits`` settling, its
    power, and the eq. 4 figure of merit P/(f*A^2) for comparison
    against the Fig. 6 limit lines.
    """
    stage = design_sc_stage(node, ota_design,
                            sampling_capacitance)
    f_max = stage.max_clock(step, n_bits)
    accuracy = accuracy_from_bits(n_bits)
    fom = (stage.ota.power / (f_max * accuracy ** 2)
           if f_max > 0 else math.inf)
    return {
        "f_max_Hz": f_max,
        "power_W": stage.ota.power,
        "n_bits": n_bits,
        "fom_J": fom,
        "noise_limited_bits": stage.noise_limited_bits(2.0 * step),
    }


def settling_budget_sweep(node: TechnologyNode,
                          ota_design: OtaDesign,
                          bit_range: Sequence[float] = (6, 8, 10, 12),
                          step: float = 0.5
                          ) -> List[Dict[str, float]]:
    """Achievable clock vs resolution for one OTA sizing.

    Every extra bit costs ~0.7/beta time constants of settling: speed
    and accuracy trade exponentially at fixed power -- the circuit
    mechanics beneath eq. 4.
    """
    stage = design_sc_stage(node, ota_design)
    rows = []
    for bits in bit_range:
        rows.append({
            "n_bits": float(bits),
            "f_max_MHz": stage.max_clock(step, bits) / 1e6,
            "settling_ns": stage.settling_time(
                step, 2.0 ** (bits + 1.0)) * 1e9,
        })
    return rows
