"""Analog power under supply-voltage scaling: eq. 5 and Fig. 7.

The paper's section-4.1 punchline: for *fixed speed and fixed
accuracy*, the power ratio between two technology generations is

    P1/P2 = (1/m) * (t_ox1 / t_ox2)                          (eq. 5)

with m = V_DD1/V_DD2 the supply ratio.  Matching improves with thinner
oxide (A_VT ~ t_ox), which alone would *reduce* power -- but the
shrinking supply shrinks the signal swing quadratically, eating the
gain.  Since V_DD and t_ox scale at nearly the same rate, P2 ~ P1:
analog power stops scaling (the flat/red curve of Fig. 7), while
digital power keeps falling.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..technology.node import TechnologyNode
from .tradeoff import accuracy_from_bits, mismatch_constant
from ..robust.errors import ModelDomainError
from ..robust.validate import validated


def power_ratio(node1: TechnologyNode, node2: TechnologyNode) -> float:
    """Eq. 5: P1/P2 for fixed speed and accuracy.

    A value < 1 means the newer (node2) circuit burns *more* power.
    """
    m = node1.vdd / node2.vdd
    return (1.0 / m) * (node1.tox / node2.tox)


def mismatch_limited_power(node: TechnologyNode, speed: float,
                           n_bits: float,
                           swing_fraction: float = 0.6) -> float:
    """Mismatch-limited power [W] with the supply-swing penalty.

    P = Speed * Accuracy^2 * 2*A_VT^2*C'ox / (eff * (swing*V_DD/V_ref)^2)
    normalized so the swing penalty tracks V_DD across nodes; this is
    the physical model behind eq. 5 (eq. 5 itself is its ratio form,
    using A_VT ~ t_ox).
    """
    if speed <= 0:
        raise ModelDomainError("speed must be positive")
    accuracy = accuracy_from_bits(n_bits)
    base = mismatch_constant(node, swing_fraction=1.0)
    swing = swing_fraction * node.vdd
    return speed * accuracy ** 2 * base / swing ** 2


def analog_power_trend(nodes: Sequence[TechnologyNode],
                       speed: float = 100e6,
                       n_bits: float = 10.0,
                       normalize_to: Optional[str] = None
                       ) -> List[Dict[str, float]]:
    """Fig. 7: analog power at fixed spec across nodes.

    Three series per node:

    * ``power_matching_only``: what the improved A_VT alone would give
      (the optimistic dashed trend in Fig. 7) -- normalized mismatch
      power at the *first node's* supply;
    * ``power_actual``: with the real supply's swing penalty (the red
      curve: flat to slightly rising below ~130 nm);
    * ``eq5_ratio``: eq. 5 evaluated against the first node.
    """
    if not nodes:
        return []
    first = nodes[0]
    rows = []
    for node in nodes:
        actual = mismatch_limited_power(node, speed, n_bits)
        matching_only = mismatch_limited_power(
            node.with_overrides(vdd=first.vdd,
                                vth=min(node.vth, 0.6 * first.vdd)),
            speed, n_bits)
        rows.append({
            "node": node.name,
            "feature_size_nm": node.feature_size * 1e9,
            "vdd_V": node.vdd,
            "tox_nm": node.tox * 1e9,
            "power_actual_mW": actual * 1e3,
            "power_matching_only_mW": matching_only * 1e3,
            "eq5_ratio_vs_first": power_ratio(first, node),
        })
    if normalize_to is not None:
        ref = next((r for r in rows if r["node"] == normalize_to), rows[0])
        scale_actual = ref["power_actual_mW"]
        scale_match = ref["power_matching_only_mW"]
        for row in rows:
            row["power_actual_rel"] = row["power_actual_mW"] / scale_actual
            row["power_matching_only_rel"] = (
                row["power_matching_only_mW"] / scale_match)
    return rows


def digital_power_trend(nodes: Sequence[TechnologyNode],
                        reference_gates: int = 10000,
                        frequency: float = 100e6
                        ) -> List[Dict[str, float]]:
    """The contrast curve for Fig. 7: digital power keeps falling.

    Same function implemented per node: C falls with geometry and V^2
    falls with supply.
    """
    from ..digital.energy import analytic_power_estimate
    rows = []
    first_power = None
    for node in nodes:
        report = analytic_power_estimate(node, reference_gates, frequency)
        if first_power is None:
            first_power = report.dynamic
        rows.append({
            "node": node.name,
            "digital_power_mW": report.dynamic * 1e3,
            "digital_power_rel": report.dynamic / first_power,
        })
    return rows


@validated(vdsat="positive")
def headroom_trend(nodes: Sequence[TechnologyNode],
                   vdsat: float = 0.15,
                   ) -> List[Dict[str, float]]:
    """Stacking headroom per node (section 4.1's circuit-technique
    casualty list).

    Counts how many V_DSAT + V_T levels fit in the supply: a useful
    cascode output stage needs ~2 V_T + 3 V_DSAT *plus* a worthwhile
    signal swing (taken as 20 % of V_DD) -- gone in the nanometre
    supplies.
    """
    rows = []
    for node in nodes:
        cascode_budget = (2.0 * node.vth + 3.0 * vdsat
                          + 0.2 * node.vdd)
        stack_levels = int(node.vdd // (node.vth + vdsat))
        rows.append({
            "node": node.name,
            "vdd_V": node.vdd,
            "cascode_possible": node.vdd > cascode_budget,
            "stackable_devices": stack_levels,
            "signal_swing_V": max(node.vdd - 2.0 * vdsat, 0.0),
            "swing_fraction": max(node.vdd - 2.0 * vdsat, 0.0) / node.vdd,
        })
    return rows
