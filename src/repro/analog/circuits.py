"""Analytic analog circuit models: the synthesis "evaluation engines".

The paper (section 4.2) describes AMGIE-class synthesis as "powerful
numerical optimization engines coupled to evaluation engines that
qualify the merit of some evolving analog circuit".  These classes are
those evaluation engines: closed-form performance models of

* a single-stage OTA (5-transistor, for general sizing demos),
* a two-stage Miller OTA, and
* a charge-sensitive amplifier + CR-RC shaper front-end -- the
  particle/radiation detector circuit of Fig. 8.

All use the compact device model for bias-point quantities, so the
numbers respond to the technology node realistically (supply, V_T,
matching, gate leakage).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Union

import numpy as np

from ..core.constants import (
    kt_energy, ELECTRON_CHARGE, EPSILON_0, EPSILON_SIO2)
from ..technology.node import TechnologyNode
from ..devices.mosfet import DeviceType, Mosfet
from ..variability.pelgrom import sigma_delta_vth
from ..robust.errors import ModelDomainError
from ..robust.validate import check_finite

ArrayLike = Union[float, np.ndarray]


def _elementwise(fn: Callable[..., float], *arrays: ArrayLike) -> np.ndarray:
    """Apply a scalar function per element of broadcast arrays.

    The batched evaluators keep all additions, multiplications,
    divisions and square roots vectorized (those are IEEE-exact and
    bitwise identical to their scalar counterparts) but numpy's
    ``log10`` / ``arctan`` / ``power`` occasionally differ from libm
    by one ulp.  Computing those few operations per element through
    Python's ``math`` keeps the vectorized twin bit-for-bit equal to
    the scalar oracle, which is what makes fixed-seed synthesis
    return the identical best design on either backend.  Populations
    are a few hundred candidates, so the Python loop is microseconds.
    """
    broadcast = np.broadcast_arrays(
        *[np.asarray(a, dtype=float) for a in arrays])
    shape = broadcast[0].shape
    columns = [b.ravel().tolist() for b in broadcast]
    return np.array([fn(*args) for args in zip(*columns)],
                    dtype=float).reshape(shape)


@dataclass
class OtaDesign:
    """Free variables of a single-stage (5T) OTA sizing.

    All widths/lengths in metres, current in amperes.
    """

    input_width: float
    input_length: float
    load_width: float
    load_length: float
    tail_current: float

    def validate(self, node: TechnologyNode) -> None:
        """Raise ValueError for physically meaningless sizings."""
        minimum = node.feature_size
        for name in ("input_width", "input_length", "load_width",
                     "load_length"):
            if getattr(self, name) < minimum:
                raise ModelDomainError(
                    f"{name} below feature size {minimum:.2e} m")
        if self.tail_current <= 0:
            raise ModelDomainError("tail_current must be positive")


@dataclass(frozen=True)
class OtaPerformance:
    """Evaluated performance of an OTA sizing."""

    gain_db: float
    gbw_hz: float
    phase_margin_deg: float
    slew_rate: float            # V/s
    input_noise_rms: float      # V over the GBW band
    offset_sigma: float         # V
    power: float                # W
    area: float                 # m^2
    swing: float                # V output swing

    def meets(self, spec: Dict[str, float]) -> bool:
        """Check a spec dict, e.g. {"gain_db": 60, "gbw_hz": 50e6}."""
        checks = {
            "gain_db": self.gain_db >= spec.get("gain_db", -math.inf),
            "gbw_hz": self.gbw_hz >= spec.get("gbw_hz", 0.0),
            "phase_margin_deg": self.phase_margin_deg
            >= spec.get("phase_margin_deg", 0.0),
            "slew_rate": self.slew_rate >= spec.get("slew_rate", 0.0),
            "power": self.power <= spec.get("power", math.inf),
            "offset_sigma": self.offset_sigma
            <= spec.get("offset_sigma", math.inf),
        }
        return all(checks.values())


class SingleStageOta:
    """Evaluation engine for the 5-transistor OTA."""

    def __init__(self, node: TechnologyNode, load_capacitance: float):
        if load_capacitance <= 0:
            raise ModelDomainError("load_capacitance must be positive")
        self.node = node
        self.load_capacitance = load_capacitance

    def _bias_point(self, design: OtaDesign) -> Dict[str, float]:
        node = self.node
        from ..core.constants import thermal_voltage
        phi_t = thermal_voltage(node.temperature)
        # Weak inversion caps gm at I/(n*phi_t); the square law would
        # otherwise promise unbounded gm/I as V_ov -> 0, which sizing
        # optimizers exploit mercilessly.
        gm_cap = 1.0 / (node.subthreshold_n * phi_t)
        half_current = design.tail_current / 2.0
        # gm from the alpha-power model at the operating overdrive.
        beta_in = (node.mobility_n * node.cox
                   * design.input_width / design.input_length)
        vov_in = math.sqrt(max(2.0 * half_current / beta_in, 1e-12))
        vov_in = max(vov_in, 2.0 * node.subthreshold_n * phi_t)
        gm_in = min(2.0 * half_current / vov_in,
                    gm_cap * half_current)
        beta_load = (node.mobility_p * node.cox
                     * design.load_width / design.load_length)
        vov_load = math.sqrt(max(2.0 * half_current / beta_load, 1e-12))
        vov_load = max(vov_load, 2.0 * node.subthreshold_n * phi_t)
        gm_load = min(2.0 * half_current / vov_load,
                      gm_cap * half_current)
        # Output conductance via early voltage ~ 10 V/um of length.
        early_per_length = 1.0e7  # V/m
        gds = half_current / (early_per_length * design.input_length) \
            + half_current / (early_per_length * design.load_length)
        return {
            "gm_in": gm_in, "gm_load": gm_load, "gds": gds,
            "vov_in": vov_in, "vov_load": vov_load,
            "half_current": half_current,
        }

    def evaluate(self, design: OtaDesign) -> OtaPerformance:
        """Full performance evaluation of a sizing."""
        design.validate(self.node)
        node = self.node
        bias = self._bias_point(design)
        gain = bias["gm_in"] / max(bias["gds"], 1e-15)
        gbw = bias["gm_in"] / (2.0 * math.pi * self.load_capacitance)
        # Non-dominant pole at the current-mirror node.
        mirror_cap = node.cox * design.load_width * design.load_length * 2.0
        pole2 = bias["gm_load"] / (2.0 * math.pi * max(mirror_cap, 1e-18))
        phase_margin = 90.0 - math.degrees(math.atan(gbw / pole2))
        slew = design.tail_current / self.load_capacitance
        # Input-referred noise integrated over the closed-loop band:
        # v_rms^2 = (4kT*gamma*2/gm) * (pi/2 * GBW) with gamma ~ 1.
        noise_psd = 8.0 * kt_energy(node.temperature) / bias["gm_in"]
        noise_rms = math.sqrt(noise_psd * math.pi / 2.0 * gbw)
        offset = math.sqrt(
            sigma_delta_vth(node, design.input_width,
                            design.input_length) ** 2
            + (sigma_delta_vth(node, design.load_width,
                               design.load_length)
               * bias["gm_load"] / bias["gm_in"]) ** 2)
        power = node.vdd * design.tail_current * 1.25  # + bias branch
        area = 2.0 * (design.input_width * design.input_length
                      + design.load_width * design.load_length) * 3.0
        swing = node.vdd - bias["vov_in"] - 2.0 * bias["vov_load"]
        return OtaPerformance(
            gain_db=20.0 * math.log10(max(gain, 1e-12)),
            gbw_hz=gbw,
            phase_margin_deg=phase_margin,
            slew_rate=slew,
            input_noise_rms=noise_rms,
            offset_sigma=offset,
            power=power,
            area=area,
            swing=max(swing, 0.0),
        )

    def evaluate_batch(self, input_width: ArrayLike,
                       input_length: ArrayLike,
                       load_width: ArrayLike, load_length: ArrayLike,
                       tail_current: ArrayLike, *,
                       node_overrides: Optional[
                           Mapping[str, ArrayLike]] = None,
                       invalid: str = "raise") -> OtaPerformance:
        """Array-valued twin of :meth:`evaluate` (vectorized backend).

        Evaluates a whole population of sizings in one pass: the five
        design arrays broadcast together and the returned
        :class:`OtaPerformance` holds same-shape ndarrays in every
        field.  Bit-for-bit equal to looping :meth:`evaluate` over
        the elements -- the equivalence contract of the
        ``synthesis.ota`` engine (see :mod:`repro.backends`).

        ``node_overrides`` optionally varies the technology per
        element (keys ``vth`` / ``feature_size`` / ``tox``), the
        inter-die shifts Monte Carlo yield analysis applies through
        ``TechnologyNode.with_overrides`` on the scalar path.

        ``invalid`` selects what happens to elements a scalar
        ``evaluate`` call would reject with a typed error:
        ``"raise"`` raises :class:`ModelDomainError` (the strict
        twin), ``"nan"`` fills their output fields with NaN so
        population optimizers can penalize them per candidate.
        Non-finite inputs always raise.
        """
        if invalid not in ("raise", "nan"):
            raise ModelDomainError(
                f"invalid must be 'raise' or 'nan', got {invalid!r}")
        node = self.node
        overrides = dict(node_overrides or {})
        unknown = set(overrides) - {"vth", "feature_size", "tox"}
        if unknown:
            raise ModelDomainError(
                f"unsupported node_overrides {sorted(unknown)}; "
                "supported: vth, feature_size, tox")
        for name, value in overrides.items():
            check_finite(f"node_overrides[{name!r}]", value)
        arrays = [check_finite(name, value) for name, value in (
            ("input_width", input_width), ("input_length", input_length),
            ("load_width", load_width), ("load_length", load_length),
            ("tail_current", tail_current))]
        (iw, il, lw, ll, tail, vth, feature_size, tox) = \
            np.broadcast_arrays(
                *[np.asarray(a, dtype=float) for a in arrays],
                np.asarray(overrides.get("vth", node.vth), dtype=float),
                np.asarray(overrides.get("feature_size",
                                         node.feature_size), dtype=float),
                np.asarray(overrides.get("tox", node.tox), dtype=float))
        shape = iw.shape

        # Same rejection order as the scalar path: the shifted-node
        # construction (``with_overrides`` validation) precedes
        # ``OtaDesign.validate``.
        bad = np.zeros(shape, dtype=bool)

        def reject(mask: np.ndarray, message: str) -> None:
            if not np.any(mask):
                return
            if invalid == "raise":
                raise ModelDomainError(message)
            bad[...] |= mask

        for name, values in (("feature_size", feature_size),
                             ("vth", vth), ("tox", tox)):
            reject(~(values > 0),
                   f"{name} must be a positive finite number")
        reject(vth >= node.vdd,
               f"vth must be below vdd ({node.vdd} V)")
        for name, widths in (("input_width", iw), ("input_length", il),
                             ("load_width", lw), ("load_length", ll)):
            reject(widths < feature_size,
                   f"{name} below feature size")
        reject(tail <= 0, "tail_current must be positive")
        if np.any(bad):
            # Evaluate rejected elements on benign dummies, then
            # overwrite with NaN -- keeps the vector math warning-free.
            iw, il, lw, ll = (np.where(bad, 1e-6, a)
                              for a in (iw, il, lw, ll))
            tail = np.where(bad, 1e-6, tail)
            tox = np.where(bad, node.tox, tox)

        from ..core.constants import thermal_voltage
        phi_t = thermal_voltage(node.temperature)
        cox = EPSILON_0 * EPSILON_SIO2 / tox if "tox" in overrides \
            else node.cox
        gm_cap = 1.0 / (node.subthreshold_n * phi_t)
        half_current = tail / 2.0
        beta_in = node.mobility_n * cox * iw / il
        vov_in = np.sqrt(np.maximum(2.0 * half_current / beta_in, 1e-12))
        vov_in = np.maximum(vov_in, 2.0 * node.subthreshold_n * phi_t)
        gm_in = np.minimum(2.0 * half_current / vov_in,
                           gm_cap * half_current)
        beta_load = node.mobility_p * cox * lw / ll
        vov_load = np.sqrt(np.maximum(2.0 * half_current / beta_load,
                                      1e-12))
        vov_load = np.maximum(vov_load, 2.0 * node.subthreshold_n * phi_t)
        gm_load = np.minimum(2.0 * half_current / vov_load,
                             gm_cap * half_current)
        early_per_length = 1.0e7  # V/m
        gds = half_current / (early_per_length * il) \
            + half_current / (early_per_length * ll)

        gain = gm_in / np.maximum(gds, 1e-15)
        gbw = gm_in / (2.0 * math.pi * self.load_capacitance)
        mirror_cap = cox * lw * ll * 2.0
        pole2 = gm_load / (2.0 * math.pi * np.maximum(mirror_cap, 1e-18))
        phase_margin = 90.0 - _elementwise(
            lambda r: math.degrees(math.atan(r)), gbw / pole2)
        slew = tail / self.load_capacitance
        noise_psd = 8.0 * kt_energy(node.temperature) / gm_in
        noise_rms = np.sqrt(noise_psd * math.pi / 2.0 * gbw)
        avt_sq = node.avt ** 2
        sigma_in = np.sqrt(avt_sq / (iw * il) + 0.0)
        sigma_load = np.sqrt(avt_sq / (lw * ll) + 0.0)
        offset = _elementwise(
            lambda a, b: math.sqrt(a ** 2 + b ** 2),
            sigma_in, sigma_load * gm_load / gm_in)
        power = node.vdd * tail * 1.25
        area = 2.0 * (iw * il + lw * ll) * 3.0
        swing = node.vdd - vov_in - 2.0 * vov_load
        gain_db = _elementwise(lambda g: 20.0 * math.log10(g),
                               np.maximum(gain, 1e-12))

        def field_out(values: np.ndarray) -> np.ndarray:
            values = np.broadcast_to(np.asarray(values, float),
                                     shape).copy()
            values[bad] = float("nan")
            return values

        return OtaPerformance(
            gain_db=field_out(gain_db),
            gbw_hz=field_out(gbw),
            phase_margin_deg=field_out(phase_margin),
            slew_rate=field_out(slew),
            input_noise_rms=field_out(noise_rms),
            offset_sigma=field_out(offset),
            power=field_out(power),
            area=field_out(area),
            swing=field_out(np.maximum(swing, 0.0)),
        )


class MillerOta:
    """Evaluation engine for the two-stage Miller-compensated OTA."""

    def __init__(self, node: TechnologyNode, load_capacitance: float,
                 compensation_capacitance: Optional[float] = None):
        if load_capacitance <= 0:
            raise ModelDomainError("load_capacitance must be positive")
        self.node = node
        self.load_capacitance = load_capacitance
        self.compensation = (compensation_capacitance
                             if compensation_capacitance is not None
                             else 0.3 * load_capacitance)

    def evaluate(self, design: OtaDesign,
                 second_stage_current_ratio: float = 4.0) -> OtaPerformance:
        """Evaluate with the second stage scaled off the tail current."""
        design.validate(self.node)
        stage1 = SingleStageOta(self.node, self.compensation)
        perf1 = stage1.evaluate(design)
        node = self.node
        from ..core.constants import thermal_voltage
        phi_t = thermal_voltage(node.temperature)
        i2 = second_stage_current_ratio * design.tail_current
        beta2 = (node.mobility_n * node.cox
                 * 4.0 * design.input_width / design.input_length)
        vov2 = max(math.sqrt(max(2.0 * i2 / beta2, 1e-12)),
                   2.0 * node.subthreshold_n * phi_t)
        gm2 = min(2.0 * i2 / vov2,
                  i2 / (node.subthreshold_n * phi_t))
        gain2 = gm2 * 1.0e7 * design.input_length / i2
        pole2 = gm2 / (2.0 * math.pi * self.load_capacitance)
        gbw = perf1.gbw_hz
        phase_margin = 90.0 - math.degrees(math.atan(gbw / pole2))
        return OtaPerformance(
            gain_db=perf1.gain_db + 20.0 * math.log10(max(gain2, 1e-12)),
            gbw_hz=gbw,
            phase_margin_deg=phase_margin,
            slew_rate=min(perf1.slew_rate,
                          i2 / self.load_capacitance),
            input_noise_rms=perf1.input_noise_rms,
            offset_sigma=perf1.offset_sigma,
            power=node.vdd * (design.tail_current * 1.25 + i2),
            area=perf1.area * 2.5,
            swing=max(node.vdd - 2.0 * vov2, 0.0),
        )


@dataclass
class DetectorFrontendDesign:
    """Sizing of the charge-sensitive amplifier + shaper (Fig. 8)."""

    input_width: float
    input_length: float
    feedback_capacitance: float     # F
    shaper_time_constant: float     # s
    drain_current: float            # A

    def validate(self, node: TechnologyNode) -> None:
        """Sanity-check the free variables."""
        if self.input_width < node.feature_size \
                or self.input_length < node.feature_size:
            raise ModelDomainError("input device below feature size")
        if self.feedback_capacitance <= 0:
            raise ModelDomainError("feedback_capacitance must be positive")
        if self.shaper_time_constant <= 0:
            raise ModelDomainError("shaper_time_constant must be positive")
        if self.drain_current <= 0:
            raise ModelDomainError("drain_current must be positive")


@dataclass(frozen=True)
class FrontendPerformance:
    """Detector front-end figures of merit."""

    charge_gain: float          # V/C at the shaper output
    peaking_time: float         # s
    enc_electrons: float        # equivalent noise charge [e- rms]
    power: float                # W
    area: float                 # m^2

    def meets(self, spec: Dict[str, float]) -> bool:
        """Spec check, e.g. {"enc_electrons": 500, "power": 2e-3}."""
        return (self.enc_electrons <= spec.get("enc_electrons", math.inf)
                and self.power <= spec.get("power", math.inf)
                and self.peaking_time
                <= spec.get("peaking_time", math.inf)
                and self.charge_gain >= spec.get("charge_gain", 0.0))


class DetectorFrontend:
    """Evaluation engine for a CSA + CR-RC shaper channel.

    Standard ENC decomposition (series white + parallel shot noise):

        ENC^2 = (C_tot^2 * 4kT*gamma/gm) * A1 / tau
              + (2q*I_leak) * A2 * tau

    with C_tot the detector + input capacitance and tau the shaping
    time; A1, A2 shaper form factors (~0.92 for CR-RC).
    """

    FORM_FACTOR_SERIES = 0.92
    FORM_FACTOR_PARALLEL = 0.92

    def __init__(self, node: TechnologyNode,
                 detector_capacitance: float = 5e-12,
                 detector_leakage: float = 1e-9):
        if detector_capacitance <= 0:
            raise ModelDomainError("detector_capacitance must be positive")
        if detector_leakage < 0:
            raise ModelDomainError("detector_leakage must be non-negative")
        self.node = node
        self.detector_capacitance = detector_capacitance
        self.detector_leakage = detector_leakage

    def evaluate(self, design: DetectorFrontendDesign
                 ) -> FrontendPerformance:
        """Evaluate one front-end sizing."""
        design.validate(self.node)
        node = self.node
        from ..core.constants import thermal_voltage
        phi_t = thermal_voltage(node.temperature)
        beta = (node.mobility_n * node.cox
                * design.input_width / design.input_length)
        vov = max(math.sqrt(max(2.0 * design.drain_current / beta,
                                1e-12)),
                  2.0 * node.subthreshold_n * phi_t)
        gm = min(2.0 * design.drain_current / vov,
                 design.drain_current / (node.subthreshold_n * phi_t))
        c_gate = node.cox * design.input_width * design.input_length
        c_total = self.detector_capacitance + c_gate \
            + design.feedback_capacitance
        tau = design.shaper_time_constant
        kt = kt_energy(node.temperature)
        series = (c_total ** 2 * 4.0 * kt * (2.0 / 3.0) / gm
                  * self.FORM_FACTOR_SERIES / tau)
        parallel = (2.0 * ELECTRON_CHARGE * self.detector_leakage
                    * self.FORM_FACTOR_PARALLEL * tau)
        enc_coulomb = math.sqrt(series + parallel)
        charge_gain = 1.0 / design.feedback_capacitance * math.exp(-1.0)
        power = node.vdd * design.drain_current * 2.0  # CSA + shaper
        area = (design.input_width * design.input_length * 4.0
                + design.feedback_capacitance / (1e-3))  # 1 fF/um^2 caps
        return FrontendPerformance(
            charge_gain=charge_gain,
            peaking_time=tau,
            enc_electrons=enc_coulomb / ELECTRON_CHARGE,
            power=power,
            area=area,
        )

    def evaluate_batch(self, input_width: ArrayLike,
                       input_length: ArrayLike,
                       feedback_capacitance: ArrayLike,
                       shaper_time_constant: ArrayLike,
                       drain_current: ArrayLike, *,
                       invalid: str = "raise") -> FrontendPerformance:
        """Array-valued twin of :meth:`evaluate` (vectorized backend).

        Broadcasts the five design arrays and returns a
        :class:`FrontendPerformance` of same-shape ndarrays,
        bit-for-bit equal to looping :meth:`evaluate` over the
        elements (the ``synthesis.frontend`` equivalence contract).
        ``invalid="nan"`` NaN-fills elements the scalar path would
        reject instead of raising :class:`ModelDomainError`.
        """
        if invalid not in ("raise", "nan"):
            raise ModelDomainError(
                f"invalid must be 'raise' or 'nan', got {invalid!r}")
        node = self.node
        arrays = [check_finite(name, value) for name, value in (
            ("input_width", input_width), ("input_length", input_length),
            ("feedback_capacitance", feedback_capacitance),
            ("shaper_time_constant", shaper_time_constant),
            ("drain_current", drain_current))]
        iw, il, cfb, tau, current = np.broadcast_arrays(
            *[np.asarray(a, dtype=float) for a in arrays])
        shape = iw.shape

        bad = np.zeros(shape, dtype=bool)

        def reject(mask: np.ndarray, message: str) -> None:
            if not np.any(mask):
                return
            if invalid == "raise":
                raise ModelDomainError(message)
            bad[...] |= mask

        reject((iw < node.feature_size) | (il < node.feature_size),
               "input device below feature size")
        reject(cfb <= 0, "feedback_capacitance must be positive")
        reject(tau <= 0, "shaper_time_constant must be positive")
        reject(current <= 0, "drain_current must be positive")
        if np.any(bad):
            iw, il = (np.where(bad, 1e-6, a) for a in (iw, il))
            cfb = np.where(bad, 1e-12, cfb)
            tau = np.where(bad, 1e-6, tau)
            current = np.where(bad, 1e-6, current)

        from ..core.constants import thermal_voltage
        phi_t = thermal_voltage(node.temperature)
        beta = node.mobility_n * node.cox * iw / il
        vov = np.maximum(
            np.sqrt(np.maximum(2.0 * current / beta, 1e-12)),
            2.0 * node.subthreshold_n * phi_t)
        gm = np.minimum(2.0 * current / vov,
                        current / (node.subthreshold_n * phi_t))
        c_gate = node.cox * iw * il
        c_total = self.detector_capacitance + c_gate + cfb
        kt = kt_energy(node.temperature)
        c_total_sq = _elementwise(lambda c: c ** 2, c_total)
        series = (c_total_sq * 4.0 * kt * (2.0 / 3.0) / gm
                  * self.FORM_FACTOR_SERIES / tau)
        parallel = (2.0 * ELECTRON_CHARGE * self.detector_leakage
                    * self.FORM_FACTOR_PARALLEL * tau)
        enc_coulomb = np.sqrt(series + parallel)
        charge_gain = 1.0 / cfb * math.exp(-1.0)
        power = node.vdd * current * 2.0
        area = iw * il * 4.0 + cfb / (1e-3)

        def field_out(values: np.ndarray) -> np.ndarray:
            values = np.broadcast_to(np.asarray(values, float),
                                     shape).copy()
            values[bad] = float("nan")
            return values

        return FrontendPerformance(
            charge_gain=field_out(charge_gain),
            peaking_time=field_out(tau),
            enc_electrons=field_out(enc_coulomb / ELECTRON_CHARGE),
            power=field_out(power),
            area=field_out(area),
        )

    def optimal_input_capacitance_ratio(self) -> float:
        """Classic capacitive matching: C_gate ~ C_det/3 minimizes ENC
        at fixed current density (used to seed the optimizer)."""
        return 1.0 / 3.0
