"""Noise budgets for analog circuits: kT/C, device noise, SNR math."""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..core.constants import BOLTZMANN, kt_energy
from ..robust.errors import ModelDomainError
from ..robust.validate import validated


def ktc_noise_voltage(capacitance: float,
                      temperature: float = 300.0) -> float:
    """RMS kT/C sampling noise [V] on ``capacitance`` [F]."""
    if capacitance <= 0:
        raise ModelDomainError("capacitance must be positive")
    return math.sqrt(kt_energy(temperature) / capacitance)


def capacitance_for_snr(snr_db: float, signal_rms: float,
                        temperature: float = 300.0,
                        margin_db: float = 3.0) -> float:
    """Capacitance [F] for kT/C noise ``margin_db`` below the target
    noise floor at ``snr_db`` and ``signal_rms`` [V]."""
    if signal_rms <= 0:
        raise ModelDomainError("signal_rms must be positive")
    noise_rms = signal_rms / 10.0 ** ((snr_db + margin_db) / 20.0)
    return kt_energy(temperature) / noise_rms ** 2


def thermal_noise_density_mosfet(gm: float, gamma: float = 2.0 / 3.0,
                                 temperature: float = 300.0) -> float:
    """Input-referred thermal noise PSD of a MOSFET [V^2/Hz].

    v_n^2 = 4kT * gamma / gm; gamma rises above 2/3 for short
    channels (excess noise), another nanometre-era tax.
    """
    if gm <= 0:
        raise ModelDomainError("gm must be positive")
    return 4.0 * kt_energy(temperature) / 1.0 * gamma / gm


def flicker_noise_density(kf: float, cox: float, width: float,
                          length: float, frequency: float) -> float:
    """1/f noise PSD [V^2/Hz]: KF / (Cox*W*L*f).

    Area-inverse like mismatch -- the same reason analog devices stay
    big.
    """
    if min(cox, width, length, frequency) <= 0:
        raise ModelDomainError("all parameters must be positive")
    return kf / (cox * width * length * frequency)


def corner_frequency(kf: float, cox: float, width: float, length: float,
                     gm: float, gamma: float = 2.0 / 3.0,
                     temperature: float = 300.0) -> float:
    """1/f corner [Hz]: where flicker PSD equals thermal PSD."""
    thermal = thermal_noise_density_mosfet(gm, gamma, temperature)
    return kf / (cox * width * length * thermal)


def snr_from_noise(signal_rms: float, noise_rms: float) -> float:
    """SNR [dB] of RMS signal over RMS noise."""
    if signal_rms <= 0 or noise_rms <= 0:
        raise ModelDomainError("signal and noise must be positive")
    return 20.0 * math.log10(signal_rms / noise_rms)


@validated(snr_db="finite")
def enob_from_snr(snr_db: float) -> float:
    """Effective number of bits: (SNR - 1.76)/6.02."""
    return (snr_db - 1.76) / 6.02


@validated(enob="finite")
def snr_from_enob(enob: float) -> float:
    """SNR [dB] of an ``enob``-bit ideal quantizer."""
    return 6.02 * enob + 1.76


def noise_budget(snr_db: float, signal_rms: float,
                 n_stages: int = 3,
                 temperature: float = 300.0) -> Dict[str, float]:
    """Split an SNR target across ``n_stages`` equal contributors.

    Returns the per-stage noise allowance and the implied total
    sampling capacitance -- the quantity that, multiplied by V^2*f,
    gives the thermal-limit power of eq. 4.
    """
    if n_stages < 1:
        raise ModelDomainError("n_stages must be >= 1")
    total_noise = signal_rms / 10.0 ** (snr_db / 20.0)
    per_stage = total_noise / math.sqrt(n_stages)
    cap = kt_energy(temperature) / per_stage ** 2
    return {
        "total_noise_rms_V": total_noise,
        "per_stage_noise_rms_V": per_stage,
        "per_stage_capacitance_F": cap,
        "total_capacitance_F": cap * n_stages,
    }
