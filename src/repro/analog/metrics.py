"""Code-domain converter sign-off metrics: DNL, INL, ENOB, SFDR.

The paper's system-level question -- does a converter chain still meet
spec under nanometre mismatch? -- is answered with exactly three
classical measurements:

* **DNL/INL from a DC sweep** of the transfer levels (DACs) or from a
  **ramp histogram** (ADCs): the per-code step error and its running
  sum, in LSB;
* **monotonicity** of the transfer;
* **ENOB/SNDR/SFDR from a coherent sine FFT**: the dynamic bits the
  chain actually delivers.

Every metric ships in two forms sharing one arithmetic core:

* a **scalar per-die oracle** (``transfer_linearity``,
  ``histogram_linearity``, ``spectral_metrics``) operating on one
  die's 1-D data, and
* a **vectorized batch path** (``*_batch``) operating on
  ``(n_dies, ...)`` arrays in one numpy pass.

The batch twins apply the identical elementwise operations along the
trailing axis, so under a fixed seed their per-die rows agree with the
scalar oracle to float64 round-off -- and an *ideal* converter reports
exactly zero DNL/INL (the ideal transfer's level spacings and the
measured LSB are the same dyadic rational, so the quotient is exactly
1.0).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..robust.errors import ModelDomainError
from ..robust.validate import check_count, check_finite, validated

__all__ = [
    "LinearityReport", "SpectralReport",
    "transfer_linearity", "transfer_linearity_batch",
    "histogram_linearity", "histogram_linearity_batch",
    "spectral_metrics", "spectral_metrics_batch",
]

#: SNDR/SFDR ceiling [dB] reported when the noise-plus-distortion (or
#: spur) power underflows to zero -- an ideal digital sine has no
#: noise bins at all, and ``log10(x/0)`` must not escape as inf.
SNDR_CAP_DB = 150.0


@dataclass(frozen=True)
class LinearityReport:
    """Static linearity of one converter (or a batch of them).

    From the scalar oracles the array fields are 1-D over codes and
    the summary fields are floats; from the ``*_batch`` twins they
    gain a leading ``n_dies`` axis (summaries become 1-D arrays).

    ``dnl`` is the per-step error in LSB (``n_codes - 1`` steps for a
    level sweep, interior codes for a histogram), ``inl`` the running
    integral (endpoint-corrected for level sweeps).  ``monotonic`` is
    the DC-sweep check: no step of the transfer goes backwards.
    """

    dnl: np.ndarray
    inl: np.ndarray
    dnl_max: Union[float, np.ndarray]     # max |DNL| [LSB]
    inl_max: Union[float, np.ndarray]     # max |INL| [LSB]
    monotonic: Union[bool, np.ndarray]


@dataclass(frozen=True)
class SpectralReport:
    """Coherent-sine FFT dynamic test of one converter (or a batch).

    ``enob`` refers the noise to the *measured* carrier;
    ``enob_full_scale`` refers it to a full-scale carrier, which makes
    it invariant under the test amplitude (the quantization floor does
    not move with the input).  Scalar from ``spectral_metrics``,
    per-die arrays from ``spectral_metrics_batch``.
    """

    sndr_db: Union[float, np.ndarray]
    sfdr_db: Union[float, np.ndarray]
    enob: Union[float, np.ndarray]
    enob_full_scale: Union[float, np.ndarray]
    n_samples: int


def _enob_from_sndr(sndr_db):
    """The 6.02 dB/bit conversion, elementwise."""
    return (np.asarray(sndr_db, dtype=float) - 1.76) / 6.02


# --- DC-sweep linearity ----------------------------------------------------


def _levels_linearity(levels: np.ndarray) -> LinearityReport:
    """Core DNL/INL of measured transfer levels, trailing axis = codes.

    The LSB is the endpoint-fit step ``(top - bottom) / (n - 1)``;
    DNL is each measured step against it, INL the deviation of each
    level from the endpoint line.  For an ideal uniform transfer both
    are *exactly* zero in float64: every step, the LSB and the line
    points are the same dyadic value, so the normalized errors are
    exactly 0.0.
    """
    n_codes = levels.shape[-1]
    span = levels[..., -1] - levels[..., 0]
    if not np.all(span > 0):
        raise ModelDomainError(
            "transfer levels must span a positive full-scale range "
            "(top level above bottom level)")
    lsb = span / (n_codes - 1)
    steps = np.diff(levels, axis=-1)
    dnl = steps / lsb[..., None] - 1.0
    line = levels[..., :1] + lsb[..., None] * np.arange(n_codes)
    inl = (levels - line) / lsb[..., None]
    return LinearityReport(
        dnl=dnl, inl=inl,
        dnl_max=np.max(np.abs(dnl), axis=-1),
        inl_max=np.max(np.abs(inl), axis=-1),
        monotonic=np.all(steps >= 0.0, axis=-1),
    )


@validated(_result_finite=True)
def transfer_linearity(levels: np.ndarray) -> LinearityReport:
    """DNL/INL/monotonicity of one DC-swept transfer (scalar oracle).

    ``levels`` holds the measured output per input code (a DAC's
    analog levels, or a chain's output codes), lowest code first.
    """
    levels = np.asarray(check_finite("levels", levels), dtype=float)
    if levels.ndim != 1 or levels.size < 4:
        raise ModelDomainError(
            "levels must be a 1-D sweep of at least 4 codes, got "
            f"shape {levels.shape}")
    report = _levels_linearity(levels)
    return LinearityReport(dnl=report.dnl, inl=report.inl,
                           dnl_max=float(report.dnl_max),
                           inl_max=float(report.inl_max),
                           monotonic=bool(report.monotonic))


@validated(_result_finite=True)
def transfer_linearity_batch(levels: np.ndarray) -> LinearityReport:
    """Vectorized twin of :func:`transfer_linearity`.

    ``levels`` is ``(n_dies, n_codes)``; every die's row gets the
    identical elementwise arithmetic, so row ``d`` matches the scalar
    oracle on die ``d`` to float64 round-off.
    """
    levels = np.asarray(check_finite("levels", levels), dtype=float)
    if levels.ndim != 2 or levels.shape[-1] < 4:
        raise ModelDomainError(
            "levels must be (n_dies, n_codes) with n_codes >= 4, got "
            f"shape {levels.shape}")
    return _levels_linearity(levels)


# --- ramp-histogram linearity ----------------------------------------------


def _histogram_linearity(counts: np.ndarray) -> LinearityReport:
    """Core histogram DNL/INL; trailing axis = codes (all ``2**n``).

    The two end codes are dropped (their bins are unbounded under
    offset/gain error, the standard histogram-method convention); DNL
    of each interior code is its hit count against the interior mean,
    INL the cumulative sum.  A uniform histogram (ideal converter on
    an exact-span ramp) gives exactly zero for both: the mean of
    identical integer counts is that count, exactly.
    """
    interior = counts[..., 1:-1].astype(float)
    mean = interior.mean(axis=-1)
    if not np.all(mean > 0):
        raise ModelDomainError(
            "ramp histogram has no interior-code hits; the ramp does "
            "not exercise the converter's transfer range")
    dnl = interior / mean[..., None] - 1.0
    inl = np.cumsum(dnl, axis=-1)
    return LinearityReport(
        dnl=dnl, inl=inl,
        dnl_max=np.max(np.abs(dnl), axis=-1),
        inl_max=np.max(np.abs(inl), axis=-1),
        monotonic=np.ones(counts.shape[:-1], dtype=bool)
        if counts.ndim > 1 else True,
    )


def _ramp_monotonic(codes: np.ndarray) -> np.ndarray:
    """Whether ramp-response codes never step backwards (last axis)."""
    return np.all(np.diff(codes, axis=-1) >= 0, axis=-1)


@validated(_result_finite=True)
def histogram_linearity(codes: np.ndarray,
                        n_bits: int = 8) -> LinearityReport:
    """ADC DNL/INL from a ramp histogram (scalar per-die oracle).

    ``codes`` is the converter's output-code sequence for a uniform
    full-scale input ramp; code hit counts measure the code bin
    widths, which is the classical ADC linearity test (the DC-sweep
    analog of the exemplar's ``r2r_dac`` 256-code sweep).
    """
    n_bits = check_count("n_bits", n_bits, minimum=2)
    codes = np.asarray(check_finite("codes", codes))
    if codes.ndim != 1 or codes.size < 2 ** n_bits:
        raise ModelDomainError(
            f"codes must be a 1-D ramp response with at least "
            f"2**{n_bits} samples, got shape {codes.shape}")
    index = codes.astype(np.int64)
    if np.any(index < 0) or np.any(index >= 2 ** n_bits):
        raise ModelDomainError(
            f"ramp codes must lie in [0, 2**{n_bits}), got range "
            f"[{index.min()}, {index.max()}]")
    counts = np.bincount(index, minlength=2 ** n_bits)
    report = _histogram_linearity(counts)
    return LinearityReport(dnl=report.dnl, inl=report.inl,
                           dnl_max=float(report.dnl_max),
                           inl_max=float(report.inl_max),
                           monotonic=bool(_ramp_monotonic(index)))


@validated(_result_finite=True)
def histogram_linearity_batch(codes: np.ndarray,
                              n_bits: int = 8) -> LinearityReport:
    """Vectorized twin of :func:`histogram_linearity`.

    ``codes`` is ``(n_dies, n_points)``; the per-die histograms are
    built in one flat ``bincount`` (integer counting, bit-identical
    to per-die counting).
    """
    n_bits = check_count("n_bits", n_bits, minimum=2)
    codes = np.asarray(check_finite("codes", codes))
    if codes.ndim != 2 or codes.shape[-1] < 2 ** n_bits:
        raise ModelDomainError(
            f"codes must be (n_dies, n_points) with n_points >= "
            f"2**{n_bits}, got shape {codes.shape}")
    index = codes.astype(np.int64)
    n_codes = 2 ** n_bits
    if np.any(index < 0) or np.any(index >= n_codes):
        raise ModelDomainError(
            f"ramp codes must lie in [0, 2**{n_bits}), got range "
            f"[{index.min()}, {index.max()}]")
    n_dies = index.shape[0]
    flat = index + n_codes * np.arange(n_dies, dtype=np.int64)[:, None]
    counts = np.bincount(flat.ravel(),
                         minlength=n_dies * n_codes
                         ).reshape(n_dies, n_codes)
    report = _histogram_linearity(counts)
    return LinearityReport(dnl=report.dnl, inl=report.inl,
                           dnl_max=report.dnl_max,
                           inl_max=report.inl_max,
                           monotonic=_ramp_monotonic(index))


# --- coherent-sine spectral metrics ----------------------------------------


def _spectral(signal: np.ndarray, cycles: int,
              full_scale: Optional[float]) -> SpectralReport:
    """Core coherent FFT metrics; trailing axis = time samples.

    With ``cycles`` coprime to the record length the carrier lands in
    exactly one bin -- no window, no leakage (the satellite-task fix:
    integer, in-band bin counts are *enforced*, not assumed).  Noise
    and distortion is everything but DC and the carrier bin.
    """
    n_samples = signal.shape[-1]
    mean = signal.mean(axis=-1)
    spectrum = np.fft.rfft(signal - mean[..., None], axis=-1)
    power = np.abs(spectrum) ** 2
    signal_power = power[..., cycles]
    noise_power = power[..., 1:].sum(axis=-1) - signal_power
    spur = np.array(power[..., 1:], copy=True)
    spur[..., cycles - 1] = 0.0
    spur_power = spur.max(axis=-1)
    with np.errstate(divide="ignore", invalid="ignore"):
        sndr = np.where(
            noise_power > 0.0,
            10.0 * np.log10(np.where(noise_power > 0.0,
                                     signal_power / noise_power, 1.0)),
            SNDR_CAP_DB)
        sfdr = np.where(
            spur_power > 0.0,
            10.0 * np.log10(np.where(spur_power > 0.0,
                                     signal_power / spur_power, 1.0)),
            SNDR_CAP_DB)
    if full_scale is None:
        sndr_fs = sndr
    else:
        # A full-scale sine of peak-to-peak ``full_scale`` carries
        # (FS/2)^2 * n^2 / 4 of rfft bin power.
        fs_power = (full_scale * n_samples) ** 2 / 16.0
        with np.errstate(divide="ignore", invalid="ignore"):
            sndr_fs = np.where(
                noise_power > 0.0,
                10.0 * np.log10(np.where(noise_power > 0.0,
                                         fs_power / noise_power, 1.0)),
                SNDR_CAP_DB)
    # Round-off of an exact-zero noise floor leaves ~1e-28 bin powers
    # whose ratio exceeds any physical dynamic range; the cap is a
    # ceiling, not only a divide-by-zero guard.
    sndr = np.minimum(sndr, SNDR_CAP_DB)
    sfdr = np.minimum(sfdr, SNDR_CAP_DB)
    sndr_fs = np.minimum(sndr_fs, SNDR_CAP_DB)
    return SpectralReport(
        sndr_db=sndr, sfdr_db=sfdr,
        enob=_enob_from_sndr(sndr),
        enob_full_scale=_enob_from_sndr(sndr_fs),
        n_samples=n_samples)


def _check_coherent(name: str, cycles: int, n_samples: int) -> int:
    """Validate the coherent-sampling contract for a record length."""
    cycles = check_count(name, cycles)
    if math.gcd(cycles, n_samples) != 1:
        raise ModelDomainError(
            f"{name} must be coprime to n_samples for coherent "
            f"sampling, got {cycles} vs {n_samples}")
    if cycles >= n_samples // 2:
        raise ModelDomainError(
            f"{name} must stay below Nyquist (n_samples // 2 = "
            f"{n_samples // 2}), got {cycles}")
    return cycles


@validated(_result_finite=True, full_scale="positive")
def spectral_metrics(signal: np.ndarray, cycles: int = 67,
                     full_scale: Optional[float] = None
                     ) -> SpectralReport:
    """SNDR/SFDR/ENOB of one coherent sine record (scalar oracle).

    ``signal`` is the converter's output over an integer number
    (``cycles``, coprime to the record length and below Nyquist) of
    input-sine periods; ``full_scale`` (peak-to-peak, same units as
    ``signal``) additionally refers ENOB to a full-scale carrier.
    """
    signal = np.asarray(check_finite("signal", signal), dtype=float)
    if signal.ndim != 1 or signal.size < 64:
        raise ModelDomainError(
            "signal must be a 1-D record of at least 64 samples, got "
            f"shape {signal.shape}")
    cycles = _check_coherent("cycles", cycles, signal.size)
    report = _spectral(signal, cycles, full_scale)
    return SpectralReport(
        sndr_db=float(report.sndr_db), sfdr_db=float(report.sfdr_db),
        enob=float(report.enob),
        enob_full_scale=float(report.enob_full_scale),
        n_samples=report.n_samples)


@validated(_result_finite=True, full_scale="positive")
def spectral_metrics_batch(signals: np.ndarray, cycles: int = 67,
                           full_scale: Optional[float] = None
                           ) -> SpectralReport:
    """Vectorized twin of :func:`spectral_metrics`.

    ``signals`` is ``(n_dies, n_samples)``; all dies FFT in one
    batched ``rfft`` along the trailing axis.
    """
    signals = np.asarray(check_finite("signals", signals), dtype=float)
    if signals.ndim != 2 or signals.shape[-1] < 64:
        raise ModelDomainError(
            "signals must be (n_dies, n_samples) with n_samples >= "
            f"64, got shape {signals.shape}")
    cycles = _check_coherent("cycles", cycles, signals.shape[-1])
    return _spectral(signals, cycles, full_scale)
