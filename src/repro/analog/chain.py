"""Full mixed-signal chain: R-2R DAC -> SC filter -> SAR ADC.

The paper's survival question for analog is a *system* question: does
a complete converter chain, instantiated at each roadmap node, still
meet linearity and dynamic-range specs once Pelgrom mismatch is drawn
per die?  This module builds that chain behaviorally:

* an N-bit **R-2R DAC** whose per-leg resistor errors come from
  :func:`~repro.variability.pelgrom.sigma_resistor_mismatch` (a leg of
  ``2**i`` effective unit resistors de-rates by ``sqrt(2**i)``);
* the existing **SC amplifier** stage
  (:func:`~repro.analog.switched_capacitor.design_sc_stage`), whose
  per-die gain error combines a cap-ratio mismatch draw with the
  finite-gain error of the evaluated OTA at the die's global V_T;
* an N-bit **SAR ADC** with binary-weighted cap-DAC mismatch from
  :func:`~repro.variability.pelgrom.sigma_capacitor_mismatch` plus a
  comparator offset from
  :func:`~repro.variability.pelgrom.offset_sigma_diff_pair`.

Everything computes in the dimensionless *fraction-of-full-scale*
domain, where ideal levels and SAR thresholds are dyadic rationals
(``k / 2**N``) that float64 represents exactly -- so an ideal chain
reports *exactly* zero DNL/INL and an exactly monotonic transfer at
every node, and mismatch is the only thing the sign-off measures.

Two evaluation paths share every arithmetic core:

* the **scalar per-die oracle** -- :meth:`SignalChain.from_die` on one
  :class:`~repro.variability.statistical.SampledDie` at a time;
* the **batched path** -- :func:`chain_signoff_batch` carries a whole
  :class:`~repro.variability.statistical.DieBatch` through the same
  elementwise cores with a leading die axis.

Both draw identical variates under a fixed seed (the sampler's
spawn-per-die contract), so :func:`chain_yield_vs_node` is fixed-seed
bit-equivalent between ``vectorized=True`` and ``False`` to float64
round-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..robust.errors import ModelDomainError
from ..robust.validate import (check_count, check_finite, check_fraction,
                               check_non_negative, check_positive, validated)
from ..technology.library import all_nodes
from ..technology.node import TechnologyNode
from ..variability.pelgrom import (offset_sigma_diff_pair,
                                   sigma_capacitor_mismatch,
                                   sigma_resistor_mismatch)
from ..variability.statistical import (MonteCarloSampler, SampledDie,
                                       VariationSpec, check_shard)
from .circuits import OtaDesign
from .metrics import (LinearityReport, SpectralReport, histogram_linearity,
                      histogram_linearity_batch, spectral_metrics,
                      spectral_metrics_batch, transfer_linearity,
                      transfer_linearity_batch)
from .switched_capacitor import ScAmplifier, design_sc_stage

__all__ = [
    "ChainDesign", "ChainSpec", "ChainSignoff",
    "R2rDac", "SarAdc", "SignalChain",
    "chain_signoff", "chain_signoff_batch", "chain_yield_vs_node",
]

ArrayOrFloat = Union[float, np.ndarray]


@dataclass(frozen=True)
class ChainDesign:
    """Sizing of the chain, in multiples of the node's feature size.

    Expressing the component dimensions in units of L is what makes
    the same design degrade across the roadmap: the drawn devices
    shrink with the node, so Pelgrom sigmas grow as 1/L while the LSB
    (proportional to the supply) shrinks -- the paper's analog-scaling
    squeeze, reproduced at chain level.
    """

    n_bits: int = 8
    resistor_width: float = 8.0     # R-2R unit resistor W / L
    resistor_length: float = 64.0
    cap_side: float = 12.0          # SAR unit cap side / L
    comparator_width: float = 64.0  # comparator input pair W / L
    comparator_length: float = 8.0
    sc_gain: float = 1.0            # SC-stage closed-loop gain C_s/C_f
    sampling_capacitance: float = 1e-12  # SC sampling cap [F]
    ota: Optional[OtaDesign] = None      # None -> default sizing

    def __post_init__(self) -> None:
        n_bits = check_count("n_bits", self.n_bits, minimum=2)
        if n_bits > 14:
            raise ModelDomainError(
                f"n_bits must be <= 14 (behavioral sweep memory), "
                f"got {n_bits}")
        for name in ("resistor_width", "resistor_length", "cap_side",
                     "comparator_width", "comparator_length", "sc_gain",
                     "sampling_capacitance"):
            check_positive(name, getattr(self, name))

    def ota_for(self, node: TechnologyNode) -> OtaDesign:
        """The OTA sizing used for the SC stage at ``node``.

        The default is a moderate-gain 5T sizing in units of L, so it
        stays manufacturable (and evaluable) at every roadmap node.
        """
        if self.ota is not None:
            return self.ota
        scale = node.feature_size
        return OtaDesign(input_width=80.0 * scale,
                         input_length=4.0 * scale,
                         load_width=40.0 * scale,
                         load_length=4.0 * scale,
                         tail_current=1e-4)


@dataclass(frozen=True)
class ChainSpec:
    """Pass/fail limits of the sign-off, in LSB and bits."""

    dnl_limit: float = 0.5   # max |DNL| [LSB], DAC and ADC
    inl_limit: float = 1.0   # max |INL| [LSB], DAC and ADC
    enob_min: Optional[float] = None  # None -> n_bits - 1.5

    def __post_init__(self) -> None:
        check_positive("dnl_limit", self.dnl_limit)
        check_positive("inl_limit", self.inl_limit)
        if self.enob_min is not None:
            check_finite("enob_min", self.enob_min)

    def enob_floor(self, n_bits: int) -> float:
        """The effective ENOB limit for an ``n_bits`` chain."""
        if self.enob_min is not None:
            return self.enob_min
        return n_bits - 1.5


@dataclass(frozen=True)
class ChainSignoff:
    """Result of one chain sign-off (scalar die or whole batch).

    From the scalar path the summary fields are plain floats/bools;
    from the batched path they carry a leading ``n_dies`` axis.
    ``monotonic`` is the end-to-end code-in/code-out sweep check;
    ``passed`` is the full spec conjunction
    P(DNL < limit ∧ INL < limit ∧ monotonic ∧ ENOB >= floor).
    """

    node: str
    dac: LinearityReport
    adc: LinearityReport
    spectral: SpectralReport
    monotonic: Union[bool, np.ndarray]
    passed: Union[bool, np.ndarray]


@dataclass(frozen=True)
class R2rDac:
    """Behavioral N-bit R-2R ladder DAC in the fraction domain.

    ``weights[i]`` is the effective conductance weight of bit ``i``
    (ideal ``2**i``); ``termination`` closes the ladder (ideal 1).
    The output for a code is the connected-weight fraction
    ``sum(b_i * w_i) / (sum(w_i) + termination)`` -- exactly
    ``code / 2**N`` for ideal weights, which float64 stores exactly.

    Fields may carry a leading die axis ``(n_dies, ...)``: the same
    instance then evaluates a whole Monte Carlo batch elementwise.
    """

    n_bits: int
    weights: np.ndarray        # (..., n_bits) leg weights
    termination: ArrayOrFloat  # (...,) termination weight

    def __post_init__(self) -> None:
        check_count("n_bits", self.n_bits, minimum=2)
        weights = np.asarray(self.weights, dtype=float)
        if weights.shape[-1] != self.n_bits:
            raise ModelDomainError(
                f"weights must have trailing size n_bits="
                f"{self.n_bits}, got shape {weights.shape}")
        check_non_negative("weights", weights)
        check_positive("termination", self.termination)

    @classmethod
    def ideal(cls, n_bits: int = 8) -> "R2rDac":
        """Perfectly matched ladder: weight ``2**i``, termination 1."""
        return cls(n_bits=n_bits,
                   weights=2.0 ** np.arange(n_bits),
                   termination=1.0)

    def levels(self) -> np.ndarray:
        """Output fractions for every code, ``(..., 2**n_bits)``."""
        weights = np.asarray(self.weights, dtype=float)
        bits = _bit_matrix(self.n_bits)
        numerator = (weights[..., None, :] * bits).sum(axis=-1)
        total = weights.sum(axis=-1) + np.asarray(
            self.termination, dtype=float)
        return numerator / total[..., None]

    def convert(self, codes: np.ndarray) -> np.ndarray:
        """Output fractions for an integer code sequence."""
        return self.levels()[..., np.asarray(codes, dtype=np.int64)]


@dataclass(frozen=True)
class SarAdc:
    """Behavioral N-bit SAR ADC in the fraction domain.

    ``weights[i]`` is the bit-``i`` cap-DAC weight (ideal ``2**i``),
    ``termination`` the dummy LSB cap (ideal 1) and ``offset`` the
    comparator offset as a fraction of full scale.  Conversion is the
    textbook MSB-first successive approximation: trial threshold
    ``(settled + w_j) / total`` against the held input.  Like
    :class:`R2rDac`, fields may carry a leading die axis.
    """

    n_bits: int
    weights: np.ndarray        # (..., n_bits) cap-DAC weights
    termination: ArrayOrFloat  # (...,) dummy LSB cap weight
    offset: ArrayOrFloat = 0.0  # (...,) comparator offset [FS]

    def __post_init__(self) -> None:
        check_count("n_bits", self.n_bits, minimum=2)
        weights = np.asarray(self.weights, dtype=float)
        if weights.shape[-1] != self.n_bits:
            raise ModelDomainError(
                f"weights must have trailing size n_bits="
                f"{self.n_bits}, got shape {weights.shape}")
        check_non_negative("weights", weights)
        check_positive("termination", self.termination)
        check_finite("offset", self.offset)

    @classmethod
    def ideal(cls, n_bits: int = 8) -> "SarAdc":
        """Perfectly matched cap DAC, zero comparator offset."""
        return cls(n_bits=n_bits,
                   weights=2.0 ** np.arange(n_bits),
                   termination=1.0, offset=0.0)

    def convert(self, values: np.ndarray) -> np.ndarray:
        """SAR-convert input fractions to integer codes.

        ``values`` broadcasts against the die axis: a shared 1-D ramp
        against batched weights yields ``(n_dies, n_points)`` codes.
        Out-of-range inputs saturate at code 0 / full scale, as the
        comparator chain would.
        """
        weights = np.asarray(self.weights, dtype=float)
        batched = weights.ndim > 1
        total = weights.sum(axis=-1) + np.asarray(
            self.termination, dtype=float)
        offset = np.asarray(self.offset, dtype=float)
        values = np.asarray(values, dtype=float)
        if batched:
            held = values + offset[..., None]
            total = total[..., None]
        else:
            held = values + offset
        settled = np.zeros_like(held)
        codes = np.zeros(held.shape, dtype=np.int64)
        for j in range(self.n_bits - 1, -1, -1):
            trial = settled + (weights[..., j:j + 1] if batched
                               else weights[j])
            keep = held >= trial / total
            settled = np.where(keep, trial, settled)
            codes += keep.astype(np.int64) * (1 << j)
        return codes


def _bit_matrix(n_bits: int) -> np.ndarray:
    """The ``(2**n, n)`` matrix of code bits, LSB first, as floats."""
    codes = np.arange(2 ** n_bits, dtype=np.int64)
    return ((codes[:, None] >> np.arange(n_bits)) & 1).astype(float)


def _midstep_ramp(n_bits: int, n_per_code: int) -> np.ndarray:
    """Uniform full-scale ramp hitting each code bin ``n_per_code``
    times at mid-step phase.

    With ``n_per_code`` a power of two every sample is an odd-numerator
    dyadic that can never tie an ideal SAR threshold, so the ideal
    histogram is exactly uniform.
    """
    n_points = 2 ** n_bits * n_per_code
    return (np.arange(n_points, dtype=float) + 0.5) / n_points


def _sine_codes(n_bits: int, n_samples: int, cycles: int,
                amplitude_fraction: float) -> np.ndarray:
    """DAC input codes of the coherent test sine (die-independent)."""
    t = np.arange(n_samples, dtype=float)
    wave = 0.5 + 0.5 * amplitude_fraction * np.sin(
        2.0 * np.pi * cycles * t / n_samples)
    return np.round((2 ** n_bits - 1) * wave).astype(np.int64)


def _sc_gain_error(node: TechnologyNode,
                   design: ChainDesign) -> tuple:
    """(alpha0, dalpha/dVT, stage): SC finite-gain error at ``node``.

    alpha = 1/(1 + A0*beta) is the classical closed-loop static gain
    error of an SC stage; the slope against the die's global V_T shift
    comes from re-evaluating the OTA engine at a shifted node, so the
    inter-die sensitivity is the sizing engine's, not a guess.
    """
    ota = design.ota_for(node)
    stage = design_sc_stage(node, ota, design.sampling_capacitance,
                            gain=design.sc_gain)
    beta = stage.feedback_factor

    def alpha(evaluated: ScAmplifier) -> float:
        return 1.0 / (1.0 + 10.0 ** (evaluated.ota.gain_db / 20.0) * beta)

    delta_vth = 5e-3
    shifted_node = node.with_overrides(
        name=f"{node.name}+dvth", vth=node.vth + delta_vth)
    shifted = design_sc_stage(shifted_node, ota,
                              design.sampling_capacitance,
                              gain=design.sc_gain)
    alpha0 = alpha(stage)
    slope = (alpha(shifted) - alpha0) / delta_vth
    return alpha0, slope, stage


def _mismatch_sigmas(node: TechnologyNode,
                     design: ChainDesign) -> tuple:
    """(sigma_R, sigma_C, sigma_gain, sigma_offset_fs) at ``node``."""
    scale = node.feature_size
    sigma_r = sigma_resistor_mismatch(
        node, design.resistor_width * scale,
        design.resistor_length * scale)
    sigma_c = sigma_capacitor_mismatch(
        node, design.cap_side * scale, design.cap_side * scale)
    # The SC closed-loop gain is a two-cap ratio: sqrt(2) worse than
    # a single cap pair's sigma.
    sigma_gain = math.sqrt(2.0) * sigma_c
    sigma_offset = offset_sigma_diff_pair(
        node, design.comparator_width * scale,
        design.comparator_length * scale) / node.vdd
    return sigma_r, sigma_c, sigma_gain, sigma_offset


#: Standard normals consumed per die beyond ``n_bits``-dependent legs:
#: DAC termination, SC gain, ADC termination, comparator offset.
_EXTRA_DRAWS = 4


def _draws_per_die(n_bits: int) -> int:
    """Mismatch draws per die: DAC legs + ADC caps + 4 singletons."""
    return 2 * n_bits + _EXTRA_DRAWS


@dataclass(frozen=True)
class SignalChain:
    """The composed DAC -> SC filter -> ADC signal path at one node.

    ``sc_gain_eff`` is the die's effective closed-loop gain; the
    filter is applied about mid-scale,
    ``f + (g - 1) * (f - 1/2)``, so an exactly-unity gain passes
    fractions through bit-identically.  Fields may carry a leading die
    axis, in which case :meth:`signoff` runs the batched metrics.
    """

    node: TechnologyNode
    design: ChainDesign
    dac: R2rDac
    adc: SarAdc
    sc_gain_eff: ArrayOrFloat
    sc_stage: Optional[ScAmplifier] = None

    def __post_init__(self) -> None:
        check_positive("sc_gain_eff", self.sc_gain_eff)

    @classmethod
    def ideal(cls, node: TechnologyNode,
              design: Optional[ChainDesign] = None) -> "SignalChain":
        """Mismatch-free chain: the sign-off's exact-zero reference."""
        design = design if design is not None else ChainDesign()
        return cls(node=node, design=design,
                   dac=R2rDac.ideal(design.n_bits),
                   adc=SarAdc.ideal(design.n_bits),
                   sc_gain_eff=design.sc_gain)

    @classmethod
    def from_die(cls, node: TechnologyNode, design: ChainDesign,
                 die: SampledDie) -> "SignalChain":
        """One die's chain: the scalar Monte Carlo oracle.

        Consumes exactly ``2 * n_bits + 4`` standard normals from the
        die's spawned generator in a fixed order (DAC legs LSB-first,
        DAC termination, SC gain, ADC caps LSB-first, ADC termination,
        comparator offset) -- the contract the batched path replays.
        """
        if die.rng is None:
            raise ModelDomainError(
                "die.rng is unset; draw dies from MonteCarloSampler."
                "sample_die() for chain sampling")
        draws = die.rng.standard_normal(_draws_per_die(design.n_bits))
        return cls._from_draws(node, design, die.vth_global, draws)

    @classmethod
    def _from_draws(cls, node: TechnologyNode, design: ChainDesign,
                    vth_global: ArrayOrFloat,
                    draws: np.ndarray) -> "SignalChain":
        """Shared scalar/batched construction from mismatch draws.

        ``draws`` is ``(2*n_bits + 4,)`` or ``(n_dies, 2*n_bits + 4)``;
        every operation is elementwise over the leading axis, so batch
        row ``d`` is bit-identical to the scalar die ``d``.
        """
        n_bits = design.n_bits
        sigma_r, sigma_c, sigma_gain, sigma_offset = _mismatch_sigmas(
            node, design)
        alpha0, alpha_slope, stage = _sc_gain_error(node, design)
        powers = 2.0 ** np.arange(n_bits)
        # A 2**i-unit leg is a parallel combination: sigma / sqrt(2**i).
        derate = 1.0 / np.sqrt(powers)
        vth_global = np.asarray(vth_global, dtype=float)
        dac = R2rDac(
            n_bits=n_bits,
            weights=powers * (1.0 + sigma_r * derate
                              * draws[..., :n_bits]),
            termination=1.0 + sigma_r * draws[..., n_bits])
        gain = design.sc_gain \
            * (1.0 + sigma_gain * draws[..., n_bits + 1]) \
            * (1.0 - (alpha0 + alpha_slope * vth_global))
        adc = SarAdc(
            n_bits=n_bits,
            weights=powers * (1.0 + sigma_c * derate
                              * draws[..., n_bits + 2:2 * n_bits + 2]),
            termination=1.0 + sigma_c * draws[..., 2 * n_bits + 2],
            offset=sigma_offset * draws[..., 2 * n_bits + 3])
        return cls(node=node, design=design, dac=dac, adc=adc,
                   sc_gain_eff=gain, sc_stage=stage)

    def with_shorted_leg(self, leg: int) -> "SignalChain":
        """Chain with DAC ladder leg ``leg`` shorted out (weight 0).

        The known-fault injection hook: killing bit ``leg`` collapses
        ``2**leg`` codes onto their neighbours, an INL signature of
        about ``2**leg`` LSB that the sign-off must flag.
        """
        leg = check_count("leg", leg, minimum=0)
        if leg >= self.design.n_bits:
            raise ModelDomainError(
                f"leg must be below n_bits={self.design.n_bits}, "
                f"got {leg}")
        weights = np.array(self.dac.weights, dtype=float, copy=True)
        weights[..., leg] = 0.0
        return replace(self, dac=replace(self.dac, weights=weights))

    def through_filter(self, fractions: np.ndarray) -> np.ndarray:
        """Apply the SC stage about mid-scale (gain error only)."""
        gain = np.asarray(self.sc_gain_eff, dtype=float)
        if gain.ndim:
            gain = gain[..., None]
        return fractions + (gain - 1.0) * (fractions - 0.5)

    def signoff(self, spec: Optional[ChainSpec] = None,
                n_ramp_per_code: int = 16, n_fft: int = 1024,
                cycles: int = 67,
                amplitude_fraction: float = 0.9) -> ChainSignoff:
        """Run the full sign-off on this chain (die or batch).

        * DAC static linearity: DC sweep of all ladder levels
          (:func:`~repro.analog.metrics.transfer_linearity`);
        * ADC static linearity: dense mid-step ramp histogram
          (:func:`~repro.analog.metrics.histogram_linearity`) --
          applied to the ADC directly, as a bench ramp would be;
        * end-to-end monotonicity: every code through
          DAC -> filter -> ADC;
        * dynamic ENOB/SNDR/SFDR: coherent sine through the full
          chain (:func:`~repro.analog.metrics.spectral_metrics`).
        """
        spec = spec if spec is not None else ChainSpec()
        n_ramp_per_code = check_count("n_ramp_per_code",
                                      n_ramp_per_code)
        n_fft = check_count("n_fft", n_fft, minimum=64)
        cycles = check_count("cycles", cycles)
        check_fraction("amplitude_fraction", amplitude_fraction)
        n_bits = self.design.n_bits
        batched = np.asarray(self.dac.weights).ndim > 1

        dac_levels = self.dac.levels()
        ramp_codes = self.adc.convert(_midstep_ramp(n_bits,
                                                    n_ramp_per_code))
        sweep_codes = self.adc.convert(self.through_filter(dac_levels))
        monotonic = np.all(np.diff(sweep_codes, axis=-1) >= 0, axis=-1)
        sine_in = dac_levels[..., _sine_codes(n_bits, n_fft, cycles,
                                              amplitude_fraction)]
        sine_out = self.adc.convert(
            self.through_filter(sine_in)).astype(float)

        full_scale = float(2 ** n_bits - 1)
        if batched:
            dac_report = transfer_linearity_batch(dac_levels)
            adc_report = histogram_linearity_batch(ramp_codes, n_bits)
            spectral = spectral_metrics_batch(sine_out, cycles,
                                              full_scale=full_scale)
        else:
            dac_report = transfer_linearity(dac_levels)
            adc_report = histogram_linearity(ramp_codes, n_bits)
            spectral = spectral_metrics(sine_out, cycles,
                                        full_scale=full_scale)
        passed = _meets_spec(spec, n_bits, dac_report, adc_report,
                             spectral, monotonic)
        if not batched:
            monotonic = bool(monotonic)
            passed = bool(passed)
        return ChainSignoff(node=self.node.name, dac=dac_report,
                            adc=adc_report, spectral=spectral,
                            monotonic=monotonic, passed=passed)


def _meets_spec(spec: ChainSpec, n_bits: int, dac: LinearityReport,
                adc: LinearityReport, spectral: SpectralReport,
                monotonic) -> np.ndarray:
    """Spec conjunction, elementwise over the die axis if present."""
    ok = np.asarray(dac.dnl_max) <= spec.dnl_limit
    ok = ok & (np.asarray(dac.inl_max) <= spec.inl_limit)
    ok = ok & (np.asarray(adc.dnl_max) <= spec.dnl_limit)
    ok = ok & (np.asarray(adc.inl_max) <= spec.inl_limit)
    ok = ok & np.asarray(monotonic)
    ok = ok & (np.asarray(spectral.enob) >= spec.enob_floor(n_bits))
    return ok


@validated(_result_finite=True, n_ramp_per_code="count", n_fft="count",
           cycles="count", amplitude_fraction="fraction")
def chain_signoff(node: TechnologyNode,
                  design: Optional[ChainDesign] = None,
                  spec: Optional[ChainSpec] = None,
                  die: Optional[SampledDie] = None,
                  n_ramp_per_code: int = 16, n_fft: int = 1024,
                  cycles: int = 67,
                  amplitude_fraction: float = 0.9) -> ChainSignoff:
    """Sign off one chain instance at ``node`` (scalar oracle).

    Without a ``die`` the ideal chain is evaluated -- which must (and
    does, exactly) report zero DNL/INL and a monotonic transfer.  With
    a die from :meth:`MonteCarloSampler.sample_die`, the die's
    mismatch draws parameterize the chain first.
    """
    design = design if design is not None else ChainDesign()
    chain = (SignalChain.ideal(node, design) if die is None
             else SignalChain.from_die(node, design, die))
    return chain.signoff(spec, n_ramp_per_code=n_ramp_per_code,
                         n_fft=n_fft, cycles=cycles,
                         amplitude_fraction=amplitude_fraction)


@validated(_result_finite=True, n_dies="count", n_ramp_per_code="count",
           n_fft="count", cycles="count", amplitude_fraction="fraction")
def chain_signoff_batch(sampler: MonteCarloSampler,
                        design: Optional[ChainDesign] = None,
                        spec: Optional[ChainSpec] = None,
                        n_dies: int = 64,
                        n_ramp_per_code: int = 16, n_fft: int = 1024,
                        cycles: int = 67,
                        amplitude_fraction: float = 0.9,
                        shard: Optional[Tuple[int, int]] = None
                        ) -> ChainSignoff:
    """Sign off ``n_dies`` Monte Carlo chains in one batched pass.

    Replays the scalar path's RNG contract exactly: the inter-die
    shifts come from :meth:`MonteCarloSampler.sample_dies_batch` and
    the per-die mismatch draws from the sampler's spawned children
    (spawning advances only the child counter, never the parent bit
    stream, so child ``d`` here is the very generator die ``d`` of the
    scalar loop would own).  All result fields gain a leading
    ``n_dies`` axis.

    With ``shard=(start, stop)`` only that slice of the same
    ``n_dies`` population is signed off: the inter-die batch is
    sliced by :meth:`MonteCarloSampler.sample_dies_batch` and only
    the sharded dies' spawned children are consumed, so row ``k`` of
    a sharded result is bit-for-bit row ``start + k`` of the full
    result -- the merge contract of :mod:`repro.exec`.
    """
    design = design if design is not None else ChainDesign()
    shard = check_shard(shard, n_dies)
    start, stop = shard if shard is not None else (0, n_dies)
    batch = sampler.sample_dies_batch(n_dies, shard=shard)
    children = sampler.rng.spawn(n_dies)[start:stop]
    draws = np.stack([child.standard_normal(
        _draws_per_die(design.n_bits)) for child in children])
    chain = SignalChain._from_draws(sampler.node, design,
                                    batch.vth_global, draws)
    return chain.signoff(spec, n_ramp_per_code=n_ramp_per_code,
                         n_fft=n_fft, cycles=cycles,
                         amplitude_fraction=amplitude_fraction)


@validated(_result_finite=True, n_dies="count", n_ramp_per_code="count",
           n_fft="count", cycles="count", amplitude_fraction="fraction")
def chain_yield_vs_node(nodes: Optional[Sequence[TechnologyNode]] = None,
                        design: Optional[ChainDesign] = None,
                        spec: Optional[ChainSpec] = None,
                        n_dies: int = 64, seed: int = 0,
                        variation: Optional[VariationSpec] = None,
                        vectorized: bool = True,
                        n_ramp_per_code: int = 16, n_fft: int = 1024,
                        cycles: int = 67,
                        amplitude_fraction: float = 0.9
                        ) -> List[Dict[str, float]]:
    """Chain sign-off yield across the roadmap: the paper's answer.

    For each node, ``n_dies`` Monte Carlo chains are drawn with the
    same seed and signed off; the yield is
    P(DNL < limit ∧ INL < limit ∧ monotonic ∧ ENOB >= floor).  The
    per-node sampler is re-seeded identically, so the trend isolates
    the technology: the same design passes comfortably at 350 nm and
    collapses towards 32 nm as Pelgrom sigmas outgrow the LSB.

    ``vectorized=False`` runs the retained scalar per-die oracle;
    both paths consume identical variates and agree to float64
    round-off.
    """
    seed = check_count("seed", seed, minimum=0)
    nodes = list(nodes) if nodes is not None else all_nodes()
    if not nodes:
        raise ModelDomainError("nodes must be a non-empty sequence")
    design = design if design is not None else ChainDesign()
    spec = spec if spec is not None else ChainSpec()
    variation = variation if variation is not None else VariationSpec()
    rows: List[Dict[str, float]] = []
    for node in nodes:
        sampler = MonteCarloSampler(node, spec=variation, seed=seed)
        if vectorized:
            result = chain_signoff_batch(
                sampler, design=design, spec=spec, n_dies=n_dies,
                n_ramp_per_code=n_ramp_per_code, n_fft=n_fft,
                cycles=cycles, amplitude_fraction=amplitude_fraction)
            passed = np.asarray(result.passed)
            enob = np.asarray(result.spectral.enob, dtype=float)
            dnl_worst = float(max(np.max(result.dac.dnl_max),
                                  np.max(result.adc.dnl_max)))
            inl_worst = float(max(np.max(result.dac.inl_max),
                                  np.max(result.adc.inl_max)))
            n_pass = int(np.count_nonzero(passed))
        else:
            dies = [chain_signoff(
                node, design=design, spec=spec,
                die=sampler.sample_die(),
                n_ramp_per_code=n_ramp_per_code, n_fft=n_fft,
                cycles=cycles, amplitude_fraction=amplitude_fraction)
                for _ in range(n_dies)]
            enob = np.array([d.spectral.enob for d in dies])
            dnl_worst = max(max(d.dac.dnl_max, d.adc.dnl_max)
                            for d in dies)
            inl_worst = max(max(d.dac.inl_max, d.adc.inl_max)
                            for d in dies)
            n_pass = sum(1 for d in dies if d.passed)
        rows.append({
            "node": node.name,
            "n_dies": float(n_dies),
            "yield_fraction": n_pass / n_dies,
            "enob_mean": float(enob.mean()),
            "enob_min": float(enob.min()),
            "dnl_worst_lsb": float(dnl_worst),
            "inl_worst_lsb": float(inl_worst),
        })
    return rows
