"""repro: analog and digital circuit design in nanometre CMOS.

A reproduction of the analysis infrastructure behind Gielen & Dehaene
et al., "Analog and digital circuit design in 65 nm CMOS: end of the
road?" (DATE 2005): CMOS scaling laws, leakage and variability device
models, digital energy/delay/timing analysis, interconnect and clock
distribution, SRAM stability, analog speed-accuracy-power trade-offs,
AMGIE/LAYLA-style analog synthesis, and the SWAN substrate-noise
methodology.

Quick start::

    from repro.technology import get_node
    from repro.devices import Mosfet

    node = get_node("65nm")
    device = Mosfet(node, width=2 * node.feature_size)
    print(device.off_current())   # eq. 1 in action

See the ``examples/`` directory for complete scenarios and
``benchmarks/`` for the scripts regenerating every figure of the
paper.
"""

from . import (
    analog,
    backends,
    core,
    devices,
    digital,
    interconnect,
    memory,
    perf,
    robust,
    signal_integrity,
    substrate,
    synthesis,
    technology,
    thermal,
    variability,
)

__version__ = "1.0.0"

__all__ = [
    "analog", "backends", "core", "devices", "digital", "interconnect", "memory",
    "perf", "robust", "signal_integrity", "substrate", "synthesis",
    "technology", "thermal", "variability", "__version__",
]
