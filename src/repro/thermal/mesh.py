"""Finite-difference die thermal model.

Section 4.3 lists "thermal interactions" among the mixed-signal
coupling channels.  This mesh is the thermal twin of the substrate
solver: the die surface is tiled, each tile dissipates the power of
the blocks above it, heat spreads laterally through the silicon and
vertically through the package to the heatsink/ambient.

The electrical analogy makes the machinery identical to
:mod:`repro.substrate.mesh`: power = current, temperature rise =
voltage, thermal conductance = electrical conductance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import factorized

from ..robust.validate import check_positive
from ..robust.errors import ModelDomainError

#: Thermal conductivity of silicon [W/(m*K)].
K_SILICON = 130.0


@dataclass(frozen=True)
class ThermalStack:
    """Vertical heat path from junction to ambient.

    Parameters
    ----------
    die_thickness:
        Silicon thickness [m] (lateral spreading layer).
    rth_junction_to_ambient:
        Package + heatsink thermal resistance [K/W] for the whole
        die.
    ambient:
        Ambient temperature [K].
    """

    die_thickness: float = 300e-6
    rth_junction_to_ambient: float = 20.0
    ambient: float = 318.0     # 45 C in-system ambient

    def __post_init__(self) -> None:
        check_positive("die_thickness", self.die_thickness)
        check_positive("rth_junction_to_ambient",
                       self.rth_junction_to_ambient)
        check_positive("ambient", self.ambient)


class ThermalMesh:
    """2-D surface thermal mesh of a die.

    Lateral conduction through the silicon slab; each tile also
    connects to the ambient node through its share of the package
    resistance.  ``solve`` maps a power map to a temperature map.
    """

    def __init__(self, die_width: float, die_height: float,
                 nx: int = 20, ny: int = 20,
                 stack: ThermalStack = ThermalStack()):
        if die_width <= 0 or die_height <= 0:
            raise ModelDomainError("die dimensions must be positive")
        if nx < 2 or ny < 2:
            raise ModelDomainError("mesh must be at least 2x2")
        self.die_width = die_width
        self.die_height = die_height
        self.nx = nx
        self.ny = ny
        self.stack = stack
        self.dx = die_width / nx
        self.dy = die_height / ny
        self._solver = None

    @property
    def n_nodes(self) -> int:
        """Number of surface tiles."""
        return self.nx * self.ny

    def node_at(self, x: float, y: float) -> int:
        """Tile index containing position (x, y)."""
        i = min(max(int(x / self.dx), 0), self.nx - 1)
        j = min(max(int(y / self.dy), 0), self.ny - 1)
        return j * self.nx + i

    def _lateral_conductance(self, horizontal: bool) -> float:
        thickness = self.stack.die_thickness
        if horizontal:
            return K_SILICON * thickness * self.dy / self.dx
        return K_SILICON * thickness * self.dx / self.dy

    def _vertical_conductance(self) -> float:
        """Per-tile conductance to ambient [W/K]."""
        total = 1.0 / self.stack.rth_junction_to_ambient
        return total / self.n_nodes

    def conductance_matrix(self) -> sparse.csc_matrix:
        """Assemble the thermal conductance matrix."""
        n = self.n_nodes
        g_h = self._lateral_conductance(True)
        g_v = self._lateral_conductance(False)
        g_down = self._vertical_conductance()
        # Neighbour edge list by array slicing (same construction as
        # the substrate mesh); the sparse constructor sums duplicate
        # (row, col) entries, realising the stamps.
        index = np.arange(n).reshape(self.ny, self.nx)
        edge_a = np.concatenate([index[:, :-1].ravel(),
                                 index[:-1, :].ravel()])
        edge_b = np.concatenate([index[:, 1:].ravel(),
                                 index[1:, :].ravel()])
        edge_g = np.concatenate([
            np.full(self.ny * (self.nx - 1), g_h),
            np.full((self.ny - 1) * self.nx, g_v)])
        every = np.arange(n)
        rows = np.concatenate([edge_a, edge_b, edge_a, edge_b, every])
        cols = np.concatenate([edge_a, edge_b, edge_b, edge_a, every])
        vals = np.concatenate([edge_g, edge_g, -edge_g, -edge_g,
                               np.full(n, g_down)])
        return sparse.csc_matrix((vals, (rows, cols)), shape=(n, n))

    def solve(self, power_map: np.ndarray) -> np.ndarray:
        """Temperature [K] per tile for a per-tile power map [W]."""
        power_map = np.asarray(power_map, dtype=float)
        if power_map.shape != (self.n_nodes,):
            raise ModelDomainError(
                f"power_map must have shape ({self.n_nodes},)")
        if np.any(power_map < 0):
            raise ModelDomainError("power_map entries must be non-negative")
        if self._solver is None:
            self._solver = factorized(self.conductance_matrix())
        rise = self._solver(power_map)
        return self.stack.ambient + rise

    def uniform_power_map(self, total_power: float) -> np.ndarray:
        """Spread ``total_power`` [W] evenly over the die."""
        if total_power < 0:
            raise ModelDomainError("total_power must be non-negative")
        return np.full(self.n_nodes, total_power / self.n_nodes)

    def block_power_map(self, blocks: Sequence[Tuple[float, float,
                                                     float, float,
                                                     float]]
                        ) -> np.ndarray:
        """Power map from (x1, y1, x2, y2, watts) block tuples."""
        power = np.zeros(self.n_nodes)
        x_centres = (np.arange(self.nx) + 0.5) * self.dx
        y_centres = (np.arange(self.ny) + 0.5) * self.dy
        for x1, y1, x2, y2, watts in blocks:
            if watts < 0:
                raise ModelDomainError("block power must be non-negative")
            inside = np.outer((y1 <= y_centres) & (y_centres < y2),
                              (x1 <= x_centres) & (x_centres < x2))
            count = np.count_nonzero(inside)
            if count:
                power += (watts / count) * inside.ravel()
        return power

    def hotspot(self, power_map: np.ndarray) -> Tuple[int, float]:
        """(tile index, temperature [K]) of the hottest tile."""
        temperatures = self.solve(power_map)
        index = int(np.argmax(temperatures))
        return index, float(temperatures[index])
