"""Thermal analysis: die thermal mesh and electrothermal feedback."""

from .mesh import K_SILICON, ThermalMesh, ThermalStack
from .electrothermal import (
    ElectrothermalResult,
    electrothermal_trend,
    fixed_die_electrothermal_trend,
    runaway_rth_threshold,
    solve_operating_point,
)

__all__ = [
    "K_SILICON", "ThermalMesh", "ThermalStack",
    "ElectrothermalResult", "electrothermal_trend",
    "fixed_die_electrothermal_trend",
    "runaway_rth_threshold", "solve_operating_point",
]
