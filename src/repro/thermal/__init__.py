"""Thermal analysis: die thermal mesh and electrothermal feedback."""

from .mesh import K_SILICON, ThermalMesh, ThermalStack
from .electrothermal import (
    ElectrothermalBatch,
    ElectrothermalResult,
    electrothermal_rth_sweep,
    electrothermal_trend,
    fixed_die_electrothermal_trend,
    runaway_rth_threshold,
    runaway_rth_thresholds,
    solve_operating_point,
    solve_operating_point_batch,
)

__all__ = [
    "K_SILICON", "ThermalMesh", "ThermalStack",
    "ElectrothermalBatch", "ElectrothermalResult",
    "electrothermal_rth_sweep", "electrothermal_trend",
    "fixed_die_electrothermal_trend",
    "runaway_rth_threshold", "runaway_rth_thresholds",
    "solve_operating_point", "solve_operating_point_batch",
]
